//! Quickstart: build a random sensor field, compute a BFS labelling with the
//! recursive sub-polynomial-energy algorithm, and compare its energy against
//! the always-on baseline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use radio_energy::bfs::metrics::{format_table, EnergySummary};
use radio_energy::bfs::protocol::registry;
use radio_energy::bfs::{build_hierarchy, recursive_bfs_with_hierarchy, RecursiveBfsConfig};
use radio_energy::graph::bfs::bfs_distances;
use radio_energy::graph::generators;
use radio_energy::protocols::{ProtocolInput, StackBuilder};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2020);

    // A "National Park" sensor field: 800 sensors in a 40×40 square with
    // communication radius 2.2 (connected w.h.p. at this density).
    let (graph, _positions) = generators::connected_unit_disc(800, 40.0, 2.2, 200, &mut rng)
        .expect("could not sample a connected sensor field");
    let source = 0usize;
    let truth = bfs_distances(&graph, source);
    let depth = *truth.iter().max().unwrap() as u64;
    println!(
        "sensor field: {} sensors, {} links, eccentricity of the source = {depth}",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Recursive BFS (Section 4 of the paper) on the Local-Broadcast-unit
    // accounting backend.
    let config = RecursiveBfsConfig::auto(graph.num_nodes(), depth).with_seed(7);
    println!(
        "recursive BFS parameters: 1/β = {}, recursion depth = {}, w ≈ {:.1}",
        config.inv_beta,
        config.max_depth,
        config.w(graph.num_nodes())
    );

    let mut net = StackBuilder::new(graph.clone()).build();
    let hierarchy = build_hierarchy(&mut net, &config);
    let setup = EnergySummary::of(&net);
    let outcome =
        recursive_bfs_with_hierarchy(&mut net, &hierarchy, &[source], depth, &config, &[]);
    let total = EnergySummary::of(&net);
    let query = total.since(&setup);

    // Verify the labelling against the centralized reference.
    let mut correct = 0usize;
    for v in graph.nodes() {
        if outcome.dist[v] == Some(truth[v] as u64) {
            correct += 1;
        }
    }
    println!(
        "labelling: {correct}/{} vertices match the centralized BFS",
        graph.num_nodes()
    );

    // Baseline: the trivial always-listening wavefront BFS, dispatched
    // through the protocol registry — the same surface the scenario sweep
    // uses, so the report's energy view is directly comparable.
    let mut baseline_net = StackBuilder::new(graph.clone()).build();
    let report = registry()
        .get("trivial_bfs")
        .expect("registered")
        .run(
            &mut baseline_net,
            &ProtocolInput::from_seed(7)
                .with_sources(vec![source])
                .with_depth(depth),
        )
        .expect("abstract stacks satisfy every requirement");
    let baseline = EnergySummary::of_report(&report);

    let rows = vec![
        vec![
            "recursive BFS (setup: clustering hierarchy)".to_string(),
            setup.max_lb_energy.to_string(),
            format!("{:.1}", setup.mean_lb_energy),
            setup.lb_time.to_string(),
        ],
        vec![
            "recursive BFS (one query)".to_string(),
            query.max_lb_energy.to_string(),
            format!("{:.1}", query.mean_lb_energy),
            query.lb_time.to_string(),
        ],
        vec![
            "trivial BFS baseline".to_string(),
            baseline.max_lb_energy.to_string(),
            format!("{:.1}", baseline.mean_lb_energy),
            baseline.lb_time.to_string(),
        ],
    ];
    println!();
    println!(
        "{}",
        format_table(
            &[
                "algorithm",
                "max energy (LB units)",
                "mean energy",
                "time (LB calls)"
            ],
            &rows
        )
    );
    println!(
        "Claim 1 check: the busiest vertex joined the wavefront set X_i in {} of {} stages.",
        outcome.stats.max_wavefront_memberships(),
        outcome.stats.stages
    );
    println!(
        "Note: at this small scale the absolute energy of the recursive algorithm is dominated \
         by its polylogarithmic factors; experiment E6 (cargo run -p radio-bench --bin \
         experiments --release -- e6) measures how the two curves scale with D."
    );
}
