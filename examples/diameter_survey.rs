//! Diameter approximation survey (Theorems 5.3 and 5.4): runs the
//! 2-approximation and the nearly-3/2-approximation on several graph
//! families and compares estimates, guarantees, and energy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example diameter_survey
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use radio_energy::bfs::diameter::{three_halves_approx_diameter, two_approx_diameter};
use radio_energy::bfs::metrics::format_table;
use radio_energy::bfs::RecursiveBfsConfig;
use radio_energy::graph::diameter::{exact_diameter, satisfies_theorem_5_4_bound};
use radio_energy::graph::{generators, Graph};
use radio_energy::protocols::StackBuilder;

fn families() -> Vec<(String, Graph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut out: Vec<(String, Graph)> = vec![
        ("path(80)".into(), generators::path(80)),
        ("cycle(64)".into(), generators::cycle(64)),
        ("grid(9x9)".into(), generators::grid(9, 9)),
        ("lollipop(10,20)".into(), generators::lollipop(10, 20)),
        ("barbell(8,14)".into(), generators::barbell(8, 14)),
        (
            "tree(k=2,levels=6)".into(),
            generators::complete_k_ary_tree(2, 6),
        ),
    ];
    if let Some(g) = generators::connected_gnp(90, 0.06, 200, &mut rng) {
        out.push(("gnp(90, 0.06)".into(), g));
    }
    out
}

fn main() {
    let config = RecursiveBfsConfig {
        inv_beta: 8,
        max_depth: 1,
        trivial_cutoff: 8,
        seed: 5,
        ..Default::default()
    };

    let mut rows = Vec::new();
    for (name, g) in families() {
        let diam = exact_diameter(&g).expect("families are connected") as u64;

        let mut net2 = StackBuilder::new(g.clone()).build();
        let est2 = two_approx_diameter(&mut net2, &config);

        let mut net32 = StackBuilder::new(g.clone()).build();
        let est32 = three_halves_approx_diameter(&mut net32, &config, 77);

        rows.push(vec![
            name,
            diam.to_string(),
            format!(
                "{} ({})",
                est2.estimate,
                if 2 * est2.estimate >= diam && est2.estimate <= diam {
                    "ok"
                } else {
                    "VIOLATED"
                }
            ),
            est2.energy.max_lb_energy.to_string(),
            format!(
                "{} ({})",
                est32.estimate,
                if satisfies_theorem_5_4_bound(diam as u32, est32.estimate as u32) {
                    "ok"
                } else {
                    "VIOLATED"
                }
            ),
            est32.energy.max_lb_energy.to_string(),
            est32.bfs_count.to_string(),
        ]);
    }

    println!(
        "{}",
        format_table(
            &[
                "graph",
                "diam",
                "2-approx (Thm 5.3)",
                "energy",
                "3/2-approx (Thm 5.4)",
                "energy",
                "#BFS",
            ],
            &rows
        )
    );
    println!(
        "Guarantees checked per row: 2-approx must land in [diam/2, diam]; the 3/2-approx must \
         land in [⌊2·diam/3⌋, diam]. The 3/2-approximation pays ~√n-many BFS computations for \
         its sharper answer, the Theorem 5.3/5.4 energy trade-off."
    );
}
