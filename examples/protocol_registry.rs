//! Tour of the first-class `Protocol` surface: resolve string specs through
//! the registry, run the same workloads on the abstract and physical
//! backends, watch the capability gate refuse a CD protocol on a no-CD
//! stack, and read the unified per-run reports.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example protocol_registry
//! ```

use radio_energy::bfs::metrics::format_table;
use radio_energy::bfs::protocol::registry;
use radio_energy::graph::generators;
use radio_energy::protocols::{EnergyModel, ProtocolInput, StackBuilder};

fn main() {
    let registry = registry();
    println!("registered protocols:");
    println!("{}", registry.help());
    println!();

    // One graph, several protocols, two backends — all through one API.
    let g = generators::grid(16, 16);
    let specs = [
        "trivial_bfs",
        "decay_bfs",
        "recursive",
        "clustering:b=4",
        "lb_sweep:r=8",
    ];
    let mut rows = Vec::new();
    for spec in specs {
        let protocol = registry.get(spec).expect("spec resolves");
        for physical in [false, true] {
            let builder = StackBuilder::new(g.clone()).with_seed(7);
            let mut stack = if physical {
                builder.physical(EnergyModel::Uniform).build()
            } else {
                builder.build()
            };
            let report = protocol
                .run(&mut stack, &ProtocolInput::from_seed(7))
                .expect("requirements satisfied");
            rows.push(vec![
                report.protocol.to_string(),
                if physical { "physical" } else { "abstract" }.into(),
                report.lb_calls().to_string(),
                report.energy.max_lb_energy().to_string(),
                report
                    .energy
                    .max_physical_energy()
                    .map_or_else(|| "-".into(), |x| x.to_string()),
                report.outcome().to_string(),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "protocol",
                "backend",
                "LB calls",
                "max energy (LB)",
                "max energy (slots)",
                "outcome",
            ],
            &rows
        )
    );

    // The capability gate: trivial_bfs_cd needs receiver-side collision
    // detection and refuses anything less with a typed error.
    let cd_protocol = registry.get("trivial_bfs_cd").expect("spec resolves");
    let mut no_cd = StackBuilder::new(g.clone())
        .physical(EnergyModel::Uniform)
        .with_seed(7)
        .build();
    let refusal = cd_protocol
        .run(&mut no_cd, &ProtocolInput::from_seed(7))
        .expect_err("must refuse a stack without CD");
    println!("capability gate: {refusal}");

    let mut with_cd = StackBuilder::new(g)
        .physical(EnergyModel::Uniform)
        .with_cd()
        .with_seed(7)
        .build();
    let report = cd_protocol
        .run(&mut with_cd, &ProtocolInput::from_seed(7))
        .expect("CD stack passes the gate");
    println!("with CD:         {}", report.to_json());

    // Unknown specs fail with the known-protocol list — the same message
    // `experiments -- scenarios --protocol <spec>` exits with.
    let Err(unknown) = registry.get("warp_drive") else {
        unreachable!("warp_drive is not a protocol");
    };
    println!("unknown spec:    {unknown}");
}
