//! The paper's motivating scenario (Section 1): sensors scattered through a
//! National Park organise themselves with a BFS labelling, then run the
//! steady-state polling scheme — a device with label `i` wakes only at slots
//! `j·P + (i mod P)` — so that a forest-fire alert propagates with latency
//! `≈ P·D` while each sensor spends only `O(1)` awake slots.
//!
//! The example measures the latency/energy trade-off as the polling period
//! `P` varies, on the slot-accurate physical simulator (experiment E14).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sensor_field
//! ```

use std::collections::BTreeMap;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use radio_energy::bfs::metrics::format_table;
use radio_energy::graph::bfs::bfs_distances;
use radio_energy::graph::generators;
use radio_energy::sim::device::{run_devices, PollingDevice};
use radio_energy::sim::RadioNetwork;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let (graph, positions) = generators::connected_unit_disc(500, 30.0, 2.5, 200, &mut rng)
        .expect("could not sample a connected sensor field");

    // The fire is detected by the sensor closest to the park's corner.
    let source = positions
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            (a.0 * a.0 + a.1 * a.1)
                .partial_cmp(&(b.0 * b.0 + b.1 * b.1))
                .unwrap()
        })
        .map(|(v, _)| v)
        .unwrap();

    // In a deployed system the labels come from the paper's recursive BFS
    // (see the quickstart example); here we take them as given and study the
    // steady state.
    let labels = bfs_distances(&graph, source);
    let depth = *labels.iter().max().unwrap() as u64;
    println!(
        "sensor field: {} sensors, {} links, BFS depth {depth}, source at the corner (sensor {source})",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!();

    let mut rows = Vec::new();
    for period in [2u64, 4, 8, 16] {
        // Allow a handful of polling cycles per hop for the decay-style
        // forwarding to resolve contention among same-label sensors.
        let deadline = (16 * depth + 100) * period;
        let mut devices: BTreeMap<usize, PollingDevice> = graph
            .nodes()
            .map(|v| {
                let initial = if v == source { Some(1) } else { None };
                (
                    v,
                    PollingDevice::new(labels[v] as u64, period, deadline, initial)
                        .with_seed(9000 + v as u64),
                )
            })
            .collect();
        let mut net: RadioNetwork<u64> = RadioNetwork::new(graph.clone());
        run_devices(&mut net, &mut devices, deadline);

        let informed = graph
            .nodes()
            .filter(|&v| devices[&v].message.is_some())
            .count();
        let latency = graph
            .nodes()
            .filter_map(|v| devices[&v].received_at)
            .max()
            .unwrap_or(0);
        rows.push(vec![
            period.to_string(),
            format!("{informed}/{}", graph.num_nodes()),
            latency.to_string(),
            net.max_energy().to_string(),
            format!("{:.2}", net.report().mean_energy),
        ]);
    }

    println!(
        "{}",
        format_table(
            &[
                "polling period P",
                "sensors informed",
                "alert latency (slots)",
                "max energy (slots awake)",
                "mean energy",
            ],
            &rows
        )
    );
    println!(
        "Reading: latency grows roughly linearly with P while per-sensor energy stays flat at a \
         handful of awake slots — the factor-P energy saving over an always-on schedule that the \
         paper's introduction describes."
    );
}
