//! Anatomy of an MPX clustering (Section 2 / Figure 1): grows
//! `cluster(G, β)` on a grid with the distributed Lemma 2.5 protocol and
//! reports the quantities the paper's lemmas are about — cluster count,
//! radii, cut edges, ball/cluster intersections (Lemma 2.1), and how well
//! cluster-graph distances track original distances (Lemma 2.2).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cluster_anatomy
//! ```

use radio_energy::bfs::metrics::format_table;
use radio_energy::bfs::protocol::registry;
use radio_energy::graph::cluster_graph::{distance_proxy_stats, ClusterGraph};
use radio_energy::graph::generators;
use radio_energy::protocols::{ProtocolInput, RadioStack, StackBuilder};

fn main() {
    let g = generators::grid(30, 30);
    let n = g.num_nodes();
    println!("graph: 30x30 grid, {n} vertices, {} edges", g.num_edges());
    println!();

    let registry = registry();
    let mut rows = Vec::new();
    for (i, inv_beta) in [2u64, 4, 8, 16].into_iter().enumerate() {
        // The distributed clustering through the registry: the spec carries
        // the β parameter, the input carries the tag seed.
        let protocol = registry
            .get(&format!("clustering:b={inv_beta}"))
            .expect("spec resolves");
        let mut net = StackBuilder::new(g.clone()).build();
        let report = protocol
            .run(&mut net, &ProtocolInput::from_seed(3 + i as u64))
            .expect("abstract stacks satisfy every requirement");
        let state = report
            .output
            .clustering()
            .expect("clustering protocols output a ClusterState")
            .clone();
        state
            .validate()
            .expect("distributed clustering is structurally valid");

        let clustering = state.to_graph_clustering();
        let cluster_graph = ClusterGraph::build(&g, clustering.clone());

        // Lemma 2.2 check over a grid of sample pairs.
        let pairs: Vec<(usize, usize)> = (0..n)
            .step_by(17)
            .flat_map(|u| (0..n).step_by(23).map(move |v| (u, v)))
            .collect();
        let proxy = distance_proxy_stats(&g, &cluster_graph, &pairs, 4.0);

        rows.push(vec![
            format!("1/{inv_beta}"),
            state.num_clusters().to_string(),
            format!("{:.1}", n as f64 / state.num_clusters() as f64),
            state.max_layer.to_string(),
            format!("{:.3}", clustering.cut_fraction(&g)),
            format!("{}", net.max_lb_energy()),
            format!("{}/{}", proxy.pairs - proxy.violations, proxy.pairs),
            format!("{:.2}", proxy.mean_ratio),
        ]);
    }

    println!(
        "{}",
        format_table(
            &[
                "β",
                "#clusters",
                "mean size",
                "max radius",
                "cut fraction",
                "clustering energy (LB)",
                "Lemma 2.2 pairs ok",
                "mean dist*/(β·dist)",
            ],
            &rows
        )
    );
    println!();
    println!(
        "Expected shapes: cluster count and cut fraction grow with β (MPX cuts an O(β) fraction \
         of edges); the maximum radius stays below 4·ln(n)/β; every sampled pair satisfies the \
         Lemma 2.2 distance-proxy interval; and the normalized ratio dist*/(β·dist) hovers \
         around a constant, which is what makes the cluster graph a usable distance proxy for \
         the recursive BFS."
    );
}
