//! The Theorem 5.1 distinguishing game, played for real: can a low-energy
//! protocol tell the complete graph `K_n` from `K_n` minus one edge?
//!
//! The example runs the natural edge-probing protocol under increasing
//! per-device energy budgets, reports its empirical success rate, the
//! theorem's counting-argument upper bound computed from the actual traces,
//! and contrasts both with the Ω(n)-energy round-robin protocol that does
//! solve the problem. It finishes with the Theorem 5.2 communication ledger
//! on a set-disjointness instance.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example hardness_game
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use radio_energy::bfs::hardness::{
    disjointness_communication_bits, disjointness_energy_threshold, distinguishing_success_rate,
    edge_probing_protocol, round_robin_protocol, GoodSlotAccounting,
};
use radio_energy::bfs::metrics::format_table;
use radio_energy::graph::generators;
use radio_energy::graph::lower_bound::build_disjointness_graph;

fn main() {
    let n = 64;
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    println!("== Theorem 5.1: distinguishing K_{n} from K_{n} − e ==");
    println!();

    let mut rows = Vec::new();
    for budget in [1u64, 4, 16, 64, 256, 1024, 4096] {
        let success = distinguishing_success_rate(n, budget, 120, &mut rng);
        // Counting-argument bound evaluated on a fresh trace of the same
        // protocol on K_n.
        let g = generators::complete(n);
        let (trace, _) = edge_probing_protocol(&g, budget, &mut rng);
        let accounting = GoodSlotAccounting::evaluate(n, &trace);
        rows.push(vec![
            budget.to_string(),
            format!("{:.2}", success),
            format!("{:.2}", accounting.success_upper_bound),
            accounting.good_pairs.to_string(),
            accounting.max_energy.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "energy budget E",
                "empirical success",
                "Thm 5.1 upper bound",
                "|X_good|",
                "max energy used",
            ],
            &rows
        )
    );

    let g_minus = generators::complete_minus_edge(n, 3, 40);
    let (trace, witnessed) = round_robin_protocol(&g_minus);
    let acc = GoodSlotAccounting::evaluate(n, &trace);
    println!();
    println!(
        "Round-robin protocol (energy Θ(n) = {}): witnesses {}/{} edges, every pair has a good \
         slot, and it identifies the missing edge with certainty — matching the Ω(n) threshold.",
        acc.max_energy,
        witnessed.len(),
        g_minus.num_edges() + 1
    );

    println!();
    println!("== Theorem 5.2: the set-disjointness reduction ledger ==");
    let ell = 7u32;
    let set_a: Vec<u64> = (0..50).map(|i| (3 * i + 1) % 128).collect();
    let set_b: Vec<u64> = (0..50).map(|i| (3 * i + 2) % 128).collect();
    let instance = build_disjointness_graph(&set_a, &set_b, ell);
    println!(
        "instance: k = {}, n = {} vertices, diameter must be {} (sets {}disjoint)",
        instance.k,
        instance.graph.num_nodes(),
        instance.predicted_diameter(),
        if instance.sets_disjoint() { "" } else { "not " }
    );
    // At laptop-scale k the reduction's per-unit cost already exceeds k (the
    // bound is asymptotic); show how the energy threshold k / (bits per unit
    // of energy) grows with k, i.e. the Ω(k / log² k) = Ω̃(n) shape.
    let _ = disjointness_energy_threshold(&instance);
    let mut rows = Vec::new();
    for ell in [5u32, 7, 9, 11] {
        let k = 1u64 << ell;
        let a: Vec<u64> = (0..k / 2).map(|i| (2 * i + 1) % k).collect();
        let b: Vec<u64> = (0..k / 2).map(|i| (2 * i) % k).collect();
        let inst = build_disjointness_graph(&a, &b, ell);
        let per_unit = disjointness_communication_bits(&inst, 1);
        rows.push(vec![
            k.to_string(),
            inst.graph.num_nodes().to_string(),
            per_unit.to_string(),
            format!("{:.3}", k as f64 / per_unit as f64),
            format!("{:.2}", k as f64 / (k as f64).log2().powi(2)),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "k",
                "n",
                "bits per unit of energy",
                "energy threshold k/bits",
                "k/log²k (theory scale)",
            ],
            &rows
        )
    );
    println!(
        "Any radio protocol deciding diameter 2 vs 3 on these sparse graphs with per-device \
         energy below the threshold would solve set-disjointness with fewer than k bits of \
         communication — contradiction. The threshold grows like k/log²k, i.e. Ω̃(n) energy is \
         required for any (3/2 − ε)-approximation of the diameter."
    );
}
