//! The BFS drivers as first-class [`Protocol`]s, plus the full
//! [`registry`] every runner should use.
//!
//! `radio-protocols` defines the trait, the registry machinery, and the
//! protocols of its own layer (`clustering`, `lb_sweep`); this module wraps
//! the BFS family of Section 4 on top and assembles the complete registry:
//!
//! | spec | protocol | requires |
//! |------|----------|----------|
//! | `trivial_bfs[:depth=D]` | Section 4.3 wavefront, depth `D` (default `n`) | — |
//! | `trivial_bfs_cd[:depth=D]` | the wavefront + CD verdicts ([`crate::baseline::trivial_bfs_cd`]) | receiver CD |
//! | `decay_bfs` | unbounded wavefront, stops when a sweep settles nothing | — |
//! | `recursive[:b=B,eps=E,d=L]` | recursive BFS, `1/β = B` (default `⌈√D⌉` per `eps = 0.5`) | — |
//! | `diameter:two_approx` | Theorem 5.3 2-approximation ([`crate::diameter::two_approx_diameter`]) | — |
//! | `diameter:three_halves_approx` | Theorem 5.4 nearly-3/2 approximation | — |
//! | `diameter:hyperball[:p=P][,rounds=R]` | HyperBall sketch estimate (error `1.04/√2^p`) | — |
//! | `clustering:b=B` | distributed MPX clustering (from `radio-protocols`) | — |
//! | `lb_sweep:r=R` | Local-Broadcast stress loop (from `radio-protocols`) | — |
//! | `hyperball[:p=P][,rounds=R]` | full HyperBall output: NF + eccentricities (from `radio-protocols`) | — |
//!
//! Every wrapper reproduces the historical free-function call exactly
//! (sources, depth defaults, seed derivation), so registry-dispatched runs
//! are byte-identical to direct calls — the property the scenario runner's
//! JSON stability rests on, pinned by `crates/bench/tests/properties.rs`.

use radio_protocols::protocol::base_registry;
use radio_protocols::sketch::{HyperballProtocol, MAX_PRECISION, MIN_PRECISION};
use radio_protocols::{
    CollisionDetection, LbFrame, Protocol, ProtocolId, ProtocolInput, ProtocolOutput,
    ProtocolRegistry, RadioStack,
};

use crate::baseline::{decay_bfs_with_frame, trivial_bfs_cd_with_frame, trivial_bfs_with_frame};
use crate::config::RecursiveBfsConfig;
use crate::diameter::{three_halves_approx_diameter, two_approx_diameter};
use crate::recursive_bfs::{build_hierarchy, recursive_bfs_with_hierarchy};

/// The full protocol registry: the Local-Broadcast-layer protocols of
/// `radio-protocols` plus the BFS drivers of this crate. Build one per
/// runner (construction is a handful of pushes) and resolve specs with
/// [`ProtocolRegistry::get`].
pub fn registry() -> ProtocolRegistry {
    let mut r = base_registry();
    r.register(
        "trivial_bfs",
        "Section 4.3 wavefront BFS from node 0; depth=D bounds the horizon (default n)",
        |params| {
            params.ensure_known_keys(&["depth"])?;
            let depth = params.get_opt_u64("depth")?;
            if depth == Some(0) {
                return Err(params.invalid("parameter depth must be ≥ 1"));
            }
            Ok(Box::new(TrivialBfsProtocol { depth, cd: false }))
        },
    );
    r.register(
        "trivial_bfs_cd",
        "the wavefront + collision-detection verdicts (noise settles, all-silence halts)",
        |params| {
            params.ensure_known_keys(&["depth"])?;
            let depth = params.get_opt_u64("depth")?;
            if depth == Some(0) {
                return Err(params.invalid("parameter depth must be ≥ 1"));
            }
            Ok(Box::new(TrivialBfsProtocol { depth, cd: true }))
        },
    );
    r.register(
        "decay_bfs",
        "unbounded wavefront BFS; advances until a sweep settles nothing new",
        |params| {
            params.ensure_known_keys(&[])?;
            Ok(Box::new(DecayBfsProtocol))
        },
    );
    r.register(
        "recursive",
        "recursive sub-polynomial-energy BFS (Section 4); b=1/β override, eps=β exponent \
         (default 0.5 ⇒ 1/β ≈ √D), d=hierarchy depth (default 1)",
        |params| {
            params.ensure_known_keys(&["b", "eps", "d"])?;
            let inv_beta = params.get_opt_u64("b")?;
            if inv_beta == Some(0) {
                return Err(params.invalid("parameter b must be ≥ 1"));
            }
            let eps = params.get_f64("eps", 0.5)?;
            if !(0.0..=1.0).contains(&eps) {
                return Err(params.invalid("parameter eps must be in [0, 1]"));
            }
            let max_depth = params.get_u64("d", 1)?;
            if max_depth == 0 {
                return Err(params.invalid("parameter d must be ≥ 1"));
            }
            Ok(Box::new(RecursiveBfsProtocol {
                inv_beta,
                eps,
                max_depth: max_depth as usize,
            }))
        },
    );
    r.register(
        "diameter",
        "diameter estimation family: exactly one of two_approx | three_halves_approx | \
         hyperball[:p=P][,rounds=R]",
        |params| {
            params.ensure_known_keys(&[
                "two_approx",
                "three_halves_approx",
                "hyperball",
                "hyperball:p",
                "rounds",
            ])?;
            let two = params.flag("two_approx")?;
            let three = params.flag("three_halves_approx")?;
            let hyper_p = params.get_opt_u64("hyperball:p")?;
            let hyper = params.flag("hyperball")? || hyper_p.is_some();
            let rounds = params.get_opt_u64("rounds")?;
            if usize::from(two) + usize::from(three) + usize::from(hyper) != 1 {
                return Err(params.invalid(
                    "pick exactly one method: two_approx, three_halves_approx, or \
                     hyperball[:p=P]",
                ));
            }
            if rounds.is_some() && !hyper {
                return Err(params.invalid("parameter rounds only applies to hyperball"));
            }
            if rounds == Some(0) {
                return Err(params.invalid("parameter rounds must be ≥ 1"));
            }
            let method = if two {
                DiameterMethod::TwoApprox
            } else if three {
                DiameterMethod::ThreeHalvesApprox
            } else {
                let p = hyper_p.unwrap_or(6);
                if !(u64::from(MIN_PRECISION)..=u64::from(MAX_PRECISION)).contains(&p) {
                    return Err(params.invalid(format!(
                        "parameter hyperball:p={p} outside {MIN_PRECISION}..={MAX_PRECISION}"
                    )));
                }
                DiameterMethod::Hyperball(HyperballProtocol {
                    p: p as u32,
                    rounds,
                })
            };
            Ok(Box::new(DiameterProtocol { method }))
        },
    );
    r
}

/// The trivial wavefront BFS (Section 4.3) as a [`Protocol`]; with `cd` it
/// runs the collision-detection variant and requires a CD-capable stack.
///
/// Depth defaults to `n` (the historical scenario-runner horizon: on a
/// connected graph the wavefront halts by eccentricity anyway). Sources,
/// seed, and the active set come from the [`ProtocolInput`]: with
/// `input.active = None` the whole vertex set participates (the exact
/// historical behaviour), while a restricted set runs the recursion's
/// base-case workload — the same `active: &[bool]` the free functions have
/// always taken, now expressible through the registry.
#[derive(Clone, Debug)]
pub struct TrivialBfsProtocol {
    /// Explicit depth bound; `None` defers to the input/default.
    pub depth: Option<u64>,
    /// Run the CD-exploiting variant ([`trivial_bfs_cd_with_frame`]).
    pub cd: bool,
}

impl Protocol for TrivialBfsProtocol {
    fn name(&self) -> ProtocolId {
        let base = if self.cd {
            "trivial_bfs_cd"
        } else {
            "trivial_bfs"
        };
        match self.depth {
            None => ProtocolId::new(base),
            Some(d) => ProtocolId::new(format!("{base}_d{d}")),
        }
    }

    fn requires(&self) -> radio_protocols::Capabilities {
        let mut req = radio_protocols::Capabilities::baseline();
        if self.cd {
            req.collision_detection = CollisionDetection::Receiver;
        }
        req
    }

    fn execute(
        &self,
        net: &mut dyn RadioStack,
        input: &ProtocolInput,
        frame: &mut LbFrame,
    ) -> ProtocolOutput {
        let n = net.num_nodes();
        let depth = self.depth.or(input.depth).unwrap_or(n as u64);
        let active = input.active_mask(n);
        let result = if self.cd {
            trivial_bfs_cd_with_frame(net, &input.sources, &active, depth, frame)
        } else {
            trivial_bfs_with_frame(net, &input.sources, &active, depth, frame)
        };
        ProtocolOutput::Distances(result.dist)
    }
}

/// The unbounded Decay-style wavefront BFS as a [`Protocol`]. Single-source
/// (the first input source). `ProtocolInput::depth` is deliberately
/// ignored: the decay wavefront is by definition bound-free (it stops when
/// a sweep settles nothing new) — for a depth-bounded run use
/// `trivial_bfs:depth=D`, which is the same wavefront with a horizon.
#[derive(Clone, Debug)]
pub struct DecayBfsProtocol;

impl Protocol for DecayBfsProtocol {
    fn name(&self) -> ProtocolId {
        ProtocolId::new("decay_bfs")
    }

    fn execute(
        &self,
        net: &mut dyn RadioStack,
        input: &ProtocolInput,
        frame: &mut LbFrame,
    ) -> ProtocolOutput {
        let source = input.sources.first().copied().unwrap_or(0);
        ProtocolOutput::Distances(decay_bfs_with_frame(net, source, frame).dist)
    }
}

/// The recursive BFS of Section 4 as a [`Protocol`]: builds the cluster
/// hierarchy (seeded from the input seed) and runs one query to the depth
/// bound, with `1/β` tuned to the depth as the paper prescribes.
#[derive(Clone, Debug)]
pub struct RecursiveBfsProtocol {
    /// Explicit `1/β`; `None` derives it from the depth via `eps`.
    pub inv_beta: Option<u64>,
    /// Exponent of the depth-derived tuning: `1/β ≈ D^eps`, rounded to a
    /// power of two, at least 4. The default `0.5` is the paper's `√D`.
    pub eps: f64,
    /// Hierarchy depth (recursion levels).
    pub max_depth: usize,
}

impl RecursiveBfsProtocol {
    fn config_for(&self, depth: u64, seed: u64) -> RecursiveBfsConfig {
        let inv_beta = self.inv_beta.unwrap_or_else(|| {
            // `sqrt` (not `powf(0.5)`) on the default path: it is the exact
            // expression the scenario runner always used, and the two can
            // differ in the last ulp — which would flip `round` and silently
            // perturb the pinned sweep JSON.
            let base = if self.eps == 0.5 {
                (depth as f64).sqrt()
            } else {
                (depth as f64).powf(self.eps)
            };
            (base.round() as u64).next_power_of_two().max(4)
        });
        RecursiveBfsConfig {
            inv_beta,
            max_depth: self.max_depth,
            trivial_cutoff: inv_beta,
            seed,
            ..Default::default()
        }
    }
}

impl Protocol for RecursiveBfsProtocol {
    fn name(&self) -> ProtocolId {
        let mut label = String::from("recursive_bfs");
        if let Some(b) = self.inv_beta {
            label.push_str(&format!("_b{b}"));
        } else if self.eps != 0.5 {
            label.push_str(&format!("_eps{}", self.eps));
        }
        if self.max_depth != 1 {
            label.push_str(&format!("_d{}", self.max_depth));
        }
        ProtocolId::new(label)
    }

    fn execute(
        &self,
        net: &mut dyn RadioStack,
        input: &ProtocolInput,
        frame: &mut LbFrame,
    ) -> ProtocolOutput {
        let _ = frame; // the recursion owns one frame per level
        let n = net.num_nodes();
        let depth = input.depth.unwrap_or((n as u64).saturating_sub(1));
        let config = self.config_for(depth, input.seed);
        let hierarchy = build_hierarchy(net, &config);
        let result =
            recursive_bfs_with_hierarchy(net, &hierarchy, &input.sources, depth, &config, &[]);
        ProtocolOutput::Distances(result.dist)
    }
}

/// Which estimator a [`DiameterProtocol`] runs.
#[derive(Clone, Debug)]
pub enum DiameterMethod {
    /// Theorem 5.3: one full BFS from an elected leader, estimate ∈
    /// `[diam/2, diam]`.
    TwoApprox,
    /// Theorem 5.4: the hitting-set construction, `Õ(√n)` BFS runs,
    /// estimate ∈ `[⌊2·diam/3⌋, diam]`.
    ThreeHalvesApprox,
    /// The HyperBall sketch: no BFS at all, estimate = last round that
    /// changed a register (within `1.04/√2^p` of the diameter, up to hash
    /// collisions — and capped by `rounds` when bounded).
    Hyperball(HyperballProtocol),
}

/// The Section 5 diameter estimators as one registry family
/// (`diameter:two_approx`, `diameter:three_halves_approx`,
/// `diameter:hyperball:p=…`), each reporting
/// [`ProtocolOutput::Diameter`] — {estimate, BFS count} plus the usual
/// energy diff — so exact-vs-sketch tradeoffs are one spec swap apart.
///
/// The exact estimators derive their [`RecursiveBfsConfig`] from the
/// depth exactly as the `recursive` wrapper does (`1/β = √D` rounded to a
/// power of two, seeded from the input), so a registry-dispatched run is
/// byte-identical to the historical direct calls of E12/E13.
#[derive(Clone, Debug)]
pub struct DiameterProtocol {
    /// The selected estimator.
    pub method: DiameterMethod,
}

impl Protocol for DiameterProtocol {
    fn name(&self) -> ProtocolId {
        match &self.method {
            DiameterMethod::TwoApprox => ProtocolId::new("diameter_two_approx"),
            DiameterMethod::ThreeHalvesApprox => ProtocolId::new("diameter_three_halves_approx"),
            DiameterMethod::Hyperball(h) => ProtocolId::new(format!("diameter_{}", h.name())),
        }
    }

    fn execute(
        &self,
        net: &mut dyn RadioStack,
        input: &ProtocolInput,
        frame: &mut LbFrame,
    ) -> ProtocolOutput {
        match &self.method {
            DiameterMethod::TwoApprox => {
                let config = diameter_config(net, input);
                let est = two_approx_diameter(net, &config);
                ProtocolOutput::Diameter {
                    estimate: est.estimate,
                    bfs_count: est.bfs_count,
                }
            }
            DiameterMethod::ThreeHalvesApprox => {
                let config = diameter_config(net, input);
                let est = three_halves_approx_diameter(net, &config, input.seed);
                ProtocolOutput::Diameter {
                    estimate: est.estimate,
                    bfs_count: est.bfs_count,
                }
            }
            DiameterMethod::Hyperball(h) => {
                let summary = match h.execute(net, input, frame) {
                    ProtocolOutput::Sketch(s) => s,
                    other => unreachable!("hyperball produced {other:?}"),
                };
                ProtocolOutput::Diameter {
                    estimate: summary.diameter_estimate,
                    bfs_count: 0,
                }
            }
        }
    }
}

/// The depth-tuned [`RecursiveBfsConfig`] the exact diameter estimators
/// run with — the same `√D`-rounded `1/β` derivation as the `recursive`
/// wrapper's default path (see the ulp note there).
fn diameter_config(net: &dyn RadioStack, input: &ProtocolInput) -> RecursiveBfsConfig {
    let depth = input
        .depth
        .unwrap_or((net.num_nodes() as u64).saturating_sub(1));
    let inv_beta = ((depth as f64).sqrt().round() as u64)
        .next_power_of_two()
        .max(4);
    RecursiveBfsConfig {
        inv_beta,
        max_depth: 1,
        trivial_cutoff: inv_beta,
        seed: input.seed,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generators;
    use radio_protocols::{ProtocolError, StackBuilder};
    use radio_sim::EnergyModel;

    #[test]
    fn registry_knows_all_eight_protocol_families() {
        let r = registry();
        assert_eq!(
            r.known(),
            vec![
                "clustering",
                "lb_sweep",
                "hyperball",
                "trivial_bfs",
                "trivial_bfs_cd",
                "decay_bfs",
                "recursive",
                "diameter"
            ]
        );
        assert_eq!(r.get("trivial_bfs").unwrap().name(), "trivial_bfs");
        assert_eq!(r.get("trivial_bfs_cd").unwrap().name(), "trivial_bfs_cd");
        assert_eq!(r.get("decay_bfs").unwrap().name(), "decay_bfs");
        assert_eq!(r.get("recursive").unwrap().name(), "recursive_bfs");
        assert_eq!(r.get("recursive:b=8").unwrap().name(), "recursive_bfs_b8");
        assert_eq!(
            r.get("trivial_bfs:depth=5").unwrap().name(),
            "trivial_bfs_d5"
        );
        assert_eq!(r.get("hyperball:p=6").unwrap().name(), "hyperball_p6");
    }

    #[test]
    fn diameter_family_resolves_each_method_and_rejects_ambiguity() {
        let r = registry();
        assert_eq!(
            r.get("diameter:two_approx").unwrap().name(),
            "diameter_two_approx"
        );
        assert_eq!(
            r.get("diameter:three_halves_approx").unwrap().name(),
            "diameter_three_halves_approx"
        );
        assert_eq!(
            r.get("diameter:hyperball").unwrap().name(),
            "diameter_hyperball_p6"
        );
        assert_eq!(
            r.get("diameter:hyperball:p=8").unwrap().name(),
            "diameter_hyperball_p8"
        );
        assert_eq!(
            r.get("diameter:hyperball:p=6,rounds=12").unwrap().name(),
            "diameter_hyperball_p6_r12"
        );
        for spec in [
            "diameter",                                // no method picked
            "diameter:two_approx,three_halves_approx", // two methods
            "diameter:two_approx,rounds=4",            // rounds without hyperball
            "diameter:hyperball:p=3",                  // p below the floor
            "diameter:hyperball:p=6,rounds=0",         // zero bound
            "diameter:two_approx=1",                   // selector given a value
            "diameter:warp",                           // unknown method
        ] {
            assert!(
                matches!(r.get(spec), Err(ProtocolError::InvalidSpec { .. })),
                "{spec} must be rejected"
            );
        }
        // The unknown-spec listing includes the new families (the CLI's
        // exit-2 contract).
        let Err(err) = r.get("warp_drive") else {
            panic!("warp_drive resolved");
        };
        let msg = err.to_string();
        assert!(
            msg.contains("diameter") && msg.contains("hyperball"),
            "{msg}"
        );
    }

    #[test]
    fn diameter_two_approx_wrapper_matches_the_direct_call() {
        let g = generators::grid(8, 8);
        let seed = 12u64;
        let report = {
            let mut net = StackBuilder::new(g.clone()).with_seed(seed).build();
            registry()
                .get("diameter:two_approx")
                .unwrap()
                .run(&mut net, &ProtocolInput::from_seed(seed))
                .unwrap()
        };
        let mut net = StackBuilder::new(g.clone()).with_seed(seed).build();
        let depth = (g.num_nodes() as u64) - 1;
        let inv_beta = ((depth as f64).sqrt().round() as u64)
            .next_power_of_two()
            .max(4);
        let config = RecursiveBfsConfig {
            inv_beta,
            max_depth: 1,
            trivial_cutoff: inv_beta,
            seed,
            ..Default::default()
        };
        let direct = crate::diameter::two_approx_diameter(&mut net, &config);
        assert_eq!(report.outcome(), direct.estimate);
        assert_eq!(report.output.diameter_estimate(), Some(direct.estimate));
        assert_eq!(report.energy, net.energy_view());
        // Theorem 5.3 guarantee against the known grid diameter (14).
        let diam = 14u64;
        assert!(direct.estimate <= diam && 2 * direct.estimate >= diam);
    }

    #[test]
    fn diameter_three_halves_wrapper_matches_the_direct_call() {
        let g = generators::grid(6, 6);
        let seed = 13u64;
        let report = {
            let mut net = StackBuilder::new(g.clone()).with_seed(seed).build();
            registry()
                .get("diameter:three_halves_approx")
                .unwrap()
                .run(&mut net, &ProtocolInput::from_seed(seed))
                .unwrap()
        };
        let mut net = StackBuilder::new(g.clone()).with_seed(seed).build();
        let depth = (g.num_nodes() as u64) - 1;
        let inv_beta = ((depth as f64).sqrt().round() as u64)
            .next_power_of_two()
            .max(4);
        let config = RecursiveBfsConfig {
            inv_beta,
            max_depth: 1,
            trivial_cutoff: inv_beta,
            seed,
            ..Default::default()
        };
        let direct = crate::diameter::three_halves_approx_diameter(&mut net, &config, seed);
        assert_eq!(report.outcome(), direct.estimate);
        assert_eq!(report.energy, net.energy_view());
        match report.output {
            ProtocolOutput::Diameter { bfs_count, .. } => {
                assert_eq!(bfs_count, direct.bfs_count);
                assert!(bfs_count > 1, "hitting-set method runs many BFS");
            }
            other => panic!("expected diameter output, got {other:?}"),
        }
    }

    #[test]
    fn diameter_hyperball_estimates_the_path_diameter_exactly() {
        // Loss-free stack, path(32): ball-exact flooding makes the last
        // changing round the true diameter — no envelope slack needed.
        let g = generators::path(32);
        let mut net = StackBuilder::new(g).build();
        let report = registry()
            .get("diameter:hyperball:p=6")
            .unwrap()
            .run(&mut net, &ProtocolInput::from_seed(4))
            .unwrap();
        assert_eq!(report.outcome(), 31);
        match report.output {
            ProtocolOutput::Diameter { bfs_count, .. } => assert_eq!(bfs_count, 0),
            other => panic!("expected diameter output, got {other:?}"),
        }
    }

    #[test]
    fn zero_valued_knobs_are_rejected_not_reinterpreted() {
        // 0 is not a sentinel: depth=0 must not mean "unbounded", d=0 must
        // not clamp to 1, b=0 must not mean "derive from depth".
        let r = registry();
        for spec in [
            "trivial_bfs:depth=0",
            "trivial_bfs_cd:depth=0",
            "recursive:b=0",
            "recursive:d=0",
        ] {
            assert!(
                matches!(r.get(spec), Err(ProtocolError::InvalidSpec { .. })),
                "{spec} must be rejected"
            );
        }
    }

    #[test]
    fn registry_dispatch_matches_direct_trivial_bfs() {
        let g = generators::grid(6, 6);
        let report = {
            let mut net = StackBuilder::new(g.clone()).with_seed(3).build();
            registry()
                .get("trivial_bfs")
                .unwrap()
                .run(&mut net, &ProtocolInput::from_seed(3))
                .unwrap()
        };
        let mut net = StackBuilder::new(g.clone()).with_seed(3).build();
        let active = vec![true; g.num_nodes()];
        let direct = crate::baseline::trivial_bfs(&mut net, &[0], &active, g.num_nodes() as u64);
        assert_eq!(report.output.distances().unwrap(), &direct.dist[..]);
        assert_eq!(report.energy, net.energy_view());
        assert_eq!(report.outcome(), g.num_nodes() as u64);
    }

    #[test]
    fn restricted_active_set_matches_the_direct_call_and_none_is_full() {
        // The ProtocolInput::active satellite: a registry-dispatched run
        // with a restricted active set must equal the free function called
        // with the equivalent boolean mask — and `active: None` must stay
        // byte-for-byte the historical full-set behaviour.
        let g = generators::path(24);
        let proto = registry().get("trivial_bfs").unwrap();
        let prefix: Vec<usize> = (0..12).collect();
        let report = {
            let mut net = StackBuilder::new(g.clone()).with_seed(7).build();
            proto
                .run(
                    &mut net,
                    &ProtocolInput::from_seed(7).with_active(prefix.clone()),
                )
                .unwrap()
        };
        // Only the 12-vertex prefix participates: the wavefront stops at
        // the boundary.
        assert_eq!(report.outcome(), 12);
        let mut net = StackBuilder::new(g.clone()).with_seed(7).build();
        let mut mask = vec![false; g.num_nodes()];
        for &v in &prefix {
            mask[v] = true;
        }
        let direct = crate::baseline::trivial_bfs(&mut net, &[0], &mask, g.num_nodes() as u64);
        assert_eq!(report.output.distances().unwrap(), &direct.dist[..]);
        assert_eq!(report.energy, net.energy_view());
        // None == all vertices: identical to an explicit full set.
        let run_with = |input: &ProtocolInput| {
            let mut net = StackBuilder::new(g.clone()).with_seed(7).build();
            proto.run(&mut net, input).unwrap()
        };
        let implicit = run_with(&ProtocolInput::from_seed(7));
        let explicit =
            run_with(&ProtocolInput::from_seed(7).with_active((0..g.num_nodes()).collect()));
        assert_eq!(implicit.outcome(), explicit.outcome());
        assert_eq!(implicit.energy, explicit.energy);
        // Out-of-range vertices in the set are ignored, not a panic.
        let oob = ProtocolInput::from_seed(7).with_active(vec![0, 1, 2, 999]);
        assert_eq!(
            oob.active_mask(g.num_nodes())
                .iter()
                .filter(|&&b| b)
                .count(),
            3
        );
    }

    #[test]
    fn registry_dispatch_matches_direct_recursive_bfs() {
        let g = generators::path(96);
        let seed = 5u64;
        let report = {
            let mut net = StackBuilder::new(g.clone()).with_seed(seed).build();
            registry()
                .get("recursive")
                .unwrap()
                .run(&mut net, &ProtocolInput::from_seed(seed))
                .unwrap()
        };
        // The exact historical derivation the scenario runner used.
        let depth = 95u64;
        let inv_beta = ((depth as f64).sqrt().round() as u64)
            .next_power_of_two()
            .max(4);
        let config = RecursiveBfsConfig {
            inv_beta,
            max_depth: 1,
            trivial_cutoff: inv_beta,
            seed,
            ..Default::default()
        };
        let mut net = StackBuilder::new(g).with_seed(seed).build();
        let hierarchy = build_hierarchy(&mut net, &config);
        let direct = recursive_bfs_with_hierarchy(&mut net, &hierarchy, &[0], depth, &config, &[]);
        assert_eq!(report.output.distances().unwrap(), &direct.dist[..]);
        assert_eq!(report.energy, net.energy_view());
    }

    #[test]
    fn cd_protocol_rejects_stacks_without_cd_with_a_typed_error() {
        // The conformance contract: a `physical` stack lacking CD gets a
        // typed MissingCapability error — no panic, no Local-Broadcast.
        let g = generators::path(6);
        let proto = registry().get("trivial_bfs_cd").unwrap();
        for (label, mut stack) in [
            ("abstract", StackBuilder::new(g.clone()).build()),
            (
                "physical",
                StackBuilder::new(g.clone())
                    .physical(EnergyModel::Uniform)
                    .build(),
            ),
        ] {
            match proto.run(&mut stack, &ProtocolInput::default()) {
                Err(ProtocolError::MissingCapability {
                    protocol,
                    available,
                    ..
                }) => {
                    assert_eq!(protocol, "trivial_bfs_cd");
                    assert_eq!(available, label);
                }
                Ok(_) => panic!("{label}: ran without CD"),
                Err(e) => panic!("{label}: wrong error {e}"),
            }
            assert_eq!(stack.lb_time(), 0, "{label}: gate fired too late");
        }
        // And both CD-capable backends pass the gate.
        for mut stack in [
            StackBuilder::new(g.clone()).with_cd().build(),
            StackBuilder::new(g)
                .physical(EnergyModel::Uniform)
                .with_cd()
                .build(),
        ] {
            let report = proto.run(&mut stack, &ProtocolInput::default()).unwrap();
            assert_eq!(report.outcome(), 6);
        }
    }

    #[test]
    fn decay_bfs_protocol_labels_a_cycle_fully() {
        let g = generators::cycle(17);
        let mut net = StackBuilder::new(g).build();
        let report = registry()
            .get("decay_bfs")
            .unwrap()
            .run(&mut net, &ProtocolInput::default())
            .unwrap();
        assert_eq!(report.outcome(), 17);
        assert!(report.lb_calls() >= 8);
    }
}
