//! The recursive, sub-polynomial-energy BFS of Section 4 (Figure 2).
//!
//! Structure of the algorithm, mirrored by [`recursive_bfs_with_hierarchy`]:
//!
//! 1. **Initialize** — recursively compute BFS distances on the cluster
//!    graph `G*` up to radius `D* = Θ(wβD)`, translate them into per-cluster
//!    intervals `[L₀(C), U₀(C)]` (Lemma 4.1), and deactivate vertices whose
//!    clusters were not reached.
//! 2. **Advance the wavefront in `⌈βD⌉` stages** — stage `i` advances the
//!    frontier by `β⁻¹` hops using `β⁻¹` Local-Broadcast calls in which only
//!    the vertices of `X_i = {u : L_i(Cl(u)) ≤ β⁻¹}` participate; everyone
//!    else sleeps.
//! 3. **Refresh estimates** — after stage `i`, clusters whose lower bound is
//!    small enough (`Υ`) join a *Special Update*: a recursive BFS on `G*`
//!    from the clusters touching the new wavefront, to radius `Z[i+1]`
//!    (the ruler-like [`crate::zseq::ZSequence`]). Everyone else performs a
//!    free *Automatic Update*.
//!
//! The recursion on `G*` happens through
//! [`radio_protocols::VirtualClusterNet`], so all energy ultimately lands on
//! the physical devices of the original network — the accounting of
//! equation (3) and Theorem 4.1.

use radio_protocols::cast::{down_cast, up_cast};
use radio_protocols::{
    cluster_distributed, ClusterState, LbFrame, Msg, NodeSet, NodeSlots, RadioStack,
    VirtualClusterNet,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::baseline::trivial_bfs_with_frame;
use crate::config::RecursiveBfsConfig;
use crate::estimates::{DistanceEstimate, EstimateTracePoint, UpdateKind};
use crate::metrics::RecursionStats;
use crate::zseq::ZSequence;

/// The result of a recursive BFS run.
#[derive(Clone, Debug)]
pub struct BfsOutcome {
    /// `dist[v] = Some(d)` if vertex `v` settled at distance `d ≤ D`,
    /// `None` if `v` is farther than the depth bound (or unreachable).
    pub dist: Vec<Option<u64>>,
    /// Claim 1/2 statistics and Figure 3 traces for the top level.
    pub stats: RecursionStats,
}

/// Builds the hierarchy of cluster graphs `G, G*, G**, …` used by the
/// recursion: `hierarchy[0]` clusters the given network, `hierarchy[1]`
/// clusters the resulting cluster graph, and so on, for at most
/// `config.max_depth` levels (stopping early when a level has ≤ 4 nodes).
///
/// The paper computes each level's clustering once and reuses it across all
/// recursive calls on that level; callers should likewise build the
/// hierarchy once and amortize its energy across BFS queries.
pub fn build_hierarchy(net: &mut dyn RadioStack, config: &RecursiveBfsConfig) -> Vec<ClusterState> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
    build_hierarchy_inner(net, config.max_depth, config, &mut rng)
}

fn build_hierarchy_inner(
    net: &mut dyn RadioStack,
    levels: usize,
    config: &RecursiveBfsConfig,
    rng: &mut ChaCha8Rng,
) -> Vec<ClusterState> {
    if levels == 0 || net.num_nodes() <= 4 {
        return Vec::new();
    }
    let state = cluster_distributed(net, &config.clustering(), rng);
    let deeper = {
        let mut virt = VirtualClusterNet::new(net, &state);
        build_hierarchy_inner(&mut virt, levels - 1, config, rng)
    };
    let mut out = Vec::with_capacity(deeper.len() + 1);
    out.push(state);
    out.extend(deeper);
    out
}

/// Runs the full algorithm: builds the cluster hierarchy and then performs
/// one BFS from `source` up to distance `depth_bound`.
pub fn recursive_bfs(
    net: &mut dyn RadioStack,
    source: usize,
    depth_bound: u64,
    config: &RecursiveBfsConfig,
) -> BfsOutcome {
    let hierarchy = build_hierarchy(net, config);
    recursive_bfs_with_hierarchy(net, &hierarchy, &[source], depth_bound, config, &[])
}

/// Runs the full algorithm with the doubling trick of Theorem 4.1: distance
/// thresholds `D₀ = 2, 4, 8, …` are tried until every vertex reachable from
/// the source is labelled (or the threshold exceeds `2n`).
pub fn recursive_bfs_full(
    net: &mut dyn RadioStack,
    source: usize,
    config: &RecursiveBfsConfig,
) -> BfsOutcome {
    let hierarchy = build_hierarchy(net, config);
    let n = net.num_nodes() as u64;
    let mut bound = (2 * config.inv_beta).max(2);
    loop {
        let outcome = recursive_bfs_with_hierarchy(net, &hierarchy, &[source], bound, config, &[]);
        let unlabeled = outcome.dist.iter().filter(|d| d.is_none()).count();
        if unlabeled == 0 || bound >= 2 * n.max(1) {
            return outcome;
        }
        bound *= 2;
    }
}

/// Runs one BFS query on a pre-built hierarchy.
///
/// * `sources` — the source set `S` (all labelled 0).
/// * `depth_bound` — the threshold `D`: vertices farther than this are left
///   unlabelled.
/// * `trace_clusters` — top-level cluster indices whose estimate evolution
///   should be recorded (Figure 3 / experiment E8).
pub fn recursive_bfs_with_hierarchy(
    net: &mut dyn RadioStack,
    hierarchy: &[ClusterState],
    sources: &[usize],
    depth_bound: u64,
    config: &RecursiveBfsConfig,
    trace_clusters: &[usize],
) -> BfsOutcome {
    let n = net.num_nodes();
    let mut stats = RecursionStats {
        wavefront_memberships: vec![0; n],
        special_update_memberships: vec![0; hierarchy.first().map_or(0, |s| s.num_clusters())],
        recursive_calls_by_depth: vec![0; config.max_depth + 1],
        stages: 0,
        estimate_traces: trace_clusters.iter().map(|&c| (c, Vec::new())).collect(),
    };
    let mut active = vec![true; n];
    let sources: Vec<usize> = sources.to_vec();
    let w = config.w(net.global_n());
    let dist = recurse(
        net,
        hierarchy,
        &sources,
        &mut active,
        depth_bound,
        0,
        w,
        config,
        &mut stats,
    );
    BfsOutcome { dist, stats }
}

/// One level of the recursion (Figure 2). Returns the distance labelling of
/// the network it was called on, restricted to its active set and depth.
#[allow(clippy::too_many_arguments)]
fn recurse(
    net: &mut dyn RadioStack,
    hierarchy: &[ClusterState],
    sources: &[usize],
    active: &mut [bool],
    depth: u64,
    level: usize,
    w: f64,
    config: &RecursiveBfsConfig,
    stats: &mut RecursionStats,
) -> Vec<Option<u64>> {
    let n = net.num_nodes();
    let active_count = active.iter().filter(|&&a| a).count();
    // One frame per recursion level, reused by every Local-Broadcast this
    // level issues (wavefront advances, casts, and the base case).
    let mut frame = net.new_frame();

    // Base case: no further cluster level, or the remaining radius is small
    // enough that the trivial wavefront is at least as cheap.
    if hierarchy.is_empty() || depth <= config.trivial_cutoff || active_count <= 4 {
        let srcs: Vec<usize> = sources.iter().copied().filter(|&s| active[s]).collect();
        return trivial_bfs_with_frame(net, &srcs, active, depth, &mut frame).dist;
    }

    let state = &hierarchy[0];
    let rest = &hierarchy[1..];
    let beta = config.beta();
    let inv_beta = config.inv_beta;
    let trace_top = level == 0;

    // ---- Step 1: initialize distance estimates via a recursive BFS on G*.
    let zseq = ZSequence::for_depth(w, beta, depth);
    let d_star = zseq.d_star;

    let cluster_is_active: Vec<bool> = cluster_activity(state, active);
    let cluster_sources: Vec<usize> = source_clusters(state, sources, active);

    // The sources tell their cluster centers that they are sources (an
    // up-cast), and the result of the recursive call is disseminated back to
    // the members (a down-cast); both are charged below around the call.
    charge_source_upcast(net, state, sources, active, &cluster_is_active, &mut frame);

    let cluster_dist0 = {
        let mut cluster_active = cluster_is_active.clone();
        let mut virt = VirtualClusterNet::new(net, state);
        stats.recursive_calls_by_depth[level] += 1;
        recurse(
            &mut virt,
            rest,
            &cluster_sources,
            &mut cluster_active,
            d_star,
            level + 1,
            w,
            config,
            stats,
        )
    };
    charge_result_downcast(net, state, &cluster_is_active, &cluster_dist0, &mut frame);

    // Per-cluster distance estimates, stored columnar (indexed by cluster).
    let mut estimates: Vec<Option<DistanceEstimate>> = vec![None; state.num_clusters()];
    for (c, &is_active) in cluster_is_active.iter().enumerate() {
        if is_active {
            estimates[c] = Some(DistanceEstimate::initialize(cluster_dist0[c], beta, w));
        }
    }
    record_traces(stats, &estimates, 0, UpdateKind::Initialize, trace_top);

    // ---- Step 2: deactivate vertices whose cluster is beyond the horizon.
    for (v, is_active) in active.iter_mut().enumerate() {
        if *is_active {
            let keep = estimates[state.cluster_of[v]]
                .map(|e| !e.is_unreachable())
                .unwrap_or(false);
            if !keep {
                *is_active = false;
            }
        }
    }

    // ---- Step 3: the main wavefront loop.
    let mut dist: Vec<Option<u64>> = vec![None; n];
    for &s in sources {
        if active[s] {
            dist[s] = Some(0);
        }
    }
    let num_stages = depth.div_ceil(inv_beta);

    for i in 0..num_stages {
        if trace_top {
            stats.stages = i + 1;
        }
        // Step 4: the participation set X_i.
        let joins: Vec<bool> = (0..n)
            .map(|v| {
                active[v]
                    && estimates[state.cluster_of[v]]
                        .map(|e| e.joins_wavefront(beta))
                        .unwrap_or(false)
            })
            .collect();
        if trace_top {
            for (v, &joined) in joins.iter().enumerate() {
                if joined {
                    stats.wavefront_memberships[v] += 1;
                }
            }
        }

        // Step 5: advance the wavefront β⁻¹ hops, reusing this level's
        // frame for every hop.
        for t in 0..inv_beta {
            let frontier_value = i * inv_beta + t;
            frame.clear();
            for v in 0..n {
                if active[v] && dist[v] == Some(frontier_value) {
                    frame.add_sender(v, Msg::words(&[frontier_value]));
                } else if joins[v] && dist[v].is_none() {
                    frame.add_receiver(v);
                }
            }
            if frame.receivers().is_empty() {
                break;
            }
            net.local_broadcast(&mut frame);
            for (v, m) in frame.delivered().iter() {
                if dist[v].is_none() {
                    dist[v] = Some(m.word(0) + 1);
                }
            }
        }

        // Step 6: deactivate settled vertices strictly inside the new
        // wavefront.
        let boundary = (i + 1) * inv_beta;
        for v in 0..n {
            if active[v] && dist[v].is_some_and(|d| d < boundary) {
                active[v] = false;
            }
        }

        if i + 1 == num_stages {
            break;
        }

        // The new wavefront W_{i+1}.
        let wavefront: Vec<usize> = (0..n)
            .filter(|&v| active[v] && dist[v] == Some(boundary))
            .collect();
        if wavefront.is_empty() {
            // The search has exhausted everything reachable within the
            // remaining radius; further stages cannot settle anyone.
            break;
        }
        if active.iter().filter(|&&a| a).count() == wavefront.len() {
            // Only the frontier itself is left; nothing beyond it to settle.
            break;
        }

        // Step 7: Special Update for clusters that might soon be relevant.
        let z_next = zseq.z(i + 1);
        let cluster_is_active_now = cluster_activity(state, active);
        let mut upsilon = NodeSet::new(state.num_clusters());
        for (c, e) in estimates.iter().enumerate() {
            if let Some(e) = e {
                if cluster_is_active_now[c] && e.joins_special_update(z_next, beta) {
                    upsilon.insert(c);
                }
            }
        }
        let mut wavefront_clusters = NodeSet::new(state.num_clusters());
        for &v in &wavefront {
            wavefront_clusters.insert(state.cluster_of[v]);
        }
        upsilon.extend(wavefront_clusters.iter());
        if trace_top {
            for c in upsilon.iter() {
                stats.special_update_memberships[c] += 1;
            }
        }

        // The wavefront vertices inform their cluster centers (an up-cast),
        // the recursive BFS runs on the induced subgraph of G*, and the new
        // distances come back down (a down-cast).
        charge_wavefront_upcast(net, state, &wavefront, &upsilon, &mut frame);
        let upsilon_active: Vec<bool> = (0..state.num_clusters())
            .map(|c| upsilon.contains(c))
            .collect();
        let wavefront_cluster_sources: Vec<usize> = wavefront_clusters.iter().collect();
        let cluster_dist_i = {
            let mut cluster_active = upsilon_active.clone();
            let mut virt = VirtualClusterNet::new(net, state);
            stats.recursive_calls_by_depth[level] += 1;
            recurse(
                &mut virt,
                rest,
                &wavefront_cluster_sources,
                &mut cluster_active,
                z_next,
                level + 1,
                w,
                config,
                stats,
            )
        };
        charge_result_downcast(net, state, &upsilon_active, &cluster_dist_i, &mut frame);

        // Step 7 (update) and Step 8 (automatic update).
        let mut next_estimates: Vec<Option<DistanceEstimate>> = vec![None; state.num_clusters()];
        for (c, est) in estimates.iter().enumerate() {
            let Some(est) = est else { continue };
            if !cluster_is_active_now[c] {
                continue;
            }
            let updated = if upsilon.contains(c) {
                est.special(cluster_dist_i[c], z_next, beta, w)
            } else {
                est.automatic(beta)
            };
            next_estimates[c] = Some(updated);
        }
        record_traces_split(stats, &next_estimates, &upsilon, i + 1, trace_top);
        estimates = next_estimates;
    }

    // Output: settled distances within the depth bound, for vertices that
    // were active when the call began.
    for d in dist.iter_mut() {
        if d.is_some_and(|x| x > depth) {
            *d = None;
        }
    }
    dist
}

/// Which clusters contain at least one active vertex.
fn cluster_activity(state: &ClusterState, active: &[bool]) -> Vec<bool> {
    let mut out = vec![false; state.num_clusters()];
    for (v, &a) in active.iter().enumerate() {
        if a {
            out[state.cluster_of[v]] = true;
        }
    }
    out
}

/// The clusters containing at least one active source, in ascending order
/// (deterministic by construction via the dense cluster set).
fn source_clusters(state: &ClusterState, sources: &[usize], active: &[bool]) -> Vec<usize> {
    let mut set = NodeSet::new(state.num_clusters());
    for &s in sources {
        if active[s] {
            set.insert(state.cluster_of[s]);
        }
    }
    set.iter().collect()
}

/// Charges the up-cast by which sources announce themselves to their cluster
/// centers before the initial recursive call.
fn charge_source_upcast(
    net: &mut dyn RadioStack,
    state: &ClusterState,
    sources: &[usize],
    active: &[bool],
    cluster_is_active: &[bool],
    frame: &mut LbFrame,
) {
    let mut holders: NodeSlots<Msg> = NodeSlots::new(state.num_nodes());
    for &s in sources {
        if active[s] {
            holders.insert(s, Msg::words(&[1]));
        }
    }
    if holders.is_empty() {
        return;
    }
    let mut participating = NodeSet::new(state.num_clusters());
    for (s, _) in holders.iter() {
        let c = state.cluster_of[s];
        if cluster_is_active[c] {
            participating.insert(c);
        }
    }
    let _ = up_cast(net, state, &participating, &holders, frame);
}

/// Charges the up-cast by which the new wavefront vertices announce their
/// clusters as sources of the Special Update's recursive call.
fn charge_wavefront_upcast(
    net: &mut dyn RadioStack,
    state: &ClusterState,
    wavefront: &[usize],
    upsilon: &NodeSet,
    frame: &mut LbFrame,
) {
    if wavefront.is_empty() {
        return;
    }
    let mut holders: NodeSlots<Msg> = NodeSlots::new(state.num_nodes());
    let mut participating = NodeSet::new(state.num_clusters());
    for &v in wavefront {
        holders.insert(v, Msg::words(&[1]));
        let c = state.cluster_of[v];
        if upsilon.contains(c) {
            participating.insert(c);
        }
    }
    let _ = up_cast(net, state, &participating, &holders, frame);
}

/// Charges the down-cast by which cluster centers disseminate the outcome of
/// a recursive call (the new `L`/`U` inputs) to their members.
fn charge_result_downcast(
    net: &mut dyn RadioStack,
    state: &ClusterState,
    participating: &[bool],
    cluster_dist: &[Option<u64>],
    frame: &mut LbFrame,
) {
    let mut messages: NodeSlots<Msg> = NodeSlots::new(state.num_clusters());
    for (c, &p) in participating.iter().enumerate() {
        if p {
            let encoded = cluster_dist[c].map(|d| d + 1).unwrap_or(0);
            messages.insert(c, Msg::words(&[encoded]));
        }
    }
    if messages.is_empty() {
        return;
    }
    let _ = down_cast(net, state, &messages, frame);
}

fn record_traces(
    stats: &mut RecursionStats,
    estimates: &[Option<DistanceEstimate>],
    stage: u64,
    kind: UpdateKind,
    trace_top: bool,
) {
    if !trace_top {
        return;
    }
    for (c, points) in stats.estimate_traces.iter_mut() {
        if let Some(e) = estimates.get(*c).copied().flatten() {
            points.push(EstimateTracePoint {
                stage,
                kind,
                lower: e.lower,
                upper: e.upper,
                true_distance: None,
            });
        }
    }
}

fn record_traces_split(
    stats: &mut RecursionStats,
    estimates: &[Option<DistanceEstimate>],
    upsilon: &NodeSet,
    stage: u64,
    trace_top: bool,
) {
    if !trace_top {
        return;
    }
    for (c, points) in stats.estimate_traces.iter_mut() {
        if let Some(e) = estimates.get(*c).copied().flatten() {
            let kind = if upsilon.contains(*c) {
                UpdateKind::Special
            } else {
                UpdateKind::Automatic
            };
            points.push(EstimateTracePoint {
                stage,
                kind,
                lower: e.lower,
                upper: e.upper,
                true_distance: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::trivial_bfs;
    use radio_graph::bfs::bfs_distances;
    use radio_graph::{generators, INFINITY};
    use radio_protocols::StackBuilder;

    fn verify_against_reference(
        g: &radio_graph::Graph,
        outcome: &BfsOutcome,
        source: usize,
        depth: u64,
    ) {
        let truth = bfs_distances(g, source);
        for v in g.nodes() {
            match outcome.dist[v] {
                Some(d) => {
                    assert_eq!(
                        d, truth[v] as u64,
                        "vertex {v} labelled {d}, truth {}",
                        truth[v]
                    )
                }
                None => assert!(
                    truth[v] == INFINITY || truth[v] as u64 > depth,
                    "vertex {v} (true distance {}) missing a label within depth {depth}",
                    truth[v]
                ),
            }
        }
    }

    #[test]
    fn matches_reference_on_a_path_one_level() {
        let g = generators::path(120);
        let mut net = StackBuilder::new(g.clone()).build();
        let config = RecursiveBfsConfig {
            inv_beta: 8,
            max_depth: 1,
            trivial_cutoff: 8,
            ..Default::default()
        };
        let outcome = recursive_bfs(&mut net, 0, 119, &config);
        verify_against_reference(&g, &outcome, 0, 119);
    }

    #[test]
    fn matches_reference_on_a_grid() {
        let g = generators::grid(12, 12);
        let mut net = StackBuilder::new(g.clone()).build();
        let config = RecursiveBfsConfig {
            inv_beta: 4,
            max_depth: 1,
            trivial_cutoff: 4,
            seed: 3,
            ..Default::default()
        };
        let outcome = recursive_bfs(&mut net, 5, 30, &config);
        verify_against_reference(&g, &outcome, 5, 30);
    }

    #[test]
    fn respects_depth_bound() {
        let g = generators::path(100);
        let mut net = StackBuilder::new(g.clone()).build();
        let config = RecursiveBfsConfig {
            inv_beta: 4,
            max_depth: 1,
            trivial_cutoff: 4,
            seed: 1,
            ..Default::default()
        };
        let outcome = recursive_bfs(&mut net, 0, 40, &config);
        for v in 0..=40usize {
            assert_eq!(outcome.dist[v], Some(v as u64), "vertex {v}");
        }
        for v in 60..100usize {
            assert_eq!(outcome.dist[v], None, "vertex {v} beyond the bound");
        }
    }

    #[test]
    fn two_level_recursion_matches_reference() {
        let g = generators::path(200);
        let mut net = StackBuilder::new(g.clone()).build();
        let config = RecursiveBfsConfig {
            inv_beta: 4,
            max_depth: 2,
            trivial_cutoff: 4,
            seed: 7,
            ..Default::default()
        };
        let outcome = recursive_bfs(&mut net, 0, 199, &config);
        verify_against_reference(&g, &outcome, 0, 199);
        // The second level must actually have been used.
        assert!(outcome.stats.recursive_calls_by_depth.len() >= 2);
    }

    #[test]
    fn multi_source_and_restricted_active_set() {
        let g = generators::grid(10, 10);
        let mut net = StackBuilder::new(g.clone()).build();
        let config = RecursiveBfsConfig {
            inv_beta: 4,
            max_depth: 1,
            trivial_cutoff: 4,
            seed: 5,
            ..Default::default()
        };
        let hierarchy = build_hierarchy(&mut net, &config);
        let outcome =
            recursive_bfs_with_hierarchy(&mut net, &hierarchy, &[0, 99], 25, &config, &[]);
        let truth = radio_graph::bfs::multi_source_bfs(&g, &[0, 99]);
        for v in g.nodes() {
            if let Some(d) = outcome.dist[v] {
                assert_eq!(d, truth[v] as u64, "vertex {v}");
            }
        }
        // Every vertex within the bound is labelled.
        for v in g.nodes() {
            if (truth[v] as u64) <= 25 {
                assert!(outcome.dist[v].is_some(), "vertex {v} should be labelled");
            }
        }
    }

    #[test]
    fn disconnected_component_stays_unlabelled() {
        let mut edges: Vec<(usize, usize)> = (0..49).map(|i| (i, i + 1)).collect();
        edges.push((60, 61));
        let g = radio_graph::Graph::from_edges(70, &edges);
        let mut net = StackBuilder::new(g.clone()).build();
        let config = RecursiveBfsConfig {
            inv_beta: 4,
            max_depth: 1,
            trivial_cutoff: 4,
            seed: 11,
            ..Default::default()
        };
        let outcome = recursive_bfs(&mut net, 0, 69, &config);
        assert_eq!(outcome.dist[49], Some(49));
        assert_eq!(outcome.dist[60], None);
        assert_eq!(outcome.dist[61], None);
    }

    #[test]
    fn recursive_bfs_full_labels_everything_reachable() {
        let g = generators::grid(9, 11);
        let mut net = StackBuilder::new(g.clone()).build();
        let config = RecursiveBfsConfig {
            inv_beta: 4,
            max_depth: 1,
            trivial_cutoff: 4,
            seed: 13,
            ..Default::default()
        };
        let outcome = recursive_bfs_full(&mut net, 0, &config);
        let truth = bfs_distances(&g, 0);
        for v in g.nodes() {
            assert_eq!(outcome.dist[v], Some(truth[v] as u64), "vertex {v}");
        }
    }

    #[test]
    fn query_energy_grows_sublinearly_in_depth() {
        // The heart of Theorem 4.1: per-vertex energy of one BFS query grows
        // sublinearly in D once β is tuned to D (the paper sets
        // β = 2^{−√(log D log log n)}), while the always-on baseline is
        // exactly linear in D. At simulator scale the absolute constants of
        // the recursive algorithm are large, but the *growth rate* is the
        // reproducible shape: quadrupling D should far less than quadruple
        // the query energy.
        let measure = |n: usize, inv_beta: u64| -> (u64, u64) {
            let g = generators::path(n);
            let depth = (n - 1) as u64;
            let config = RecursiveBfsConfig {
                inv_beta,
                max_depth: 1,
                trivial_cutoff: inv_beta,
                seed: 17,
                ..Default::default()
            };
            let mut net = StackBuilder::new(g.clone()).build();
            let hierarchy = build_hierarchy(&mut net, &config);
            let setup = crate::metrics::EnergySummary::of(&net);
            let outcome =
                recursive_bfs_with_hierarchy(&mut net, &hierarchy, &[0], depth, &config, &[]);
            verify_against_reference(&g, &outcome, 0, depth);
            let query = crate::metrics::EnergySummary::of(&net).since(&setup);

            let mut baseline_net = StackBuilder::new(g.clone()).build();
            let active = vec![true; n];
            let _ = trivial_bfs(&mut baseline_net, &[0], &active, depth);
            (query.max_lb_energy, baseline_net.max_lb_energy())
        };

        // β⁻¹ scales like √D, as the paper prescribes (up to constants).
        let (rec_small, base_small) = measure(160, 8);
        let (rec_large, base_large) = measure(640, 16);
        assert_eq!(base_small, 159);
        assert_eq!(base_large, 639);
        let baseline_ratio = base_large as f64 / base_small as f64; // ≈ 4
        let recursive_ratio = rec_large as f64 / rec_small as f64;
        assert!(
            recursive_ratio < 0.75 * baseline_ratio,
            "recursive energy grew by {recursive_ratio:.2}x when D grew by {baseline_ratio:.2}x \
             (small: {rec_small}, large: {rec_large})"
        );
    }

    #[test]
    fn claim_1_wavefront_memberships_do_not_scale_with_depth() {
        // Claim 1: each vertex joins X_i for Õ(1) stages. The meaningful
        // empirical check is that the count does not grow with D (the number
        // of stages does).
        let measure = |n: usize| -> (u64, u64) {
            let g = generators::path(n);
            let mut net = StackBuilder::new(g.clone()).build();
            let config = RecursiveBfsConfig {
                inv_beta: 8,
                max_depth: 1,
                trivial_cutoff: 8,
                seed: 19,
                ..Default::default()
            };
            let outcome = recursive_bfs(&mut net, 0, (n - 1) as u64, &config);
            verify_against_reference(&g, &outcome, 0, (n - 1) as u64);
            (
                outcome.stats.max_wavefront_memberships(),
                outcome.stats.stages,
            )
        };
        let (members_small, stages_small) = measure(200);
        let (members_large, stages_large) = measure(600);
        assert!(stages_large >= 3 * stages_small - 2);
        assert!(
            members_large <= 2 * members_small.max(1),
            "X_i memberships grew from {members_small} to {members_large} while stages grew \
             from {stages_small} to {stages_large}"
        );
        // And on the longer instance the memberships are well below the
        // stage count (vertices sleep through most stages).
        assert!(
            2 * members_large < stages_large,
            "memberships {members_large} not small relative to {stages_large} stages"
        );
    }

    #[test]
    fn estimate_traces_are_recorded_and_monotone_in_upper_bound() {
        let g = generators::path(300);
        let mut net = StackBuilder::new(g.clone()).build();
        let config = RecursiveBfsConfig {
            inv_beta: 8,
            max_depth: 1,
            trivial_cutoff: 8,
            seed: 23,
            ..Default::default()
        };
        let hierarchy = build_hierarchy(&mut net, &config);
        if hierarchy.is_empty() {
            return;
        }
        let traced = hierarchy[0].cluster_of[250];
        let outcome =
            recursive_bfs_with_hierarchy(&mut net, &hierarchy, &[0], 299, &config, &[traced]);
        let (_, points) = &outcome.stats.estimate_traces[0];
        assert!(points.len() >= 2, "expected a non-trivial trace");
        for pair in points.windows(2) {
            assert!(
                pair[1].upper <= pair[0].upper + 1e-6,
                "upper bound increased along the trace"
            );
        }
        assert_eq!(points[0].kind, UpdateKind::Initialize);
    }

    #[test]
    fn hierarchy_depth_respects_config_and_graph_size() {
        let g = generators::grid(8, 8);
        let mut net = StackBuilder::new(g).build();
        let config = RecursiveBfsConfig {
            inv_beta: 4,
            max_depth: 3,
            ..Default::default()
        };
        let hierarchy = build_hierarchy(&mut net, &config);
        assert!(hierarchy.len() <= 3);
        for window in hierarchy.windows(2) {
            assert_eq!(window[1].num_nodes(), window[0].num_clusters());
        }
    }
}
