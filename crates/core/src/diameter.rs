//! Energy-efficient diameter approximation (paper, Section 5.1).
//!
//! * [`two_approx_diameter`] — Theorem 5.3: elect a leader, BFS from it,
//!   Find-Maximum over the labels. The eccentricity of any vertex lies in
//!   `[diam/2, diam]`, so the returned estimate 2-approximates the diameter
//!   using one BFS worth of energy (`n^{o(1)}`).
//! * [`three_halves_approx_diameter`] — Theorem 5.4, following Holzer et
//!   al. / Roditty–Williams [19, 38]: sample a hitting set `S` of expected
//!   size `√n·log n`, BFS from every vertex of `S`, find the vertex `v*`
//!   farthest from `S`, BFS from the `√n` vertices closest to `v*`, and
//!   return the maximum BFS label seen. The estimate `D'` satisfies
//!   `⌊2·diam/3⌋ ≤ D' ≤ diam` w.h.p. and costs `n^{1/2+o(1)}` energy.
//!
//! Leader election is the designated-initiator substitution discussed in
//! DESIGN.md §4; its `Õ(1)` black-box cost is reported separately by the
//! experiment harness.

use radio_graph::Dist;
use radio_protocols::aggregate::{find_max, find_min};
use radio_protocols::leader::designated_leader;
use radio_protocols::{Msg, RadioStack};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::RecursiveBfsConfig;
use crate::metrics::EnergySummary;
use crate::recursive_bfs::{build_hierarchy, recursive_bfs_with_hierarchy};

/// The output of a diameter-approximation run.
#[derive(Clone, Debug, PartialEq)]
pub struct DiameterEstimate {
    /// The estimate `D'`.
    pub estimate: u64,
    /// The elected leader / designated initiator.
    pub leader: usize,
    /// Number of BFS computations performed.
    pub bfs_count: u64,
    /// Energy/time summary of the run (setup + queries).
    pub energy: EnergySummary,
    /// Energy/time spent building the cluster hierarchy (amortizable across
    /// queries), included in `energy`.
    pub setup_energy: EnergySummary,
}

fn labels_to_dists(dist: &[Option<u64>]) -> Vec<Dist> {
    dist.iter()
        .map(|d| d.map(|x| x as Dist).unwrap_or(radio_graph::INFINITY))
        .collect()
}

/// Runs one BFS (over the pre-built hierarchy) from `sources` with the
/// doubling trick so that every reachable vertex is labelled.
fn full_bfs(
    net: &mut dyn RadioStack,
    hierarchy: &[radio_protocols::ClusterState],
    sources: &[usize],
    config: &RecursiveBfsConfig,
) -> Vec<Option<u64>> {
    let n = net.num_nodes() as u64;
    let mut bound = (2 * config.inv_beta).max(2);
    loop {
        let outcome = recursive_bfs_with_hierarchy(net, hierarchy, sources, bound, config, &[]);
        let unlabeled = outcome.dist.iter().filter(|d| d.is_none()).count();
        if unlabeled == 0 || bound >= 2 * n.max(1) {
            return outcome.dist;
        }
        bound *= 2;
    }
}

/// Theorem 5.3: a 2-approximation of the diameter (`D' ∈ [diam/2, diam]`)
/// using one BFS plus one Find-Maximum.
pub fn two_approx_diameter(
    net: &mut dyn RadioStack,
    config: &RecursiveBfsConfig,
) -> DiameterEstimate {
    let leader = designated_leader(net).leader;
    let hierarchy = build_hierarchy(net, config);
    let setup_energy = EnergySummary::of(net);

    let labels = full_bfs(net, &hierarchy, &[leader], config);
    let label_dists = labels_to_dists(&labels);
    let n = net.num_nodes();
    // Find-Maximum over the BFS labels so that every device knows the
    // estimate (the centralized maximum is used as a cross-check).
    let keys: Vec<Option<u64>> = labels.to_vec();
    let msgs: Vec<Msg> = (0..n).map(|v| Msg::words(&[v as u64])).collect();
    let found = find_max(net, &label_dists, &keys, &msgs, n as u64 + 1);
    let estimate = found.map(|r| r.key).unwrap_or(0);

    DiameterEstimate {
        estimate,
        leader,
        bfs_count: 1,
        energy: EnergySummary::of(net),
        setup_energy,
    }
}

/// Theorem 5.4: a nearly-3/2 approximation (`⌊2·diam/3⌋ ≤ D' ≤ diam`
/// w.h.p.) using `Õ(√n)` BFS computations and aggregations.
pub fn three_halves_approx_diameter(
    net: &mut dyn RadioStack,
    config: &RecursiveBfsConfig,
    seed: u64,
) -> DiameterEstimate {
    let n = net.num_nodes();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let leader = designated_leader(net).leader;
    let hierarchy = build_hierarchy(net, config);
    let setup_energy = EnergySummary::of(net);
    let mut bfs_count = 0u64;

    // BFS from the leader: gives the aggregation tree and one eccentricity.
    let leader_labels = full_bfs(net, &hierarchy, &[leader], config);
    bfs_count += 1;
    let tree = labels_to_dists(&leader_labels);
    let mut best = max_finite(&leader_labels);

    // Sample S: each vertex joins independently with probability
    // min(1, log n / √n).
    let p = ((n.max(2) as f64).ln() / (n.max(2) as f64).sqrt()).min(1.0);
    let mut s_set: Vec<usize> = (0..n).filter(|_| rng.gen_bool(p)).collect();
    if s_set.is_empty() {
        s_set.push(leader);
    }

    // Everyone learns the members of S via |S| Find-Minimum iterations over
    // the leader's BFS tree (the paper's accounting for this phase).
    let _ = announce_set(net, &tree, &s_set, n);

    // dist(·, S) and the max label over the BFS from each s ∈ S.
    let mut dist_to_s: Vec<u64> = vec![u64::MAX; n];
    for &s in &s_set {
        let labels = full_bfs(net, &hierarchy, &[s], config);
        bfs_count += 1;
        best = best.max(max_finite(&labels));
        for v in 0..n {
            if let Some(d) = labels[v] {
                dist_to_s[v] = dist_to_s[v].min(d);
            }
        }
    }

    // v*: the vertex farthest from S (elected with one Find-Maximum).
    let keys: Vec<Option<u64>> = dist_to_s
        .iter()
        .map(|&d| if d == u64::MAX { None } else { Some(d) })
        .collect();
    let msgs: Vec<Msg> = (0..n).map(|v| Msg::words(&[v as u64])).collect();
    let v_star = find_max(net, &tree, &keys, &msgs, n as u64 + 1)
        .map(|r| r.message.word(0) as usize)
        .unwrap_or(leader);

    // BFS from v*; everyone learns its distance to v*.
    let star_labels = full_bfs(net, &hierarchy, &[v_star], config);
    bfs_count += 1;
    best = best.max(max_finite(&star_labels));

    // R: the √n vertices closest to v*, selected by √n Find-Minimum
    // iterations over (distance-to-v*, id).
    let r_size = ((n as f64).sqrt().ceil() as usize).min(n);
    let mut r_set: Vec<usize> = Vec::with_capacity(r_size);
    let mut excluded = vec![false; n];
    for _ in 0..r_size {
        let keys: Vec<Option<u64>> = (0..n)
            .map(|v| {
                if excluded[v] {
                    None
                } else {
                    star_labels[v].map(|d| d * (n as u64 + 1) + v as u64)
                }
            })
            .collect();
        let bound = (n as u64 + 1) * (n as u64 + 1);
        match find_min(net, &tree, &keys, &msgs, bound) {
            Some(result) => {
                let v = (result.key % (n as u64 + 1)) as usize;
                excluded[v] = true;
                r_set.push(v);
            }
            None => break,
        }
    }

    // BFS from every vertex of R.
    for &r in &r_set {
        let labels = full_bfs(net, &hierarchy, &[r], config);
        bfs_count += 1;
        best = best.max(max_finite(&labels));
    }

    // Final Find-Maximum so the whole network knows D' (the centralized
    // `best` is what we report).
    let keys: Vec<Option<u64>> = (0..n).map(|_| Some(best)).collect();
    let _ = find_max(net, &tree, &keys, &msgs, best + 2);

    DiameterEstimate {
        estimate: best,
        leader,
        bfs_count,
        energy: EnergySummary::of(net),
        setup_energy,
    }
}

/// Announces the members of `set` to the whole network, one Find-Minimum per
/// member, over the BFS tree `tree`. Returns the number of aggregation
/// rounds used.
fn announce_set(net: &mut dyn RadioStack, tree: &[Dist], set: &[usize], n: usize) -> u64 {
    let msgs: Vec<Msg> = (0..n).map(|v| Msg::words(&[v as u64])).collect();
    let mut announced = vec![false; n];
    let member: Vec<bool> = {
        let mut m = vec![false; n];
        for &v in set {
            m[v] = true;
        }
        m
    };
    let mut rounds = 0u64;
    loop {
        let keys: Vec<Option<u64>> = (0..n)
            .map(|v| {
                if member[v] && !announced[v] {
                    Some(v as u64)
                } else {
                    None
                }
            })
            .collect();
        match find_min(net, tree, &keys, &msgs, n as u64 + 1) {
            Some(result) => {
                announced[result.key as usize] = true;
                rounds += 1;
            }
            None => break,
        }
    }
    rounds
}

fn max_finite(dist: &[Option<u64>]) -> u64 {
    dist.iter().flatten().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::diameter::{exact_diameter, satisfies_theorem_5_4_bound};
    use radio_graph::generators;
    use radio_protocols::StackBuilder;

    fn config() -> RecursiveBfsConfig {
        RecursiveBfsConfig {
            inv_beta: 4,
            max_depth: 1,
            trivial_cutoff: 8,
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn two_approx_is_within_factor_two_on_families() {
        let graphs = vec![
            generators::path(60),
            generators::cycle(50),
            generators::grid(8, 8),
            generators::star(40),
            generators::caterpillar(20, 2),
        ];
        for g in graphs {
            let diam = exact_diameter(&g).unwrap() as u64;
            let mut net = StackBuilder::new(g.clone()).build();
            let est = two_approx_diameter(&mut net, &config());
            assert!(
                est.estimate <= diam,
                "estimate {} > diam {}",
                est.estimate,
                diam
            );
            assert!(
                2 * est.estimate >= diam,
                "estimate {} not a 2-approx of {} ({:?})",
                est.estimate,
                diam,
                g
            );
            assert_eq!(est.bfs_count, 1);
        }
    }

    #[test]
    fn two_approx_reports_setup_and_query_energy_separately() {
        let n = 200;
        let g = generators::path(n);
        let mut net = StackBuilder::new(g).build();
        let cfg = RecursiveBfsConfig {
            inv_beta: 16,
            max_depth: 1,
            trivial_cutoff: 16,
            seed: 2,
            ..Default::default()
        };
        let est = two_approx_diameter(&mut net, &cfg);
        assert!(est.estimate >= (n as u64 - 1) / 2);
        assert!(est.estimate < n as u64);
        // Setup (hierarchy construction) happened and is included in the
        // total, so the query delta is strictly smaller than the total.
        assert!(est.setup_energy.max_lb_energy > 0);
        assert!(est.setup_energy.max_lb_energy <= est.energy.max_lb_energy);
        let query = est.energy.since(&est.setup_energy);
        assert!(query.lb_time > 0);
    }

    #[test]
    fn three_halves_approx_meets_its_guarantee() {
        let graphs = vec![
            generators::path(40),
            generators::cycle(36),
            generators::grid(6, 7),
            generators::lollipop(8, 12),
            generators::barbell(6, 10),
        ];
        for g in graphs {
            let diam = exact_diameter(&g).unwrap();
            let mut net = StackBuilder::new(g.clone()).build();
            let est = three_halves_approx_diameter(&mut net, &config(), 42);
            assert!(
                satisfies_theorem_5_4_bound(diam, est.estimate as u32),
                "estimate {} violates the Theorem 5.4 bound for diameter {} on {:?}",
                est.estimate,
                diam,
                g
            );
        }
    }

    #[test]
    fn three_halves_uses_about_sqrt_n_bfs_computations() {
        let g = generators::grid(7, 7);
        let n = g.num_nodes();
        let mut net = StackBuilder::new(g).build();
        let est = three_halves_approx_diameter(&mut net, &config(), 7);
        let sqrt_n = (n as f64).sqrt();
        // |S| ≈ √n·log n plus √n from R plus 2: allow a wide but meaningful
        // band that rules out Θ(n) BFS computations.
        assert!(est.bfs_count as f64 >= sqrt_n);
        assert!(
            (est.bfs_count as f64) <= 4.0 * sqrt_n * (n as f64).ln(),
            "bfs_count {} too large",
            est.bfs_count
        );
    }

    #[test]
    fn three_halves_beats_factor_two_on_a_cycle() {
        // On an n-cycle the BFS eccentricity from any vertex equals the
        // diameter, so both estimators are exact; the point is that the
        // 3/2-approx also reaches it despite its more elaborate schedule.
        let g = generators::cycle(30);
        let diam = exact_diameter(&g).unwrap() as u64;
        let mut net = StackBuilder::new(g).build();
        let est = three_halves_approx_diameter(&mut net, &config(), 3);
        assert_eq!(est.estimate, diam);
    }

    #[test]
    fn announce_set_counts_every_member_once() {
        let g = generators::path(20);
        let tree: Vec<Dist> = radio_graph::bfs::bfs_distances(&g, 0);
        let mut net = StackBuilder::new(g).build();
        let rounds = announce_set(&mut net, &tree, &[3, 7, 15], 20);
        assert_eq!(rounds, 3);
    }
}
