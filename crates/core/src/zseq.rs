//! The `Z`-sequence guiding Special Updates (paper, Section 4.1).
//!
//! With `Y[i] = max{2^j : 2^j divides i}` (the ruler sequence), the paper
//! defines
//!
//! ```text
//! Z[0] = D*,     Z[i] = min{D*, α·Y[i]}  for i ≥ 1,     α = 4,
//! D*   = min{α·2^j : α·2^j ≥ wβD}.
//! ```
//!
//! `Z[i]` is the radius of the recursive BFS performed on the cluster graph
//! after stage `i`. Lemma 4.2's periodicity properties are what bound how
//! often any cluster participates in a Special Update (Claim 2), and are
//! verified exhaustively by the tests and experiment E9.

use serde::{Deserialize, Serialize};

/// The paper's constant α.
pub const ALPHA: u64 = 4;

/// `Y[i]`: the largest power of two dividing `i` (`i ≥ 1`).
pub fn ruler(i: u64) -> u64 {
    assert!(i >= 1, "Y[i] is defined for i ≥ 1");
    1u64 << i.trailing_zeros()
}

/// The `Z`-sequence for a given truncation value `D*`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZSequence {
    /// The truncation value `D*` (also `Z[0]`).
    pub d_star: u64,
}

impl ZSequence {
    /// Builds the sequence for a recursive call of depth `D` on a graph with
    /// `w = w_value` and rate β: `D* = min{α·2^j ≥ w·β·D}`.
    pub fn for_depth(w_value: f64, beta: f64, depth: u64) -> Self {
        let target = (w_value * beta * depth as f64).max(1.0);
        let mut d_star = ALPHA;
        while (d_star as f64) < target {
            d_star *= 2;
        }
        ZSequence { d_star }
    }

    /// Builds the sequence directly from `D*` (must be `α` times a power of
    /// two).
    pub fn from_d_star(d_star: u64) -> Self {
        assert!(d_star >= ALPHA, "D* must be at least α = {ALPHA}");
        assert!(
            (d_star / ALPHA).is_power_of_two() && d_star.is_multiple_of(ALPHA),
            "D* must be α times a power of two, got {d_star}"
        );
        ZSequence { d_star }
    }

    /// `Z[i]`.
    pub fn z(&self, i: u64) -> u64 {
        if i == 0 {
            self.d_star
        } else {
            self.d_star.min(ALPHA * ruler(i))
        }
    }

    /// The values the sequence can take: `{α, 2α, 4α, …, D*}`.
    pub fn value_set(&self) -> Vec<u64> {
        let mut v = Vec::new();
        let mut x = ALPHA;
        while x <= self.d_star {
            v.push(x);
            x *= 2;
        }
        v
    }

    /// Lemma 4.2(1): for `b ≥ α`, the smallest `j > i` with `Z[j] ≥ b`
    /// satisfies `j − i ≤ b/α`. If moreover `b` is in the value set and
    /// `b < Z[i]` (the regime in which Lemma 4.3 applies it), then
    /// `Z[j] = b` and `j − i = b/α` exactly.
    pub fn next_at_least(&self, i: u64, b: u64) -> u64 {
        assert!(b >= ALPHA);
        let mut j = i + 1;
        while self.z(j) < b.min(self.d_star) {
            j += 1;
        }
        j
    }

    /// Lemma 4.2(2): the smallest `j > i` such that `Z[j] > Z[i]` or
    /// `Z[j] = D*`.
    pub fn next_strictly_larger_or_max(&self, i: u64) -> u64 {
        let zi = self.z(i);
        let mut j = i + 1;
        while !(self.z(j) > zi || self.z(j) == self.d_star) {
            j += 1;
        }
        j
    }

    /// How many indices in `[1, horizon]` have `Z[i] ≥ b` (used by the time
    /// analysis of Theorem 4.1: each value `b` appears with period `b/α`).
    pub fn count_at_least(&self, horizon: u64, b: u64) -> u64 {
        (1..=horizon).filter(|&i| self.z(i) >= b).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ruler_matches_paper_prefix() {
        // Y = (1, 2, 1, 4, 1, 2, 1, 8, 1, 2, 1, 4, 1, 2, 1, 16, ...)
        let expected = [1u64, 2, 1, 4, 1, 2, 1, 8, 1, 2, 1, 4, 1, 2, 1, 16];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(ruler(i as u64 + 1), e, "Y[{}]", i + 1);
        }
    }

    #[test]
    fn z_sequence_truncates_at_d_star() {
        let z = ZSequence::from_d_star(16);
        assert_eq!(z.z(0), 16);
        let expected = [4u64, 8, 4, 16, 4, 8, 4, 16, 4, 8, 4, 16];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(z.z(i as u64 + 1), e, "Z[{}]", i + 1);
        }
    }

    #[test]
    fn for_depth_picks_smallest_valid_d_star() {
        // target = w·β·D
        let z = ZSequence::for_depth(10.0, 0.125, 100); // target 125 → D* = 128
        assert_eq!(z.d_star, 128);
        let z = ZSequence::for_depth(10.0, 0.125, 1); // target 1.25 → D* = α = 4
        assert_eq!(z.d_star, 4);
        let z = ZSequence::for_depth(4.0, 0.25, 4); // target 4 → D* = 4
        assert_eq!(z.d_star, 4);
    }

    #[test]
    #[should_panic]
    fn from_d_star_rejects_non_power_multiples() {
        let _ = ZSequence::from_d_star(12);
    }

    #[test]
    fn lemma_4_2_part_1_exhaustive() {
        let z = ZSequence::from_d_star(64);
        for i in 0..200u64 {
            for &b in &z.value_set() {
                let j = z.next_at_least(i, b);
                assert!(j - i <= b / ALPHA, "i={i}, b={b}, j={j}");
                if b < z.z(i) {
                    // Second half of the lemma, in the regime Lemma 4.3
                    // invokes it (b strictly below Z[i]): Z[j] = b and
                    // j − i = Z[j]/α.
                    assert_eq!(z.z(j), b, "i={i}, b={b}, j={j}");
                    assert_eq!(j - i, z.z(j) / ALPHA, "i={i}, b={b}, j={j}");
                }
            }
        }
    }

    #[test]
    fn lemma_4_2_part_2_exhaustive() {
        let z = ZSequence::from_d_star(64);
        for i in 1..200u64 {
            let j = z.next_strictly_larger_or_max(i);
            assert_eq!(j - i, z.z(i) / ALPHA, "i={i}, j={j}, Z[i]={}", z.z(i));
            for k in i + 1..j {
                assert!(z.z(k) <= z.z(i) / 2, "i={i}, k={k}");
            }
        }
    }

    #[test]
    fn values_at_least_b_appear_with_period_b_over_alpha() {
        let z = ZSequence::from_d_star(128);
        let horizon = 1024;
        for &b in &z.value_set() {
            let count = z.count_at_least(horizon, b);
            let period = b / ALPHA;
            let expected = horizon / period;
            assert!(
                count >= expected.saturating_sub(1) && count <= expected + 1,
                "b={b}: count {count}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn value_set_is_doubling() {
        let z = ZSequence::from_d_star(32);
        assert_eq!(z.value_set(), vec![4, 8, 16, 32]);
    }
}
