//! The primary contribution of *The Energy Complexity of BFS in Radio
//! Networks* (Chang, Dani, Hayes, Pettie; PODC 2020), implemented on top of
//! the `radio-graph` / `radio-sim` / `radio-protocols` substrates:
//!
//! * [`zseq`] — the `Z`-sequence that schedules Special Updates (Section
//!   4.1) and its Lemma 4.2 properties.
//! * [`estimates`] — the per-cluster distance-estimate intervals
//!   `[L_i(C), U_i(C)]` and their Automatic / Special updates (Invariant
//!   4.1).
//! * [`recursive_bfs`](mod@recursive_bfs) — the recursive, sub-polynomial-energy BFS of
//!   Section 4 (Figure 2), together with the cluster-hierarchy construction
//!   it recurses through.
//! * [`baseline`] — the trivial wavefront BFS and the Decay-style
//!   everyone-listens BFS used as baselines.
//! * [`diameter`] — the energy-efficient diameter approximations of
//!   Section 5.1 (Theorems 5.3 and 5.4).
//! * [`hardness`] — executable versions of the lower-bound arguments of
//!   Section 5 (Theorems 5.1 and 5.2): hard-instance generators, the
//!   good-slot / `X_bad` counting, and the set-disjointness communication
//!   ledger.
//! * [`metrics`] — energy summaries and the per-stage statistics behind
//!   Claims 1 and 2 and Figure 3.
//! * [`protocol`](mod@protocol) — the BFS drivers wrapped as first-class
//!   [`radio_protocols::Protocol`]s and the full [`registry`] resolving
//!   specs like `trivial_bfs`, `decay_bfs`, `recursive:b=8`, or
//!   `clustering:b=4` into runnable protocols.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod diameter;
pub mod estimates;
pub mod hardness;
pub mod metrics;
pub mod protocol;
pub mod recursive_bfs;
pub mod zseq;

pub use config::RecursiveBfsConfig;
pub use metrics::{EnergySummary, RecursionStats};
pub use protocol::{registry, DecayBfsProtocol, RecursiveBfsProtocol, TrivialBfsProtocol};
pub use recursive_bfs::{build_hierarchy, recursive_bfs, recursive_bfs_with_hierarchy, BfsOutcome};
pub use zseq::ZSequence;
