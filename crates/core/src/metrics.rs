//! Energy summaries and per-stage statistics.
//!
//! The experiments need three kinds of numbers:
//!
//! * **Energy/time summaries** of a network after running an algorithm, in
//!   Local-Broadcast units (and physical slots when the physical backend is
//!   used) — [`EnergySummary`].
//! * **Claim 1 / Claim 2 statistics**: how many stages each vertex joined
//!   the wavefront set `X_i`, and how many Special Updates each cluster
//!   participated in — [`RecursionStats`].
//! * **Figure 3 traces**: the evolution of `[L_i(C), U_i(C)]` for chosen
//!   clusters — also in [`RecursionStats`].

use radio_protocols::{EnergyView, RadioStack};
use serde::{Deserialize, Serialize};

use crate::estimates::EstimateTracePoint;

/// A serializable digest of a stack's energy/time counters.
///
/// Built from the unified [`EnergyView`] snapshot, so a single `of` call
/// covers every backend: the physical fields are populated exactly when the
/// stack's capabilities include slot-level counters (there is no separate
/// `of_physical` path anymore).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergySummary {
    /// Number of nodes.
    pub nodes: usize,
    /// Maximum per-node energy in Local-Broadcast units.
    pub max_lb_energy: u64,
    /// Mean per-node energy in Local-Broadcast units.
    pub mean_lb_energy: f64,
    /// Total Local-Broadcast calls (time in LB units).
    pub lb_time: u64,
    /// Maximum per-node physical energy (model-weighted slots), when the
    /// stack is physically capable.
    pub max_physical_energy: Option<u64>,
    /// Elapsed physical slots, when the stack is physically capable.
    pub physical_slots: Option<u64>,
}

impl EnergySummary {
    /// Summarizes any [`RadioStack`] — LB units always, slot-level counters
    /// whenever the stack has them.
    pub fn of(net: &dyn RadioStack) -> Self {
        Self::of_view(&net.energy_view())
    }

    /// Digests a [`radio_protocols::ProtocolReport`]: the summary of
    /// exactly that run's energy (the report carries the view *diff*), so
    /// registry-dispatched workloads drop into every table the free
    /// functions used to feed.
    pub fn of_report(report: &radio_protocols::ProtocolReport) -> Self {
        Self::of_view(&report.energy)
    }

    /// Digests an already-taken [`EnergyView`] snapshot (e.g. a
    /// [`EnergyView::diff`] of two phases).
    pub fn of_view(view: &EnergyView) -> Self {
        EnergySummary {
            nodes: view.nodes(),
            max_lb_energy: view.max_lb_energy(),
            mean_lb_energy: view.mean_lb_energy(),
            lb_time: view.lb_time(),
            max_physical_energy: view.max_physical_energy(),
            physical_slots: view.physical_slots(),
        }
    }

    /// The difference `self − before`, for measuring one phase of a longer
    /// run (e.g. query energy after setup energy).
    pub fn since(&self, before: &EnergySummary) -> EnergySummary {
        EnergySummary {
            nodes: self.nodes,
            max_lb_energy: self.max_lb_energy.saturating_sub(before.max_lb_energy),
            mean_lb_energy: (self.mean_lb_energy - before.mean_lb_energy).max(0.0),
            lb_time: self.lb_time.saturating_sub(before.lb_time),
            max_physical_energy: match (self.max_physical_energy, before.max_physical_energy) {
                (Some(a), Some(b)) => Some(a.saturating_sub(b)),
                (a, _) => a,
            },
            physical_slots: match (self.physical_slots, before.physical_slots) {
                (Some(a), Some(b)) => Some(a.saturating_sub(b)),
                (a, _) => a,
            },
        }
    }
}

/// Statistics gathered while running the recursive BFS, backing Claims 1–2
/// and Figure 3.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RecursionStats {
    /// For every vertex of the top-level network, the number of stages `i`
    /// in which it belonged to the wavefront set `X_i` (Claim 1).
    pub wavefront_memberships: Vec<u64>,
    /// For every top-level cluster, the number of Special Updates it
    /// participated in, i.e. the number of induced subgraphs `G*_i` it
    /// joined (Claim 2).
    pub special_update_memberships: Vec<u64>,
    /// Number of recursive calls made at each depth (`[0]` = calls on the
    /// first cluster graph, etc.).
    pub recursive_calls_by_depth: Vec<u64>,
    /// Number of wavefront stages executed at the top level.
    pub stages: u64,
    /// Estimate traces of the clusters requested via
    /// [`crate::recursive_bfs::recursive_bfs_with_hierarchy`]'s trace set,
    /// keyed in the same order.
    pub estimate_traces: Vec<(usize, Vec<EstimateTracePoint>)>,
}

impl RecursionStats {
    /// Maximum number of `X_i` memberships over vertices (Claim 1 bound).
    pub fn max_wavefront_memberships(&self) -> u64 {
        self.wavefront_memberships
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Maximum number of Special Updates over clusters (Claim 2 bound).
    pub fn max_special_memberships(&self) -> u64 {
        self.special_update_memberships
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Total recursive calls across depths.
    pub fn total_recursive_calls(&self) -> u64 {
        self.recursive_calls_by_depth.iter().sum()
    }
}

/// Formats a simple aligned table (used by the experiments binary and the
/// examples; kept here so every consumer prints consistent output).
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generators;
    use radio_protocols::{local_broadcast_once, Msg, StackBuilder};

    #[test]
    fn summary_of_abstract_network() {
        let g = generators::path(4);
        let mut net = StackBuilder::new(g).build();
        local_broadcast_once(&mut net, &[(0, Msg::words(&[1]))], &[1, 2]);
        let s = EnergySummary::of(&net);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.max_lb_energy, 1);
        assert_eq!(s.lb_time, 1);
        assert!((s.mean_lb_energy - 0.75).abs() < 1e-12);
        assert!(s.max_physical_energy.is_none());
    }

    #[test]
    fn since_subtracts_counters() {
        let a = EnergySummary {
            nodes: 10,
            max_lb_energy: 5,
            mean_lb_energy: 2.0,
            lb_time: 7,
            max_physical_energy: Some(100),
            physical_slots: Some(50),
        };
        let b = EnergySummary {
            nodes: 10,
            max_lb_energy: 2,
            mean_lb_energy: 0.5,
            lb_time: 3,
            max_physical_energy: Some(40),
            physical_slots: Some(20),
        };
        let d = a.since(&b);
        assert_eq!(d.max_lb_energy, 3);
        assert_eq!(d.lb_time, 4);
        assert_eq!(d.max_physical_energy, Some(60));
        assert_eq!(d.physical_slots, Some(30));
        assert!((d.mean_lb_energy - 1.5).abs() < 1e-12);
    }

    #[test]
    fn recursion_stats_maxima() {
        let stats = RecursionStats {
            wavefront_memberships: vec![1, 3, 2],
            special_update_memberships: vec![4, 0],
            recursive_calls_by_depth: vec![5, 2],
            stages: 7,
            estimate_traces: Vec::new(),
        };
        assert_eq!(stats.max_wavefront_memberships(), 3);
        assert_eq!(stats.max_special_memberships(), 4);
        assert_eq!(stats.total_recursive_calls(), 7);
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let out = format_table(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }
}
