//! Baseline BFS algorithms.
//!
//! * [`trivial_bfs`] — the "trivial BFS algorithm that settles all distances
//!   up to `D'` using `D'` time and energy, by calling Local-Broadcast `D'`
//!   times" (paper, Section 4.3). It is both the base case of the recursion
//!   and, run on the whole graph, the classical Decay-style BFS baseline
//!   (\[3\]) that the recursive algorithm is compared against in experiment
//!   E6: every active, unsettled vertex listens in every call, so the
//!   per-vertex energy is `Θ(D)` Local-Broadcast units.
//! * [`decay_bfs`] — the same wavefront protocol without a known distance
//!   bound: it keeps advancing until a full sweep settles nothing new.
//! * [`trivial_bfs_cd`] — the wavefront on a collision-detection-capable
//!   stack: per-receiver verdicts from the frame's feedback lane settle
//!   collided/failed deliveries exactly (`Noise` at step `t` ⇒ distance
//!   `t + 1`) and retire listeners the silence record proves are beyond the
//!   depth bound.

use radio_protocols::{LbFeedback, LbFrame, Msg, NodeSet, RadioStack};

/// Result of a wavefront BFS at the Local-Broadcast level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WavefrontResult {
    /// `dist[v] = Some(d)` if `v` was settled at distance `d` (within the
    /// depth bound and the active set), `None` otherwise.
    pub dist: Vec<Option<u64>>,
    /// Number of Local-Broadcast calls used.
    pub calls: u64,
}

/// Advances a BFS wavefront for exactly `depth` Local-Broadcast calls,
/// restricted to `active` vertices, starting from `sources` (which must be
/// active). Every active unsettled vertex listens in every call; settled
/// frontier vertices transmit their distance.
///
/// This is the trivial algorithm of Section 4.3 and also the building block
/// the recursive algorithm uses to advance its wavefront one `β⁻¹`-step
/// stage at a time (there restricted to the set `X_i`).
pub fn trivial_bfs(
    net: &mut dyn RadioStack,
    sources: &[usize],
    active: &[bool],
    depth: u64,
) -> WavefrontResult {
    let mut frame = net.new_frame();
    trivial_bfs_with_frame(net, sources, active, depth, &mut frame)
}

/// [`trivial_bfs`] driving all of its Local-Broadcast calls through a
/// caller-provided frame, so batched callers (the recursion's base case,
/// the multi-seed scenario runner) reuse one allocation across many runs.
pub fn trivial_bfs_with_frame(
    net: &mut dyn RadioStack,
    sources: &[usize],
    active: &[bool],
    depth: u64,
    frame: &mut LbFrame,
) -> WavefrontResult {
    let n = net.num_nodes();
    assert_eq!(active.len(), n);
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut frontier: Vec<usize> = Vec::new();
    for &s in sources {
        if active[s] && dist[s].is_none() {
            dist[s] = Some(0);
            frontier.push(s);
        }
    }
    // The listening set — active and unsettled — maintained incrementally
    // so each round's receivers are one word-parallel copy instead of an
    // O(n) rescan. A vertex only ever transmits in the round right after it
    // settles, so the settled-this-round list doubles as the next frontier.
    let mut unsettled = NodeSet::new(n);
    for (v, &a) in active.iter().enumerate() {
        if a && dist[v].is_none() {
            unsettled.insert(v);
        }
    }
    let mut next_frontier: Vec<usize> = Vec::new();
    let mut calls = 0u64;
    for step in 0..depth {
        frame.clear();
        for &v in &frontier {
            frame.add_sender(v, Msg::words(&[step]));
        }
        frame.set_receivers(&unsettled);
        if frame.receivers().is_empty() {
            break;
        }
        // Even when the frontier is empty the receivers still listen (they
        // cannot know); this is what makes the trivial algorithm expensive.
        net.local_broadcast(frame);
        calls += 1;
        next_frontier.clear();
        for (v, m) in frame.delivered().iter() {
            if dist[v].is_none() {
                dist[v] = Some(m.word(0) + 1);
                unsettled.remove(v);
                next_frontier.push(v);
            }
        }
        std::mem::swap(&mut frontier, &mut next_frontier);
    }
    WavefrontResult { dist, calls }
}

/// [`trivial_bfs`] on a collision-detection-capable stack, exploiting the
/// frame's per-receiver feedback lane. The Local-Broadcast schedule is the
/// wavefront of [`trivial_bfs`]; two sound refinements ride on the verdicts:
///
/// * **`Noise` settles exactly.** Channel activity at step `t` means some
///   neighbour is at distance `t`, so the receiver is at distance `t + 1` —
///   even though no payload was decoded. On lossy stacks this recovers the
///   label a no-CD run would mislabel or miss; the receiver also stops
///   listening (and starts transmitting) one step earlier.
/// * **All-`Silence` rounds end the run.** A call whose every verdict is
///   `Silence` settled nobody, so the next frontier is empty and every
///   remaining round is provably dead: settled-frontier-adjacent vertices
///   (there are none left) cannot appear again, and all pending listeners
///   skip their remaining listen rounds. This is exactly the termination
///   rule [`decay_bfs`] already uses — but the no-CD wavefront cannot apply
///   it ("the receivers still listen; they cannot know"), because without
///   collision detection an unheard round and a dead frontier look the
///   same. With receiver CD, every settling event manifests as `Delivered`
///   or `Noise`, so an all-silent round is a provable frontier death.
///
/// Within a live wavefront the listen schedule is provably identical to the
/// no-CD twin (a single silence rules out exactly one distance value, the
/// one that round would have settled anyway), so distances agree with
/// [`trivial_bfs`] on reliable stacks and the LB-unit energy never exceeds
/// the no-CD twin's; on `physical_cd` stacks the big saving is at the slot
/// level, where the CD-aware Decay retires hopeless receivers after one
/// iteration. Panics if the stack lacks receiver-side collision detection —
/// use [`crate::protocol::registry`]-dispatched runs for the typed
/// capability error instead.
pub fn trivial_bfs_cd(
    net: &mut dyn RadioStack,
    sources: &[usize],
    active: &[bool],
    depth: u64,
) -> WavefrontResult {
    let mut frame = net.new_frame();
    trivial_bfs_cd_with_frame(net, sources, active, depth, &mut frame)
}

/// [`trivial_bfs_cd`] driving its calls through a caller-provided frame.
pub fn trivial_bfs_cd_with_frame(
    net: &mut dyn RadioStack,
    sources: &[usize],
    active: &[bool],
    depth: u64,
    frame: &mut LbFrame,
) -> WavefrontResult {
    let n = net.num_nodes();
    assert_eq!(active.len(), n);
    assert!(
        net.capabilities().collision_detection.is_receiver(),
        "trivial_bfs_cd needs a stack built with_cd(); \
         the registry path reports this as a typed ProtocolError instead"
    );
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut frontier: Vec<usize> = Vec::new();
    for &s in sources {
        if active[s] && dist[s].is_none() {
            dist[s] = Some(0);
            frontier.push(s);
        }
    }
    let mut unsettled = NodeSet::new(n);
    for (v, &a) in active.iter().enumerate() {
        if a && dist[v].is_none() {
            unsettled.insert(v);
        }
    }
    let mut next_frontier: Vec<usize> = Vec::new();
    let mut calls = 0u64;
    for step in 0..depth {
        frame.clear();
        for &v in &frontier {
            frame.add_sender(v, Msg::words(&[step]));
        }
        frame.set_receivers(&unsettled);
        if frame.receivers().is_empty() {
            break;
        }
        net.local_broadcast(frame);
        calls += 1;
        next_frontier.clear();
        for (v, m) in frame.delivered().iter() {
            if dist[v].is_none() {
                dist[v] = Some(m.word(0) + 1);
                unsettled.remove(v);
                next_frontier.push(v);
            }
        }
        // Noise verdicts: activity without a decoded payload still pins the
        // distance — a sending neighbour exists at `step`.
        for (v, fb) in frame.feedback().iter() {
            if *fb == LbFeedback::Noise && dist[v].is_none() {
                dist[v] = Some(step + 1);
                unsettled.remove(v);
                next_frontier.push(v);
            }
        }
        // All verdicts Silence ⇒ the frontier died; every remaining round
        // is provably dead, so the pending listeners stop here.
        if next_frontier.is_empty() {
            break;
        }
        std::mem::swap(&mut frontier, &mut next_frontier);
    }
    WavefrontResult { dist, calls }
}

/// Decay-style BFS without a distance bound: advances the wavefront until a
/// sweep settles no new vertex. All unsettled vertices listen in every call.
pub fn decay_bfs(net: &mut dyn RadioStack, source: usize) -> WavefrontResult {
    let mut frame = net.new_frame();
    decay_bfs_with_frame(net, source, &mut frame)
}

/// [`decay_bfs`] driving its calls through a caller-provided frame, so
/// batched callers (the scenario runner) reuse one allocation across runs.
pub fn decay_bfs_with_frame(
    net: &mut dyn RadioStack,
    source: usize,
    frame: &mut LbFrame,
) -> WavefrontResult {
    let n = net.num_nodes();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    dist[source] = Some(0);
    let mut frontier: Vec<usize> = vec![source];
    let mut next_frontier: Vec<usize> = Vec::new();
    let mut unsettled = NodeSet::new(n);
    for v in 0..n {
        if v != source {
            unsettled.insert(v);
        }
    }
    let mut calls = 0u64;
    let mut frontier_dist = 0u64;
    loop {
        frame.clear();
        for &v in &frontier {
            frame.add_sender(v, Msg::words(&[frontier_dist]));
        }
        frame.set_receivers(&unsettled);
        if frame.senders().is_empty() || frame.receivers().is_empty() {
            break;
        }
        net.local_broadcast(frame);
        calls += 1;
        next_frontier.clear();
        for (v, m) in frame.delivered().iter() {
            if dist[v].is_none() {
                dist[v] = Some(m.word(0) + 1);
                unsettled.remove(v);
                next_frontier.push(v);
            }
        }
        std::mem::swap(&mut frontier, &mut next_frontier);
        frontier_dist += 1;
        if frontier.is_empty() {
            break;
        }
    }
    WavefrontResult { dist, calls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::bfs::bfs_distances;
    use radio_graph::{generators, INFINITY};
    use radio_protocols::{RadioStack, StackBuilder};

    fn check_against_reference(g: &radio_graph::Graph, result: &WavefrontResult, source: usize) {
        let truth = bfs_distances(g, source);
        for v in g.nodes() {
            match result.dist[v] {
                Some(d) => assert_eq!(d, truth[v] as u64, "vertex {v}"),
                None => assert_eq!(truth[v], INFINITY, "vertex {v} should be reachable"),
            }
        }
    }

    #[test]
    fn trivial_bfs_matches_reference_on_grid() {
        let g = generators::grid(7, 9);
        let mut net = StackBuilder::new(g.clone()).build();
        let active = vec![true; g.num_nodes()];
        let result = trivial_bfs(&mut net, &[0], &active, 100);
        check_against_reference(&g, &result, 0);
    }

    #[test]
    fn trivial_bfs_respects_depth_bound() {
        let g = generators::path(20);
        let mut net = StackBuilder::new(g).build();
        let active = vec![true; 20];
        let result = trivial_bfs(&mut net, &[0], &active, 5);
        assert_eq!(result.dist[5], Some(5));
        assert_eq!(result.dist[6], None);
        assert_eq!(result.calls, 5);
    }

    #[test]
    fn trivial_bfs_respects_active_set() {
        let g = generators::path(6);
        let mut net = StackBuilder::new(g).build();
        let mut active = vec![true; 6];
        active[3] = false;
        let result = trivial_bfs(&mut net, &[0], &active, 10);
        assert_eq!(result.dist[2], Some(2));
        assert_eq!(result.dist[3], None);
        assert_eq!(result.dist[4], None);
    }

    #[test]
    fn trivial_bfs_multi_source() {
        let g = generators::path(9);
        let mut net = StackBuilder::new(g).build();
        let active = vec![true; 9];
        let result = trivial_bfs(&mut net, &[0, 8], &active, 10);
        assert_eq!(result.dist[4], Some(4));
        assert_eq!(result.dist[6], Some(2));
    }

    #[test]
    fn trivial_bfs_inactive_source_is_ignored() {
        let g = generators::path(4);
        let mut net = StackBuilder::new(g).build();
        let mut active = vec![true; 4];
        active[0] = false;
        let result = trivial_bfs(&mut net, &[0], &active, 10);
        assert!(result.dist.iter().all(|d| d.is_none()));
    }

    #[test]
    fn trivial_bfs_energy_is_linear_in_depth() {
        // The point of the baseline: per-vertex energy grows with D.
        let g = generators::path(50);
        let mut net = StackBuilder::new(g).build();
        let active = vec![true; 50];
        let _ = trivial_bfs(&mut net, &[0], &active, 49);
        // The last vertex listens in every one of the 49 calls.
        assert_eq!(net.lb_energy(49), 49);
        assert_eq!(net.max_lb_energy(), 49);
    }

    #[test]
    fn decay_bfs_matches_reference_and_halts() {
        let g = generators::grid(6, 6);
        let mut net = StackBuilder::new(g.clone()).build();
        let result = decay_bfs(&mut net, 7);
        check_against_reference(&g, &result, 7);
        // Exactly eccentricity-many productive sweeps.
        let ecc = bfs_distances(&g, 7).iter().copied().max().unwrap() as u64;
        assert!(result.calls >= ecc && result.calls <= ecc + 1);
    }

    #[test]
    fn trivial_bfs_cd_matches_trivial_bfs_on_reliable_stacks() {
        // Same wavefront, same labels, same LB-unit accounting — the CD
        // refinements only fire on noise (none here) or beyond the horizon.
        let g = generators::grid(7, 9);
        let n = g.num_nodes();
        let active = vec![true; n];
        let mut plain = StackBuilder::new(g.clone()).build();
        let want = trivial_bfs(&mut plain, &[0], &active, n as u64);
        let mut cd = StackBuilder::new(g.clone()).with_cd().build();
        let got = trivial_bfs_cd(&mut cd, &[0], &active, n as u64);
        assert_eq!(got.dist, want.dist);
        assert_eq!(got.calls, want.calls);
        for v in 0..n {
            assert_eq!(plain.lb_energy(v), cd.lb_energy(v), "vertex {v}");
        }
        check_against_reference(&g, &got, 0);
    }

    #[test]
    #[should_panic(expected = "with_cd")]
    fn trivial_bfs_cd_panics_without_collision_detection() {
        let g = generators::path(4);
        let mut net = StackBuilder::new(g).build();
        let active = vec![true; 4];
        let _ = trivial_bfs_cd(&mut net, &[0], &active, 4);
    }

    #[test]
    fn trivial_bfs_cd_skips_listen_rounds_after_frontier_death() {
        // Two components (0-1-2-3-4 and 5-6-7-8-9), source 0, depth 10. The
        // no-CD wavefront cannot detect that the frontier died at step 5, so
        // the unreachable component listens through all 10 calls; the CD
        // twin reads the all-Silence round and stops — half the calls, half
        // the listen energy for the far component, identical labels.
        let mut edges: Vec<(usize, usize)> = (0..4).map(|i| (i, i + 1)).collect();
        edges.extend((5..9).map(|i| (i, i + 1)));
        let g = radio_graph::Graph::from_edges(10, &edges);
        let active = vec![true; 10];
        let mut plain = StackBuilder::new(g.clone()).build();
        let want = trivial_bfs(&mut plain, &[0], &active, 10);
        let mut cd = StackBuilder::new(g).with_cd().build();
        let got = trivial_bfs_cd(&mut cd, &[0], &active, 10);
        assert_eq!(got.dist, want.dist, "labels must agree");
        assert_eq!(want.calls, 10, "no-CD runs the full depth");
        assert_eq!(got.calls, 5, "CD stops at the first all-silent round");
        assert_eq!(plain.lb_energy(9), 10);
        assert_eq!(cd.lb_energy(9), 5);
        // Never *more* energy anywhere.
        for v in 0..10 {
            assert!(cd.lb_energy(v) <= plain.lb_energy(v), "vertex {v}");
        }
    }

    #[test]
    fn trivial_bfs_cd_settles_exactly_from_noise_on_lossy_stacks() {
        // A lossy abstract stack with CD: failed deliveries surface as Noise
        // verdicts, which pin the distance exactly (a sending neighbour
        // exists at the current step). The labelling therefore matches the
        // reference even at failure rates that derail the no-CD wavefront.
        let g = generators::path(12);
        let active = vec![true; 12];
        let mut lossy = StackBuilder::new(g.clone())
            .with_cd()
            .with_failures(0.6)
            .with_seed(9)
            .build();
        let got = trivial_bfs_cd(&mut lossy, &[0], &active, 12);
        check_against_reference(&g, &got, 0);
    }

    #[test]
    fn decay_bfs_on_disconnected_graph_leaves_unreachable_unset() {
        let g = radio_graph::Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let mut net = StackBuilder::new(g.clone()).build();
        let result = decay_bfs(&mut net, 0);
        check_against_reference(&g, &result, 0);
        assert_eq!(result.dist[3], None);
    }
}
