//! Configuration of the recursive BFS.
//!
//! The paper sets `β = 2^{−√(log D₀ · log log n)}` and recursion depth
//! `L = √(log D₀ / log log n)`, and leaves the constants `w = Θ(log n)` and
//! the clustering constants unspecified. The configuration makes all of
//! them explicit (and testable); [`RecursiveBfsConfig::auto`] reproduces the
//! paper's asymptotic choices for a given `(n, D₀)`.

use radio_protocols::ClusteringConfig;
use serde::{Deserialize, Serialize};

/// Tunable parameters of [`crate::recursive_bfs::recursive_bfs`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecursiveBfsConfig {
    /// `1/β` (an integer, as the paper requires).
    pub inv_beta: u64,
    /// Multiplier `c_w` in `w = c_w · ln n`; the paper needs a
    /// "sufficiently large multiple of log n".
    pub w_factor: f64,
    /// Maximum recursion depth `L`; depth `L` reverts to the trivial BFS.
    pub max_depth: usize,
    /// Depth bound below which the recursion bottoms out early into the
    /// trivial BFS regardless of remaining levels (a practical cut-off; the
    /// paper's analysis only requires bottoming out at `L`).
    pub trivial_cutoff: u64,
    /// Constant multiplying `log_{1/β} n` in the clustering contention
    /// bound `C` (see [`ClusteringConfig`]).
    pub contention_factor: f64,
    /// Constant multiplying `C·ln n` in the cast index-set length `ℓ`.
    pub ell_factor: f64,
    /// RNG seed for all randomized components (clustering shifts, tags,
    /// tie-breaking).
    pub seed: u64,
}

impl Default for RecursiveBfsConfig {
    fn default() -> Self {
        RecursiveBfsConfig {
            inv_beta: 8,
            w_factor: 2.0,
            max_depth: 1,
            trivial_cutoff: 16,
            contention_factor: 1.0,
            // Smaller than `ClusteringConfig::new`'s 4.0: the recursive BFS
            // only uses casts to move distance estimates, and the w-slack of
            // Invariant 4.1 absorbs the rare missed delivery, so it can run
            // with the leaner (faster, lower-energy) index sets. The
            // standalone cast API keeps the stronger constant because it
            // promises Lemma 3.1 delivery on its own.
            ell_factor: 2.0,
            seed: 0,
        }
    }
}

impl RecursiveBfsConfig {
    /// The paper's asymptotic parameter choices for a network of size `n`
    /// and distance threshold `d0`:
    /// `β = 2^{−√(log d0 · log log n)}` (rounded to a power of two so that
    /// `1/β` is an integer) and `L = ⌈√(log d0 / log log n)⌉`.
    pub fn auto(n: usize, d0: u64) -> Self {
        let n = n.max(4) as f64;
        let d0f = (d0.max(2)) as f64;
        let log_d = d0f.log2();
        let loglog_n = n.log2().log2().max(1.0);
        let exponent = (log_d * loglog_n).sqrt();
        let inv_beta = 2f64.powf(exponent).round().max(2.0) as u64;
        let inv_beta = inv_beta.next_power_of_two().max(2);
        let depth = (log_d / loglog_n).sqrt().ceil().max(1.0) as usize;
        RecursiveBfsConfig {
            inv_beta,
            max_depth: depth,
            ..Default::default()
        }
    }

    /// β as a float.
    pub fn beta(&self) -> f64 {
        1.0 / self.inv_beta as f64
    }

    /// `w = c_w · ln n` (at least 2).
    pub fn w(&self, global_n: usize) -> f64 {
        (self.w_factor * (global_n.max(2) as f64).ln()).max(2.0)
    }

    /// The clustering configuration induced by these parameters.
    pub fn clustering(&self) -> ClusteringConfig {
        ClusteringConfig {
            beta: self.beta(),
            contention_factor: self.contention_factor,
            ell_factor: self.ell_factor,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style `1/β` override (panics unless ≥ 2).
    pub fn with_inv_beta(mut self, inv_beta: u64) -> Self {
        assert!(inv_beta >= 2);
        self.inv_beta = inv_beta;
        self
    }

    /// Builder-style recursion-depth override.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = RecursiveBfsConfig::default();
        assert!(c.beta() > 0.0 && c.beta() <= 0.5);
        assert!(c.w(1000) >= 2.0);
        assert_eq!(c.clustering().inverse_beta(), 8);
    }

    #[test]
    fn auto_scales_with_depth_and_n() {
        let small = RecursiveBfsConfig::auto(1000, 16);
        let large = RecursiveBfsConfig::auto(1000, 1 << 20);
        assert!(large.inv_beta > small.inv_beta);
        assert!(large.max_depth >= small.max_depth);
        assert!(small.inv_beta.is_power_of_two());
    }

    #[test]
    fn builders_apply() {
        let c = RecursiveBfsConfig::default()
            .with_seed(9)
            .with_inv_beta(32)
            .with_max_depth(3);
        assert_eq!(c.seed, 9);
        assert_eq!(c.inv_beta, 32);
        assert_eq!(c.max_depth, 3);
    }

    #[test]
    #[should_panic]
    fn inv_beta_must_be_at_least_two() {
        let _ = RecursiveBfsConfig::default().with_inv_beta(1);
    }
}
