//! Executable versions of the Section 5 lower bounds.
//!
//! Lower bounds are impossibility results, so "reproducing" them means three
//! things here:
//!
//! 1. **Hard instances** — the `K_n` vs `K_n − e` pair of Theorem 5.1 (built
//!    in `radio-graph::generators`) and the set-disjointness graphs of
//!    Theorem 5.2 (`radio-graph::lower_bound`).
//! 2. **The counting argument, replayed on real traces** — Theorem 5.1's
//!    proof classifies each time slot as *good* for a vertex pair `{u, v}`
//!    (one of them listens, the other transmits, and at most two devices
//!    transmit overall); pairs with no good slot are in `X_bad`, and the
//!    adversary's edge lands in `X_bad` with probability
//!    `≥ 1 − 2·|X_good|/(n(n−1))`, capping the success probability of *any*
//!    algorithm with per-device energy `E` at roughly `1/2 + O(E/n)`.
//!    [`GoodSlotAccounting`] computes `X_good` for an arbitrary recorded
//!    trace, and [`edge_probing_protocol`] / [`round_robin_protocol`]
//!    provide natural low- and high-energy protocols to feed it.
//! 3. **The communication ledger of the Theorem 5.2 reduction** — given an
//!    energy budget, [`disjointness_communication_bits`] computes how many
//!    bits the two simulating players would exchange, to be compared with
//!    the `Ω(k)` set-disjointness bound.

use std::collections::HashSet;

use rand::Rng;
use serde::{Deserialize, Serialize};

use radio_graph::lower_bound::DisjointnessGraph;
use radio_graph::{Graph, NodeId};

/// What every device did in one recorded slot of a protocol trace.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRound {
    /// Devices that transmitted in this slot.
    pub transmitters: Vec<NodeId>,
    /// Devices that listened in this slot.
    pub listeners: Vec<NodeId>,
}

/// A recorded execution: one entry per slot.
pub type Trace = Vec<TraceRound>;

/// The outcome of applying Theorem 5.1's counting argument to a trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GoodSlotAccounting {
    /// Number of devices.
    pub n: usize,
    /// Number of unordered pairs with at least one good slot.
    pub good_pairs: usize,
    /// Total unordered pairs `n(n−1)/2`.
    pub total_pairs: usize,
    /// Maximum per-device energy in the trace.
    pub max_energy: u64,
    /// Total energy (sum over devices) in the trace.
    pub total_energy: u64,
    /// The proof's upper bound on any distinguisher's success probability:
    /// `1/2 + |X_good| / (2·total_pairs)`.
    pub success_upper_bound: f64,
}

impl GoodSlotAccounting {
    /// Evaluates the counting argument on a trace over `n` devices.
    pub fn evaluate(n: usize, trace: &Trace) -> Self {
        let mut good: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut energy = vec![0u64; n];
        for round in trace {
            for &t in &round.transmitters {
                energy[t] += 1;
            }
            for &l in &round.listeners {
                energy[l] += 1;
            }
            // A slot can only be good for some pair if at most two devices
            // transmit (otherwise no listener can decode anything that
            // depends on a single potential edge).
            if round.transmitters.is_empty() || round.transmitters.len() > 2 {
                continue;
            }
            for &t in &round.transmitters {
                for &l in &round.listeners {
                    if t != l {
                        good.insert((t.min(l), t.max(l)));
                    }
                }
            }
        }
        let total_pairs = n * n.saturating_sub(1) / 2;
        let good_pairs = good.len();
        let success_upper_bound = if total_pairs == 0 {
            1.0
        } else {
            (0.5 + good_pairs as f64 / (2.0 * total_pairs as f64)).min(1.0)
        };
        GoodSlotAccounting {
            n,
            good_pairs,
            total_pairs,
            max_energy: energy.iter().copied().max().unwrap_or(0),
            total_energy: energy.iter().sum(),
            success_upper_bound,
        }
    }

    /// The structural inequality from the proof: a slot good for `x` pairs
    /// has at least `x/2` listeners, so `|X_good| ≤ 2·total_energy`.
    pub fn satisfies_energy_inequality(&self) -> bool {
        self.good_pairs as u64 <= 2 * self.total_energy
    }
}

/// A natural low-energy protocol for the `K_n` vs `K_n − e` game: in each of
/// `budget` slots every device independently transmits its identity with
/// probability `1/n` and otherwise listens. Returns the recorded trace and
/// the set of edges whose presence was directly witnessed (a listener heard
/// a sole transmitter that is adjacent to it in `g`).
pub fn edge_probing_protocol<R: Rng + ?Sized>(
    g: &Graph,
    budget: u64,
    rng: &mut R,
) -> (Trace, HashSet<(NodeId, NodeId)>) {
    let n = g.num_nodes();
    let mut trace = Vec::with_capacity(budget as usize);
    let mut witnessed = HashSet::new();
    let p = 1.0 / n.max(1) as f64;
    for _ in 0..budget {
        let mut transmitters = Vec::new();
        let mut listeners = Vec::new();
        for v in 0..n {
            if rng.gen_bool(p) {
                transmitters.push(v);
            } else {
                listeners.push(v);
            }
        }
        if transmitters.len() == 1 {
            let t = transmitters[0];
            for &l in &listeners {
                if g.has_edge(t, l) {
                    witnessed.insert((t.min(l), t.max(l)));
                }
            }
        }
        trace.push(TraceRound {
            transmitters,
            listeners,
        });
    }
    (trace, witnessed)
}

/// The `Ω(n)`-energy protocol that *does* distinguish `K_n` from `K_n − e`:
/// devices take turns transmitting (round robin) while everyone else
/// listens, so after `n` slots every device knows its full neighbourhood.
/// Returns the trace and the witnessed edge set (which equals `E(g)`).
pub fn round_robin_protocol(g: &Graph) -> (Trace, HashSet<(NodeId, NodeId)>) {
    let n = g.num_nodes();
    let mut trace = Vec::with_capacity(n);
    let mut witnessed = HashSet::new();
    for t in 0..n {
        let listeners: Vec<NodeId> = (0..n).filter(|&v| v != t).collect();
        for &l in &listeners {
            if g.has_edge(t, l) {
                witnessed.insert((t.min(l), t.max(l)));
            }
        }
        trace.push(TraceRound {
            transmitters: vec![t],
            listeners,
        });
    }
    (trace, witnessed)
}

/// One play of the Theorem 5.1 distinguishing game with a given per-device
/// energy budget: the adversary flips a fair coin between `K_n` and
/// `K_n − e` (with `e` uniform), the edge-probing protocol runs, and the
/// distinguisher answers "`K_n − e`" iff the chosen pair was *not*
/// witnessed. Returns whether the answer was correct.
pub fn play_distinguishing_game<R: Rng + ?Sized>(n: usize, budget: u64, rng: &mut R) -> bool {
    assert!(n >= 3);
    let u = rng.gen_range(0..n);
    let v = loop {
        let v = rng.gen_range(0..n);
        if v != u {
            break v;
        }
    };
    let missing_edge = rng.gen_bool(0.5);
    let graph = if missing_edge {
        radio_graph::generators::complete_minus_edge(n, u, v)
    } else {
        radio_graph::generators::complete(n)
    };
    let (_, witnessed) = edge_probing_protocol(&graph, budget, rng);
    let guess_missing = !witnessed.contains(&(u.min(v), u.max(v)));
    guess_missing == missing_edge
}

/// Empirical success rate of the distinguishing game over `trials` plays.
pub fn distinguishing_success_rate<R: Rng + ?Sized>(
    n: usize,
    budget: u64,
    trials: u64,
    rng: &mut R,
) -> f64 {
    let wins = (0..trials)
        .filter(|_| play_distinguishing_game(n, budget, rng))
        .count();
    wins as f64 / trials as f64
}

/// The Theorem 5.2 reduction's communication ledger: a radio protocol on the
/// disjointness graph in which every device spends at most
/// `energy_per_device` slots listening translates into a two-party protocol
/// exchanging at most this many bits (each slot in which a shared vertex —
/// `V_C ∪ V_D ∪ {u*, v*}` — listens costs `O(log k)` bits from each player).
pub fn disjointness_communication_bits(
    instance: &DisjointnessGraph,
    energy_per_device: u64,
) -> u64 {
    let shared = instance.shared_vertices().len() as u64;
    // Every shared vertex listens in at most `energy_per_device` slots.
    instance.round_communication_bits(1) * shared * energy_per_device
}

/// The largest per-device energy budget for which the reduction's
/// communication stays below the `Ω(k)` set-disjointness lower bound — i.e.
/// the energy below which the protocol *cannot* decide the diameter, *so*
/// any correct protocol must exceed it. This is the executable form of
/// Theorem 5.2's `Ω(n / log² n)` bound.
pub fn disjointness_energy_threshold(instance: &DisjointnessGraph) -> u64 {
    let per_unit = disjointness_communication_bits(instance, 1).max(1);
    instance.communication_lower_bound() / per_unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generators;
    use radio_graph::lower_bound::build_disjointness_graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn good_slot_accounting_on_a_tiny_trace() {
        // Slot 0: device 0 transmits, 1 and 2 listen → pairs (0,1), (0,2) good.
        // Slot 1: three transmitters → nothing good.
        let trace = vec![
            TraceRound {
                transmitters: vec![0],
                listeners: vec![1, 2],
            },
            TraceRound {
                transmitters: vec![0, 1, 2],
                listeners: vec![3],
            },
        ];
        let acc = GoodSlotAccounting::evaluate(4, &trace);
        assert_eq!(acc.good_pairs, 2);
        assert_eq!(acc.total_pairs, 6);
        assert_eq!(acc.max_energy, 2);
        assert!(acc.satisfies_energy_inequality());
        assert!((acc.success_upper_bound - (0.5 + 2.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn low_budget_traces_leave_most_pairs_bad() {
        let n = 60;
        let g = generators::complete(n);
        let mut r = rng(1);
        let budget = 5;
        let (trace, _) = edge_probing_protocol(&g, budget, &mut r);
        let acc = GoodSlotAccounting::evaluate(n, &trace);
        assert!(acc.satisfies_energy_inequality());
        // With E = 5 ≪ (n-1)/8, the success bound stays close to 1/2.
        assert!(
            acc.success_upper_bound < 0.6,
            "bound {} too optimistic",
            acc.success_upper_bound
        );
    }

    #[test]
    fn round_robin_witnesses_every_edge_and_costs_linear_energy() {
        let n = 30;
        let g = generators::complete_minus_edge(n, 3, 17);
        let (trace, witnessed) = round_robin_protocol(&g);
        assert_eq!(witnessed.len(), g.num_edges());
        assert!(!witnessed.contains(&(3, 17)));
        let acc = GoodSlotAccounting::evaluate(n, &trace);
        assert_eq!(acc.max_energy, n as u64 - 1 + 1);
        // Every pair has a good slot: the bound degenerates to 1 and the
        // protocol genuinely distinguishes.
        assert_eq!(acc.good_pairs, acc.total_pairs);
        assert!(acc.success_upper_bound >= 1.0 - 1e-12);
    }

    #[test]
    fn distinguishing_game_tracks_energy_budget() {
        let n = 40;
        let mut r = rng(2);
        let low = distinguishing_success_rate(n, 2, 150, &mut r);
        let high = distinguishing_success_rate(n, 60 * n as u64, 150, &mut r);
        assert!(
            low < 0.75,
            "a 2-slot budget should be close to guessing, got {low}"
        );
        assert!(
            high > low,
            "a large budget ({high}) should beat a tiny one ({low})"
        );
    }

    #[test]
    fn disjointness_ledger_scales_with_energy_and_k() {
        let instance = build_disjointness_graph(&[1, 2, 3], &[4, 5, 6], 6);
        let one = disjointness_communication_bits(&instance, 1);
        let ten = disjointness_communication_bits(&instance, 10);
        assert_eq!(ten, 10 * one);
        let threshold = disjointness_energy_threshold(&instance);
        // Below the threshold, the reduction communicates fewer than k bits.
        if threshold > 0 {
            assert!(disjointness_communication_bits(&instance, threshold) <= instance.k);
        }
        assert!(disjointness_communication_bits(&instance, threshold + 1) > 0);
    }

    #[test]
    fn edge_probing_only_witnesses_true_edges() {
        let n = 25;
        let g = generators::complete_minus_edge(n, 0, 1);
        let mut r = rng(3);
        let (_, witnessed) = edge_probing_protocol(&g, 2000, &mut r);
        for &(u, v) in &witnessed {
            assert!(g.has_edge(u, v));
        }
        assert!(!witnessed.contains(&(0, 1)));
    }
}
