//! Per-cluster distance-estimate intervals `[L_i(C), U_i(C)]` (paper,
//! Invariant 4.1) and their update rules.
//!
//! Before stage `i`, every vertex `u` knows an interval containing
//! `dist_G(W_i, Cl(u)) = dist_G(S, Cl(u)) − i·β⁻¹`, where `W_i` is the
//! current wavefront. Two kinds of updates maintain the invariant:
//!
//! * **Automatic** (free): the wavefront advanced by exactly `β⁻¹`, so both
//!   endpoints shrink by `β⁻¹`.
//! * **Special** (costs a recursive BFS on the cluster graph): the interval
//!   is refreshed from the exact distance `x = dist_{G*_i}(W*_i, C)` using
//!   the Lemma 2.2/4.1 translation between cluster-graph distances and
//!   original distances.
//!
//! The module also records estimate histories for Figure 3 (experiment E8).

use serde::{Deserialize, Serialize};

/// The interval `[L_i(C), U_i(C)]` for one cluster, plus bookkeeping about
/// how it was last set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistanceEstimate {
    /// Lower bound `L_i(C)` (may be `f64::INFINITY` for deactivated
    /// clusters).
    pub lower: f64,
    /// Upper bound `U_i(C)`.
    pub upper: f64,
}

impl DistanceEstimate {
    /// The initialization of Step 1 of Recursive-BFS from the depth-`D*`
    /// distance `x` on the cluster graph (`None` = unreached within `D*`).
    ///
    /// `L₀(C) = x/(βw)`, `U₀(C) = max{w/β, w²·L₀(C)}`; unreached clusters
    /// get `L₀ = ∞` and are deactivated by the caller.
    pub fn initialize(x: Option<u64>, beta: f64, w: f64) -> Self {
        match x {
            None => DistanceEstimate {
                lower: f64::INFINITY,
                upper: f64::INFINITY,
            },
            Some(x) => {
                let lower = x as f64 / (beta * w);
                let upper = (w / beta).max(w * w * lower);
                DistanceEstimate { lower, upper }
            }
        }
    }

    /// An Automatic Update: the wavefront advanced by `β⁻¹`.
    pub fn automatic(self, beta: f64) -> Self {
        DistanceEstimate {
            lower: self.lower - 1.0 / beta,
            upper: self.upper - 1.0 / beta,
        }
    }

    /// A Special Update from the recursive BFS result `x =
    /// dist_{G*_{i+1}}(W*_{i+1}, C)` (with `None` meaning "not reached
    /// within radius `z`"), per Step 7 of Recursive-BFS:
    ///
    /// `L_{i+1}(C) = min{z·β⁻¹ + 1, x·β⁻¹/w}`,
    /// `U_{i+1}(C) = min{U_i(C) − β⁻¹, max{x, 1}·β⁻¹·w}`.
    pub fn special(self, x: Option<u64>, z: u64, beta: f64, w: f64) -> Self {
        let inv_beta = 1.0 / beta;
        let cap = z as f64 * inv_beta + 1.0;
        let (lower, upper_from_x) = match x {
            None => (cap, f64::INFINITY),
            Some(x) => (
                cap.min(x as f64 * inv_beta / w),
                (x.max(1)) as f64 * inv_beta * w,
            ),
        };
        DistanceEstimate {
            lower,
            upper: (self.upper - inv_beta).min(upper_from_x),
        }
    }

    /// Whether the cluster must join the next Special Update set `Υ`
    /// (Step 7): `L_i(C) ≤ (Z[i+1] + 1)·β⁻¹`.
    pub fn joins_special_update(&self, z_next: u64, beta: f64) -> bool {
        self.lower <= (z_next as f64 + 1.0) / beta
    }

    /// Whether vertices of this cluster must join the wavefront set `X_i`
    /// (Step 4): `L_i(C) ≤ β⁻¹`.
    pub fn joins_wavefront(&self, beta: f64) -> bool {
        self.lower <= 1.0 / beta
    }

    /// Whether the interval contains `value` (used by the invariant checks
    /// in tests and experiments).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower - 1e-9 && value <= self.upper + 1e-9
    }

    /// Whether the cluster has been ruled out entirely (`L₀ = ∞`).
    pub fn is_unreachable(&self) -> bool {
        self.lower.is_infinite()
    }
}

/// Which update produced an estimate (for traces / Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateKind {
    /// Step 1 of Recursive-BFS.
    Initialize,
    /// Step 7: refreshed from a recursive BFS on the cluster graph.
    Special,
    /// Step 8: both endpoints decremented by `β⁻¹`.
    Automatic,
}

/// One point in the time evolution of a traced cluster's estimate
/// (regenerates Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EstimateTracePoint {
    /// Stage index `i`.
    pub stage: u64,
    /// The kind of update that produced this point.
    pub kind: UpdateKind,
    /// `L_i(C)`.
    pub lower: f64,
    /// `U_i(C)`.
    pub upper: f64,
    /// The true `dist_G(W_i, C)` at this stage, when the experiment computes
    /// it for comparison (`None` when not evaluated).
    pub true_distance: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const BETA: f64 = 0.125; // 1/β = 8
    const W: f64 = 10.0;

    #[test]
    fn initialize_reached_and_unreached() {
        let e = DistanceEstimate::initialize(Some(5), BETA, W);
        assert!((e.lower - 5.0 / (BETA * W)).abs() < 1e-9);
        assert!(e.upper >= e.lower);
        assert!(!e.is_unreachable());

        let e = DistanceEstimate::initialize(None, BETA, W);
        assert!(e.is_unreachable());
    }

    #[test]
    fn initialize_zero_distance_uses_floor_upper_bound() {
        let e = DistanceEstimate::initialize(Some(0), BETA, W);
        assert_eq!(e.lower, 0.0);
        assert!((e.upper - W / BETA).abs() < 1e-9);
    }

    #[test]
    fn automatic_update_shifts_both_bounds() {
        let e = DistanceEstimate {
            lower: 100.0,
            upper: 200.0,
        };
        let e2 = e.automatic(BETA);
        assert!((e2.lower - 92.0).abs() < 1e-9);
        assert!((e2.upper - 192.0).abs() < 1e-9);
    }

    #[test]
    fn special_update_reached_cluster() {
        let e = DistanceEstimate {
            lower: 50.0,
            upper: 1000.0,
        };
        let z = 16;
        let e2 = e.special(Some(3), z, BETA, W);
        // lower = min(16·8 + 1, 3·8/10) = 2.4
        assert!((e2.lower - 2.4).abs() < 1e-9);
        // upper = min(1000 - 8, 3·8·10) = 240
        assert!((e2.upper - 240.0).abs() < 1e-9);
    }

    #[test]
    fn special_update_unreached_cluster_caps_lower_bound() {
        let e = DistanceEstimate {
            lower: 50.0,
            upper: 1000.0,
        };
        let z = 8;
        let e2 = e.special(None, z, BETA, W);
        assert!((e2.lower - (8.0 * 8.0 + 1.0)).abs() < 1e-9);
        assert!((e2.upper - 992.0).abs() < 1e-9);
    }

    #[test]
    fn special_update_with_zero_distance_keeps_positive_upper() {
        let e = DistanceEstimate {
            lower: 5.0,
            upper: 100.0,
        };
        let e2 = e.special(Some(0), 4, BETA, W);
        assert_eq!(e2.lower, 0.0);
        // max{x, 1} = 1 → upper candidate is β⁻¹·w = 80; min(100 − 8, 80) = 80.
        assert!((e2.upper - 80.0).abs() < 1e-9);
    }

    #[test]
    fn membership_predicates() {
        let near = DistanceEstimate {
            lower: 4.0,
            upper: 20.0,
        };
        let far = DistanceEstimate {
            lower: 1000.0,
            upper: 2000.0,
        };
        assert!(near.joins_wavefront(BETA));
        assert!(!far.joins_wavefront(BETA));
        assert!(near.joins_special_update(4, BETA));
        assert!(!far.joins_special_update(4, BETA));
        assert!(far.joins_special_update(200, BETA));
    }

    #[test]
    fn contains_is_inclusive() {
        let e = DistanceEstimate {
            lower: 3.0,
            upper: 9.0,
        };
        assert!(e.contains(3.0));
        assert!(e.contains(9.0));
        assert!(e.contains(5.5));
        assert!(!e.contains(2.9));
        assert!(!e.contains(9.2));
    }

    #[test]
    fn upper_bound_is_monotone_under_both_updates() {
        let mut e = DistanceEstimate::initialize(Some(4), BETA, W);
        let mut prev_upper = e.upper;
        for i in 0..20u64 {
            e = if i % 3 == 0 {
                e.special(Some((i % 5) + 1), 8, BETA, W)
            } else {
                e.automatic(BETA)
            };
            assert!(
                e.upper <= prev_upper + 1e-9,
                "upper bound increased at step {i}: {} -> {}",
                prev_upper,
                e.upper
            );
            prev_upper = e.upper;
        }
    }
}
