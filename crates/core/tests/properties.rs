//! Property-based tests for the core algorithm's data structures and for
//! the end-to-end BFS correctness invariant on randomly generated inputs.

use proptest::prelude::*;

use energy_bfs::baseline::trivial_bfs;
use energy_bfs::estimates::DistanceEstimate;
use energy_bfs::zseq::{ruler, ZSequence, ALPHA};
use energy_bfs::{recursive_bfs, RecursiveBfsConfig};
use radio_graph::bfs::bfs_distances;
use radio_graph::{generators, Graph, INFINITY};
use radio_protocols::StackBuilder;

/// Strategy: a connected random graph on up to 40 vertices (random tree plus
/// random extra edges).
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (
        3usize..40,
        any::<u64>(),
        proptest::collection::vec((0usize..40, 0usize..40), 0..40),
    )
        .prop_map(|(n, seed, extra)| {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let tree = generators::random_tree(n, &mut rng);
            let mut edges: Vec<(usize, usize)> = tree.edges().collect();
            for (u, v) in extra {
                if u % n != v % n {
                    edges.push((u % n, v % n));
                }
            }
            Graph::from_edges(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ruler_is_multiplicative_in_powers_of_two(i in 1u64..10_000) {
        // Y[2i] = 2·Y[i] and Y[odd] = 1.
        prop_assert_eq!(ruler(2 * i), 2 * ruler(i));
        prop_assert_eq!(ruler(2 * i - 1), 1);
        // Y[i] divides i.
        prop_assert_eq!(i % ruler(i), 0);
    }

    #[test]
    fn z_sequence_is_bounded_and_periodic(exp in 0u32..8, i in 1u64..4096) {
        let d_star = ALPHA << exp;
        let z = ZSequence::from_d_star(d_star);
        let zi = z.z(i);
        prop_assert!(zi >= ALPHA);
        prop_assert!(zi <= d_star);
        // Values ≥ b recur with period b/α.
        prop_assert_eq!(z.z(i + d_star / ALPHA), zi);
    }

    #[test]
    fn lemma_4_2_gap_property(exp in 2u32..8, i in 1u64..2048) {
        let z = ZSequence::from_d_star(ALPHA << exp);
        let j = z.next_strictly_larger_or_max(i);
        prop_assert_eq!(j - i, z.z(i) / ALPHA);
        for k in i + 1..j {
            prop_assert!(z.z(k) <= z.z(i) / 2);
        }
    }

    #[test]
    fn estimates_stay_ordered_under_any_update_sequence(
        x0 in 0u64..200,
        updates in proptest::collection::vec((any::<bool>(), 0u64..50, 1u64..64), 1..30),
    ) {
        // The interval must always satisfy lower ≤ upper when the special
        // updates come from consistent (non-adversarial) recursion results,
        // and the upper bound must never increase.
        let beta = 0.125;
        let w = 12.0;
        let mut est = DistanceEstimate::initialize(Some(x0), beta, w);
        prop_assert!(est.lower <= est.upper + 1e-9);
        let mut prev_upper = est.upper;
        for (is_special, x, z) in updates {
            if est.upper <= 1.0 / beta {
                // In the algorithm a cluster whose upper bound has shrunk to
                // a single stage is settled and deactivated before any
                // further update; stop the sequence accordingly.
                break;
            }
            est = if is_special {
                // A consistent recursion result can never report a cluster
                // distance that contradicts the current upper bound (the
                // recursive BFS measures the true distance, which lies in
                // the interval); clamp the generated x accordingly, exactly
                // as reality would.
                let x_max = ((est.upper - 1.0 / beta).max(0.0) * beta * w).floor() as u64;
                est.special(Some(x.min(z).min(x_max)), z, beta, w)
            } else {
                est.automatic(beta)
            };
            prop_assert!(est.upper <= prev_upper + 1e-9);
            prop_assert!(est.lower <= est.upper + 1e-9,
                "lower {} > upper {}", est.lower, est.upper);
            prev_upper = est.upper;
        }
    }

    #[test]
    fn trivial_bfs_matches_centralized_reference(g in arb_connected_graph(), src in 0usize..40) {
        let n = g.num_nodes();
        let source = src % n;
        let truth = bfs_distances(&g, source);
        let mut net = StackBuilder::new(g.clone()).build();
        let active = vec![true; n];
        let result = trivial_bfs(&mut net, &[source], &active, n as u64);
        for (v, &found) in result.dist.iter().enumerate() {
            match found {
                Some(d) => prop_assert_eq!(d, truth[v] as u64),
                None => prop_assert_eq!(truth[v], INFINITY),
            }
        }
    }

    #[test]
    fn cd_wavefront_equals_plain_wavefront_on_reliable_stacks(
        g in arb_connected_graph(),
        src in 0usize..40,
        seed in 0u64..1000,
    ) {
        // trivial_bfs_cd on a reliable CD stack: identical labels, identical
        // call count, and never more LB-unit energy than the no-CD twin —
        // across random connected graphs, sources, and stack seeds.
        use energy_bfs::baseline::trivial_bfs_cd;
        use radio_protocols::RadioStack;
        let n = g.num_nodes();
        let source = src % n;
        let active = vec![true; n];
        let mut plain = StackBuilder::new(g.clone()).with_seed(seed).build();
        let want = trivial_bfs(&mut plain, &[source], &active, n as u64);
        let mut cd = StackBuilder::new(g.clone()).with_cd().with_seed(seed).build();
        let got = trivial_bfs_cd(&mut cd, &[source], &active, n as u64);
        prop_assert_eq!(&got.dist, &want.dist);
        prop_assert_eq!(got.calls, want.calls);
        for v in 0..n {
            prop_assert!(
                cd.lb_energy(v) <= plain.lb_energy(v),
                "vertex {} paid more with CD ({} > {})",
                v, cd.lb_energy(v), plain.lb_energy(v)
            );
        }
        // And against the centralized reference, for exactness.
        let truth = bfs_distances(&g, source);
        for (v, &found) in got.dist.iter().enumerate() {
            match found {
                Some(d) => prop_assert_eq!(d, truth[v] as u64),
                None => prop_assert_eq!(truth[v], INFINITY),
            }
        }
    }

    #[test]
    fn recursive_bfs_matches_centralized_reference(g in arb_connected_graph(), src in 0usize..40, seed in 0u64..1000) {
        let n = g.num_nodes();
        let source = src % n;
        let truth = bfs_distances(&g, source);
        let depth = truth.iter().copied().filter(|&d| d != INFINITY).max().unwrap_or(0) as u64;
        let config = RecursiveBfsConfig {
            inv_beta: 4,
            max_depth: 1,
            trivial_cutoff: 4,
            seed,
            ..Default::default()
        };
        let mut net = StackBuilder::new(g.clone()).build();
        let outcome = recursive_bfs(&mut net, source, depth.max(1), &config);
        for (v, &found) in outcome.dist.iter().enumerate() {
            prop_assert_eq!(found, Some(truth[v] as u64), "vertex {}", v);
        }
    }
}
