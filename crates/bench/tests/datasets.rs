//! Integration tests for the dataset substrate: every scenario family, at
//! word-boundary universes and beyond, must round-trip through the compiled
//! CSR artifact *exactly* — identical offsets, neighbors, and edge count —
//! and corrupted or truncated artifacts must be rejected (and healed by the
//! cache), never silently decoded into a wrong graph.

use std::path::PathBuf;

use radio_bench::scenarios::Family;
use radio_graph::dataset::{read_artifact, write_artifact, DatasetCache, DatasetError};

/// A scratch directory under the cargo-managed target tmpdir, unique per
/// test so parallel test binaries never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("datasets")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Every family the sweep can ask for, with a representative parameter set.
fn all_families() -> Vec<Family> {
    vec![
        Family::Path,
        Family::Cycle,
        Family::Grid,
        Family::GridHilbert,
        Family::Tree { arity: 3 },
        Family::Star,
        Family::Lollipop,
        Family::Complete,
        Family::CompleteMinusEdge,
        Family::Disjointness {
            intersecting: false,
        },
        Family::Disjointness { intersecting: true },
    ]
}

#[test]
fn every_family_round_trips_byte_identically_at_word_boundaries() {
    // The word-boundary universes are where a bitset- or u32-packing bug
    // would bite: one under, at, and over the 64- and 128-bit marks.
    let dir = scratch("roundtrip");
    let cache = DatasetCache::new(&dir);
    for family in all_families() {
        for size in [63usize, 64, 65, 127, 128, 200] {
            let built = family.build(size);
            let key = family.dataset_key(size);
            let path = cache.path_for(&key);
            write_artifact(&path, &key, &built).expect("write artifact");
            let decoded = read_artifact(&path, &key).expect("read artifact");
            let (bo, bn, be) = built.csr_parts();
            let (co, cn, ce) = decoded.csr_parts();
            assert_eq!(bo, co, "{} n={size}: offsets drifted", key.family);
            assert_eq!(bn, cn, "{} n={size}: neighbors drifted", key.family);
            assert_eq!(be, ce, "{} n={size}: edge count drifted", key.family);
            // Writing the same graph again produces the same bytes — the
            // artifact itself is deterministic, not just its decoding.
            let first = std::fs::read(&path).expect("read bytes");
            write_artifact(&path, &key, &built).expect("rewrite artifact");
            let second = std::fs::read(&path).expect("reread bytes");
            assert_eq!(
                first, second,
                "{} n={size}: artifact bytes unstable",
                key.family
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_load_or_build_round_trips_through_the_runner_families() {
    // The exact call path the sweep runner uses: load_or_build compiles on
    // miss, bulk-reads on hit, and both return the generator's graph.
    let dir = scratch("cache-path");
    let cache = DatasetCache::new(&dir);
    for family in all_families() {
        let key = family.dataset_key(128);
        let cold = cache.load_or_build(&key, || family.build(128));
        let warm = cache.load_or_build(&key, || panic!("must not rebuild on hit"));
        assert_eq!(cold.csr_parts(), warm.csr_parts(), "{}", key.family);
    }
    assert_eq!(cache.misses() as usize, all_families().len());
    assert_eq!(cache.hits() as usize, all_families().len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_and_truncated_artifacts_are_rejected() {
    let dir = scratch("corrupt");
    let family = Family::Grid;
    let key = family.dataset_key(128);
    let graph = family.build(128);
    let path = dir.join(key.file_name());
    write_artifact(&path, &key, &graph).expect("write artifact");
    let good = std::fs::read(&path).expect("read bytes");

    // Corrupt header: flip a magic byte.
    let mut bad = good.clone();
    bad[0] ^= 0xff;
    std::fs::write(&path, &bad).unwrap();
    assert!(
        matches!(read_artifact(&path, &key), Err(DatasetError::Format(_))),
        "corrupt magic must be a format error"
    );

    // Corrupt payload: flip one neighbor byte (checksum must catch it).
    let mut bad = good.clone();
    let mid = good.len() / 2;
    bad[mid] ^= 0x01;
    std::fs::write(&path, &bad).unwrap();
    assert!(
        read_artifact(&path, &key).is_err(),
        "flipped payload byte must not decode"
    );

    // Truncation at several cut points, including mid-header.
    for cut in [0usize, 10, 39, good.len() / 2, good.len() - 1] {
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(
            matches!(read_artifact(&path, &key), Err(DatasetError::Format(_))),
            "truncation at {cut} must be a format error"
        );
    }

    // Trailing garbage is rejected too — an artifact is exactly its format.
    let mut bad = good.clone();
    bad.push(0);
    std::fs::write(&path, &bad).unwrap();
    assert!(read_artifact(&path, &key).is_err(), "trailing garbage");

    // And the cache treats all of that as a miss and heals the entry.
    std::fs::write(&path, &good[..20]).unwrap();
    let cache = DatasetCache::new(&dir);
    let healed = cache.load_or_build(&key, || family.build(128));
    assert_eq!(healed.csr_parts(), graph.csr_parts());
    assert_eq!(cache.misses(), 1);
    let reread = read_artifact(&cache.path_for(&key), &key).expect("healed artifact");
    assert_eq!(reread.csr_parts(), graph.csr_parts());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_keys_never_decode_another_familys_artifact() {
    // Same realized graph, different key (path vs cycle at the same n have
    // different keys even if sizes collide): the key hash in the header
    // must refuse a lookup under any other key.
    let dir = scratch("foreign");
    let grid_key = Family::Grid.dataset_key(128);
    let hilbert_key = Family::GridHilbert.dataset_key(128);
    let path = dir.join("shared.csr");
    write_artifact(&path, &grid_key, &Family::Grid.build(128)).unwrap();
    assert!(read_artifact(&path, &grid_key).is_ok());
    assert!(
        matches!(
            read_artifact(&path, &hilbert_key),
            Err(DatasetError::Format(_))
        ),
        "grid artifact must not decode under the hilbert key"
    );
    std::fs::remove_dir_all(&dir).ok();
}
