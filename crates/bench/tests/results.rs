//! Integration tests for the result store and incremental sweeps: warm
//! runs must be byte-identical to cold and uncached runs at every thread
//! count, dramatically faster than recomputing, strictly incremental (only
//! absent cells are computed), and self-healing (corrupt, truncated, or
//! foreign-fingerprint artifacts are rejected as misses and recomputed —
//! never silently decoded into a wrong record).

use std::path::PathBuf;

use radio_bench::results::{read_artifact, ResultError, ResultStore};
use radio_bench::scenarios::{
    records_to_json, run_scenario_with_stores, run_scenarios, run_scenarios_with_stores, Family,
    Protocol, RunnerConfig, Scenario, StackSpec,
};

/// A scratch directory under the cargo-managed target tmpdir, unique per
/// test so parallel test binaries never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("results")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A sweep with real compute behind it: multiple families, physical and
/// abstract backends, enough cells that the cold/warm contrast is
/// unambiguous.
fn sweep() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "res-grid".into(),
            family: Family::Grid,
            sizes: vec![256],
            seeds: (0..6).collect(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "res-grid-phys".into(),
            family: Family::Grid,
            sizes: vec![144],
            seeds: (0..4).collect(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::physical(false),
        },
        Scenario {
            name: "res-cluster".into(),
            family: Family::Tree { arity: 3 },
            sizes: vec![121],
            seeds: (0..6).collect(),
            protocol: Protocol::Clustering { inv_beta: 3 },
            stack: StackSpec::Abstract,
        },
    ]
}

#[test]
fn warm_sweeps_are_byte_identical_to_cold_and_uncached_at_every_thread_count() {
    let dir = scratch("identity");
    let store = ResultStore::new(&dir);
    let sweep = sweep();
    let uncached = records_to_json(&run_scenarios(&sweep));
    let cold = records_to_json(&run_scenarios_with_stores(
        &sweep,
        &RunnerConfig::serial(),
        None,
        Some(&store),
    ));
    assert_eq!(uncached, cold, "the store must not change cold output");
    assert_eq!(store.hits(), 0);
    let cells = store.misses();
    assert_eq!(cells, 16, "6 + 4 + 6 cells all computed cold");
    // The acceptance matrix: warm runs at --threads 1 and 4 both reproduce
    // the uncached bytes exactly (mean_lb_energy round-trips as raw f64
    // bits, so even the {:.3}-formatted JSON column cannot drift).
    for threads in [1usize, 4] {
        let warm = records_to_json(&run_scenarios_with_stores(
            &sweep,
            &RunnerConfig::with_threads(threads),
            None,
            Some(&store),
        ));
        assert_eq!(uncached, warm, "threads={threads}");
    }
    assert_eq!(store.hits(), 32, "both warm runs all-hit");
    assert_eq!(store.misses(), cells, "warm runs computed nothing");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn incremental_sweeps_compute_only_the_absent_cells() {
    // Warm a sweep, then extend it with a new scenario, new seeds, and a
    // new size: only the genuinely new cells are computed.
    let dir = scratch("incremental");
    let store = ResultStore::new(&dir);
    let base = sweep();
    run_scenarios_with_stores(&base, &RunnerConfig::serial(), None, Some(&store));
    let baseline_misses = store.misses();

    let mut extended = base.clone();
    extended[0].seeds = (0..8).collect(); // 2 new seeds
    extended[1].sizes = vec![144, 100]; // 1 new size × 4 seeds
    extended.push(Scenario {
        name: "res-new".into(),
        family: Family::Path,
        sizes: vec![64],
        seeds: (0..3).collect(), // 3 entirely new cells
        protocol: Protocol::DecayBfs,
        stack: StackSpec::Abstract,
    });
    let records = run_scenarios_with_stores(&extended, &RunnerConfig::serial(), None, Some(&store));
    assert_eq!(records.len(), 8 + 8 + 6 + 3);
    assert_eq!(
        store.misses() - baseline_misses,
        2 + 4 + 3,
        "exactly the new cells were computed"
    );
    // The extended run agrees with a from-scratch uncached run cell for
    // cell — warmed prefixes splice in transparently.
    assert_eq!(
        records_to_json(&records),
        records_to_json(&run_scenarios(&extended))
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_artifacts_are_rejected_as_typed_errors_and_healed_by_the_runner() {
    let dir = scratch("healing");
    let store = ResultStore::new(&dir);
    let scenario = Scenario {
        name: "res-heal".into(),
        family: Family::Grid,
        sizes: vec![64],
        seeds: vec![0, 1],
        protocol: Protocol::TrivialBfs,
        stack: StackSpec::Abstract,
    };
    let cfg = RunnerConfig::serial();
    let cold = run_scenario_with_stores(&scenario, &cfg, None, Some(&store), None);
    let key = scenario.result_key(64, 0, None);
    let path = store.path_for(&key);
    let pristine = std::fs::read(&path).expect("artifact exists");

    // Truncation, payload corruption, and a foreign engine fingerprint are
    // all typed Format errors at the codec level...
    let mut cases: Vec<(&str, Vec<u8>)> = Vec::new();
    cases.push(("truncated", pristine[..pristine.len() - 6].to_vec()));
    let mut flipped = pristine.clone();
    let mid = flipped.len() - 12;
    flipped[mid] ^= 0xff;
    cases.push(("corrupt payload", flipped));
    let mut foreign = pristine.clone();
    for b in &mut foreign[16..24] {
        *b ^= 0xff;
    }
    cases.push(("foreign fingerprint", foreign));
    for (what, bytes) in cases {
        std::fs::write(&path, &bytes).expect("plant bad artifact");
        let err = read_artifact(&path, &key).expect_err(what);
        assert!(matches!(err, ResultError::Format(_)), "{what}: {err}");
        // ...and at the runner level each one is a miss healed by
        // recomputing: the records come out right and the artifact is
        // restored to the pristine bytes.
        let hits_before = store.hits();
        let healed = run_scenario_with_stores(&scenario, &cfg, None, Some(&store), None);
        assert_eq!(healed, cold, "{what}: healed records must match");
        assert_eq!(
            store.hits() - hits_before,
            1,
            "{what}: the untouched seed-1 cell still hits"
        );
        assert_eq!(
            std::fs::read(&path).expect("healed artifact"),
            pristine,
            "{what}: re-put must restore the exact artifact bytes"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_runs_are_more_than_ten_times_faster_than_cold() {
    // The acceptance bound on real compute: a sweep with enough work that
    // wall-clock comparison is meaningful, timed cold (computing +
    // writing artifacts) vs warm (pure store reads). The >10x bar is the
    // ISSUE's; in practice warm is orders of magnitude faster.
    let dir = scratch("speedup");
    let store = ResultStore::new(&dir);
    let heavy = vec![Scenario {
        name: "res-heavy".into(),
        family: Family::Grid,
        sizes: vec![1024],
        seeds: (0..6).collect(),
        protocol: Protocol::TrivialBfs,
        stack: StackSpec::Abstract,
    }];
    let cfg = RunnerConfig::serial();
    let started = std::time::Instant::now();
    let cold = run_scenarios_with_stores(&heavy, &cfg, None, Some(&store));
    let cold_elapsed = started.elapsed();
    let started = std::time::Instant::now();
    let warm = run_scenarios_with_stores(&heavy, &cfg, None, Some(&store));
    let warm_elapsed = started.elapsed();
    assert_eq!(cold, warm);
    assert_eq!(store.hits(), 6, "warm run must be all hits");
    assert!(
        warm_elapsed.as_secs_f64() * 10.0 < cold_elapsed.as_secs_f64(),
        "warm {warm_elapsed:?} must undercut a tenth of cold {cold_elapsed:?}"
    );
    // And the single-cell shape of the same bound: re-running one repeated
    // cell is a pure store read.
    let one = vec![Scenario {
        seeds: vec![3],
        ..heavy[0].clone()
    }];
    let started = std::time::Instant::now();
    run_scenarios_with_stores(&one, &cfg, None, Some(&store));
    let single_elapsed = started.elapsed();
    assert_eq!(store.hits(), 7, "the repeated cell is the seventh hit");
    assert!(
        single_elapsed.as_secs_f64() * 10.0 < cold_elapsed.as_secs_f64(),
        "single warm cell {single_elapsed:?} vs cold sweep {cold_elapsed:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
