//! Concurrency and fault conformance suite for the sweep server.
//!
//! The contracts pinned here are the serve-mode acceptance surface:
//!
//! * **Concurrency conformance** — several clients issuing overlapping
//!   cold and warm requests get responses byte-identical to the same
//!   scripts run serially against a fresh server, and the per-response
//!   `hits`/`computed` fields sum exactly to the `stats` totals.
//! * **Fault injection** — truncated lines, binary garbage, nesting
//!   bombs, oversized payloads, mid-request disconnects, and stalled
//!   clients each get a structured error or a dropped connection; none
//!   kills the server or wedges the accept pool (pinned by a healthy
//!   follow-up request after every fault).
//! * **Liveness regression** — a second client connects AND is served
//!   while the first is deep inside a long cold 2^18 cell. The PR 8
//!   single-connection loop failed exactly this.
//! * **Index / hot-set recovery** — a deleted, corrupted, truncated, or
//!   stale-fingerprinted store index is rebuilt from the directory walk,
//!   and a tiny hot-set cap (eviction on every insert) serves the same
//!   bytes as hot-set-off.
//! * **Soak** — a bounded seeded loop of randomized batched requests
//!   from concurrent clients: zero errored responses, monotone stats,
//!   clean shutdown with requests in flight.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use radio_bench::json::Json;
use radio_bench::results::{ResultStore, INDEX_FILE_NAME};
use radio_bench::scenarios::RunnerConfig;
use radio_bench::server::{serve, ServeOptions, ServeSummary, MAX_LINE_BYTES};

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("server")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Starts a server on an ephemeral port over `dir` and returns its address
/// plus the join handle yielding the exit summary.
fn spawn_server(
    dir: &Path,
    accept_threads: usize,
    hot_cap: usize,
) -> (std::net::SocketAddr, std::thread::JoinHandle<ServeSummary>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("local addr");
    let dir = dir.to_path_buf();
    let handle = std::thread::spawn(move || {
        let results = ResultStore::new(dir).with_hot_set(hot_cap);
        serve(
            listener,
            &RunnerConfig::serial(),
            None,
            &results,
            &ServeOptions { accept_threads },
        )
        .expect("serve")
    });
    (addr, handle)
}

/// One line-protocol client. Each open client pins one accept-pool
/// handler, so tests must keep `open clients ≤ accept_threads` or close
/// earlier ones before connecting more.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        let writer = stream.try_clone().expect("clone stream");
        Client {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    /// Reads one raw response line (trailing newline stripped). `None`
    /// means the server closed or reset the connection — an allowed
    /// outcome for faulted or shut-down peers, never a test hang (reads
    /// time out loudly).
    fn recv(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end_matches('\n').to_string()),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::BrokenPipe
                        | ErrorKind::UnexpectedEof
                ) =>
            {
                None
            }
            Err(e) => panic!("read response: {e}"),
        }
    }

    fn ask(&mut self, line: &str) -> String {
        self.send(line);
        self.recv().expect("response line")
    }

    fn ask_json(&mut self, line: &str) -> Json {
        let raw = self.ask(line);
        Json::parse(&raw).unwrap_or_else(|e| panic!("response not JSON ({e}): {raw}"))
    }

    /// A request that tolerates the server going away mid-exchange (soak
    /// traffic racing shutdown): `None` on any write/read failure.
    fn try_ask(&mut self, line: &str) -> Option<String> {
        self.writer.write_all(line.as_bytes()).ok()?;
        self.writer.write_all(b"\n").ok()?;
        self.writer.flush().ok()?;
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(response.trim_end_matches('\n').to_string()),
        }
    }

    fn shutdown(&mut self) {
        let bye = self.ask_json(r#"{"cmd":"shutdown"}"#);
        assert_eq!(bye.get("shutdown").and_then(Json::as_bool), Some(true));
    }
}

fn u(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing u64 {key:?} in {v:?}"))
}

fn is_ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_text(v: &Json) -> &str {
    v.get("error").and_then(Json::as_str).unwrap_or_default()
}

fn response_record_count(v: &Json) -> u64 {
    if let Some(items) = v.get("batch").and_then(Json::as_array) {
        items
            .iter()
            .map(|item| {
                item.get("records")
                    .and_then(Json::as_array)
                    .map_or(0, |r| r.len() as u64)
            })
            .sum()
    } else {
        v.get("records")
            .and_then(Json::as_array)
            .map_or(0, |r| r.len() as u64)
    }
}

/// The shared warm mix: a batch and two single requests over small cells
/// (7 distinct cells, 10 record occurrences).
fn shared_mix() -> Vec<String> {
    vec![
        r#"{"cmd":"run","family":"path","size":48,"protocol":"trivial_bfs","seeds":[0,1,2]}"#.into(),
        r#"{"cmd":"run","batch":[{"family":"grid","size":64,"protocol":"trivial_bfs","seeds":[0,1]},{"family":"cycle","size":40,"protocol":"trivial_bfs","seeds":[0]},{"family":"path","size":48,"protocol":"trivial_bfs","seeds":[1,2]}]}"#.into(),
        r#"{"cmd":"run","family":"tree3","size":40,"protocol":"decay_bfs","seeds":[0]}"#.into(),
    ]
}

/// Client `i`'s private cold request: seeds nobody else touches, so its
/// `hits`/`computed` split is deterministic under any interleaving.
fn cold_mix(i: usize) -> String {
    format!(
        r#"{{"cmd":"run","family":"path","size":48,"protocol":"trivial_bfs","seeds":[{},{}]}}"#,
        100 + 10 * i,
        101 + 10 * i
    )
}

/// Runs client `i`'s full script against `addr` and returns its responses
/// in order: private cold cells, the shared warm mix twice, the private
/// cells again (now warm) — overlapping cold and warm traffic.
fn client_script(addr: std::net::SocketAddr, i: usize) -> Vec<String> {
    let mut client = Client::connect(addr);
    let mut responses = Vec::new();
    responses.push(client.ask(&cold_mix(i)));
    for request in shared_mix().iter().chain(shared_mix().iter()) {
        responses.push(client.ask(request));
    }
    responses.push(client.ask(&cold_mix(i)));
    responses
}

/// Pre-warms the shared mix over one short-lived connection and returns
/// the cold responses.
fn prewarm(addr: std::net::SocketAddr) -> Vec<String> {
    let mut warmer = Client::connect(addr);
    let responses: Vec<String> = shared_mix().iter().map(|r| warmer.ask(r)).collect();
    for raw in &responses {
        assert!(
            is_ok(&Json::parse(raw).expect("pre-warm JSON")),
            "pre-warm failed: {raw}"
        );
    }
    responses
}

#[test]
fn concurrent_clients_are_byte_identical_to_serial_with_exact_counter_sums() {
    const CLIENTS: usize = 4;

    // Serial reference: one client at a time, fresh store, after the same
    // pre-warm of the shared mix.
    let serial_dir = scratch("conform-serial");
    let (addr, server) = spawn_server(&serial_dir, 1, 64);
    prewarm(addr);
    let serial: Vec<Vec<String>> = (0..CLIENTS).map(|i| client_script(addr, i)).collect();
    Client::connect(addr).shutdown();
    server.join().expect("serial server");

    // Concurrent run: same pre-warm, same scripts, four clients at once on
    // a four-handler accept pool.
    let dir = scratch("conform-concurrent");
    let (addr, server) = spawn_server(&dir, CLIENTS, 64);
    let prewarm_responses = prewarm(addr);
    let concurrent: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| scope.spawn(move || client_script(addr, i)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    // Every response of every client is byte-identical to the serial run.
    for (i, (serial_responses, concurrent_responses)) in
        serial.iter().zip(concurrent.iter()).enumerate()
    {
        assert_eq!(serial_responses.len(), concurrent_responses.len());
        for (j, (s, c)) in serial_responses
            .iter()
            .zip(concurrent_responses.iter())
            .enumerate()
        {
            assert_eq!(s, c, "client {i} response {j} diverged under concurrency");
        }
    }

    // Per-response accounting sums exactly to the stats totals: every run
    // response the server emitted (pre-warm + all concurrent clients) is
    // in our tallies, and `stats`/`shutdown` requests touch none of the
    // run counters.
    let mut hits = 0u64;
    let mut computed = 0u64;
    let mut served = 0u64;
    for raw in prewarm_responses.iter().chain(concurrent.iter().flatten()) {
        let v = Json::parse(raw).expect("response JSON");
        assert!(is_ok(&v), "errored response under concurrency: {raw}");
        hits += u(&v, "hits");
        computed += u(&v, "computed");
        served += response_record_count(&v);
    }
    let mut last = Client::connect(addr);
    let stats = last.ask_json(r#"{"cmd":"stats"}"#);
    assert_eq!(u(&stats, "hits"), hits, "probe hits must sum exactly");
    assert_eq!(
        u(&stats, "computed"),
        computed,
        "computed cells must sum exactly"
    );
    assert_eq!(
        u(&stats, "served"),
        served,
        "served records must sum exactly"
    );
    last.shutdown();
    let summary = server.join().expect("concurrent server");
    assert_eq!(summary.connections as usize, CLIENTS + 2);
    assert_eq!(summary.served, served);
    assert_eq!(summary.computed, computed);
    std::fs::remove_dir_all(&serial_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_faults_get_structured_errors_and_never_wedge_the_accept_pool() {
    let dir = scratch("faults");
    let (addr, server) = spawn_server(&dir, 2, 16);
    let healthy = r#"{"cmd":"run","family":"path","size":16,"protocol":"trivial_bfs"}"#;

    // A stalled client (connects, never sends) pins one handler for the
    // whole test; everything below must still be served by the other.
    let staller = TcpStream::connect(addr).expect("staller connects");

    // Truncated request (the newline made it, the JSON didn't).
    let mut client = Client::connect(addr);
    let v = client.ask_json(r#"{"cmd":"run","fam"#);
    assert!(!is_ok(&v));
    assert_eq!(u(&v, "code"), 2);
    // The connection survives a malformed line: framing held.
    assert!(is_ok(&client.ask_json(healthy)));

    // Binary garbage, including invalid UTF-8.
    client
        .writer
        .write_all(&[0xff, 0xfe, 0x00, 0x80, b'{', 0xc3, 0x28, b'\n'])
        .expect("garbage");
    client.writer.flush().expect("flush");
    let raw = client.recv().expect("garbage gets a response");
    let v = Json::parse(&raw).expect("structured error");
    assert!(!is_ok(&v));
    assert!(error_text(&v).contains("UTF-8"), "{raw}");
    assert!(is_ok(&client.ask_json(healthy)));

    // A nesting bomb is cut off by the parser's depth cap, not the stack.
    let bomb = format!("{}{}", "[".repeat(4096), "]".repeat(4096));
    let v = client.ask_json(&bomb);
    assert!(!is_ok(&v));
    assert!(error_text(&v).contains("nesting"), "{v:?}");
    assert!(is_ok(&client.ask_json(healthy)));

    // An oversized line (> 1 MiB) forfeits the connection: the server
    // sends a structured refusal if the socket still allows it, then
    // drops. Either way the client ends disconnected, never hung.
    let mut big = String::with_capacity(MAX_LINE_BYTES + 64);
    big.push_str(r#"{"cmd":"run","family":""#);
    while big.len() <= MAX_LINE_BYTES {
        big.push('x');
    }
    big.push_str("\"}");
    client.send(&big);
    if let Some(raw) = client.recv() {
        let v = Json::parse(&raw).expect("refusal is JSON");
        assert!(!is_ok(&v));
        assert!(error_text(&v).contains("exceeds"), "{raw}");
    }
    assert_eq!(client.recv(), None, "oversized line drops the connection");

    // Mid-request disconnect: half a request, then the socket dies.
    {
        let mut dropper = Client::connect(addr);
        dropper
            .writer
            .write_all(br#"{"cmd":"run","family":"pa"#)
            .expect("partial");
        dropper.writer.flush().expect("flush");
    }

    // The accept pool is still healthy after every fault above: a fresh
    // connection gets a correct answer and working stats.
    let mut after = Client::connect(addr);
    let v = after.ask_json(healthy);
    assert!(is_ok(&v));
    assert_eq!(u(&v, "hits") + u(&v, "computed"), 1);
    let stats = after.ask_json(r#"{"cmd":"stats"}"#);
    assert!(is_ok(&stats));
    after.shutdown();
    drop(staller);
    let summary = server.join().expect("server survives the fault battery");
    assert!(summary.requests >= 8, "requests={}", summary.requests);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_second_client_is_served_while_the_first_computes_a_cold_xl_cell() {
    // The PR 8 regression: `serve` handled one connection at a time, so a
    // client whose request was computing held the listener and every other
    // client hung until the first disconnected. Pin the fix
    // deterministically: client A starts a long cold 2^18 cell and B then
    // completes full round trips while A's connection is still open and
    // mid-request — impossible under a single-connection loop, no timing
    // assumptions needed.
    let dir = scratch("liveness");
    let (addr, server) = spawn_server(&dir, 2, 16);

    let small = r#"{"cmd":"run","family":"path","size":16,"protocol":"trivial_bfs"}"#;
    {
        let mut warm = Client::connect(addr);
        assert!(is_ok(&warm.ask_json(small)));
    }

    let mut a = Client::connect(addr);
    a.send(
        r#"{"cmd":"run","family":"path","size":262144,"protocol":"trivial_bfs:depth=64","seeds":[0]}"#,
    );
    // B's requests deliberately avoid the compute pool (warm run, stats, a
    // structured error), so they are served even while A's cell owns the
    // only compute worker.
    let mut b = Client::connect(addr);
    let warm_run = b.ask_json(small);
    assert!(is_ok(&warm_run));
    assert_eq!(u(&warm_run, "hits"), 1, "B's run is a pure store hit");
    let stats = b.ask_json(r#"{"cmd":"stats"}"#);
    assert!(is_ok(&stats));
    let err = b.ask_json(r#"{"cmd":"nope"}"#);
    assert!(!is_ok(&err));

    // Only now collect A's response; it must still be correct.
    let a_raw = a.recv().expect("A's response");
    let a_response = Json::parse(&a_raw).expect("A's response is JSON");
    assert!(is_ok(&a_response), "{a_raw}");
    assert_eq!(u(&a_response, "computed"), 1);
    assert_eq!(
        a_response
            .get("records")
            .and_then(Json::as_array)
            .map(|r| r.len()),
        Some(1)
    );

    b.shutdown();
    drop(a);
    server.join().expect("server");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_recovery_and_tiny_hot_set_caps_serve_identical_bytes() {
    let dir = scratch("recovery");
    let index_path = dir.join(INDEX_FILE_NAME);
    let mix = shared_mix();

    // Cold pass with the hot set off: populate the store and the index,
    // and take the reference warm bytes.
    let (addr, server) = spawn_server(&dir, 2, 0);
    let mut client = Client::connect(addr);
    for request in &mix {
        assert!(is_ok(&client.ask_json(request)));
    }
    let reference: Vec<String> = mix.iter().map(|r| client.ask(r)).collect();
    let stats = client.ask_json(r#"{"cmd":"stats"}"#);
    let entries = u(&stats, "entries");
    let bytes = u(&stats, "bytes");
    assert!(entries >= 7, "the mix stores at least its distinct cells");
    client.shutdown();
    server.join().expect("cold server");
    assert!(
        index_path.exists(),
        "a put-heavy session persists the index"
    );
    let pristine_index = std::fs::read(&index_path).expect("index bytes");

    // Deleted, garbage, truncated, and stale-fingerprint index files are
    // all rebuilt from the directory walk — stats and served bytes do not
    // change. A tiny hot-set cap (eviction on every insert) rides along to
    // pin that hot-vs-disk reads are byte-identical too.
    let mut stale = pristine_index.clone();
    for b in &mut stale[8..16] {
        *b ^= 0xff; // flip the engine fingerprint in the header
    }
    let cases: Vec<(&str, Option<Vec<u8>>)> = vec![
        ("deleted", None),
        ("garbage", Some(b"RIDXgarbage-not-an-index".to_vec())),
        (
            "truncated",
            Some(pristine_index[..pristine_index.len() - 5].to_vec()),
        ),
        ("stale fingerprint", Some(stale)),
    ];
    for (what, planted) in cases {
        match &planted {
            None => std::fs::remove_file(&index_path).expect("delete index"),
            Some(bytes) => std::fs::write(&index_path, bytes).expect("plant index"),
        }
        let (addr, server) = spawn_server(&dir, 2, 2);
        let mut client = Client::connect(addr);
        let warm: Vec<String> = mix.iter().map(|r| client.ask(r)).collect();
        assert_eq!(warm, reference, "{what}: warm bytes diverged");
        let stats = client.ask_json(r#"{"cmd":"stats"}"#);
        assert_eq!(
            u(&stats, "entries"),
            entries,
            "{what}: entries after rebuild"
        );
        assert_eq!(u(&stats, "bytes"), bytes, "{what}: bytes after rebuild");
        assert_eq!(
            u(&stats, "computed"),
            0,
            "{what}: a rebuilt index never forces recomputes"
        );
        client.shutdown();
        server.join().expect("recovered server");
        assert!(
            index_path.exists(),
            "{what}: the rebuild rewrites the index"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeded_soak_of_randomized_batches_stays_clean_through_shutdown() {
    use rand::Rng;
    const CLIENTS: usize = 3;
    const REQUESTS_PER_CLIENT: usize = 12;

    let dir = scratch("soak");
    // One handler per soak client plus one for the stats monitor.
    let (addr, server) = spawn_server(&dir, CLIENTS + 1, 8);

    // Each client draws randomized batched requests from a deterministic
    // per-client stream over a shared cell pool, so cold/warm traffic
    // overlaps across clients and racing puts on the same key happen.
    let families = ["path", "cycle", "grid", "tree3"];
    let counts: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut r = radio_bench::rng(9000 + c as u64);
                    let mut client = Client::connect(addr);
                    let mut answered = 0u64;
                    let mut records = 0u64;
                    for _ in 0..REQUESTS_PER_CLIENT {
                        let items: Vec<String> = (0..r.gen_range(1..4))
                            .map(|_| {
                                format!(
                                    r#"{{"family":"{}","size":{},"protocol":"trivial_bfs","seeds":[{}]}}"#,
                                    families[r.gen_range(0..families.len())],
                                    [16, 25, 36][r.gen_range(0..3usize)],
                                    r.gen_range(0..4)
                                )
                            })
                            .collect();
                        let request = format!(r#"{{"cmd":"run","batch":[{}]}}"#, items.join(","));
                        let Some(raw) = client.try_ask(&request) else {
                            // The server shut down between our write and
                            // its read — an allowed end for in-flight
                            // soak traffic.
                            break;
                        };
                        let v = Json::parse(&raw).expect("soak response is JSON");
                        assert!(is_ok(&v), "soak got an errored response: {raw}");
                        answered += 1;
                        records += response_record_count(&v);
                    }
                    (answered, records)
                })
            })
            .collect();

        // While the soak traffic is in flight, poll stats from a separate
        // connection and assert monotonicity; then shut down with requests
        // still going.
        let mut monitor = Client::connect(addr);
        let mut last = 0u64;
        loop {
            let stats = monitor.ask_json(r#"{"cmd":"stats"}"#);
            let requests = u(&stats, "requests");
            assert!(requests >= last, "stats went backwards");
            last = requests;
            if requests >= (CLIENTS * REQUESTS_PER_CLIENT / 2) as u64 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        monitor.shutdown();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak client"))
            .collect()
    });

    let summary = server.join().expect("soak server exits cleanly");
    let answered: u64 = counts.iter().map(|(a, _)| a).sum();
    let records: u64 = counts.iter().map(|(_, r)| r).sum();
    assert!(answered > 0, "the soak must answer traffic before shutdown");
    assert!(
        summary.served >= records,
        "served {} < records seen by clients {records}",
        summary.served
    );
    assert!(summary.requests > answered, "stats polls count as requests");
    std::fs::remove_dir_all(&dir).ok();
}
