//! Accuracy conformance for the `diameter:*` protocol family on the
//! scenario runner: hyperball estimates must land inside the standard
//! `1.04/√2^p` relative-error envelope against the exact BFS diameter on
//! seeded path/grid/tree families (with the envelope evaluated through the
//! same `diameter_agreement` predicate the sweep records), the exact
//! estimators must honor their own approximation guarantees, and every
//! diameter record must come out byte-identical at `--threads 1` and `4`.

use radio_bench::scenarios::{
    diameter_agreement, records_to_json, run_scenario, run_scenario_with, Family, Protocol,
    RunnerConfig, Scenario, StackSpec,
};
use radio_protocols::sketch::relative_error;

fn diameter_scenario(name: String, family: Family, sizes: Vec<usize>, spec: &str) -> Scenario {
    let registry = energy_bfs::protocol::registry();
    Scenario {
        name,
        family,
        sizes,
        seeds: (0..4).collect(),
        protocol: Protocol::from_spec(spec, &registry).expect("diameter spec resolves"),
        stack: StackSpec::Abstract,
    }
}

/// The seeded conformance matrix: one scenario per (family, precision),
/// sizes chosen so the exact diameters range from shallow (grid) to deep
/// (path), where round-counting sketches are most stressed.
fn conformance_cases() -> Vec<(Family, &'static str, Vec<usize>)> {
    vec![
        (Family::Path, "path", vec![17, 33, 64]),
        (Family::Grid, "grid", vec![64, 144, 256]),
        (Family::Tree { arity: 3 }, "tree3", vec![40, 121]),
    ]
}

#[test]
fn hyperball_estimates_stay_inside_the_pinned_error_envelope() {
    for p in [6u32, 8] {
        let tol = relative_error(p);
        for (family, tag, sizes) in conformance_cases() {
            let scenario = diameter_scenario(
                format!("conf-{tag}-p{p}"),
                family,
                sizes,
                &format!("diameter:hyperball:p={p}"),
            );
            let records = run_scenario(&scenario);
            assert!(!records.is_empty());
            for r in &records {
                let est = r.estimate.expect("hyperball cells carry an estimate");
                let exact = r.exact.expect("exact diameter fits under the ceiling");
                // The pinned tolerance: ±max(⌈1.04/√2^p · D⌉, 1) rounds.
                let slack = (tol * exact as f64).ceil().max(1.0) as u64;
                assert!(
                    est.abs_diff(exact) <= slack,
                    "{}: n={} seed={}: estimate {} vs exact {} exceeds ±{}",
                    scenario.name,
                    r.n,
                    r.seed,
                    est,
                    exact,
                    slack
                );
                // The record's own agreement column says the same thing.
                assert_eq!(
                    r.agrees,
                    Some(true),
                    "{}: n={} seed={}",
                    scenario.name,
                    r.n,
                    r.seed
                );
                assert!(diameter_agreement(&r.protocol, est, exact));
                assert_eq!(r.outcome, est, "outcome column mirrors the estimate");
            }
        }
    }
}

#[test]
fn exact_estimators_honor_their_approximation_guarantees() {
    for (spec, check) in [
        (
            "diameter:two_approx",
            (|est, exact| est <= exact && 2 * est >= exact) as fn(u64, u64) -> bool,
        ),
        (
            "diameter:three_halves_approx",
            (|est, exact| est <= exact && est >= (2 * exact) / 3) as fn(u64, u64) -> bool,
        ),
    ] {
        for (family, tag, sizes) in conformance_cases() {
            let scenario = diameter_scenario(format!("conf-{tag}-{spec}"), family, sizes, spec);
            for r in run_scenario(&scenario) {
                let est = r.estimate.expect("diameter cells carry an estimate");
                let exact = r.exact.expect("exact diameter fits under the ceiling");
                assert!(
                    check(est, exact),
                    "{}: n={} seed={}: estimate {} breaks the {} guarantee against exact {}",
                    scenario.name,
                    r.n,
                    r.seed,
                    est,
                    spec,
                    exact
                );
                assert_eq!(r.agrees, Some(true));
            }
        }
    }
}

#[test]
fn diameter_records_are_byte_identical_at_one_and_four_threads() {
    let registry = energy_bfs::protocol::registry();
    let specs = [
        "diameter:hyperball:p=6",
        "diameter:hyperball:p=6,rounds=4",
        "diameter:two_approx",
        "diameter:three_halves_approx",
    ];
    for (i, spec) in specs.iter().enumerate() {
        let scenario = Scenario {
            name: format!("threads-diam-{i}"),
            family: Family::Grid,
            sizes: vec![64, 100],
            seeds: (0..3).collect(),
            protocol: Protocol::from_spec(spec, &registry).expect("diameter spec resolves"),
            stack: StackSpec::Abstract,
        };
        let serial = run_scenario(&scenario);
        let pooled = run_scenario_with(&scenario, &RunnerConfig::with_threads(4));
        assert_eq!(
            records_to_json(&serial),
            records_to_json(&pooled),
            "{spec}: records diverged between 1 and 4 threads"
        );
    }
}
