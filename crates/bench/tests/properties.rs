//! Property-based tests for the parallel scenario runner and the protocol
//! registry: randomly drawn `Scenario` configurations (family × size × seed
//! count × backend × protocol) must produce record-for-record identical
//! output on the worker pool and on the exact serial path; reordering a
//! scenario *list* must only permute the output stream by whole scenario —
//! never within one; and registry-dispatched protocol runs must be
//! byte-identical to the direct free-function calls they wrap, on every
//! backend.

use proptest::prelude::*;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use energy_bfs::baseline::{decay_bfs, trivial_bfs, trivial_bfs_cd};
use energy_bfs::{build_hierarchy, recursive_bfs_with_hierarchy, RecursiveBfsConfig};
use radio_bench::results::ResultStore;
use radio_bench::scenarios::{
    records_to_json, run_scenario, run_scenario_with, run_scenario_with_stores, run_scenarios_with,
    Family, Protocol, RunnerConfig, Scenario, StackSpec,
};
use radio_protocols::protocol::ProtocolInput;
use radio_protocols::{
    cluster_distributed, ClusteringConfig, EnergyModel, Msg, RadioStack, Stack, StackBuilder,
};

/// Decodes a drawn configuration into a `Scenario`. Families, backends and
/// protocols are picked by small integers so the vendored proptest's range
/// strategies cover the whole grid; sizes stay small because every case
/// runs the scenario at least twice (serial + pool).
fn decode_scenario(
    family_pick: u8,
    size: usize,
    seed_lo: u64,
    seed_count: usize,
    backend_pick: u8,
    proto_pick: u8,
) -> Scenario {
    let family = match family_pick % 7 {
        0 => Family::Path,
        1 => Family::Cycle,
        2 => Family::Grid,
        3 => Family::Tree { arity: 3 },
        4 => Family::Star,
        5 => Family::Lollipop,
        _ => Family::Complete,
    };
    let stack = match backend_pick % 6 {
        0 | 1 => StackSpec::Abstract,
        2 => StackSpec::physical(false),
        3 => StackSpec::physical(true),
        4 => StackSpec::AbstractCd,
        _ => StackSpec::Physical {
            cd: true,
            model: EnergyModel::Weighted {
                listen: 1,
                transmit: 3,
            },
        },
    };
    let protocol = match proto_pick % 5 {
        0 => Protocol::TrivialBfs,
        1 => Protocol::Clustering {
            inv_beta: 2 + u64::from(family_pick % 3),
        },
        2 => Protocol::DecayBfs,
        3 => Protocol::LbSweep {
            rounds: 2 + u64::from(proto_pick % 3),
        },
        _ => Protocol::TrivialBfsCd,
    };
    // The CD-exploiting wavefront needs a CD-capable stack — the registry's
    // capability gate would (correctly) refuse anything else. Both CD-capable
    // backends (physical and abstract) are exercised.
    let stack = if protocol == Protocol::TrivialBfsCd
        && !matches!(
            stack,
            StackSpec::AbstractCd | StackSpec::Physical { cd: true, .. }
        ) {
        if backend_pick.is_multiple_of(2) {
            StackSpec::physical(true)
        } else {
            StackSpec::AbstractCd
        }
    } else {
        stack
    };
    Scenario {
        name: format!("prop-{family_pick}-{backend_pick}-{proto_pick}"),
        family,
        sizes: vec![size],
        seeds: (seed_lo..seed_lo + seed_count as u64).collect(),
        protocol,
        stack,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_run_equals_serial_run_record_for_record(
        (family_pick, size, seed_lo) in (0u8..64, 12usize..40, 0u64..1_000_000),
        (seed_count, backend_pick, proto_pick, threads) in (1usize..6, 0u8..64, 0u8..64, 2usize..9),
    ) {
        let scenario = decode_scenario(
            family_pick, size, seed_lo, seed_count, backend_pick, proto_pick,
        );
        let serial = run_scenario(&scenario);
        prop_assert_eq!(serial.len(), seed_count);
        let parallel = run_scenario_with(&scenario, &RunnerConfig::with_threads(threads));
        prop_assert_eq!(parallel.len(), serial.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            prop_assert_eq!(
                s, p,
                "scenario {:?} at {} threads: record #{} diverged",
                &scenario.name, threads, i
            );
        }
    }

    #[test]
    fn warm_result_store_runs_are_byte_identical_to_cold_at_any_thread_count(
        (family_pick, size, seed_lo) in (0u8..64, 12usize..40, 0u64..1_000_000),
        (seed_count, backend_pick, proto_pick, threads) in (1usize..6, 0u8..64, 0u8..64, 1usize..9),
    ) {
        // The incremental-sweep property: for ANY drawn scenario, a cold
        // store-backed run and a warm one emit the same JSON bytes as the
        // storeless serial reference — at any worker count. This is what
        // licenses `--result-dir` as a pure wall-clock optimization.
        let scenario = decode_scenario(
            family_pick, size, seed_lo, seed_count, backend_pick, proto_pick,
        );
        let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
            .join("prop-results")
            .join(format!("{}-{family_pick}-{size}-{seed_lo}-{seed_count}-{backend_pick}-{proto_pick}",
                std::process::id()));
        let store = ResultStore::new(&dir);
        let reference = records_to_json(&run_scenario(&scenario));
        let cfg = RunnerConfig::with_threads(threads);
        let cold = records_to_json(&run_scenario_with_stores(&scenario, &cfg, None, Some(&store), None));
        prop_assert_eq!(store.misses() as usize, seed_count, "cold run computes every cell");
        let warm = records_to_json(&run_scenario_with_stores(&scenario, &cfg, None, Some(&store), None));
        prop_assert_eq!(store.hits() as usize, seed_count, "warm run answers every cell");
        prop_assert_eq!(&cold, &reference, "cold store run diverged from the serial reference");
        prop_assert_eq!(&warm, &reference, "warm store run diverged from the serial reference");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shuffling_the_scenario_list_permutes_output_by_scenario_only(
        perm_seed in 0u64..1_000_000,
        threads in 1usize..9,
    ) {
        // A fixed, distinguishable list: different names, families, seed
        // counts and backends.
        let list: Vec<Scenario> = vec![
            decode_scenario(0, 24, 5, 3, 0, 0),
            decode_scenario(2, 30, 0, 4, 2, 1),
            decode_scenario(4, 18, 9, 2, 4, 2),
            decode_scenario(6, 16, 1, 3, 0, 1),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, mut s)| {
            s.name = format!("list-{i}");
            s
        })
        .collect();
        // Per-scenario reference blocks from the unshuffled serial run.
        let blocks: Vec<_> = list.iter().map(run_scenario).collect();

        // Fisher–Yates the list with a seeded RNG.
        let mut order: Vec<usize> = (0..list.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(perm_seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..i + 1));
        }
        let shuffled: Vec<Scenario> = order.iter().map(|&i| list[i].clone()).collect();
        let records = run_scenarios_with(&shuffled, &RunnerConfig::with_threads(threads));

        // The output must be exactly the reference blocks, concatenated in
        // shuffled order: grouped by scenario, internally untouched.
        let mut cursor = 0usize;
        for &i in &order {
            let block = &blocks[i];
            prop_assert!(cursor + block.len() <= records.len());
            for (j, want) in block.iter().enumerate() {
                prop_assert_eq!(
                    &records[cursor + j], want,
                    "scenario {:?} (perm {:?}): record {} moved or changed",
                    &list[i].name, &order, j
                );
            }
            cursor += block.len();
        }
        prop_assert_eq!(cursor, records.len(), "stray records after all blocks");
    }
}

/// Builds one stack of the drawn backend; `cd` forces collision detection
/// (for the `*_cd` protocols) and `backend_pick`'s high bit enables it
/// opportunistically everywhere else, so both CD and no-CD stacks are
/// exercised for every protocol that accepts both.
fn build_stack(backend_pick: u8, cd: bool, g: &radio_graph::Graph, seed: u64) -> Stack {
    let builder = StackBuilder::new(g.clone()).with_seed(seed);
    let builder = match backend_pick % 3 {
        0 => builder,
        1 => builder.physical(EnergyModel::Uniform),
        _ => builder.physical(EnergyModel::Weighted {
            listen: 1,
            transmit: 3,
        }),
    };
    if cd || backend_pick >= 128 {
        builder.with_cd().build()
    } else {
        builder.build()
    }
}

/// The exact free-function call each registry spec wraps, replicated the
/// way the pre-redesign scenario runner made it. Returns the outcome scalar
/// the record would carry.
fn run_direct(spec: &str, net: &mut Stack, seed: u64) -> u64 {
    let n = net.num_nodes();
    let active = vec![true; n];
    match spec {
        "trivial_bfs" => {
            let result = trivial_bfs(net, &[0], &active, n as u64);
            result.dist.iter().filter(|d| d.is_some()).count() as u64
        }
        "trivial_bfs_cd" => {
            let result = trivial_bfs_cd(net, &[0], &active, n as u64);
            result.dist.iter().filter(|d| d.is_some()).count() as u64
        }
        "decay_bfs" => {
            let result = decay_bfs(net, 0);
            result.dist.iter().filter(|d| d.is_some()).count() as u64
        }
        "recursive" => {
            let depth = (n - 1) as u64;
            let inv_beta = ((depth as f64).sqrt().round() as u64)
                .next_power_of_two()
                .max(4);
            let config = RecursiveBfsConfig {
                inv_beta,
                max_depth: 1,
                trivial_cutoff: inv_beta,
                seed,
                ..Default::default()
            };
            let hierarchy = build_hierarchy(net, &config);
            let result = recursive_bfs_with_hierarchy(net, &hierarchy, &[0], depth, &config, &[]);
            result.dist.iter().filter(|d| d.is_some()).count() as u64
        }
        "clustering:b=3" => {
            let cfg = ClusteringConfig::new(3);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            cluster_distributed(net, &cfg, &mut rng).num_clusters() as u64
        }
        "lb_sweep:r=5" => {
            let mut frame = net.new_frame();
            let mut delivered = 0u64;
            for r in 0..5u64 {
                frame.clear();
                let src = (r as usize) % n;
                frame.add_sender(src, Msg::words(&[r]));
                for v in 0..n {
                    if v != src {
                        frame.add_receiver(v);
                    }
                }
                net.local_broadcast(&mut frame);
                delivered += frame.delivered().len() as u64;
            }
            delivered
        }
        other => panic!("no direct twin for spec {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn registry_dispatch_is_byte_identical_to_direct_calls(
        (family_pick, size, seed) in (0u8..64, 10usize..36, 0u64..1_000_000),
        (backend_pick, proto_pick) in (0u8..255, 0u8..64),
    ) {
        // Every registered protocol, random scenarios, both backends (and
        // both CD settings where the protocol allows them): resolving a
        // spec through the registry and running it must reproduce the
        // direct free-function call bit for bit — same payload, same
        // outcome, same energy counters. This is the contract that made the
        // scenario runner's migration to registry dispatch a no-op at the
        // JSON level.
        let specs = [
            "trivial_bfs",
            "trivial_bfs_cd",
            "decay_bfs",
            "recursive",
            "clustering:b=3",
            "lb_sweep:r=5",
        ];
        let spec = specs[usize::from(proto_pick) % specs.len()];
        let family = match family_pick % 5 {
            0 => Family::Path,
            1 => Family::Cycle,
            2 => Family::Grid,
            3 => Family::Tree { arity: 3 },
            _ => Family::Star,
        };
        let g = family.build(size);
        let cd = spec == "trivial_bfs_cd";

        let mut via_registry = build_stack(backend_pick, cd, &g, seed);
        let report = energy_bfs::protocol::registry()
            .get(spec)
            .unwrap()
            .run(&mut via_registry, &ProtocolInput::from_seed(seed))
            .unwrap();

        let mut direct_stack = build_stack(backend_pick, cd, &g, seed);
        let outcome = run_direct(spec, &mut direct_stack, seed);

        prop_assert_eq!(
            report.outcome(), outcome,
            "spec {} on {}: outcome diverged", spec, direct_stack.capabilities().label()
        );
        prop_assert_eq!(
            report.energy, direct_stack.energy_view(),
            "spec {} on {}: energy counters diverged",
            spec, direct_stack.capabilities().label()
        );
        prop_assert_eq!(report.lb_calls(), via_registry.lb_time());
    }
}
