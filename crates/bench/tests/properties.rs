//! Property-based tests for the parallel scenario runner: randomly drawn
//! `Scenario` configurations (family × size × seed count × backend ×
//! protocol) must produce record-for-record identical output on the worker
//! pool and on the exact serial path, and reordering a scenario *list* must
//! only permute the output stream by whole scenario — never within one.

use proptest::prelude::*;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use radio_bench::scenarios::{
    run_scenario, run_scenario_with, run_scenarios_with, Family, Protocol, RunnerConfig, Scenario,
    StackSpec,
};
use radio_protocols::EnergyModel;

/// Decodes a drawn configuration into a `Scenario`. Families, backends and
/// protocols are picked by small integers so the vendored proptest's range
/// strategies cover the whole grid; sizes stay small because every case
/// runs the scenario at least twice (serial + pool).
fn decode_scenario(
    family_pick: u8,
    size: usize,
    seed_lo: u64,
    seed_count: usize,
    backend_pick: u8,
    proto_pick: u8,
) -> Scenario {
    let family = match family_pick % 7 {
        0 => Family::Path,
        1 => Family::Cycle,
        2 => Family::Grid,
        3 => Family::Tree { arity: 3 },
        4 => Family::Star,
        5 => Family::Lollipop,
        _ => Family::Complete,
    };
    let stack = match backend_pick % 5 {
        0 | 1 => StackSpec::Abstract,
        2 => StackSpec::physical(false),
        3 => StackSpec::physical(true),
        _ => StackSpec::Physical {
            cd: true,
            model: EnergyModel::Weighted {
                listen: 1,
                transmit: 3,
            },
        },
    };
    let protocol = match proto_pick % 3 {
        0 => Protocol::TrivialBfs,
        1 => Protocol::Clustering {
            inv_beta: 2 + u64::from(family_pick % 3),
        },
        _ => Protocol::LbSweep {
            rounds: 2 + u64::from(proto_pick % 3),
        },
    };
    Scenario {
        name: format!("prop-{family_pick}-{backend_pick}-{proto_pick}"),
        family,
        sizes: vec![size],
        seeds: (seed_lo..seed_lo + seed_count as u64).collect(),
        protocol,
        stack,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_run_equals_serial_run_record_for_record(
        (family_pick, size, seed_lo) in (0u8..64, 12usize..40, 0u64..1_000_000),
        (seed_count, backend_pick, proto_pick, threads) in (1usize..6, 0u8..64, 0u8..64, 2usize..9),
    ) {
        let scenario = decode_scenario(
            family_pick, size, seed_lo, seed_count, backend_pick, proto_pick,
        );
        let serial = run_scenario(&scenario);
        prop_assert_eq!(serial.len(), seed_count);
        let parallel = run_scenario_with(&scenario, &RunnerConfig::with_threads(threads));
        prop_assert_eq!(parallel.len(), serial.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            prop_assert_eq!(
                s, p,
                "scenario {:?} at {} threads: record #{} diverged",
                &scenario.name, threads, i
            );
        }
    }

    #[test]
    fn shuffling_the_scenario_list_permutes_output_by_scenario_only(
        perm_seed in 0u64..1_000_000,
        threads in 1usize..9,
    ) {
        // A fixed, distinguishable list: different names, families, seed
        // counts and backends.
        let list: Vec<Scenario> = vec![
            decode_scenario(0, 24, 5, 3, 0, 0),
            decode_scenario(2, 30, 0, 4, 2, 1),
            decode_scenario(4, 18, 9, 2, 4, 2),
            decode_scenario(6, 16, 1, 3, 0, 1),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, mut s)| {
            s.name = format!("list-{i}");
            s
        })
        .collect();
        // Per-scenario reference blocks from the unshuffled serial run.
        let blocks: Vec<_> = list.iter().map(run_scenario).collect();

        // Fisher–Yates the list with a seeded RNG.
        let mut order: Vec<usize> = (0..list.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(perm_seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..i + 1));
        }
        let shuffled: Vec<Scenario> = order.iter().map(|&i| list[i].clone()).collect();
        let records = run_scenarios_with(&shuffled, &RunnerConfig::with_threads(threads));

        // The output must be exactly the reference blocks, concatenated in
        // shuffled order: grouped by scenario, internally untouched.
        let mut cursor = 0usize;
        for &i in &order {
            let block = &blocks[i];
            prop_assert!(cursor + block.len() <= records.len());
            for (j, want) in block.iter().enumerate() {
                prop_assert_eq!(
                    &records[cursor + j], want,
                    "scenario {:?} (perm {:?}): record {} moved or changed",
                    &list[i].name, &order, j
                );
            }
            cursor += block.len();
        }
        prop_assert_eq!(cursor, records.len(), "stray records after all blocks");
    }
}
