//! Experiment runner: regenerates every quantitative claim of the paper
//! (the E1–E14 index in DESIGN.md / EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! cargo run -p radio-bench --release --bin experiments -- all
//! cargo run -p radio-bench --release --bin experiments -- e6 e12
//! cargo run -p radio-bench --release --bin experiments -- scenarios --threads 4
//! ```
//!
//! `scenarios` accepts `--threads N` (worker threads for the scenario
//! runner; default = available parallelism, `1` = the exact serial path),
//! `--quiet` (suppress per-scenario progress lines on stderr), and
//! `--protocol <spec[,spec…]>` (run only the sweep scenarios whose
//! protocol resolves to one of the given registry specs, e.g.
//! `trivial_bfs_cd`, `clustering:b=4`, or the pair
//! `diameter:hyperball:p=6,diameter:two_approx`; an unknown spec exits
//! non-zero with the registry's known-protocol list). Specs themselves may
//! contain commas between parameters — a comma starts a new spec only when
//! what follows it is a registered protocol name, so
//! `diameter:hyperball:p=6,rounds=12` stays one spec. The emitted records
//! and JSON are byte-identical for every thread count.
//!
//! Dataset substrate knobs (scenarios only):
//!
//! * `--dataset-dir <path>` — where compiled CSR artifacts live
//!   (default `target/datasets`); graphs are compiled there on first use
//!   and bulk-read on every later run.
//! * `--no-dataset-cache` — build every graph from its generator instead.
//!   Records are byte-identical either way (the cache changes where graph
//!   bytes come from, never what they are).
//! * `--xl` — append the `xl-` large-graph scenarios (n up to 2^20) after
//!   the default sweep. Off by default: the 364 default records are the
//!   frozen conformance surface, xl cells are strictly append-only.
//!
//! Result store knobs (scenarios and serve):
//!
//! * `--result-dir <path>` — where per-cell record artifacts live (default
//!   `target/results`). The runner consults the store before dispatching
//!   anything, so a warm re-run computes only absent cells — and the JSON
//!   stays byte-identical to an uncached run at every thread count.
//! * `--no-result-cache` — recompute every cell (the pre-store behaviour).
//!
//! Server mode — sweep-as-a-service:
//!
//! ```text
//! cargo run -p radio-bench --release --bin experiments -- serve --listen 127.0.0.1:7171
//! ```
//!
//! accepts line-delimited JSON requests over TCP (`{"cmd":"run",…}` —
//! single scenario or `"batch":[…]` of them — `{"cmd":"stats"}`,
//! `{"cmd":"shutdown"}`), validates specs through the protocol registry
//! (unknown specs come back as structured errors mirroring this binary's
//! exit-2 contract), shards cells across one persistent worker pool, and
//! answers from the result store when warm. `--listen` defaults to
//! `127.0.0.1:0` (an ephemeral port, printed on stderr). Serve-only
//! knobs:
//!
//! * `--accept-threads N` — connection-handler threads sharing the
//!   listener (default 4); concurrent clients are served in parallel,
//!   all sharing the `--threads` compute pool.
//! * `--hot-set-cap N` — bound on the in-memory hot set of decoded
//!   records in front of the result store (default 256; `0` disables).
//!   Warm hits at the cap answer without touching disk; responses are
//!   byte-identical either way.

use energy_bfs::baseline::trivial_bfs;
use energy_bfs::diameter::{three_halves_approx_diameter, two_approx_diameter};
use energy_bfs::estimates::UpdateKind;
use energy_bfs::hardness::{
    disjointness_communication_bits, disjointness_energy_threshold, distinguishing_success_rate,
    edge_probing_protocol, round_robin_protocol, GoodSlotAccounting,
};
use energy_bfs::metrics::{format_table, EnergySummary};
use energy_bfs::zseq::{ruler, ZSequence};
use energy_bfs::{build_hierarchy, recursive_bfs_with_hierarchy, RecursiveBfsConfig};
use radio_bench::{rng, scaling_config, standard_families};
use radio_graph::cluster_graph::{distance_proxy_stats, lemma_2_1_bound, ClusterGraph};
use radio_graph::diameter::{exact_diameter, satisfies_theorem_5_4_bound};
use radio_graph::lower_bound::build_disjointness_graph;
use radio_graph::mpx::{cluster_centralized, MpxParams};
use radio_graph::{bfs::bfs_distances, generators};
use radio_protocols::cast::down_cast;
use radio_protocols::{
    cluster_distributed, ClusteringConfig, Msg, RadioStack, StackBuilder, VirtualClusterNet,
};
use radio_sim::DecayParams;
use rand::Rng;

fn main() {
    // Split flags (`--threads N`, `--threads=N`, `--quiet`, …) from
    // experiment ids first, so that e.g. `-- scenarios --threads 4` does
    // not read the flag as an unknown id and fall back to running
    // everything. Flags and ids compare case-insensitively, but flag
    // *values* are taken verbatim — `--dataset-dir` is a filesystem path.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut runner = radio_bench::scenarios::RunnerConfig::default();
    let mut protocol_filter: Option<String> = None;
    let mut dataset_dir = String::from("target/datasets");
    let mut use_dataset_cache = true;
    let mut result_dir = String::from("target/results");
    let mut use_result_cache = true;
    let mut listen: Option<String> = None;
    let mut accept_threads: Option<usize> = None;
    let mut hot_set_cap: Option<usize> = None;
    let mut xl = false;
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        let lower = arg.to_lowercase();
        if lower == "--quiet" {
            runner.quiet = true;
        } else if lower == "--threads" {
            let v = it.next().unwrap_or_else(|| die("--threads needs a value"));
            runner.threads = parse_threads(&v);
        } else if let Some(v) = lower.strip_prefix("--threads=") {
            runner.threads = parse_threads(v);
        } else if lower == "--protocol" {
            let v = it.next().unwrap_or_else(|| die("--protocol needs a spec"));
            protocol_filter = Some(v.to_lowercase());
        } else if let Some(v) = lower.strip_prefix("--protocol=") {
            protocol_filter = Some(v.to_string());
        } else if lower == "--dataset-dir" {
            dataset_dir = it
                .next()
                .unwrap_or_else(|| die("--dataset-dir needs a path"));
        } else if let Some(v) = arg.strip_prefix("--dataset-dir=") {
            dataset_dir = v.to_string();
        } else if lower == "--no-dataset-cache" {
            use_dataset_cache = false;
        } else if lower == "--result-dir" {
            result_dir = it
                .next()
                .unwrap_or_else(|| die("--result-dir needs a path"));
        } else if let Some(v) = arg.strip_prefix("--result-dir=") {
            result_dir = v.to_string();
        } else if lower == "--no-result-cache" {
            use_result_cache = false;
        } else if lower == "--listen" {
            listen = Some(
                it.next()
                    .unwrap_or_else(|| die("--listen needs an address")),
            );
        } else if let Some(v) = arg.strip_prefix("--listen=") {
            listen = Some(v.to_string());
        } else if lower == "--accept-threads" {
            let v = it
                .next()
                .unwrap_or_else(|| die("--accept-threads needs a value"));
            accept_threads = Some(parse_count(&v, "--accept-threads").max(1));
        } else if let Some(v) = lower.strip_prefix("--accept-threads=") {
            accept_threads = Some(parse_count(v, "--accept-threads").max(1));
        } else if lower == "--hot-set-cap" {
            let v = it
                .next()
                .unwrap_or_else(|| die("--hot-set-cap needs a value"));
            hot_set_cap = Some(parse_count(&v, "--hot-set-cap"));
        } else if let Some(v) = lower.strip_prefix("--hot-set-cap=") {
            hot_set_cap = Some(parse_count(v, "--hot-set-cap"));
        } else if lower == "--xl" {
            xl = true;
        } else if lower.starts_with("--") {
            die(&format!("unknown flag {arg}\n{USAGE}"));
        } else {
            ids.push(lower);
        }
    }
    // `serve` is exclusive: a long-running server has no business being
    // interleaved with batch experiments, and `--listen` means nothing
    // outside it.
    if ids.iter().any(|a| a == "serve") {
        if ids.len() > 1 {
            die("serve cannot be combined with other experiment ids");
        }
        if protocol_filter.is_some() || xl {
            die("--protocol/--xl do not apply to serve");
        }
        if !use_result_cache {
            die("serve needs the result store; drop --no-result-cache");
        }
        let cache = use_dataset_cache.then(|| radio_graph::dataset::DatasetCache::new(dataset_dir));
        let results = radio_bench::results::ResultStore::new(&result_dir)
            .with_hot_set(hot_set_cap.unwrap_or(256));
        let options = radio_bench::server::ServeOptions {
            accept_threads: accept_threads.unwrap_or(4),
        };
        let addr = listen.as_deref().unwrap_or("127.0.0.1:0");
        let listener = std::net::TcpListener::bind(addr)
            .unwrap_or_else(|e| die(&format!("--listen {addr}: {e}")));
        let local = listener.local_addr().expect("bound socket has an address");
        eprintln!(
            "[serve] listening on {local} (result store {result_dir}, accept-threads {}, hot-set cap {})",
            options.accept_threads,
            results.hot_capacity()
        );
        let summary =
            radio_bench::server::serve(listener, &runner, cache.as_ref(), &results, &options)
                .unwrap_or_else(|e| die(&format!("serve: {e}")));
        eprintln!(
            "[serve] done: requests={} served={} computed={} connections={}",
            summary.requests, summary.served, summary.computed, summary.connections
        );
        eprintln!(
            "[results] dir={} hits={} misses={} hot_hits={}",
            results.dir().display(),
            results.hits(),
            results.misses(),
            results.hot_hits()
        );
        return;
    }
    if listen.is_some() {
        die("--listen only applies to serve");
    }
    if accept_threads.is_some() || hot_set_cap.is_some() {
        die("--accept-threads/--hot-set-cap only apply to serve");
    }
    let run_all = ids.is_empty() || ids.iter().any(|a| a == "all");
    let wants = |id: &str| run_all || ids.iter().any(|a| a == id);

    // Fail fast on --protocol problems: the filter only makes sense for an
    // explicitly requested scenarios run (run_all would otherwise grind
    // through E1–E14 first), and an unresolvable spec must exit before any
    // experiment burns compute.
    if let Some(list) = &protocol_filter {
        if !ids.iter().any(|a| a == "scenarios") {
            die("--protocol requires the scenarios experiment (e.g. `-- scenarios --protocol trivial_bfs_cd`)");
        }
        let registry = energy_bfs::protocol::registry();
        for spec in split_protocol_specs(list, &registry) {
            if let Err(e) = registry.get(&spec) {
                die(&e.to_string());
            }
        }
    }
    if xl && !(run_all || ids.iter().any(|a| a == "scenarios")) {
        die("--xl only applies to the scenarios experiment");
    }

    if wants("e1") {
        e1_ball_intersections();
    }
    if wants("e2") {
        e2_distance_proxy();
    }
    if wants("e3") {
        e3_local_broadcast();
    }
    if wants("e4") {
        e4_distributed_clustering();
    }
    if wants("e5") {
        e5_cluster_simulation_overhead();
    }
    if wants("e6") {
        e6_bfs_energy_scaling();
    }
    if wants("e7") {
        e7_claims_1_and_2();
    }
    if wants("e8") {
        e8_estimate_evolution();
    }
    if wants("e9") {
        e9_z_sequence();
    }
    if wants("e10") {
        e10_kn_vs_kn_minus_e();
    }
    if wants("e11") {
        e11_disjointness_reduction();
    }
    if wants("e12") {
        e12_two_approx_diameter();
    }
    if wants("e13") {
        e13_three_halves_diameter();
    }
    if wants("e14") {
        e14_polling_tradeoff();
    }
    if wants("scenarios") {
        let cache = use_dataset_cache.then(|| radio_graph::dataset::DatasetCache::new(dataset_dir));
        let results = use_result_cache.then(|| radio_bench::results::ResultStore::new(result_dir));
        scenario_sweeps(
            &runner,
            protocol_filter.as_deref(),
            cache.as_ref(),
            results.as_ref(),
            xl,
        );
    }
}

const USAGE: &str = "usage: experiments [all | e1..e14 | scenarios | serve] \
[--threads N] [--quiet] [--protocol <spec[,spec...]>] [--xl] \
[--dataset-dir <path>] [--no-dataset-cache] \
[--result-dir <path>] [--no-result-cache] \
[--listen <addr>] [--accept-threads N] [--hot-set-cap N]";

fn die(msg: &str) -> ! {
    eprintln!("experiments: {msg}");
    std::process::exit(2)
}

fn parse_threads(v: &str) -> usize {
    parse_count(v, "--threads").max(1)
}

fn parse_count(v: &str, flag: &str) -> usize {
    match v.parse::<usize>() {
        Ok(n) => n,
        Err(_) => die(&format!("{flag} needs an integer, got {v:?}")),
    }
}

/// Splits a comma-separated `--protocol` value into individual registry
/// specs. Specs themselves may use commas between *parameters*
/// (`diameter:hyperball:p=6,rounds=12`), so a comma starts a new spec only
/// when the segment's head — the text before its first `:` or `=` — is a
/// registered protocol name; any other segment is a parameter continuation
/// of the spec before it. A head that is neither ends up in front of the
/// registry anyway, which rejects it with the known-protocol list.
fn split_protocol_specs(
    list: &str,
    registry: &radio_protocols::protocol::ProtocolRegistry,
) -> Vec<String> {
    let mut specs: Vec<String> = Vec::new();
    for segment in list.split(',') {
        let head = segment.split([':', '=']).next().unwrap_or("").trim();
        let starts_new = registry.known().contains(&head);
        match specs.last_mut() {
            Some(last) if !starts_new => {
                last.push(',');
                last.push_str(segment);
            }
            _ => specs.push(segment.trim().to_string()),
        }
    }
    specs
}

/// The distinct protocol *specs* of a sweep, for `--protocol` diagnostics
/// — specs, not labels, so the suggestions can be fed straight back to
/// `--protocol`.
fn sweep_protocol_specs(scenarios: &[radio_bench::scenarios::Scenario]) -> Vec<String> {
    let mut specs: Vec<String> = scenarios.iter().map(|s| s.protocol.spec()).collect();
    specs.sort();
    specs.dedup();
    specs
}

/// Batched multi-seed scenario sweeps over the frame engine (grid/tree/
/// cluster/contention workloads at sizes E1–E14 do not cover), executed on
/// the worker pool. Set `SCENARIO_JSON=<path>` to also write the per-seed
/// records as JSON — byte-identical for every `--threads` value.
///
/// With a `--protocol` filter, only the sweep scenarios whose protocol
/// resolves to one of the given (comma-separated) registry specs run; each
/// spec is validated through `energy_bfs::protocol::registry()` first, so
/// a typo exits non-zero with the known-protocol list instead of silently
/// matching nothing.
///
/// With a dataset `cache`, graphs come from compiled CSR artifacts under
/// the cache directory (generator output on first use, bulk read after);
/// the hit/miss tally goes to stderr so CI can assert cache behaviour.
/// With a `results` store, the sweep is *incremental*: cells whose result
/// artifact is already present are answered from disk, only absent cells
/// go to the worker pool, and fresh records are written back — the
/// `[results]` tally on stderr is what the CI smoke asserts. `xl` appends
/// the large-graph scenarios after the default sweep.
fn scenario_sweeps(
    runner: &radio_bench::scenarios::RunnerConfig,
    protocol_filter: Option<&str>,
    cache: Option<&radio_graph::dataset::DatasetCache>,
    results: Option<&radio_bench::results::ResultStore>,
    xl: bool,
) {
    use radio_bench::scenarios::{
        default_scenarios, records_to_json, run_scenarios_with_stores, xl_scenarios,
    };
    let mut scenarios = default_scenarios();
    if xl {
        scenarios.extend(xl_scenarios());
    }
    if let Some(list) = protocol_filter {
        let registry = energy_bfs::protocol::registry();
        let mut labels: Vec<String> = Vec::new();
        for spec in split_protocol_specs(list, &registry) {
            match registry.get(&spec) {
                Ok(p) => labels.push(p.name().as_str().to_string()),
                Err(e) => die(&e.to_string()),
            }
        }
        let all_specs = sweep_protocol_specs(&scenarios);
        scenarios.retain(|s| labels.contains(&s.protocol.label()));
        if scenarios.is_empty() {
            die(&format!(
                "--protocol {list}: no sweep scenario runs {}; sweep specs: {}",
                labels.join(", "),
                all_specs.join(", ")
            ));
        }
    }
    header(
        "SCENARIOS",
        "batched multi-seed sweeps (6-32 seeds per family/size)",
    );
    let started = std::time::Instant::now();
    let records = run_scenarios_with_stores(&scenarios, runner, cache, results);
    // Wall-clock and cache tallies go to stderr only: the table and the
    // JSON must stay byte-identical across runs and thread counts.
    if !runner.quiet {
        eprintln!(
            "[scenarios] {} records in {:.0?} (threads={})",
            records.len(),
            started.elapsed(),
            runner.threads
        );
    }
    if let Some(c) = cache {
        eprintln!(
            "[datasets] dir={} hits={} misses={}",
            c.dir().display(),
            c.hits(),
            c.misses()
        );
    }
    if let Some(store) = results {
        eprintln!(
            "[results] dir={} hits={} misses={}",
            store.dir().display(),
            store.hits(),
            store.misses()
        );
    }
    let mut rows = Vec::new();
    for r in &records {
        rows.push(vec![
            r.scenario.clone(),
            r.family.clone(),
            r.n.to_string(),
            r.seed.to_string(),
            r.protocol.clone(),
            r.backend.clone(),
            r.energy_model.clone(),
            r.lb_calls.to_string(),
            r.max_lb_energy.to_string(),
            format!("{:.1}", r.mean_lb_energy),
            r.max_physical_energy
                .map_or_else(|| "-".into(), |x| x.to_string()),
            r.physical_slots
                .map_or_else(|| "-".into(), |x| x.to_string()),
            r.outcome.to_string(),
            r.target_n.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "scenario",
                "family",
                "n",
                "seed",
                "protocol",
                "backend",
                "model",
                "LB calls",
                "max energy",
                "mean energy",
                "max phys energy",
                "phys slots",
                "outcome",
                "target n",
            ],
            &rows
        )
    );
    if let Ok(path) = std::env::var("SCENARIO_JSON") {
        let json = records_to_json(&records);
        std::fs::write(&path, json).expect("write scenario JSON");
        println!("wrote {} records to {path}", records.len());
    }
}

fn header(id: &str, claim: &str) {
    println!();
    println!("==== {id}: {claim} ====");
}

/// E1 — Lemma 2.1: P(Ball(v, ℓ) meets > j clusters) ≤ (1 − e^{−2ℓβ})^j.
fn e1_ball_intersections() {
    header("E1", "Lemma 2.1 — ball/cluster intersection tail");
    let g = generators::grid(24, 24);
    let params = MpxParams::from_inverse_beta(4);
    let ell = params.inverse_beta();
    let trials = 300;
    let mut r = rng(1);
    let mut rows = Vec::new();
    for j in [2u32, 4, 8, 16, 24] {
        let mut exceed = 0usize;
        for _ in 0..trials {
            let c = cluster_centralized(&g, params, &mut r);
            let v = r.gen_range(0..g.num_nodes());
            if c.ball_cluster_intersections(&g, v, ell as u32) > j as usize {
                exceed += 1;
            }
        }
        rows.push(vec![
            j.to_string(),
            format!("{:.4}", exceed as f64 / trials as f64),
            format!("{:.4}", lemma_2_1_bound(params.beta, ell as f64, j)),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["j", "empirical P(> j clusters)", "Lemma 2.1 bound"],
            &rows
        )
    );
}

/// E2 — Lemma 2.2/2.3 + Figure 1: the cluster graph as a distance proxy.
fn e2_distance_proxy() {
    header(
        "E2",
        "Lemmas 2.2/2.3 — cluster-graph distances track original distances",
    );
    let g = generators::grid(40, 40);
    let n = g.num_nodes();
    let mut r = rng(2);
    let mut rows = Vec::new();
    for inv_beta in [2u64, 4, 8] {
        let params = MpxParams::from_inverse_beta(inv_beta);
        let clustering = cluster_centralized(&g, params, &mut r);
        let radius_bound = (4.0 * (n as f64).ln() * inv_beta as f64).ceil();
        let cut = clustering.cut_fraction(&g);
        let max_radius = clustering.max_radius();
        let clusters = clustering.num_clusters();
        let cg = ClusterGraph::build(&g, clustering);
        let pairs: Vec<(usize, usize)> = (0..n)
            .step_by(13)
            .flat_map(|u| (0..n).step_by(19).map(move |v| (u, v)))
            .collect();
        let stats = distance_proxy_stats(&g, &cg, &pairs, 4.0);
        rows.push(vec![
            format!("1/{inv_beta}"),
            clusters.to_string(),
            format!("{max_radius} (≤ {radius_bound:.0})"),
            format!("{cut:.3}"),
            format!("{}/{}", stats.pairs - stats.violations, stats.pairs),
            format!("{:.2}", stats.mean_ratio),
            format!("{:.2}", stats.max_ratio),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "β",
                "#clusters",
                "max radius (bound)",
                "cut fraction",
                "Lemma 2.2 pairs ok",
                "mean dist*/(β·dist)",
                "max ratio",
            ],
            &rows
        )
    );
}

/// E3 — Lemma 2.4: the Decay Local-Broadcast on the physical simulator.
fn e3_local_broadcast() {
    header("E3", "Lemma 2.4 — Decay Local-Broadcast time and energy");
    let mut rows = Vec::new();
    let mut r = rng(3);
    for (n, f) in [(64usize, 1e-3f64), (64, 1e-6), (256, 1e-3), (256, 1e-6)] {
        let g = generators::star(n);
        let params = DecayParams {
            max_degree: n - 1,
            failure_prob: f,
        };
        let trials = 40;
        let mut delivered = 0usize;
        let mut sender_energy = 0u64;
        let mut receiver_energy = 0u64;
        let mut slots = 0u64;
        // One frame + scratch reused across all trials.
        let mut frame: radio_sim::RoundFrame<u64> = radio_sim::RoundFrame::new(n);
        let mut scratch: radio_sim::DecayScratch<u64> = radio_sim::DecayScratch::new(n);
        for _ in 0..trials {
            let mut net: radio_sim::RadioNetwork<u64> = radio_sim::RadioNetwork::new(g.clone());
            frame.clear();
            for v in 1..n {
                frame.add_sender(v, v as u64);
            }
            frame.add_receiver(0);
            let used = radio_sim::decay_local_broadcast(
                &mut net,
                &mut frame,
                &mut scratch,
                params,
                &mut r,
            );
            if frame.delivered().contains(0) {
                delivered += 1;
            }
            sender_energy += net.energy(1);
            receiver_energy += net.energy(0);
            slots += used;
        }
        rows.push(vec![
            format!("{n}"),
            format!("{f:.0e}"),
            format!("{}/{trials}", delivered),
            format!("{:.1}", sender_energy as f64 / trials as f64),
            format!("{:.1}", receiver_energy as f64 / trials as f64),
            format!("{:.0}", slots as f64 / trials as f64),
            params.total_slots().to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "Δ+1",
                "f",
                "hub heard",
                "mean sender energy",
                "mean receiver energy",
                "slots used",
                "O(logΔ·log 1/f) budget",
            ],
            &rows
        )
    );
    println!("Sender energy tracks log(1/f); a receiver that hears something stops early.");
}

/// E4 — Lemma 2.5: distributed clustering cost and agreement with the
/// centralized growth law.
fn e4_distributed_clustering() {
    header(
        "E4",
        "Lemma 2.5 — distributed MPX clustering over Local-Broadcast",
    );
    let mut rows = Vec::new();
    for (name, g) in standard_families(4) {
        let cfg = ClusteringConfig::new(4);
        let mut net = StackBuilder::new(g.clone()).build();
        let mut r = rng(40);
        let state = cluster_distributed(&mut net, &cfg, &mut r);
        state.validate().expect("valid clustering");
        let budget = cfg.rounds(net.global_n());
        rows.push(vec![
            name,
            g.num_nodes().to_string(),
            state.num_clusters().to_string(),
            state.max_layer.to_string(),
            net.lb_time().to_string(),
            net.max_lb_energy().to_string(),
            budget.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "graph",
                "n",
                "#clusters",
                "max layer",
                "LB calls",
                "max energy (LB)",
                "4·ln(n)/β budget",
            ],
            &rows
        )
    );
}

/// E5 — Lemmas 3.1/3.2: per-vertex overhead of casts and of simulating one
/// Local-Broadcast on the cluster graph.
fn e5_cluster_simulation_overhead() {
    header(
        "E5",
        "Lemmas 3.1/3.2 — cast and cluster-graph simulation overhead",
    );
    let mut rows = Vec::new();
    for (name, g) in standard_families(5) {
        let cfg = ClusteringConfig::new(4);
        let mut net = StackBuilder::new(g.clone()).build();
        let mut r = rng(50);
        let state = cluster_distributed(&mut net, &cfg, &mut r);
        let n = g.num_nodes();
        let before: Vec<u64> = (0..n).map(|v| net.lb_energy(v)).collect();

        // One down-cast to every cluster.
        let mut messages: radio_protocols::NodeSlots<Msg> =
            radio_protocols::NodeSlots::new(state.num_clusters());
        for c in 0..state.num_clusters() {
            messages.insert(c, Msg::words(&[c as u64]));
        }
        let mut cast_frame = net.new_frame();
        let _ = down_cast(&mut net, &state, &messages, &mut cast_frame);
        let after_cast: Vec<u64> = (0..n).map(|v| net.lb_energy(v)).collect();
        let cast_max = (0..n).map(|v| after_cast[v] - before[v]).max().unwrap_or(0);

        // One simulated Local-Broadcast on G* between all clusters.
        let quotient = state.quotient_graph(&g);
        let virt_max = if quotient.num_edges() > 0 {
            let mut virt = VirtualClusterNet::new(&mut net, &state);
            let senders: Vec<(usize, Msg)> = (0..quotient.num_nodes() / 2)
                .map(|c| (c, Msg::words(&[c as u64])))
                .collect();
            let receivers: Vec<usize> = (quotient.num_nodes() / 2..quotient.num_nodes()).collect();
            let _ = radio_protocols::local_broadcast_once(&mut virt, &senders, &receivers);
            let after_virt: Vec<u64> = (0..n).map(|v| net.lb_energy(v)).collect();
            (0..n)
                .map(|v| after_virt[v] - after_cast[v])
                .max()
                .unwrap_or(0)
        } else {
            0
        };
        let log_n = (n as f64).ln();
        rows.push(vec![
            name,
            state.num_clusters().to_string(),
            cast_max.to_string(),
            virt_max.to_string(),
            format!("{:.0}", 6.0 * log_n),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "graph",
                "#clusters",
                "down-cast max energy",
                "virtual-LB max energy",
                "O(log n) reference",
            ],
            &rows
        )
    );
}

/// E6 — Theorem 4.1: energy of the recursive BFS versus the baselines as the
/// distance threshold grows.
fn e6_bfs_energy_scaling() {
    header(
        "E6",
        "Theorem 4.1 — recursive BFS energy grows sub-linearly in D (baseline is linear)",
    );
    let mut rows = Vec::new();
    for exp in [7u32, 8, 9, 10, 11] {
        let n = 1usize << exp;
        let depth = (n - 1) as u64;
        let g = generators::path(n);

        // Baseline: everyone listens every round.
        let mut base_net = StackBuilder::new(g.clone()).build();
        let active = vec![true; n];
        let _ = trivial_bfs(&mut base_net, &[0], &active, depth);
        let base = EnergySummary::of(&base_net);

        // Recursive BFS with β tuned to D (the paper's prescription).
        let config = scaling_config(depth, 6);
        let mut rec_net = StackBuilder::new(g.clone()).build();
        let hierarchy = build_hierarchy(&mut rec_net, &config);
        let setup = EnergySummary::of(&rec_net);
        let outcome =
            recursive_bfs_with_hierarchy(&mut rec_net, &hierarchy, &[0], depth, &config, &[]);
        let total = EnergySummary::of(&rec_net);
        let query = total.since(&setup);
        let truth = bfs_distances(&g, 0);
        let correct = g
            .nodes()
            .filter(|&v| outcome.dist[v] == Some(truth[v] as u64))
            .count();

        rows.push(vec![
            depth.to_string(),
            config.inv_beta.to_string(),
            base.max_lb_energy.to_string(),
            setup.max_lb_energy.to_string(),
            query.max_lb_energy.to_string(),
            format!(
                "{:.2}",
                query.max_lb_energy as f64 / base.max_lb_energy as f64
            ),
            format!("{correct}/{n}"),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "D",
                "1/β",
                "baseline max energy",
                "recursive setup energy",
                "recursive query energy",
                "query/baseline",
                "labels correct",
            ],
            &rows
        )
    );
    println!(
        "Reading: each doubling of D doubles the baseline energy but grows the recursive query \
         energy by a smaller factor (≈√2 with one recursion level); the query/baseline ratio \
         falls as D grows, which is the sub-polynomial-energy shape of Theorem 4.1. Absolute \
         crossover needs the asymptotic regime; the measured trend is the reproducible claim."
    );
}

/// E7 — Claims 1 and 2: per-vertex X_i memberships and per-cluster Special
/// Updates stay Õ(1) as D grows.
fn e7_claims_1_and_2() {
    header(
        "E7",
        "Claims 1 & 2 — wavefront and Special-Update participation stay Õ(1)",
    );
    let mut rows = Vec::new();
    for n in [256usize, 512, 1024, 2048] {
        let g = generators::path(n);
        let depth = (n - 1) as u64;
        let config = RecursiveBfsConfig {
            inv_beta: 16,
            max_depth: 1,
            trivial_cutoff: 16,
            seed: 7,
            ..Default::default()
        };
        let mut net = StackBuilder::new(g.clone()).build();
        let hierarchy = build_hierarchy(&mut net, &config);
        let outcome = recursive_bfs_with_hierarchy(&mut net, &hierarchy, &[0], depth, &config, &[]);
        rows.push(vec![
            depth.to_string(),
            outcome.stats.stages.to_string(),
            outcome.stats.max_wavefront_memberships().to_string(),
            outcome.stats.max_special_memberships().to_string(),
            outcome.stats.total_recursive_calls().to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "D",
                "stages ⌈βD⌉",
                "max X_i memberships (Claim 1)",
                "max Special Updates (Claim 2)",
                "recursive calls",
            ],
            &rows
        )
    );
    println!(
        "Claim 1 column stays essentially flat while D grows 8-fold; Claim 2 grows only \
         polylogarithmically (the paper bounds it by O(w\u{b2}\u{b7}log D)), far below the stage count."
    );
}

/// E8 — Figure 3: evolution of [L_i(C), U_i(C)] for a traced cluster.
fn e8_estimate_evolution() {
    header(
        "E8",
        "Figure 3 — time evolution of a cluster's distance estimates",
    );
    let n = 1024usize;
    let g = generators::path(n);
    let config = RecursiveBfsConfig {
        inv_beta: 16,
        max_depth: 1,
        trivial_cutoff: 16,
        seed: 8,
        ..Default::default()
    };
    let mut net = StackBuilder::new(g.clone()).build();
    let hierarchy = build_hierarchy(&mut net, &config);
    let traced = hierarchy[0].cluster_of[3 * n / 4];
    let outcome = recursive_bfs_with_hierarchy(
        &mut net,
        &hierarchy,
        &[0],
        (n - 1) as u64,
        &config,
        &[traced],
    );
    let (_, points) = &outcome.stats.estimate_traces[0];
    let mut rows = Vec::new();
    for p in points.iter().take(40) {
        rows.push(vec![
            p.stage.to_string(),
            match p.kind {
                UpdateKind::Initialize => "initialize".to_string(),
                UpdateKind::Special => "special".to_string(),
                UpdateKind::Automatic => "automatic".to_string(),
            },
            format!("{:.1}", p.lower),
            if p.upper.is_finite() {
                format!("{:.1}", p.upper)
            } else {
                "∞".to_string()
            },
        ]);
    }
    println!(
        "{}",
        format_table(&["stage i", "update", "L_i(C)", "U_i(C)"], &rows)
    );
    println!(
        "The lower bound falls by β⁻¹ per automatic update and is refreshed upward by special \
         updates as the wavefront approaches — the sawtooth of Figure 3."
    );
}

/// E9 — Lemma 4.2: structure of the Z-sequence, checked over a long prefix.
fn e9_z_sequence() {
    header("E9", "Lemma 4.2 — Z-sequence periodicity");
    let z = ZSequence::from_d_star(256);
    let prefix: Vec<String> = (1..=24).map(|i| z.z(i).to_string()).collect();
    println!("Y[1..16]  = {:?}", (1..=16).map(ruler).collect::<Vec<_>>());
    println!("Z[1..24]  = [{}]  (D* = 256)", prefix.join(", "));
    let mut rows = Vec::new();
    let horizon = 4096;
    for &b in &z.value_set() {
        let count = z.count_at_least(horizon, b);
        rows.push(vec![
            b.to_string(),
            count.to_string(),
            (horizon / (b / 4)).to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "value b",
                format!("# of i ≤ {horizon} with Z[i] ≥ b").as_str(),
                "period prediction"
            ],
            &rows
        )
    );
}

/// E10 — Theorem 5.1: distinguishing K_n from K_n − e needs Ω(n) energy.
fn e10_kn_vs_kn_minus_e() {
    header(
        "E10",
        "Theorem 5.1 — (2−ε)-approximating the diameter needs Ω(n) energy",
    );
    let n = 96;
    let mut r = rng(10);
    let mut rows = Vec::new();
    for budget in [1u64, 8, 32, 128, 512, 2048, 8192] {
        let success = distinguishing_success_rate(n, budget, 150, &mut r);
        let g = generators::complete(n);
        let (trace, _) = edge_probing_protocol(&g, budget, &mut r);
        let acc = GoodSlotAccounting::evaluate(n, &trace);
        rows.push(vec![
            budget.to_string(),
            format!("{:.2}", success),
            format!("{:.2}", acc.success_upper_bound),
            acc.good_pairs.to_string(),
            acc.total_pairs.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "per-device energy E",
                "empirical success",
                "counting-argument bound",
                "|X_good|",
                "all pairs",
            ],
            &rows
        )
    );
    let g = generators::complete_minus_edge(n, 1, 2);
    let (trace, witnessed) = round_robin_protocol(&g);
    let acc = GoodSlotAccounting::evaluate(n, &trace);
    println!(
        "Round-robin (E = {} = Θ(n)): witnesses all {} present edges, identifies the missing one \
         with certainty.",
        acc.max_energy,
        witnessed.len()
    );
}

/// E11 — Theorem 5.2: the sparse construction and the communication ledger.
fn e11_disjointness_reduction() {
    header(
        "E11",
        "Theorem 5.2 — (3/2−ε)-approx diameter needs Ω̃(n) energy on sparse graphs",
    );
    let mut r = rng(11);
    let mut rows = Vec::new();
    for ell in [5u32, 6, 7, 8] {
        let k = 1u64 << ell;
        let size = (k / 2) as usize;
        let set_a: Vec<u64> = (0..size).map(|_| r.gen_range(0..k)).collect();
        let set_b: Vec<u64> = (0..size).map(|_| r.gen_range(0..k)).collect();
        let inst = build_disjointness_graph(&set_a, &set_b, ell);
        let diam = exact_diameter(&inst.graph).unwrap();
        let degen = radio_graph::arboricity::degeneracy(&inst.graph);
        let per_unit = disjointness_communication_bits(&inst, 1);
        let threshold = inst.k as f64 / per_unit as f64;
        let asymptotic = inst.k as f64 / (inst.k as f64).log2().powi(2);
        let _ = disjointness_energy_threshold(&inst);
        rows.push(vec![
            k.to_string(),
            inst.graph.num_nodes().to_string(),
            format!("{} (predicted {})", diam, inst.predicted_diameter()),
            degen.to_string(),
            format!("{:.1}", (inst.graph.num_nodes() as f64).log2()),
            per_unit.to_string(),
            format!("{threshold:.2}"),
            format!("{asymptotic:.2}"),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "k",
                "n",
                "diameter (2⇔disjoint, 3⇔not)",
                "degeneracy",
                "log2 n",
                "bits per unit energy",
                "energy threshold k/bits",
                "k/log²k (theory scale)",
            ],
            &rows
        )
    );
    println!(
        "Below the threshold the two-player simulation exchanges fewer than k bits, which would \
         contradict the Ω(k) set-disjointness bound — so deciding diameter 2 vs 3 (and hence any \
         (3/2−ε)-approximation) needs Ω(k/polylog) = Ω̃(n) energy."
    );
}

/// E12 — Theorem 5.3: 2-approximation of the diameter.
fn e12_two_approx_diameter() {
    header("E12", "Theorem 5.3 — 2-approximation of the diameter");
    let config = RecursiveBfsConfig {
        inv_beta: 8,
        max_depth: 1,
        trivial_cutoff: 8,
        seed: 12,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for (name, g) in standard_families(12) {
        let diam = exact_diameter(&g).unwrap() as u64;
        let mut net = StackBuilder::new(g.clone()).build();
        let est = two_approx_diameter(&mut net, &config);
        let ok = est.estimate <= diam && 2 * est.estimate >= diam;
        rows.push(vec![
            name,
            g.num_nodes().to_string(),
            diam.to_string(),
            format!("{} ({})", est.estimate, if ok { "ok" } else { "VIOLATED" }),
            est.energy.max_lb_energy.to_string(),
            est.energy
                .since(&est.setup_energy)
                .max_lb_energy
                .to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "graph",
                "n",
                "diam",
                "estimate",
                "total energy",
                "query energy"
            ],
            &rows
        )
    );
}

/// E13 — Theorem 5.4: nearly-3/2 approximation of the diameter.
fn e13_three_halves_diameter() {
    header(
        "E13",
        "Theorem 5.4 — nearly-3/2 approximation of the diameter",
    );
    let config = RecursiveBfsConfig {
        inv_beta: 8,
        max_depth: 1,
        trivial_cutoff: 8,
        seed: 13,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for (name, g) in standard_families(13) {
        let diam = exact_diameter(&g).unwrap();
        let n = g.num_nodes();
        let mut net = StackBuilder::new(g.clone()).build();
        let est = three_halves_approx_diameter(&mut net, &config, 13);
        let ok = satisfies_theorem_5_4_bound(diam, est.estimate as u32);
        rows.push(vec![
            name,
            n.to_string(),
            diam.to_string(),
            format!("{} ({})", est.estimate, if ok { "ok" } else { "VIOLATED" }),
            est.bfs_count.to_string(),
            format!("{:.0}", (n as f64).sqrt()),
            est.energy.max_lb_energy.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "graph",
                "n",
                "diam",
                "estimate (⌊2·diam/3⌋ ≤ D' ≤ diam)",
                "#BFS",
                "√n",
                "max energy",
            ],
            &rows
        )
    );
    println!(
        "The estimate is never below ⌊2·diam/3⌋ and the number of BFS computations tracks √n·log n \
         — the n^{{1/2+o(1)}} energy regime of Theorem 5.4, versus n^{{o(1)}} for the 2-approximation."
    );
}

/// E14 — the introduction's polling-period latency/energy trade-off.
fn e14_polling_tradeoff() {
    header(
        "E14",
        "Section 1 — polling period trades latency for energy",
    );
    use radio_sim::device::{run_devices, PollingDevice};
    let mut r = rng(14);
    let (g, _) = generators::connected_unit_disc(400, 25.0, 2.4, 300, &mut r)
        .expect("connected sensor field");
    let labels = bfs_distances(&g, 0);
    let depth = *labels.iter().max().unwrap() as u64;
    let mut rows = Vec::new();
    for period in [2u64, 4, 8, 16, 32] {
        // Each hop needs a handful of polling cycles for the decay-style
        // forwarding to get through contention.
        let deadline = (16 * depth + 100) * period;
        let mut devices: std::collections::BTreeMap<usize, PollingDevice> = g
            .nodes()
            .map(|v| {
                let init = if v == 0 { Some(1) } else { None };
                (
                    v,
                    PollingDevice::new(labels[v] as u64, period, deadline, init)
                        .with_seed(7000 + v as u64),
                )
            })
            .collect();
        let mut net: radio_sim::RadioNetwork<u64> = radio_sim::RadioNetwork::new(g.clone());
        run_devices(&mut net, &mut devices, deadline);
        let informed = g.nodes().filter(|&v| devices[&v].message.is_some()).count();
        let latency = g
            .nodes()
            .filter_map(|v| devices[&v].received_at)
            .max()
            .unwrap_or(0);
        rows.push(vec![
            period.to_string(),
            format!("{informed}/{}", g.num_nodes()),
            latency.to_string(),
            net.max_energy().to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "period P",
                "informed",
                "latency (slots)",
                "max energy (awake slots)"
            ],
            &rows
        )
    );
    println!(
        "Latency grows ∝ P while per-sensor energy (awake slots) stays essentially constant; an \
         always-on schedule would pay energy equal to the latency column — the ÷P power saving."
    );
}
