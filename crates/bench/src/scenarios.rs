//! Batched multi-seed scenario runner.
//!
//! A [`Scenario`] is a declarative sweep — a graph family, a list of sizes,
//! a list of seeds, a protocol, and a [`StackSpec`] choosing the backend —
//! and the runner executes the full cartesian product, emitting one
//! [`ScenarioRecord`] of energy/time metrics per (size, seed) cell. Within
//! one size the graph is built once and a single [`radio_protocols::LbFrame`] is reused
//! across every seed (the frame-engine reuse discipline), so large-n
//! many-seed sweeps cost one allocation per size instead of one per
//! Local-Broadcast call.
//!
//! The stack dimension rides the [`StackBuilder`] API: the same scenario
//! can run on the paper's abstract accounting backend, on the slot-accurate
//! physical backend, or on the physical backend with receiver-side
//! collision detection (where Local-Broadcast switches to the CD-aware
//! Decay variant) — and the records then carry slot-level energy columns.
//!
//! Protocols are dispatched through `energy_bfs::protocol::registry()`: the
//! [`Protocol`] enum here is only a thin parser mapping each variant to a
//! registry spec ([`Protocol::spec`]), resolved once per scenario and
//! shared across the worker pool. Capability mismatches (a CD protocol on a
//! no-CD stack) surface as the registry's typed error, raised before a
//! single Local-Broadcast is issued.
//!
//! Records serialize to JSON with a stable field order and no wall-clock
//! fields, so a sweep is byte-for-byte reproducible: same scenarios + same
//! seeds ⇒ identical JSON. That property is what lets sweeps be diffed
//! across commits the way `BENCH_*.json` files are.
//!
//! Determinism is also what makes records *cacheable*: a cell's record is a
//! pure function of its [`ResultKey`] (scenario, family, target size, seed,
//! protocol spec, stack, active set) plus the engine fingerprint, so
//! [`run_scenario_with_stores`] can consult a [`ResultStore`] before
//! dispatching anything and compute only the absent cells — the
//! incremental-sweep discipline behind `experiments`' warm re-runs and the
//! `serve` mode.
//!
//! Seeds within a scenario are independent — each (size, seed) cell builds
//! its own seeded stack and draws from its own seeded RNG — so the runner
//! executes cells on a [`crate::pool`] worker pool: work items go out
//! through a shared atomic cursor, every worker owns one reusable frame,
//! and results are collected **by index, not completion order**. The
//! byte-identical-JSON contract therefore holds for *every* thread count;
//! [`RunnerConfig::threads`]` = 1` is the exact serial path. The
//! conformance tests in `tests/determinism.rs` and the property tests in
//! `crates/bench/tests/properties.rs` pin parallel output to serial output.

use std::sync::Arc;

use radio_graph::dataset::{self, DatasetCache, DatasetKey};
use radio_graph::lower_bound::build_disjointness_graph;
use radio_graph::{generators, Graph};
use radio_protocols::protocol::{
    Protocol as ProtocolImpl, ProtocolError, ProtocolInput, ProtocolRegistry,
};
use radio_protocols::{EnergyModel, RadioStack, Stack, StackBuilder};

use crate::results::{ResultKey, ResultStore};

/// Graph family of a scenario. `size` is always the *target node count*;
/// families that cannot hit it exactly (grids, trees, disjointness
/// instances) build the largest instance not exceeding it and report the
/// realized `n` in the record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Family {
    /// Path graph `P_n`.
    Path,
    /// Cycle graph `C_n`.
    Cycle,
    /// Square grid with side `⌊√size⌋`.
    Grid,
    /// The same square grid re-labelled along the Hilbert space-filling
    /// curve, so CSR neighbour blocks of curve-adjacent vertices sit close
    /// in memory (the COST-style cache-aware layout). Isomorphic to
    /// [`Family::Grid`] of the same size with vertex 0 (the BFS source)
    /// fixed; **opt-in per scenario** — never substituted into existing
    /// families, because relabelling changes neighbour iteration order and
    /// with it any RNG-ordered delivery draw.
    GridHilbert,
    /// Complete `arity`-ary tree with as many full levels as fit in `size`.
    Tree {
        /// Branching factor (≥ 2).
        arity: usize,
    },
    /// Star graph (one hub, `size − 1` leaves) — the maximum-contention
    /// workload of the hardness experiments.
    Star,
    /// Lollipop: a clique of `⌊size/4⌋` vertices dragging a path — the
    /// classic hard case for sweep-style protocols.
    Lollipop,
    /// The complete graph `K_n` — one half of the Theorem 5.1 hard pair.
    Complete,
    /// `K_n − e` (the edge between vertices 1 and 2 removed) — the other
    /// half of the Theorem 5.1 pair; distinguishing it from `K_n` is what
    /// costs Ω(n) energy.
    CompleteMinusEdge,
    /// A Theorem 5.2 set-disjointness instance: the largest universe
    /// `k = 2^ℓ` with `k + 2ℓ + 2 ≤ size`, with `A` the lower half of the
    /// universe and `B` either the upper half (`intersecting: false`,
    /// diameter 2) or also the lower half (`intersecting: true`,
    /// diameter 3) — the reduction's 2-vs-3 diameter gap.
    Disjointness {
        /// Whether the two encoded sets intersect.
        intersecting: bool,
    },
}

impl Family {
    /// A printable name for tables and JSON.
    pub fn label(&self) -> String {
        match self {
            Family::Path => "path".into(),
            Family::Cycle => "cycle".into(),
            Family::Grid => "grid".into(),
            Family::GridHilbert => "grid_hilbert".into(),
            Family::Tree { arity } => format!("tree{arity}"),
            Family::Star => "star".into(),
            Family::Lollipop => "lollipop".into(),
            Family::Complete => "kn".into(),
            Family::CompleteMinusEdge => "kn_minus_e".into(),
            Family::Disjointness { intersecting } => {
                if *intersecting {
                    "disj_overlap".into()
                } else {
                    "disj_disjoint".into()
                }
            }
        }
    }

    /// Builds the instance for the given target node count.
    pub fn build(&self, size: usize) -> Graph {
        let size = size.max(2);
        match self {
            Family::Path => generators::path(size),
            Family::Cycle => generators::cycle(size.max(3)),
            Family::Grid => {
                let side = (size as f64).sqrt().floor() as usize;
                generators::grid(side.max(2), side.max(2))
            }
            Family::GridHilbert => {
                let side = ((size as f64).sqrt().floor() as usize).max(2);
                dataset::hilbert::relabeled_grid(side, side)
            }
            Family::Tree { arity } => {
                let k = (*arity).max(2);
                let mut levels = 2usize;
                // Largest complete k-ary tree with at most `size` nodes.
                while tree_nodes(k, levels + 1) <= size {
                    levels += 1;
                }
                generators::complete_k_ary_tree(k, levels)
            }
            Family::Star => generators::star(size),
            Family::Lollipop => {
                // Clamp the clique to the target so tiny sizes degrade to a
                // bare clique instead of underflowing the tail length.
                let clique = (size / 4).max(3).min(size);
                generators::lollipop(clique, size - clique)
            }
            Family::Complete => generators::complete(size.max(3)),
            Family::CompleteMinusEdge => generators::complete_minus_edge(size.max(3), 1, 2),
            Family::Disjointness { intersecting } => {
                // Largest universe k = 2^ℓ with k + 2ℓ + 2 ≤ size (ℓ ≥ 2).
                let mut ell = 2u32;
                while (1usize << (ell + 1)) + 2 * (ell as usize + 1) + 2 <= size {
                    ell += 1;
                }
                let k = 1u64 << ell;
                let set_a: Vec<u64> = (0..k / 2).collect();
                let set_b: Vec<u64> = if *intersecting {
                    (0..k / 2).collect()
                } else {
                    (k / 2..k).collect()
                };
                build_disjointness_graph(&set_a, &set_b, ell).graph
            }
        }
    }

    /// The inverse of [`Family::label`]: parses a family label back into
    /// the family — how the `serve` mode's ad-hoc requests name workloads.
    /// `tree{k}` decodes the arity (≥ 2); an unknown label is `None`.
    pub fn parse(label: &str) -> Option<Family> {
        Some(match label {
            "path" => Family::Path,
            "cycle" => Family::Cycle,
            "grid" => Family::Grid,
            "grid_hilbert" => Family::GridHilbert,
            "star" => Family::Star,
            "lollipop" => Family::Lollipop,
            "kn" => Family::Complete,
            "kn_minus_e" => Family::CompleteMinusEdge,
            "disj_overlap" => Family::Disjointness { intersecting: true },
            "disj_disjoint" => Family::Disjointness {
                intersecting: false,
            },
            other => {
                let arity: usize = other.strip_prefix("tree")?.parse().ok()?;
                if arity < 2 {
                    return None;
                }
                Family::Tree { arity }
            }
        })
    }

    /// The content-address of this family's instance at the given *target*
    /// size, for [`DatasetCache`] lookups. [`Family::label`] already encodes
    /// every generator parameter (arity, intersection, layout), so the label
    /// is the whole key family and the params field stays empty; two
    /// families whose labels differ can never share an artifact.
    pub fn dataset_key(&self, size: usize) -> DatasetKey {
        DatasetKey::new(self.label(), "", size)
    }
}

/// The inverse of `EnergyModel::label`: `uniform`, or `w{listen}l{transmit}t`
/// (e.g. `w1l4t` = listen 1, transmit 4).
fn parse_energy_model(label: &str) -> Option<EnergyModel> {
    if label == "uniform" {
        return Some(EnergyModel::Uniform);
    }
    let (listen, transmit) = label
        .strip_prefix('w')?
        .strip_suffix('t')?
        .split_once('l')?;
    Some(EnergyModel::Weighted {
        listen: listen.parse().ok()?,
        transmit: transmit.parse().ok()?,
    })
}

/// Number of nodes of the complete `k`-ary tree with `levels` levels.
fn tree_nodes(k: usize, levels: usize) -> usize {
    let mut total = 0usize;
    let mut layer = 1usize;
    for _ in 0..levels {
        total = total.saturating_add(layer);
        layer = layer.saturating_mul(k);
    }
    total
}

/// Which [`RadioStack`] backend a scenario runs on — the stack dimension of
/// the sweep grid, mapped 1:1 onto [`StackBuilder`] calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackSpec {
    /// The paper's LB-unit accounting backend.
    Abstract,
    /// The LB-unit accounting backend with receiver-side collision
    /// detection: deliveries are still counted abstractly (no Decay slots),
    /// but the frame's feedback lane carries per-receiver
    /// `Silence`/`Noise` verdicts, so CD protocols run under the paper's
    /// analysis accounting. Records label the backend `abstract_cd`.
    AbstractCd,
    /// The slot-accurate Decay-expanding backend; with `cd` the stack runs
    /// the CD-aware Decay variant and records fewer slots on sparse
    /// neighbourhoods. `model` weights the slot-level counters (the paper's
    /// "other energy models" discussion): under
    /// [`EnergyModel::Weighted`] the record's physical-energy column
    /// charges listens and transmits at their configured rates.
    Physical {
        /// Enable receiver-side collision detection.
        cd: bool,
        /// How listening/transmitting slots convert into energy.
        model: EnergyModel,
    },
    /// The physical backend with weight-ratio-aware Decay parameters:
    /// instead of the ratio-blind `DecayParams::for_network` default, the
    /// stack is built with [`radio_sim::DecayParams::for_energy_model`],
    /// which trades delivery slack for fewer slots when the energy model
    /// charges listens and transmits at skewed rates. Labelled by appending
    /// `:tuned` to the corresponding `Physical` label (`physical:w4l1t:tuned`).
    /// Strictly opt-in: no pre-existing scenario uses it, so the frozen
    /// record surface is untouched.
    PhysicalTuned {
        /// Enable receiver-side collision detection.
        cd: bool,
        /// How listening/transmitting slots convert into energy.
        model: EnergyModel,
    },
}

impl StackSpec {
    /// The slot-accurate physical backend under the paper's uniform model.
    pub fn physical(cd: bool) -> Self {
        StackSpec::Physical {
            cd,
            model: EnergyModel::Uniform,
        }
    }

    /// A canonical label naming the stack *spec* (not the built stack):
    /// `abstract`, `abstract_cd`, `physical`, `physical_cd`, with a
    /// non-uniform energy model appended as `physical:w1l4t`. This is the
    /// stack coordinate of a [`ResultKey`] and the `stack` field of serve
    /// requests; [`StackSpec::parse`] is its exact inverse (pinned by a
    /// test below).
    pub fn label(&self) -> String {
        match self {
            StackSpec::Abstract => "abstract".into(),
            StackSpec::AbstractCd => "abstract_cd".into(),
            StackSpec::Physical { cd, model } => {
                let base = if *cd { "physical_cd" } else { "physical" };
                match model {
                    EnergyModel::Uniform => base.into(),
                    weighted => format!("{base}:{}", weighted.label()),
                }
            }
            StackSpec::PhysicalTuned { cd, model } => {
                let base = StackSpec::Physical {
                    cd: *cd,
                    model: *model,
                }
                .label();
                format!("{base}:tuned")
            }
        }
    }

    /// The inverse of [`StackSpec::label`]; an unknown label is `None`.
    pub fn parse(label: &str) -> Option<StackSpec> {
        match label {
            "abstract" => return Some(StackSpec::Abstract),
            "abstract_cd" => return Some(StackSpec::AbstractCd),
            _ => {}
        }
        if let Some(base) = label.strip_suffix(":tuned") {
            return match StackSpec::parse(base)? {
                StackSpec::Physical { cd, model } => Some(StackSpec::PhysicalTuned { cd, model }),
                _ => None,
            };
        }
        let (base, model) = match label.split_once(':') {
            None => (label, EnergyModel::Uniform),
            Some((base, model)) => (base, parse_energy_model(model)?),
        };
        let cd = match base {
            "physical" => false,
            "physical_cd" => true,
            _ => return None,
        };
        Some(StackSpec::Physical { cd, model })
    }

    /// Builds the stack for one seeded run over a shared topology — an
    /// `Arc` refcount bump, never a CSR copy, no matter how many cells the
    /// sweep fans out. The record's backend and energy-model labels are
    /// read back from the built stack's `Capabilities`, so the JSON columns
    /// can never drift from what the stack actually is.
    pub fn build(&self, graph: Arc<Graph>, seed: u64) -> Stack {
        // Captured before the builder takes ownership; only the tuned
        // variant reads them.
        let (num_nodes, max_degree) = (graph.num_nodes(), graph.max_degree());
        let builder = StackBuilder::new(graph).with_seed(seed);
        match self {
            StackSpec::Abstract => builder.build(),
            StackSpec::AbstractCd => builder.with_cd().build(),
            StackSpec::Physical { cd, model } => {
                let builder = builder.physical(*model);
                if *cd {
                    builder.with_cd().build()
                } else {
                    builder.build()
                }
            }
            StackSpec::PhysicalTuned { cd, model } => {
                // The same `(n, Δ)` derivation as PhysicalLbNetwork's
                // ratio-blind default, routed through the weight-ratio-aware
                // constructor instead.
                let params = radio_sim::DecayParams::for_energy_model(
                    num_nodes.max(2),
                    max_degree.max(1),
                    *model,
                );
                let builder = builder.physical(*model).with_decay_params(params);
                if *cd {
                    builder.with_cd().build()
                } else {
                    builder.build()
                }
            }
        }
    }
}

/// Protocol executed on each (size, seed) cell.
///
/// Since the `Protocol`-trait redesign this enum is only a thin, typo-proof
/// parser over the registry: every variant maps to a spec string
/// ([`Protocol::spec`]) that `energy_bfs::protocol::registry()` resolves
/// into the boxed protocol the runner actually executes. New workloads are
/// registry entries; a variant here is only warranted when the default
/// sweep wants a declarative handle on one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Full-depth trivial wavefront BFS from node 0 (Section 4.3 baseline).
    TrivialBfs,
    /// The same wavefront with an explicit depth horizon `D` — the `xl-`
    /// sweep workload: on million-node instances the full-depth wavefront
    /// is `O(n·D)` and would dwarf the sweep, while a bounded horizon keeps
    /// per-cell work proportional to the explored ball.
    TrivialBfsDepth {
        /// Depth horizon (≥ 1).
        depth: u64,
    },
    /// The wavefront exploiting receiver-side collision detection: `Noise`
    /// verdicts settle exactly and an all-`Silence` round halts the run.
    /// Requires a CD-capable [`StackSpec`] (the registry's capability gate
    /// enforces this with a typed error).
    TrivialBfsCd,
    /// Unbounded Decay-style wavefront BFS: advances until a sweep settles
    /// nothing new.
    DecayBfs,
    /// Recursive BFS from node 0 with `1/β ≈ √D` (the paper's tuning),
    /// hierarchy rebuilt per seed.
    RecursiveBfs,
    /// Distributed MPX clustering (Lemma 2.5) with the given `1/β`.
    Clustering {
        /// The integral `1/β` of the MPX growth.
        inv_beta: u64,
    },
    /// A bare Local-Broadcast stress loop: in round `r`, node `r mod n`
    /// sends and everyone else listens. Most receivers are outside the
    /// sender's neighbourhood, which is exactly the sparse-neighbourhood
    /// regime where the CD-aware Decay variant terminates early — run it
    /// under `physical` and `physical_cd` to measure the saving.
    LbSweep {
        /// Number of Local-Broadcast rounds.
        rounds: u64,
    },
    /// An arbitrary registry spec with its resolved label — what the
    /// `serve` mode's ad-hoc requests parse into. Construct through
    /// [`Protocol::from_spec`], which validates the spec against the
    /// registry and captures the resolved protocol's name as the label;
    /// a hand-built variant with a label the registry would not produce
    /// breaks the label/registry agreement the runner relies on.
    Custom {
        /// The registry spec, e.g. `recursive:b=8`.
        spec: String,
        /// The resolved protocol's name (what records carry).
        label: String,
    },
}

impl Protocol {
    /// The registry spec this variant resolves through, e.g.
    /// `clustering:b=4`. `registry().get(&p.spec())` always succeeds, and
    /// the resolved protocol's name equals [`Protocol::label`] — pinned by a
    /// test below.
    pub fn spec(&self) -> String {
        match self {
            Protocol::TrivialBfs => "trivial_bfs".into(),
            Protocol::TrivialBfsDepth { depth } => format!("trivial_bfs:depth={depth}"),
            Protocol::TrivialBfsCd => "trivial_bfs_cd".into(),
            Protocol::DecayBfs => "decay_bfs".into(),
            Protocol::RecursiveBfs => "recursive".into(),
            Protocol::Clustering { inv_beta } => format!("clustering:b={inv_beta}"),
            Protocol::LbSweep { rounds } => format!("lb_sweep:r={rounds}"),
            Protocol::Custom { spec, .. } => spec.clone(),
        }
    }

    /// A printable name for tables and JSON (the resolved protocol's id).
    pub fn label(&self) -> String {
        match self {
            Protocol::TrivialBfs => "trivial_bfs".into(),
            Protocol::TrivialBfsDepth { depth } => format!("trivial_bfs_d{depth}"),
            Protocol::TrivialBfsCd => "trivial_bfs_cd".into(),
            Protocol::DecayBfs => "decay_bfs".into(),
            Protocol::RecursiveBfs => "recursive_bfs".into(),
            Protocol::Clustering { inv_beta } => format!("clustering_b{inv_beta}"),
            Protocol::LbSweep { rounds } => format!("lb_sweep_{rounds}"),
            Protocol::Custom { label, .. } => label.clone(),
        }
    }

    /// Parses an arbitrary registry spec into a [`Protocol::Custom`],
    /// validating it through `registry` — an unknown or malformed spec is
    /// the registry's typed error (the same one the CLI's exit-2 path and
    /// the server's structured error response surface to users).
    pub fn from_spec(spec: &str, registry: &ProtocolRegistry) -> Result<Protocol, ProtocolError> {
        let resolved = registry.get(spec)?;
        Ok(Protocol::Custom {
            spec: spec.to_string(),
            label: resolved.name().as_str().to_string(),
        })
    }
}

/// One declarative sweep: `family × sizes × seeds`, one protocol, one
/// backend.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Name of the sweep (appears in every record).
    pub name: String,
    /// Graph family.
    pub family: Family,
    /// Target node counts.
    pub sizes: Vec<usize>,
    /// RNG seeds; one run per seed per size.
    pub seeds: Vec<u64>,
    /// Protocol to execute.
    pub protocol: Protocol,
    /// Backend the protocol runs on.
    pub stack: StackSpec,
}

impl Scenario {
    /// The [`ResultStore`] identity of this scenario's (target size, seed)
    /// cell, optionally under a restricted active set. Everything the
    /// cell's deterministic record depends on is in here — scenario name,
    /// family, target size, seed, protocol spec, stack label, active set —
    /// and the engine fingerprint rides in the artifact header.
    pub fn result_key(&self, target_n: usize, seed: u64, active: Option<&[usize]>) -> ResultKey {
        ResultKey {
            scenario: self.name.clone(),
            family: self.family.label(),
            target_n,
            seed,
            protocol_spec: self.protocol.spec(),
            stack: self.stack.label(),
            active: active.map(<[usize]>::to_vec),
        }
    }
}

/// Deterministic per-run metrics of one (size, seed) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRecord {
    /// Scenario name.
    pub scenario: String,
    /// Family label.
    pub family: String,
    /// Realized node count.
    pub n: usize,
    /// Seed of this run.
    pub seed: u64,
    /// Protocol label.
    pub protocol: String,
    /// Backend label (`abstract`, `physical`, `physical_cd`).
    pub backend: String,
    /// Energy-model label (`uniform`, or e.g. `w1l4t` for
    /// `Weighted { listen: 1, transmit: 4 }`), read back from the stack's
    /// capabilities.
    pub energy_model: String,
    /// Local-Broadcast calls (time in LB units).
    pub lb_calls: u64,
    /// Maximum per-node LB participations (the paper's energy measure).
    pub max_lb_energy: u64,
    /// Mean per-node LB participations.
    pub mean_lb_energy: f64,
    /// Maximum per-node physical energy (slots), physical backends only.
    pub max_physical_energy: Option<u64>,
    /// Elapsed physical slots, physical backends only.
    pub physical_slots: Option<u64>,
    /// Protocol-specific output size: vertices labelled (BFS), clusters
    /// formed (clustering), or deliveries (LB sweep); a cheap cross-seed
    /// sanity signal.
    pub outcome: u64,
    /// The *requested* node count of the cell — the `size` entry of the
    /// scenario, before the family rounded it to a realizable instance
    /// (grids to `⌊√size⌋²`, trees to full levels, …). Equal to [`n`] for
    /// exact families; appended as the last JSON column so size-rounding
    /// families can't mislabel cells (`grid` at target 1000 realizes 961).
    ///
    /// [`n`]: ScenarioRecord::n
    pub target_n: usize,
    /// Diameter estimate reported by the protocol — `Some` exactly for the
    /// diameter-family workloads (`diameter_*` / `hyperball_*` labels),
    /// `None` for every other protocol. Appended after [`target_n`] and
    /// emitted in JSON only when present, so pre-existing records stay
    /// byte-identical.
    ///
    /// [`target_n`]: ScenarioRecord::target_n
    pub estimate: Option<u64>,
    /// The exact BFS diameter of the cell's graph, computed centrally as
    /// ground truth next to [`estimate`] — only on diameter-family cells
    /// small enough to afford all-pairs BFS (`n ≤ 16384`; xl sketch cells
    /// carry `None`, which is the point of running a sketch there).
    ///
    /// [`estimate`]: ScenarioRecord::estimate
    pub exact: Option<u64>,
    /// Whether [`estimate`] lands inside its method's pinned envelope
    /// against [`exact`]: `[D/2, D]` for `two_approx`, `[⌊2D/3⌋, D]` for
    /// `three_halves_approx`, relative error `1.04/√2^p` for hyperball.
    /// `Some` exactly when both columns are.
    ///
    /// [`estimate`]: ScenarioRecord::estimate
    /// [`exact`]: ScenarioRecord::exact
    pub agrees: Option<bool>,
}

/// Execution knobs of the scenario runner: thread count and progress
/// verbosity. The *output* (the record vector, and hence the JSON) is
/// identical for every configuration — only wall-clock and stderr differ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Worker threads for the (size, seed) cells of each scenario.
    /// `1` is the exact serial path (no pool machinery); `0` is treated
    /// as 1. The default is the machine's available parallelism.
    pub threads: usize,
    /// Suppress the per-scenario completion lines on stderr. Progress is on
    /// by default so a hung sweep's log shows where it stopped.
    pub quiet: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            threads: crate::pool::available_threads(),
            quiet: false,
        }
    }
}

impl RunnerConfig {
    /// The exact serial path with progress suppressed — what the plain
    /// [`run_scenario`]/[`run_scenarios`] entry points use, and the
    /// reference configuration the conformance tests compare against.
    pub fn serial() -> Self {
        RunnerConfig {
            threads: 1,
            quiet: true,
        }
    }

    /// `threads` workers, progress suppressed (the shape tests want).
    pub fn with_threads(threads: usize) -> Self {
        RunnerConfig {
            threads,
            quiet: true,
        }
    }
}

/// Per-worker scratch: one reusable [`radio_protocols::LbFrame`], re-sized only when a
/// worker crosses into a size with a different node universe. This carries
/// the frame-reuse discipline (one allocation amortized over many cells)
/// into the pool, where each worker owns its own frame.
struct WorkerScratch {
    frame: Option<radio_protocols::LbFrame>,
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch { frame: None }
    }

    fn frame_for(&mut self, n: usize) -> &mut radio_protocols::LbFrame {
        if self.frame.as_ref().is_none_or(|f| f.num_nodes() != n) {
            self.frame = Some(radio_protocols::LbFrame::new(n));
        }
        self.frame.as_mut().expect("frame just ensured")
    }
}

/// Runs one (size, seed) cell: builds the seeded stack, dispatches the
/// resolved protocol through [`ProtocolImpl::run_with_frame`], and reads
/// the record off the report's energy view (a diff over exactly this run —
/// equal to the stack's whole view, since the stack is fresh). Cells are
/// pure in the index — everything seeded is derived from `seed`, and the
/// frame is cleared before every use — which is what makes parallel
/// execution record-identical to serial.
fn run_cell(
    scenario: &Scenario,
    protocol: &dyn ProtocolImpl,
    graph: &(Arc<Graph>, usize, usize),
    seed: u64,
    active: Option<&[usize]>,
    frame: &mut radio_protocols::LbFrame,
) -> ScenarioRecord {
    let (g, n, target_n) = graph;
    let (n, target_n) = (*n, *target_n);
    // `Arc::clone`, not `Graph::clone`: the per-cell graph cost is a
    // refcount bump, so setup no longer scales with |V| + |E| per seed.
    let mut net = scenario.stack.build(Arc::clone(g), seed);
    let mut input = ProtocolInput::from_seed(seed);
    if let Some(set) = active {
        input = input.with_active(set.to_vec());
    }
    let report = protocol
        .run_with_frame(&mut net, &input, frame)
        .unwrap_or_else(|e| {
            panic!(
                "scenario {:?} (protocol {}, seed {seed}): {e}",
                scenario.name,
                scenario.protocol.label()
            )
        });
    let caps = net.capabilities();
    let label = scenario.protocol.label();
    let estimate = report.output.diameter_estimate();
    let exact = match estimate {
        Some(_) if n <= EXACT_DIAMETER_CEILING => {
            radio_graph::diameter::exact_diameter(g).map(u64::from)
        }
        _ => None,
    };
    let agrees = match (estimate, exact) {
        (Some(est), Some(d)) => Some(diameter_agreement(&label, est, d)),
        _ => None,
    };
    ScenarioRecord {
        scenario: scenario.name.clone(),
        family: scenario.family.label(),
        n,
        seed,
        protocol: label,
        backend: caps.label(),
        energy_model: caps.energy_model.label(),
        lb_calls: report.energy.lb_time(),
        max_lb_energy: report.energy.max_lb_energy(),
        mean_lb_energy: report.energy.mean_lb_energy(),
        max_physical_energy: report.energy.max_physical_energy(),
        physical_slots: report.energy.physical_slots(),
        outcome: report.outcome(),
        target_n,
        estimate,
        exact,
        agrees,
    }
}

/// Largest `n` at which a diameter-family cell also computes the exact
/// all-pairs-BFS diameter as a ground-truth column. Above this the cell
/// records only the estimate — which is exactly the regime the sketch
/// exists for.
const EXACT_DIAMETER_CEILING: usize = 16_384;

/// The per-method agreement predicate behind the `agrees` column: does
/// `estimate` land inside the envelope its protocol promises against the
/// exact diameter `exact`?
///
/// * `diameter_two_approx` — Theorem 5.3: `estimate ∈ [⌈D/2⌉, D]`.
/// * `diameter_three_halves_approx` — Theorem 5.4: `estimate ∈ [⌊2D/3⌋, D]`.
/// * `diameter_hyperball_p{p}…` / `hyperball_p{p}…` — the standard HLL
///   envelope, relative error `1.04/√2^p` (plus one round of slack for
///   tiny diameters, where a single register round is the resolution).
///
/// Unrecognized labels fall back to exact equality, which can only make
/// the column stricter, never silently pass.
pub fn diameter_agreement(label: &str, estimate: u64, exact: u64) -> bool {
    if label == "diameter_two_approx" {
        return estimate <= exact && 2 * estimate >= exact;
    }
    if label == "diameter_three_halves_approx" {
        return estimate <= exact && estimate >= (2 * exact) / 3;
    }
    let hyper_p = label
        .strip_prefix("diameter_hyperball_p")
        .or_else(|| label.strip_prefix("hyperball_p"))
        .and_then(|rest| {
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits.parse::<u32>().ok()
        });
    match hyper_p {
        Some(p) => {
            let tol = radio_protocols::sketch::relative_error(p);
            let slack = (tol * exact as f64).ceil().max(1.0) as u64;
            estimate.abs_diff(exact) <= slack
        }
        None => estimate == exact,
    }
}

/// Runs one scenario under `config`: graphs are materialized once per size
/// — through the dataset `cache` when one is given (generator output
/// compiled to a content-addressed CSR artifact on first use, bulk-read on
/// every later run), from the generator otherwise — then the `sizes ×
/// seeds` cells are distributed over the worker pool and the records
/// collected in cell order (size-major, seed-minor — the serial order).
/// Either way every worker shares the one immutable `Arc<Graph>` per size;
/// per-cell stack construction is a refcount bump. Every worker owns one
/// reusable frame.
///
/// The cache affects *where graph bytes come from*, never what they are:
/// artifacts round-trip the CSR exactly (pinned by the dataset round-trip
/// tests), so records are byte-identical with and without a cache.
pub fn run_scenario_with_cache(
    scenario: &Scenario,
    config: &RunnerConfig,
    cache: Option<&DatasetCache>,
) -> Vec<ScenarioRecord> {
    run_scenario_with_stores(scenario, config, cache, None, None)
}

/// One work item of a batched run: a scenario plus an optional restricted
/// active set. A server `run` request decodes to a list of these; the CLI
/// path wraps a single one.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// The sweep to run (or answer from the store).
    pub scenario: Scenario,
    /// Optional restricted active set threaded into every cell's
    /// [`ProtocolInput`].
    pub active: Option<Vec<usize>>,
}

/// What one [`BatchItem`] produced: its records in cell order plus exact
/// per-item accounting. `hits` counts cells answered by the store probe,
/// `computed` counts cells dispatched to workers — `hits + computed`
/// always equals `records.len()`, and summing these per-response fields
/// over all requests reconciles exactly with the store's global counters
/// (the counters are *moved* here by the probe itself, not re-derived
/// from racy global deltas).
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Records of every (size, seed) cell, size-major seed-minor.
    pub records: Vec<ScenarioRecord>,
    /// Cells answered by the result store.
    pub hits: u64,
    /// Cells computed fresh (and written back when a store is present).
    pub computed: u64,
}

/// One dispatched cell, with everything a worker needs *owned* (`Arc`s
/// over the shared pieces). The same description serves both execution
/// paths: scoped workers borrow it, and the server's persistent
/// [`WorkPool`](crate::pool::WorkPool) moves an `Arc` of the whole job
/// list into its `'static` closures.
struct CellJob {
    /// Index of the originating batch item.
    item: usize,
    /// Cell index within that item (size-major, seed-minor).
    cell: usize,
    scenario: Arc<Scenario>,
    protocol: Arc<dyn ProtocolImpl>,
    graph: (Arc<Graph>, usize, usize),
    seed: u64,
    active: Option<Arc<[usize]>>,
}

thread_local! {
    /// Per-thread scratch for persistent-pool workers: the pool outlives
    /// any one batch, so its workers keep their reusable frame across
    /// batches here (scoped workers get theirs from `run_indexed`'s
    /// `make_state` instead).
    static POOL_SCRATCH: std::cell::RefCell<WorkerScratch> =
        std::cell::RefCell::new(WorkerScratch::new());
}

/// Renders a caught panic payload the way `panic!` produced it.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "cell panicked with a non-string payload".to_string()
    }
}

/// Runs a whole batch of items as **one work-item set**: every missing
/// cell of every item is flattened into a single job list and dispatched
/// together, so a server request carrying many scenarios saturates the
/// pool instead of draining items one at a time.
///
/// The incremental discipline per item is unchanged from the single-
/// scenario path: every (size, seed) cell's [`ResultKey`] is probed first
/// — keys are over the *target* size, so a fully warm item never
/// materializes a graph at all — and only the missing cells become jobs
/// (graphs are built lazily, only for sizes that still have at least one
/// miss). Freshly computed records are written back on the caller's
/// thread. Because artifacts round-trip records bit-exactly, a warm run's
/// record vector — and hence its JSON — is byte-identical to a cold or
/// uncached run at every thread count, on either execution path.
///
/// `pool` selects the execution path: `None` runs the jobs on scoped
/// workers spun up for this call (`config.threads`, the CLI sweep shape);
/// `Some` submits them to a shared persistent [`WorkPool`] — the server's
/// shape, where concurrent requests interleave their jobs on one FIFO
/// queue and `config.threads` was fixed at pool construction. A cell that
/// panics (e.g. a capability mismatch raised mid-run) re-panics on the
/// caller's thread with the original message on both paths.
///
/// [`WorkPool`]: crate::pool::WorkPool
pub fn run_batch_with_stores(
    items: &[BatchItem],
    config: &RunnerConfig,
    datasets: Option<&DatasetCache>,
    results: Option<&ResultStore>,
    pool: Option<&crate::pool::WorkPool>,
) -> Vec<BatchOutcome> {
    // Probe phase: per item, cell order size-major seed-minor — the
    // serial order each item's record vector keeps.
    let mut slots: Vec<Vec<Option<ScenarioRecord>>> = items
        .iter()
        .map(|it| vec![None; it.scenario.sizes.len() * it.scenario.seeds.len()])
        .collect();
    let mut hits = vec![0u64; items.len()];
    if let Some(store) = results {
        for (k, item) in items.iter().enumerate() {
            let seeds = &item.scenario.seeds;
            if seeds.is_empty() {
                continue;
            }
            for (i, slot) in slots[k].iter_mut().enumerate() {
                let target_n = item.scenario.sizes[i / seeds.len()];
                let seed = seeds[i % seeds.len()];
                *slot = store.get(&item.scenario.result_key(
                    target_n,
                    seed,
                    item.active.as_deref(),
                ));
                if slot.is_some() {
                    hits[k] += 1;
                }
            }
        }
    }
    // Job phase: flatten the missing cells of every item into one list.
    // Protocols resolve once per item; graphs materialize once per
    // (item, size) with at least one miss, on the caller's thread.
    let mut jobs: Vec<CellJob> = Vec::new();
    for (k, item) in items.iter().enumerate() {
        let seeds = &item.scenario.seeds;
        let missing: Vec<usize> = slots[k]
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        if missing.is_empty() {
            continue;
        }
        let protocol: Arc<dyn ProtocolImpl> = Arc::from(
            energy_bfs::protocol::registry()
                .get(&item.scenario.protocol.spec())
                .unwrap_or_else(|e| panic!("scenario {:?}: {e}", item.scenario.name)),
        );
        let scenario = Arc::new(item.scenario.clone());
        let active: Option<Arc<[usize]>> = item.active.as_deref().map(Arc::from);
        let graphs: Vec<Option<(Arc<Graph>, usize, usize)>> = scenario
            .sizes
            .iter()
            .enumerate()
            .map(|(si, &size)| {
                if !missing.iter().any(|&i| i / seeds.len() == si) {
                    return None;
                }
                let g: Arc<Graph> = match datasets {
                    Some(c) => c.load_or_build(&scenario.family.dataset_key(size), || {
                        scenario.family.build(size)
                    }),
                    None => Arc::new(scenario.family.build(size)),
                };
                let n = g.num_nodes();
                Some((g, n, size))
            })
            .collect();
        for &i in &missing {
            let graph = graphs[i / seeds.len()]
                .as_ref()
                .expect("graph materialized for every size with a miss")
                .clone();
            jobs.push(CellJob {
                item: k,
                cell: i,
                scenario: Arc::clone(&scenario),
                protocol: Arc::clone(&protocol),
                graph,
                seed: seeds[i % seeds.len()],
                active: active.clone(),
            });
        }
    }
    let mut computed = vec![0u64; items.len()];
    if !jobs.is_empty() {
        let jobs: Arc<Vec<CellJob>> = Arc::new(jobs);
        // Collect-by-index on both paths keeps computed records in job
        // order regardless of scheduling, exactly as in a full dispatch.
        let records: Vec<ScenarioRecord> = match pool {
            Some(pool) => {
                let pool_jobs = Arc::clone(&jobs);
                let raw = pool.run_batch(jobs.len(), move |j| {
                    let job = &pool_jobs[j];
                    // Catch here (not only in the pool) so the panic
                    // *message* survives the hop between threads.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        POOL_SCRATCH.with(|scratch| {
                            let mut scratch = scratch.borrow_mut();
                            run_cell(
                                &job.scenario,
                                &*job.protocol,
                                &job.graph,
                                job.seed,
                                job.active.as_deref(),
                                scratch.frame_for(job.graph.1),
                            )
                        })
                    }))
                    .map_err(panic_message)
                });
                raw.into_iter()
                    .map(|slot| match slot {
                        Some(Ok(record)) => record,
                        Some(Err(msg)) => panic!("{msg}"),
                        None => panic!("batch cell panicked in the worker pool"),
                    })
                    .collect()
            }
            None => crate::pool::run_indexed(
                jobs.len(),
                config.threads,
                WorkerScratch::new,
                |scratch, j| {
                    let job = &jobs[j];
                    run_cell(
                        &job.scenario,
                        &*job.protocol,
                        &job.graph,
                        job.seed,
                        job.active.as_deref(),
                        scratch.frame_for(job.graph.1),
                    )
                },
            ),
        };
        // Write-back on the caller's thread, in job order.
        for (j, record) in records.into_iter().enumerate() {
            let job = &jobs[j];
            if let Some(store) = results {
                let key = job
                    .scenario
                    .result_key(job.graph.2, record.seed, job.active.as_deref());
                store.put(&key, &record).unwrap_or_else(|e| {
                    panic!(
                        "scenario {:?}: writing result artifact: {e}",
                        job.scenario.name
                    )
                });
            }
            computed[job.item] += 1;
            slots[job.item][job.cell] = Some(record);
        }
    }
    slots
        .into_iter()
        .zip(hits)
        .zip(computed)
        .map(|((item_slots, hits), computed)| BatchOutcome {
            records: item_slots
                .into_iter()
                .map(|s| s.expect("every cell probed or computed"))
                .collect(),
            hits,
            computed,
        })
        .collect()
}

/// The single-scenario entry point: [`run_scenario_with_cache`] plus an
/// optional [`ResultStore`] consulted *before* any cell is dispatched, and
/// an optional restricted active set threaded into every cell's
/// [`ProtocolInput`]. A thin wrapper over [`run_batch_with_stores`] with a
/// one-item batch on the scoped-worker path — the CLI sweep shape.
pub fn run_scenario_with_stores(
    scenario: &Scenario,
    config: &RunnerConfig,
    datasets: Option<&DatasetCache>,
    results: Option<&ResultStore>,
    active: Option<&[usize]>,
) -> Vec<ScenarioRecord> {
    let item = BatchItem {
        scenario: scenario.clone(),
        active: active.map(<[usize]>::to_vec),
    };
    run_batch_with_stores(std::slice::from_ref(&item), config, datasets, results, None)
        .pop()
        .expect("one item in, one outcome out")
        .records
}

/// [`run_scenario_with_cache`] without a dataset cache: graphs come
/// straight from the generators (still shared as one `Arc` per size).
pub fn run_scenario_with(scenario: &Scenario, config: &RunnerConfig) -> Vec<ScenarioRecord> {
    run_scenario_with_cache(scenario, config, None)
}

/// Runs a batch of scenarios back to back under `config`. Scenarios run in
/// list order (each internally parallel over its cells), so the record
/// stream is grouped by scenario exactly as in a serial run; unless
/// `config.quiet`, a completion line per scenario goes to stderr so long
/// sweeps show progress — and a hung sweep's log shows where it stopped.
pub fn run_scenarios_with(scenarios: &[Scenario], config: &RunnerConfig) -> Vec<ScenarioRecord> {
    run_scenarios_with_cache(scenarios, config, None)
}

/// [`run_scenarios_with`] through an optional dataset cache: every
/// scenario's graphs go through [`run_scenario_with_cache`], so a sweep
/// that revisits a (family, size) pair — or a re-run of the whole sweep —
/// bulk-reads the compiled artifact instead of re-running the generator.
pub fn run_scenarios_with_cache(
    scenarios: &[Scenario],
    config: &RunnerConfig,
    cache: Option<&DatasetCache>,
) -> Vec<ScenarioRecord> {
    run_scenarios_with_stores(scenarios, config, cache, None)
}

/// [`run_scenarios_with_cache`] through an optional [`ResultStore`] as
/// well: every scenario goes through [`run_scenario_with_stores`], so an
/// incremental sweep — one that appends scenarios, seeds, or sizes to a
/// previously stored sweep — computes exactly the absent cells and answers
/// the rest from artifacts. The store's hit/miss counters accumulate across
/// the batch; callers print them once at the end (the `[results]` stderr
/// line of the `experiments` binary).
pub fn run_scenarios_with_stores(
    scenarios: &[Scenario],
    config: &RunnerConfig,
    datasets: Option<&DatasetCache>,
    results: Option<&ResultStore>,
) -> Vec<ScenarioRecord> {
    let mut records = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        let recs = run_scenario_with_stores(s, config, datasets, results, None);
        if !config.quiet {
            eprintln!(
                "[scenarios] {}/{} {}: {} records",
                i + 1,
                scenarios.len(),
                s.name,
                recs.len()
            );
        }
        records.extend(recs);
    }
    records
}

/// Runs one scenario on the exact serial path (one thread, one frame
/// reused across every cell, no progress output).
pub fn run_scenario(scenario: &Scenario) -> Vec<ScenarioRecord> {
    run_scenario_with(scenario, &RunnerConfig::serial())
}

/// Runs a batch of scenarios back to back on the exact serial path.
pub fn run_scenarios(scenarios: &[Scenario]) -> Vec<ScenarioRecord> {
    run_scenarios_with(scenarios, &RunnerConfig::serial())
}

/// The default sweep wired into `experiments -- scenarios`: the PR-2 era
/// grid/tree/cluster/contention workloads at six seeds, plus 32-seed
/// statistical sweeps of the clustering, hardness (Theorems 5.1/5.2), and
/// Decay Local-Broadcast families — the regime where per-seed noise
/// averages out — and a `Weighted` energy-model dimension on the physical
/// backends (the paper's "other energy models" discussion: a radio whose
/// transmissions cost 4x a listen).
///
/// Appended after the PR-4 era families (order is part of the byte-stable
/// JSON contract, so additions are append-only): the `decay_bfs` wavefront
/// on the grid/tree/lollipop families, the `trivial_bfs_cd` twin of the
/// physical trivial-BFS scenario (CD-vs-no-CD per seed on identical
/// workloads), and the E-series weight-ratio sweep — `trivial_bfs` and
/// `decay_bfs` under listen:transmit ratios 1:1, 1:4, and 4:1.
pub fn default_scenarios() -> Vec<Scenario> {
    let seeds: Vec<u64> = (0..6).collect();
    let seeds32: Vec<u64> = (0..32).collect();
    let transmit_heavy = EnergyModel::Weighted {
        listen: 1,
        transmit: 4,
    };
    let mut out = vec![
        Scenario {
            name: "grid32-trivial".into(),
            family: Family::Grid,
            sizes: vec![1024],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "tree3-trivial".into(),
            family: Family::Tree { arity: 3 },
            sizes: vec![1093],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "path512-recursive".into(),
            family: Family::Path,
            sizes: vec![512],
            seeds: seeds.clone(),
            protocol: Protocol::RecursiveBfs,
            stack: StackSpec::Abstract,
        },
        // 32-seed clustering sweep: cluster counts vary per seed, so this
        // family is the one that actually needs statistical depth.
        Scenario {
            name: "grid32-clustering".into(),
            family: Family::Grid,
            sizes: vec![1024],
            seeds: seeds32.clone(),
            protocol: Protocol::Clustering { inv_beta: 4 },
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "lollipop-trivial".into(),
            family: Family::Lollipop,
            sizes: vec![2048],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        // Hardness families (Theorems 5.1 and 5.2) at 32 seeds: the
        // K_n / K_n − e pair under maximum contention, and both
        // disjointness diameters.
        Scenario {
            name: "kn-trivial".into(),
            family: Family::Complete,
            sizes: vec![192],
            seeds: seeds32.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "kn-minus-e-trivial".into(),
            family: Family::CompleteMinusEdge,
            sizes: vec![192],
            seeds: seeds32.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "disjointness-disjoint".into(),
            family: Family::Disjointness {
                intersecting: false,
            },
            sizes: vec![300],
            seeds: seeds32.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "disjointness-overlap".into(),
            family: Family::Disjointness { intersecting: true },
            sizes: vec![300],
            seeds: seeds32.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        // The physical backend as a scenario dimension: the same trivial
        // BFS, now paying real Decay slots — once under the paper's uniform
        // model, once on a transmit-heavy radio (identical slot counts, so
        // diffing the two isolates the pure weighting effect).
        Scenario {
            name: "grid16-trivial-physical".into(),
            family: Family::Grid,
            sizes: vec![256],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::physical(false),
        },
        Scenario {
            name: "grid16-trivial-weighted".into(),
            family: Family::Grid,
            sizes: vec![256],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Physical {
                cd: false,
                model: transmit_heavy,
            },
        },
    ];
    // The CD comparison family at 32 seeds: identical Decay sweeps on the
    // physical backend with and without receiver-side collision detection;
    // diff the max_physical_energy / physical_slots columns.
    for cd in [false, true] {
        out.push(Scenario {
            name: format!("path-lbsweep-{}", if cd { "cd" } else { "nocd" }),
            family: Family::Path,
            sizes: vec![256],
            seeds: seeds32.clone(),
            protocol: Protocol::LbSweep { rounds: 16 },
            stack: StackSpec::physical(cd),
        });
    }
    // The weighted model on the CD-aware decay: transmit-heavy radios make
    // the echo-slot sender retirement *more* valuable, since every retired
    // sender skips 4-unit transmit slots.
    out.push(Scenario {
        name: "path-lbsweep-cd-weighted".into(),
        family: Family::Path,
        sizes: vec![256],
        seeds: seeds32,
        protocol: Protocol::LbSweep { rounds: 16 },
        stack: StackSpec::Physical {
            cd: true,
            model: transmit_heavy,
        },
    });
    // ---- Append-only additions below (the records above are pinned
    // byte-for-byte across the Protocol-registry redesign). ----
    // The unbounded Decay wavefront on the structured families.
    for (name, family, size) in [
        ("grid32-decay", Family::Grid, 1024usize),
        ("tree3-decay", Family::Tree { arity: 3 }, 1093),
        ("lollipop-decay", Family::Lollipop, 2048),
    ] {
        out.push(Scenario {
            name: name.into(),
            family,
            sizes: vec![size],
            seeds: seeds.clone(),
            protocol: Protocol::DecayBfs,
            stack: StackSpec::Abstract,
        });
    }
    // The CD-exploiting trivial BFS, the per-seed twin of
    // `grid16-trivial-physical`: identical workload and seeds, so diffing
    // the physical columns isolates the collision-detection saving.
    out.push(Scenario {
        name: "grid16-trivial-physical-cd".into(),
        family: Family::Grid,
        sizes: vec![256],
        seeds: seeds.clone(),
        protocol: Protocol::TrivialBfsCd,
        stack: StackSpec::physical(true),
    });
    // E-series weight-ratio sweep (the paper's "other energy models"
    // discussion): the two wavefront baselines under listen:transmit
    // ratios 1:1, 1:4 (power-amplifier-bound radio), and 4:1
    // (downlink-heavy radio), all on the physical backend with identical
    // slot schedules per seed — only the energy_model column reweights.
    // `eseries-trivial-uniform` deliberately duplicates the workload of
    // `grid16-trivial-physical` (6 cheap cells): the E-series stays a
    // self-contained three-ratio family under one naming scheme, so its
    // consumers never need to know another scenario aliases the 1:1 row.
    let listen_heavy = EnergyModel::Weighted {
        listen: 4,
        transmit: 1,
    };
    for (pname, protocol) in [
        ("trivial", Protocol::TrivialBfs),
        ("decay", Protocol::DecayBfs),
    ] {
        for model in [EnergyModel::Uniform, transmit_heavy, listen_heavy] {
            out.push(Scenario {
                name: format!("eseries-{pname}-{}", model.label()),
                family: Family::Grid,
                sizes: vec![256],
                seeds: seeds.clone(),
                protocol: protocol.clone(),
                stack: StackSpec::Physical { cd: false, model },
            });
        }
    }
    // PR-6 additions (append-only, after everything above): the abstract-CD
    // backend as a sweep coordinate, exercised at the word-parallel kernel
    // scale (grid 64×64). The twins share family, size, and seeds, so
    // diffing the pair isolates what collision-detection feedback changes
    // under pure LB accounting — nothing on max energy, only the early-halt
    // round count.
    out.push(Scenario {
        name: "grid64-trivial-abstract".into(),
        family: Family::Grid,
        sizes: vec![4096],
        seeds: seeds.clone(),
        protocol: Protocol::TrivialBfs,
        stack: StackSpec::Abstract,
    });
    out.push(Scenario {
        name: "grid64-trivial-abstract-cd".into(),
        family: Family::Grid,
        sizes: vec![4096],
        seeds: seeds.clone(),
        protocol: Protocol::TrivialBfsCd,
        stack: StackSpec::AbstractCd,
    });
    // PR-10 additions (append-only, after everything above): the diameter
    // family — the HyperBall sketch against the Section 5.1 exact
    // estimators on three shapes, same family/size/seeds per trio so the
    // records diff into a pure method comparison. These are the first
    // scenarios whose records carry the estimate/exact/agrees columns;
    // sizes stay modest because the 3/2-approx runs Õ(√n) full BFS
    // computations per cell. Three seeds: the sketch and the 2-approx are
    // seed-deterministic here, only the hitting-set draw varies.
    let registry = energy_bfs::protocol::registry();
    let diam_seeds: Vec<u64> = (0..3).collect();
    for (fam_tag, family, size) in [
        ("grid16", Family::Grid, 256usize),
        ("tree3", Family::Tree { arity: 3 }, 121),
        ("lollipop", Family::Lollipop, 128),
    ] {
        for (ptag, spec) in [
            ("hyperball", "diameter:hyperball:p=6"),
            ("two-approx", "diameter:two_approx"),
            ("three-halves", "diameter:three_halves_approx"),
        ] {
            out.push(Scenario {
                name: format!("diam-{fam_tag}-{ptag}"),
                family: family.clone(),
                sizes: vec![size],
                seeds: diam_seeds.clone(),
                protocol: Protocol::from_spec(spec, &registry)
                    .expect("default diameter spec resolves"),
                stack: StackSpec::Abstract,
            });
        }
    }
    // The weight-ratio-aware Decay twin of `eseries-decay-w4l1t`: same
    // workload, same seeds, same listen-heavy model, but the stack derives
    // its Decay parameters through `DecayParams::for_energy_model` instead
    // of the ratio-blind default — the pinned test below asserts the tuned
    // rows charge strictly less max physical energy per seed.
    out.push(Scenario {
        name: "eseries-decay-w4l1t-tuned".into(),
        family: Family::Grid,
        sizes: vec![256],
        seeds,
        protocol: Protocol::DecayBfs,
        stack: StackSpec::PhysicalTuned {
            cd: false,
            model: listen_heavy,
        },
    });
    out
}

/// The `xl-` large-graph sweep behind `experiments -- scenarios --xl`:
/// path/grid/tree/Hilbert-grid instances at n ∈ {2^18, 2^20} — the regime
/// the dataset substrate exists for, where the asymptotic separations the
/// paper proves start to matter and a per-cell CSR clone would dominate the
/// sweep. Few seeds and *bounded* protocols only: the full-depth wavefront
/// is `O(n·D)` and a million-node path would never finish, so the workloads
/// are `trivial_bfs:depth=64` (cost ∝ the explored ball) and a short
/// `lb_sweep`. The Hilbert family is the opt-in cache-aware layout: an
/// isomorphic relabelling of `grid`, safe here because the abstract
/// backend's delivery under zero failures is order-invariant (pinned by the
/// `hilbert_relabel_is_observation_invariant` test below).
///
/// These scenarios are **separate from [`default_scenarios`]** — the 364
/// default records are a byte-frozen conformance surface, and xl cells land
/// after them only when explicitly requested (`--xl`).
pub fn xl_scenarios() -> Vec<Scenario> {
    let seeds: Vec<u64> = (0..2).collect();
    let sizes = vec![1usize << 18, 1usize << 20];
    let mut out = Vec::new();
    for (tag, family) in [
        ("path", Family::Path),
        ("grid", Family::Grid),
        ("tree3", Family::Tree { arity: 3 }),
        ("grid-hilbert", Family::GridHilbert),
    ] {
        out.push(Scenario {
            name: format!("xl-{tag}-trivial-d64"),
            family: family.clone(),
            sizes: sizes.clone(),
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfsDepth { depth: 64 },
            stack: StackSpec::Abstract,
        });
    }
    // One contention workload: bounded LB rounds on the grid, where every
    // round floods a single sender's neighbourhood — cheap per cell but
    // exercises the full frame machinery at 2^20 nodes.
    out.push(Scenario {
        name: "xl-grid-lbsweep".into(),
        family: Family::Grid,
        sizes,
        seeds,
        protocol: Protocol::LbSweep { rounds: 8 },
        stack: StackSpec::Abstract,
    });
    // The sketch where exact diameter is infeasible: one 2^18-node grid
    // cell of round-bounded HyperBall (p=4 keeps the register plane at
    // 2 words/node = 4 MiB; 12 rounds bound the run the same way depth=64
    // bounds the xl wavefront). All-pairs BFS ground truth is far out of
    // reach at this n, so the record carries `estimate` with `exact`/
    // `agrees` absent — the sketch answers where nothing else can.
    out.push(Scenario {
        name: "xl-grid-hyperball".into(),
        family: Family::Grid,
        sizes: vec![1 << 18],
        seeds: vec![0],
        protocol: Protocol::from_spec(
            "diameter:hyperball:p=4,rounds=12",
            &energy_bfs::protocol::registry(),
        )
        .expect("xl hyperball spec resolves"),
        stack: StackSpec::Abstract,
    });
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |x| x.to_string())
}

/// One record as a single-line JSON object — the exact byte sequence
/// [`records_to_json`] emits per record (fixed field order, floats at three
/// decimals, `null` for absent physical counters). The serve mode reuses
/// this for its response records, so a served record is byte-identical to
/// the same record's line in a sweep file.
///
/// The diameter columns (`estimate`, `exact`, `agrees`) are appended after
/// `target_n` **only when present**: every non-diameter record — in
/// particular all 364+ pre-existing default-sweep records — serializes to
/// exactly the bytes it did before the columns existed.
pub fn record_json_object(r: &ScenarioRecord) -> String {
    let mut out = format!(
        "{{\"scenario\":\"{}\",\"family\":\"{}\",\"n\":{},\"seed\":{},\
         \"protocol\":\"{}\",\"backend\":\"{}\",\"energy_model\":\"{}\",\
         \"lb_calls\":{},\"max_lb_energy\":{},\
         \"mean_lb_energy\":{:.3},\"max_physical_energy\":{},\"physical_slots\":{},\
         \"outcome\":{},\"target_n\":{}",
        json_escape(&r.scenario),
        json_escape(&r.family),
        r.n,
        r.seed,
        json_escape(&r.protocol),
        json_escape(&r.backend),
        json_escape(&r.energy_model),
        r.lb_calls,
        r.max_lb_energy,
        r.mean_lb_energy,
        json_opt(r.max_physical_energy),
        json_opt(r.physical_slots),
        r.outcome,
        r.target_n,
    );
    if let Some(est) = r.estimate {
        out.push_str(&format!(",\"estimate\":{est}"));
    }
    if let Some(exact) = r.exact {
        out.push_str(&format!(",\"exact\":{exact}"));
    }
    if let Some(agrees) = r.agrees {
        out.push_str(&format!(",\"agrees\":{agrees}"));
    }
    out.push('}');
    out
}

/// Serializes records as a stable, pretty-printed JSON array: fixed field
/// order, floats at three decimals, `null` for absent physical counters, no
/// wall-clock fields — byte-identical across repeated runs of the same
/// sweep.
pub fn records_to_json(records: &[ScenarioRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&record_json_object(r));
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "grid-small".into(),
                family: Family::Grid,
                sizes: vec![64],
                seeds: (0..6).collect(),
                protocol: Protocol::TrivialBfs,
                stack: StackSpec::Abstract,
            },
            Scenario {
                name: "tree-small".into(),
                family: Family::Tree { arity: 3 },
                sizes: vec![40],
                seeds: (0..6).collect(),
                protocol: Protocol::Clustering { inv_beta: 3 },
                stack: StackSpec::Abstract,
            },
        ]
    }

    #[test]
    fn lollipop_degrades_gracefully_at_tiny_sizes() {
        // Regression: size < clique must not underflow the tail length.
        for size in [2usize, 3, 4, 7, 11] {
            let g = Family::Lollipop.build(size);
            assert!(g.num_nodes() <= size.max(3), "size {size}");
        }
    }

    #[test]
    fn json_escapes_special_characters_in_names() {
        let records = vec![ScenarioRecord {
            scenario: "grid-\"big\"\\".into(),
            family: "grid".into(),
            n: 4,
            seed: 0,
            protocol: "trivial_bfs".into(),
            backend: "abstract".into(),
            energy_model: "uniform".into(),
            lb_calls: 1,
            max_lb_energy: 1,
            mean_lb_energy: 1.0,
            max_physical_energy: None,
            physical_slots: None,
            outcome: 4,
            target_n: 5,
            estimate: None,
            exact: None,
            agrees: None,
        }];
        let json = records_to_json(&records);
        assert!(json.contains("grid-\\\"big\\\"\\\\"), "escaped: {json}");
        assert!(json.contains("\"max_physical_energy\":null"));
        // target_n closes every non-diameter record — strictly after
        // outcome, with no estimate/exact/agrees bytes at all (the legacy
        // byte-identity contract).
        assert!(json.contains("\"outcome\":4,\"target_n\":5}"), "{json}");
        assert!(!json.contains("estimate"), "{json}");
        // A diameter record appends the three columns in order.
        let mut diam = records[0].clone();
        diam.estimate = Some(7);
        diam.exact = Some(8);
        diam.agrees = Some(true);
        let line = record_json_object(&diam);
        assert!(
            line.ends_with("\"target_n\":5,\"estimate\":7,\"exact\":8,\"agrees\":true}"),
            "{line}"
        );
        // The xl shape: an estimate with no ground truth keeps the other
        // two columns absent, not null.
        diam.exact = None;
        diam.agrees = None;
        let line = record_json_object(&diam);
        assert!(line.ends_with("\"target_n\":5,\"estimate\":7}"), "{line}");
    }

    #[test]
    fn family_sizes_are_respected() {
        assert_eq!(Family::Path.build(17).num_nodes(), 17);
        assert_eq!(Family::Grid.build(1024).num_nodes(), 1024);
        assert_eq!(Family::Grid.build(1000).num_nodes(), 961); // 31×31
        let t = Family::Tree { arity: 3 }.build(40);
        assert!(t.num_nodes() <= 40 && t.num_nodes() >= 13);
        assert_eq!(Family::Star.build(100).num_nodes(), 100);
        assert!(Family::Lollipop.build(80).num_nodes() <= 80);
        assert_eq!(Family::Complete.build(64).num_nodes(), 64);
        assert_eq!(Family::CompleteMinusEdge.build(64).num_nodes(), 64);
        // K_n has one more edge than K_n − e.
        assert_eq!(
            Family::Complete.build(64).num_edges(),
            Family::CompleteMinusEdge.build(64).num_edges() + 1
        );
        for intersecting in [false, true] {
            let g = Family::Disjointness { intersecting }.build(300);
            assert!(g.num_nodes() <= 300, "{}", g.num_nodes());
            assert!(g.num_nodes() > 150, "{}", g.num_nodes());
        }
    }

    #[test]
    fn records_carry_both_target_and_realized_n() {
        // The size-rounding pin: grid at target 1000 realizes 31×31 = 961,
        // and the record must carry *both* numbers so the cell can't be
        // mislabelled as a 1000-node run.
        let records = run_scenario(&Scenario {
            name: "rounded".into(),
            family: Family::Grid,
            sizes: vec![1000],
            seeds: vec![0],
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        });
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].n, 961);
        assert_eq!(records[0].target_n, 1000);
        // Exact families keep the two equal.
        let exact = run_scenario(&Scenario {
            name: "exact".into(),
            family: Family::Path,
            sizes: vec![100],
            seeds: vec![0],
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        });
        assert_eq!(exact[0].n, 100);
        assert_eq!(exact[0].target_n, 100);
    }

    #[test]
    fn hilbert_grid_is_isomorphic_to_grid_and_fixes_the_source() {
        for size in [64usize, 256, 1000] {
            let plain = Family::Grid.build(size);
            let hil = Family::GridHilbert.build(size);
            assert_eq!(plain.num_nodes(), hil.num_nodes(), "size {size}");
            assert_eq!(plain.num_edges(), hil.num_edges(), "size {size}");
            // Vertex 0 is the BFS source in every scenario; the Hilbert
            // relabelling keeps it at the grid corner (degree 2).
            assert_eq!(hil.degree(0), 2, "size {size}");
        }
    }

    #[test]
    fn hilbert_relabel_is_observation_invariant_for_abstract_trivial_bfs() {
        // The order-invariance proof backing the opt-in layout: on the
        // abstract backend with zero failures, delivery is a deterministic
        // function of the *set* of senders — no RNG draw depends on
        // neighbour iteration order — and trivial BFS's observables
        // (lb_calls, max/mean energy, labelled count) are invariant under
        // any isomorphism fixing the source. So the Hilbert grid must
        // reproduce the plain grid's records exactly, per seed. (Clustering
        // does NOT have this property — its per-vertex RNG draws map by
        // vertex id — which is why the layout is per-scenario opt-in.)
        let run = |family: Family| {
            run_scenario(&Scenario {
                name: "inv".into(),
                family,
                sizes: vec![256],
                seeds: (0..4).collect(),
                protocol: Protocol::TrivialBfs,
                stack: StackSpec::Abstract,
            })
        };
        for (plain, hil) in run(Family::Grid).iter().zip(run(Family::GridHilbert)) {
            assert_eq!(plain.seed, hil.seed);
            assert_eq!(plain.lb_calls, hil.lb_calls, "seed {}", plain.seed);
            assert_eq!(plain.max_lb_energy, hil.max_lb_energy);
            assert_eq!(plain.mean_lb_energy, hil.mean_lb_energy);
            assert_eq!(plain.outcome, hil.outcome);
        }
    }

    #[test]
    fn depth_bounded_trivial_bfs_labels_exactly_the_horizon_ball() {
        // The xl workload's contract: depth=D labels exactly the ≤D-ball
        // around the source — on a path, D+1 vertices.
        let records = run_scenario(&Scenario {
            name: "ball".into(),
            family: Family::Path,
            sizes: vec![512],
            seeds: vec![0, 1],
            protocol: Protocol::TrivialBfsDepth { depth: 64 },
            stack: StackSpec::Abstract,
        });
        for r in &records {
            assert_eq!(r.protocol, "trivial_bfs_d64");
            assert_eq!(r.outcome, 65, "seed {}: not the 64-ball", r.seed);
        }
    }

    #[test]
    fn xl_sweep_is_separate_and_uses_bounded_protocols_only() {
        // The conformance firewall: xl scenarios never leak into the
        // default sweep, and every xl protocol is depth- or round-bounded
        // (a full-depth wavefront at 2^20 would be O(n·D)).
        let xl = xl_scenarios();
        assert!(!xl.is_empty());
        for s in &xl {
            assert!(s.name.starts_with("xl-"), "{}", s.name);
            let bounded = match &s.protocol {
                Protocol::TrivialBfsDepth { .. } | Protocol::LbSweep { .. } => true,
                // The sketch cell is round-bounded through its spec — an
                // unbounded hyperball at 2^18 would run to the diameter.
                Protocol::Custom { spec, .. } => spec.contains("rounds="),
                _ => false,
            };
            assert!(bounded, "{}: unbounded protocol in the xl sweep", s.name);
            if matches!(s.protocol, Protocol::Custom { .. }) {
                assert_eq!(s.sizes, vec![1 << 18], "{}", s.name);
            } else {
                assert_eq!(s.sizes, vec![1 << 18, 1 << 20], "{}", s.name);
            }
        }
        let default_names: std::collections::BTreeSet<String> =
            default_scenarios().iter().map(|s| s.name.clone()).collect();
        for s in &xl {
            assert!(!default_names.contains(&s.name));
        }
    }

    #[test]
    fn cached_and_uncached_sweeps_produce_identical_records() {
        // The dataset cache changes where graph bytes come from, never what
        // they are: a cold-cache run (generator → artifact), a warm-cache
        // run (artifact → bulk read), and a no-cache run must all emit the
        // same records.
        let dir = std::env::temp_dir().join(format!(
            "radio-bench-cache-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let cache = DatasetCache::new(&dir);
        let sweep = small_sweep();
        let cfg = RunnerConfig::serial();
        let uncached = run_scenarios_with_cache(&sweep, &cfg, None);
        let cold = run_scenarios_with_cache(&sweep, &cfg, Some(&cache));
        assert!(cache.misses() > 0, "cold run must compile artifacts");
        let hits_before = cache.hits();
        let warm = run_scenarios_with_cache(&sweep, &cfg, Some(&cache));
        assert!(cache.hits() > hits_before, "warm run must hit the cache");
        assert_eq!(uncached, cold);
        assert_eq!(uncached, warm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disjointness_family_encodes_the_diameter_gap() {
        use radio_graph::diameter::exact_diameter;
        let disjoint = Family::Disjointness {
            intersecting: false,
        }
        .build(120);
        let overlap = Family::Disjointness { intersecting: true }.build(120);
        assert_eq!(exact_diameter(&disjoint), Some(2));
        assert_eq!(exact_diameter(&overlap), Some(3));
    }

    #[test]
    fn sweep_covers_the_full_grid_of_cells() {
        let records = run_scenarios(&small_sweep());
        assert_eq!(records.len(), 12, "2 scenarios × 1 size × 6 seeds");
        // Trivial BFS on a connected graph labels everybody.
        for r in records.iter().filter(|r| r.protocol == "trivial_bfs") {
            assert_eq!(r.outcome, r.n as u64);
            assert!(r.max_lb_energy > 0);
            assert!(r.lb_calls > 0);
            assert_eq!(r.backend, "abstract");
            assert!(r.max_physical_energy.is_none());
        }
        // Clustering forms at least one cluster and stays within budget.
        for r in records
            .iter()
            .filter(|r| r.protocol.starts_with("clustering"))
        {
            assert!(r.outcome >= 1);
        }
    }

    #[test]
    fn sweep_json_is_byte_identical_across_runs() {
        // The multi-seed determinism property the runner guarantees: same
        // scenarios, same seeds ⇒ byte-identical JSON (there is no
        // wall-clock or hash-order dependence anywhere in the pipeline).
        let a = records_to_json(&run_scenarios(&small_sweep()));
        let b = records_to_json(&run_scenarios(&small_sweep()));
        assert_eq!(a, b);
        // And distinct seeds genuinely produce distinct runs where the
        // protocol is randomized (clustering cluster counts vary).
        let records = run_scenarios(&small_sweep());
        let cluster_counts: std::collections::BTreeSet<u64> = records
            .iter()
            .filter(|r| r.protocol.starts_with("clustering"))
            .map(|r| r.outcome)
            .collect();
        assert!(
            cluster_counts.len() > 1,
            "6 clustering seeds all produced identical outcomes: {cluster_counts:?}"
        );
    }

    #[test]
    fn recursive_bfs_scenario_labels_everything_on_a_path() {
        let records = run_scenario(&Scenario {
            name: "rec".into(),
            family: Family::Path,
            sizes: vec![96],
            seeds: (0..3).collect(),
            protocol: Protocol::RecursiveBfs,
            stack: StackSpec::Abstract,
        });
        for r in &records {
            assert_eq!(r.outcome, 96, "seed {} mislabelled the path", r.seed);
        }
    }

    #[test]
    fn physical_backend_scenarios_carry_slot_columns() {
        let records = run_scenario(&Scenario {
            name: "phys".into(),
            family: Family::Grid,
            sizes: vec![36],
            seeds: (0..2).collect(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::physical(false),
        });
        for r in &records {
            assert_eq!(r.backend, "physical");
            assert_eq!(r.energy_model, "uniform");
            assert_eq!(r.outcome, r.n as u64, "physical BFS mislabelled");
            let phys = r.max_physical_energy.expect("slot column");
            assert!(
                phys > r.max_lb_energy,
                "Decay expansion must cost more slots than LB units"
            );
            assert!(r.physical_slots.unwrap() >= r.lb_calls);
        }
    }

    #[test]
    fn parallel_runs_match_the_serial_path_record_for_record() {
        // The collect-by-index contract: every thread count yields the
        // exact serial record vector, including multi-size scenarios where
        // workers cross frame universes.
        let sweep = Scenario {
            name: "par".into(),
            family: Family::Grid,
            sizes: vec![36, 64],
            seeds: (0..7).collect(),
            protocol: Protocol::Clustering { inv_beta: 3 },
            stack: StackSpec::Abstract,
        };
        let serial = run_scenario(&sweep);
        assert_eq!(serial.len(), 14);
        for threads in [2usize, 3, 8] {
            let parallel = run_scenario_with(&sweep, &RunnerConfig::with_threads(threads));
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn every_enum_variant_resolves_and_labels_agree_with_the_registry() {
        // The thin-parser contract: each variant's spec resolves, and the
        // resolved protocol's name is exactly the label the records carry.
        let registry = energy_bfs::protocol::registry();
        let variants = [
            Protocol::TrivialBfs,
            Protocol::TrivialBfsDepth { depth: 64 },
            Protocol::TrivialBfsCd,
            Protocol::DecayBfs,
            Protocol::RecursiveBfs,
            Protocol::Clustering { inv_beta: 4 },
            Protocol::LbSweep { rounds: 16 },
        ];
        for p in variants {
            let resolved = registry
                .get(&p.spec())
                .unwrap_or_else(|e| panic!("{p:?}: {e}"));
            assert_eq!(
                resolved.name().as_str(),
                p.label(),
                "spec {} resolved to a differently-labelled protocol",
                p.spec()
            );
        }
    }

    #[test]
    fn decay_bfs_scenarios_label_everything_and_match_trivial_outcomes() {
        let run = |protocol: Protocol| {
            run_scenario(&Scenario {
                name: "decaycmp".into(),
                family: Family::Grid,
                sizes: vec![64],
                seeds: (0..3).collect(),
                protocol,
                stack: StackSpec::Abstract,
            })
        };
        for (d, t) in run(Protocol::DecayBfs)
            .iter()
            .zip(run(Protocol::TrivialBfs))
        {
            assert_eq!(d.protocol, "decay_bfs");
            assert_eq!(d.outcome, d.n as u64, "seed {}", d.seed);
            assert_eq!(d.outcome, t.outcome);
            // The unbounded wavefront stops one unproductive sweep after
            // eccentricity; the bounded one stops on an empty receiver set.
            assert!(d.lb_calls <= t.lb_calls + 1);
        }
    }

    #[test]
    fn trivial_bfs_cd_scenario_beats_its_no_cd_twin_on_physical_energy() {
        // The acceptance comparison the CI smoke re-runs on the full sweep:
        // identical workload and seeds, CD stack vs plain physical stack —
        // same labels and LB accounting, strictly cheaper slots.
        let run = |cd: bool| {
            run_scenario(&Scenario {
                name: "cdtwin".into(),
                family: Family::Grid,
                sizes: vec![64],
                seeds: (0..3).collect(),
                protocol: if cd {
                    Protocol::TrivialBfsCd
                } else {
                    Protocol::TrivialBfs
                },
                stack: StackSpec::physical(cd),
            })
        };
        for (no_cd, with_cd) in run(false).iter().zip(run(true)) {
            assert_eq!(no_cd.seed, with_cd.seed);
            assert_eq!(with_cd.backend, "physical_cd");
            assert_eq!(no_cd.outcome, with_cd.outcome, "labels must agree");
            assert_eq!(no_cd.lb_calls, with_cd.lb_calls);
            assert_eq!(no_cd.max_lb_energy, with_cd.max_lb_energy);
            assert!(
                with_cd.max_physical_energy.unwrap() <= no_cd.max_physical_energy.unwrap(),
                "seed {}: CD twin costs more slots",
                no_cd.seed
            );
        }
    }

    #[test]
    fn cd_protocol_on_a_no_cd_stack_panics_with_the_typed_error_message() {
        // The runner turns the registry's typed error into a panic naming
        // the scenario; the message must carry the capability mismatch.
        let result = std::panic::catch_unwind(|| {
            run_scenario(&Scenario {
                name: "badcaps".into(),
                family: Family::Path,
                sizes: vec![8],
                seeds: vec![0],
                protocol: Protocol::TrivialBfsCd,
                stack: StackSpec::physical(false),
            })
        });
        let err = result.expect_err("must refuse to run");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("collision detection"), "panic said: {msg}");
        assert!(msg.contains("badcaps"), "panic said: {msg}");
    }

    #[test]
    fn eseries_families_reweight_identical_slot_schedules() {
        // The E-series contract: per seed, the three weight ratios run the
        // exact same slots; only the energy column changes, and the 4:1
        // listen-heavy model dominates on listen-bound wavefronts.
        let run = |model: EnergyModel| {
            run_scenario(&Scenario {
                name: "es".into(),
                family: Family::Grid,
                sizes: vec![49],
                seeds: (0..2).collect(),
                protocol: Protocol::TrivialBfs,
                stack: StackSpec::Physical { cd: false, model },
            })
        };
        let uniform = run(EnergyModel::Uniform);
        let tx_heavy = run(EnergyModel::Weighted {
            listen: 1,
            transmit: 4,
        });
        let rx_heavy = run(EnergyModel::Weighted {
            listen: 4,
            transmit: 1,
        });
        for ((u, t), r) in uniform.iter().zip(&tx_heavy).zip(&rx_heavy) {
            assert_eq!(u.physical_slots, t.physical_slots);
            assert_eq!(u.physical_slots, r.physical_slots);
            assert_eq!(t.energy_model, "w1l4t");
            assert_eq!(r.energy_model, "w4l1t");
            assert!(t.max_physical_energy.unwrap() > u.max_physical_energy.unwrap());
            assert!(r.max_physical_energy.unwrap() > u.max_physical_energy.unwrap());
            // Wavefront receivers listen far more than they transmit, so
            // the listen-heavy ratio is the most expensive of the three.
            assert!(
                r.max_physical_energy.unwrap() > t.max_physical_energy.unwrap(),
                "seed {}: listen-heavy {} ≤ transmit-heavy {}",
                u.seed,
                r.max_physical_energy.unwrap(),
                t.max_physical_energy.unwrap()
            );
        }
    }

    #[test]
    fn abstract_cd_twins_agree_on_labels_and_accounting() {
        // The PR-6 sweep coordinate: the CD wavefront on the abstract-CD
        // stack is the per-seed twin of the plain wavefront on the plain
        // abstract stack. Same distance labels, no physical columns, and
        // the backend column reads `abstract_cd`.
        let run = |cd: bool| {
            run_scenario(&Scenario {
                name: "acd".into(),
                family: Family::Grid,
                sizes: vec![64],
                seeds: (0..3).collect(),
                protocol: if cd {
                    Protocol::TrivialBfsCd
                } else {
                    Protocol::TrivialBfs
                },
                stack: if cd {
                    StackSpec::AbstractCd
                } else {
                    StackSpec::Abstract
                },
            })
        };
        for (plain, cd) in run(false).iter().zip(run(true)) {
            assert_eq!(plain.seed, cd.seed);
            assert_eq!(cd.backend, "abstract_cd");
            assert_eq!(cd.energy_model, "uniform");
            assert_eq!(plain.outcome, cd.outcome, "labels must agree");
            assert!(cd.max_physical_energy.is_none(), "abstract has no slots");
            // The CD wavefront halts on the first all-Silence round instead
            // of waiting for an unproductive sweep, so it never takes longer.
            assert!(cd.lb_calls <= plain.lb_calls);
        }
    }

    #[test]
    fn default_sweep_appends_the_new_families_at_the_end() {
        // Order is part of the byte-stable JSON contract: each PR's
        // additions sit strictly after every pre-existing family. The PR-6
        // abstract-CD twins are followed by the PR-10 block — nine diameter
        // cells (3 families × 3 methods) and the tuned E-series twin last.
        let scenarios = default_scenarios();
        let k = scenarios.len();
        assert_eq!(scenarios[k - 12].name, "grid64-trivial-abstract");
        assert_eq!(scenarios[k - 12].stack, StackSpec::Abstract);
        assert_eq!(scenarios[k - 11].name, "grid64-trivial-abstract-cd");
        assert_eq!(scenarios[k - 11].stack, StackSpec::AbstractCd);
        let diam: Vec<&Scenario> = scenarios[k - 10..k - 1].iter().collect();
        assert_eq!(diam.len(), 9);
        for s in &diam {
            assert!(s.name.starts_with("diam-"), "{}", s.name);
            assert!(s.protocol.spec().starts_with("diameter:"), "{}", s.name);
        }
        assert_eq!(diam[0].name, "diam-grid16-hyperball");
        assert_eq!(diam[0].protocol.spec(), "diameter:hyperball:p=6");
        assert_eq!(scenarios[k - 1].name, "eseries-decay-w4l1t-tuned");
        assert_eq!(
            scenarios[k - 1].stack,
            StackSpec::PhysicalTuned {
                cd: false,
                model: EnergyModel::Weighted {
                    listen: 4,
                    transmit: 1,
                },
            }
        );
    }

    #[test]
    fn runner_config_default_uses_available_parallelism() {
        let cfg = RunnerConfig::default();
        assert!(cfg.threads >= 1);
        assert!(!cfg.quiet);
        assert_eq!(RunnerConfig::serial().threads, 1);
    }

    #[test]
    fn weighted_stack_dimension_reweights_without_changing_slots() {
        // Same seeds, same protocol, same backend — only the energy model
        // differs. Slot *counts* are untouched (the model is applied at
        // read time), so physical_slots agree while the weighted energy
        // column grows.
        let sweep = |model: EnergyModel| {
            run_scenario(&Scenario {
                name: "w".into(),
                family: Family::Path,
                sizes: vec![48],
                seeds: (0..3).collect(),
                protocol: Protocol::LbSweep { rounds: 4 },
                stack: StackSpec::Physical { cd: false, model },
            })
        };
        let uniform = sweep(EnergyModel::Uniform);
        let weighted = sweep(EnergyModel::Weighted {
            listen: 1,
            transmit: 4,
        });
        for (u, w) in uniform.iter().zip(&weighted) {
            assert_eq!(u.energy_model, "uniform");
            assert_eq!(w.energy_model, "w1l4t");
            assert_eq!(u.physical_slots, w.physical_slots, "seed {}", u.seed);
            assert_eq!(u.lb_calls, w.lb_calls);
            assert!(
                w.max_physical_energy.unwrap() > u.max_physical_energy.unwrap(),
                "transmit-heavy model must charge more than uniform"
            );
        }
    }

    #[test]
    fn family_and_stack_labels_round_trip_through_parse() {
        // The serve mode's request fields are these labels; parse must be
        // the exact inverse of label for every family and stack the sweeps
        // use.
        let families = [
            Family::Path,
            Family::Cycle,
            Family::Grid,
            Family::GridHilbert,
            Family::Tree { arity: 3 },
            Family::Tree { arity: 7 },
            Family::Star,
            Family::Lollipop,
            Family::Complete,
            Family::CompleteMinusEdge,
            Family::Disjointness { intersecting: true },
            Family::Disjointness {
                intersecting: false,
            },
        ];
        for f in families {
            assert_eq!(Family::parse(&f.label()), Some(f.clone()), "{}", f.label());
        }
        assert_eq!(Family::parse("tree1"), None, "arity < 2 must be rejected");
        assert_eq!(Family::parse("treex"), None);
        assert_eq!(Family::parse("torus"), None);
        let stacks = [
            StackSpec::Abstract,
            StackSpec::AbstractCd,
            StackSpec::physical(false),
            StackSpec::physical(true),
            StackSpec::Physical {
                cd: false,
                model: EnergyModel::Weighted {
                    listen: 1,
                    transmit: 4,
                },
            },
            StackSpec::Physical {
                cd: true,
                model: EnergyModel::Weighted {
                    listen: 4,
                    transmit: 1,
                },
            },
            StackSpec::PhysicalTuned {
                cd: false,
                model: EnergyModel::Uniform,
            },
            StackSpec::PhysicalTuned {
                cd: true,
                model: EnergyModel::Weighted {
                    listen: 4,
                    transmit: 1,
                },
            },
        ];
        for s in stacks {
            assert_eq!(StackSpec::parse(&s.label()), Some(s), "{}", s.label());
        }
        assert_eq!(StackSpec::parse("physical:w1l4"), None);
        assert_eq!(StackSpec::parse("quantum"), None);
        assert_eq!(StackSpec::parse("abstract:tuned"), None);
        assert_eq!(StackSpec::parse("physical:tuned:tuned"), None);
        assert_eq!(
            StackSpec::PhysicalTuned {
                cd: false,
                model: EnergyModel::Weighted {
                    listen: 4,
                    transmit: 1,
                },
            }
            .label(),
            "physical:w4l1t:tuned"
        );
    }

    #[test]
    fn diameter_cells_carry_estimate_exact_and_agreement_columns() {
        let registry = energy_bfs::protocol::registry();
        let run = |spec: &str| {
            run_scenario(&Scenario {
                name: "diam".into(),
                family: Family::Grid,
                sizes: vec![64],
                seeds: vec![0, 1],
                protocol: Protocol::from_spec(spec, &registry).unwrap(),
                stack: StackSpec::Abstract,
            })
        };
        // Grid 8×8: exact diameter 14.
        for spec in [
            "diameter:hyperball:p=6",
            "diameter:two_approx",
            "diameter:three_halves_approx",
        ] {
            for r in run(spec) {
                assert_eq!(r.exact, Some(14), "{spec} seed {}", r.seed);
                let est = r.estimate.expect("diameter cell has an estimate");
                assert_eq!(r.outcome, est, "outcome doubles as the estimate");
                assert_eq!(
                    r.agrees,
                    Some(true),
                    "{spec} seed {}: estimate {est} outside the envelope",
                    r.seed
                );
            }
        }
        // Non-diameter protocols keep all three columns absent.
        let plain = run_scenario(&Scenario {
            name: "plain".into(),
            family: Family::Grid,
            sizes: vec![64],
            seeds: vec![0],
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        });
        assert_eq!(
            (plain[0].estimate, plain[0].exact, plain[0].agrees),
            (None, None, None)
        );
    }

    #[test]
    fn diameter_agreement_envelopes_match_the_method_guarantees() {
        // Theorem 5.3: [⌈D/2⌉, D].
        assert!(diameter_agreement("diameter_two_approx", 7, 14));
        assert!(diameter_agreement("diameter_two_approx", 14, 14));
        assert!(!diameter_agreement("diameter_two_approx", 6, 14));
        assert!(!diameter_agreement("diameter_two_approx", 15, 14));
        // Theorem 5.4: [⌊2D/3⌋, D].
        assert!(diameter_agreement("diameter_three_halves_approx", 9, 14));
        assert!(!diameter_agreement("diameter_three_halves_approx", 8, 14));
        assert!(!diameter_agreement("diameter_three_halves_approx", 15, 14));
        // HyperBall at p=6: tol = 1.04/8 = 0.13, so ±⌈0.13·62⌉ = ±9 at
        // D=62 and ±1 minimum at tiny diameters; both label shapes parse.
        assert!(diameter_agreement("diameter_hyperball_p6", 53, 62));
        assert!(!diameter_agreement("diameter_hyperball_p6", 52, 62));
        assert!(diameter_agreement("hyperball_p6", 3, 4));
        assert!(diameter_agreement("diameter_hyperball_p4_r12", 50, 62));
        // Unknown labels degrade to exact equality.
        assert!(diameter_agreement("something_else", 5, 5));
        assert!(!diameter_agreement("something_else", 4, 5));
    }

    #[test]
    fn tuned_decay_params_cut_weighted_energy_on_the_eseries_twin() {
        // The satellite-2 pin at sweep scale: the listen-heavy (w4l1t)
        // Decay wavefront on the tuned stack must charge strictly less max
        // physical energy than the identical workload on the ratio-blind
        // default, seed by seed, while still labelling the whole grid.
        let listen_heavy = EnergyModel::Weighted {
            listen: 4,
            transmit: 1,
        };
        let run = |stack: StackSpec| {
            run_scenario(&Scenario {
                name: "tuned".into(),
                family: Family::Grid,
                sizes: vec![256],
                seeds: (0..3).collect(),
                protocol: Protocol::DecayBfs,
                stack,
            })
        };
        let blind = run(StackSpec::Physical {
            cd: false,
            model: listen_heavy,
        });
        let tuned = run(StackSpec::PhysicalTuned {
            cd: false,
            model: listen_heavy,
        });
        for (b, t) in blind.iter().zip(&tuned) {
            assert_eq!(b.seed, t.seed);
            assert_eq!(t.backend, "physical");
            assert_eq!(t.energy_model, "w4l1t");
            assert_eq!(t.outcome, 256, "seed {}: tuned run lost vertices", t.seed);
            assert!(
                t.max_physical_energy.unwrap() < b.max_physical_energy.unwrap(),
                "seed {}: tuned {} not below ratio-blind {}",
                t.seed,
                t.max_physical_energy.unwrap(),
                b.max_physical_energy.unwrap()
            );
            assert!(t.physical_slots.unwrap() < b.physical_slots.unwrap());
        }
    }

    #[test]
    fn custom_protocol_resolves_through_the_registry_and_runs() {
        let registry = energy_bfs::protocol::registry();
        let p = Protocol::from_spec("clustering:b=3", &registry).expect("valid spec");
        assert_eq!(p.spec(), "clustering:b=3");
        assert_eq!(p.label(), "clustering_b3");
        // An unknown spec is the registry's typed error, not a panic.
        assert!(Protocol::from_spec("warp_drive", &registry).is_err());
        // A Custom-protocol scenario runs identically to the enum variant
        // it aliases — spec equality means registry equality means record
        // equality.
        let run = |protocol: Protocol| {
            run_scenario(&Scenario {
                name: "custom".into(),
                family: Family::Grid,
                sizes: vec![49],
                seeds: (0..3).collect(),
                protocol,
                stack: StackSpec::Abstract,
            })
        };
        let direct = run(Protocol::Clustering { inv_beta: 3 });
        let custom = run(Protocol::from_spec("clustering:b=3", &registry).unwrap());
        assert_eq!(direct, custom);
    }

    #[test]
    fn result_store_makes_warm_sweeps_byte_identical_and_probe_only() {
        // The incremental-sweep contract at unit scale: cold run computes
        // and writes back, warm run answers every cell from artifacts, and
        // the JSON is byte-identical across uncached/cold/warm at both the
        // serial path and a parallel config.
        let dir = std::env::temp_dir().join(format!(
            "radio-bench-results-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let sweep = small_sweep();
        let uncached = records_to_json(&run_scenarios(&sweep));
        let store = ResultStore::new(&dir);
        let cfg = RunnerConfig::serial();
        let cold = records_to_json(&run_scenarios_with_stores(&sweep, &cfg, None, Some(&store)));
        assert_eq!(store.hits(), 0, "cold run must miss every cell");
        assert_eq!(store.misses(), 12);
        let warm = records_to_json(&run_scenarios_with_stores(&sweep, &cfg, None, Some(&store)));
        assert_eq!(store.hits(), 12, "warm run must hit every cell");
        assert_eq!(store.misses(), 12, "warm run must not miss");
        let warm4 = records_to_json(&run_scenarios_with_stores(
            &sweep,
            &RunnerConfig::with_threads(4),
            None,
            Some(&store),
        ));
        assert_eq!(uncached, cold);
        assert_eq!(uncached, warm);
        assert_eq!(uncached, warm4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restricted_active_sets_change_records_and_result_keys() {
        // The active-set satellite end to end: a restricted active set
        // reaches the protocol (the wavefront halts at the boundary) and
        // separates the cell's result key, so cached full-set records can
        // never answer a restricted request.
        let scenario = Scenario {
            name: "act".into(),
            family: Family::Path,
            sizes: vec![24],
            seeds: vec![0],
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        };
        let dir = std::env::temp_dir().join(format!(
            "radio-bench-active-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let store = ResultStore::new(&dir);
        let cfg = RunnerConfig::serial();
        let full = run_scenario_with_stores(&scenario, &cfg, None, Some(&store), None);
        let prefix: Vec<usize> = (0..12).collect();
        let restricted =
            run_scenario_with_stores(&scenario, &cfg, None, Some(&store), Some(&prefix));
        assert_eq!(full[0].outcome, 24, "full set labels the whole path");
        assert_eq!(
            restricted[0].outcome, 12,
            "the wavefront must stop at the active-set boundary"
        );
        // Two cells, two keys: the restricted run missed (computed), it did
        // not reuse the full-set artifact.
        assert_eq!(store.misses(), 2);
        assert_eq!(store.hits(), 0);
        assert_ne!(
            scenario.result_key(24, 0, None).content_hash(),
            scenario.result_key(24, 0, Some(&prefix)).content_hash()
        );
        // And both warm up independently.
        run_scenario_with_stores(&scenario, &cfg, None, Some(&store), Some(&prefix));
        run_scenario_with_stores(&scenario, &cfg, None, Some(&store), None);
        assert_eq!(store.hits(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cd_sweep_beats_no_cd_on_sparse_neighbourhoods() {
        // The acceptance comparison for the CD-aware decay: identical
        // LbSweep scenarios on path(64), physical backend, CD on vs off.
        // With CD, hopeless receivers resolve after one iteration and
        // senders retire via the echo slot, so both the max per-node energy
        // and the elapsed slots drop.
        let run = |cd: bool| {
            run_scenario(&Scenario {
                name: "cdcmp".into(),
                family: Family::Path,
                sizes: vec![64],
                seeds: (0..3).collect(),
                protocol: Protocol::LbSweep { rounds: 4 },
                stack: StackSpec::physical(cd),
            })
        };
        for (no_cd, with_cd) in run(false).iter().zip(run(true)) {
            assert_eq!(no_cd.seed, with_cd.seed);
            // Same LB-unit accounting (the unit of analysis is unchanged)...
            assert_eq!(no_cd.lb_calls, with_cd.lb_calls);
            assert_eq!(no_cd.max_lb_energy, with_cd.max_lb_energy);
            // ...but strictly cheaper physical execution.
            assert!(
                with_cd.max_physical_energy.unwrap() < no_cd.max_physical_energy.unwrap(),
                "seed {}: CD {} ≥ no-CD {}",
                no_cd.seed,
                with_cd.max_physical_energy.unwrap(),
                no_cd.max_physical_energy.unwrap()
            );
            assert!(
                with_cd.physical_slots.unwrap() < no_cd.physical_slots.unwrap(),
                "seed {}: CD used as many slots",
                no_cd.seed
            );
        }
    }
}
