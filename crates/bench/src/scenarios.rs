//! Batched multi-seed scenario runner.
//!
//! A [`Scenario`] is a declarative sweep — a graph family, a list of sizes,
//! a list of seeds, a protocol, and a [`StackSpec`] choosing the backend —
//! and the runner executes the full cartesian product, emitting one
//! [`ScenarioRecord`] of energy/time metrics per (size, seed) cell. Within
//! one size the graph is built once and a single [`radio_protocols::LbFrame`] is reused
//! across every seed (the frame-engine reuse discipline), so large-n
//! many-seed sweeps cost one allocation per size instead of one per
//! Local-Broadcast call.
//!
//! The stack dimension rides the [`StackBuilder`] API: the same scenario
//! can run on the paper's abstract accounting backend, on the slot-accurate
//! physical backend, or on the physical backend with receiver-side
//! collision detection (where Local-Broadcast switches to the CD-aware
//! Decay variant) — and the records then carry slot-level energy columns.
//!
//! Records serialize to JSON with a stable field order and no wall-clock
//! fields, so a sweep is byte-for-byte reproducible: same scenarios + same
//! seeds ⇒ identical JSON. That property is what lets sweeps be diffed
//! across commits the way `BENCH_*.json` files are.

use energy_bfs::baseline::trivial_bfs_with_frame;
use energy_bfs::{build_hierarchy, recursive_bfs_with_hierarchy, RecursiveBfsConfig};
use radio_graph::lower_bound::build_disjointness_graph;
use radio_graph::{generators, Graph};
use radio_protocols::{
    cluster_distributed, ClusteringConfig, EnergyModel, Msg, RadioStack, Stack, StackBuilder,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Graph family of a scenario. `size` is always the *target node count*;
/// families that cannot hit it exactly (grids, trees, disjointness
/// instances) build the largest instance not exceeding it and report the
/// realized `n` in the record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Family {
    /// Path graph `P_n`.
    Path,
    /// Cycle graph `C_n`.
    Cycle,
    /// Square grid with side `⌊√size⌋`.
    Grid,
    /// Complete `arity`-ary tree with as many full levels as fit in `size`.
    Tree {
        /// Branching factor (≥ 2).
        arity: usize,
    },
    /// Star graph (one hub, `size − 1` leaves) — the maximum-contention
    /// workload of the hardness experiments.
    Star,
    /// Lollipop: a clique of `⌊size/4⌋` vertices dragging a path — the
    /// classic hard case for sweep-style protocols.
    Lollipop,
    /// The complete graph `K_n` — one half of the Theorem 5.1 hard pair.
    Complete,
    /// `K_n − e` (the edge between vertices 1 and 2 removed) — the other
    /// half of the Theorem 5.1 pair; distinguishing it from `K_n` is what
    /// costs Ω(n) energy.
    CompleteMinusEdge,
    /// A Theorem 5.2 set-disjointness instance: the largest universe
    /// `k = 2^ℓ` with `k + 2ℓ + 2 ≤ size`, with `A` the lower half of the
    /// universe and `B` either the upper half (`intersecting: false`,
    /// diameter 2) or also the lower half (`intersecting: true`,
    /// diameter 3) — the reduction's 2-vs-3 diameter gap.
    Disjointness {
        /// Whether the two encoded sets intersect.
        intersecting: bool,
    },
}

impl Family {
    /// A printable name for tables and JSON.
    pub fn label(&self) -> String {
        match self {
            Family::Path => "path".into(),
            Family::Cycle => "cycle".into(),
            Family::Grid => "grid".into(),
            Family::Tree { arity } => format!("tree{arity}"),
            Family::Star => "star".into(),
            Family::Lollipop => "lollipop".into(),
            Family::Complete => "kn".into(),
            Family::CompleteMinusEdge => "kn_minus_e".into(),
            Family::Disjointness { intersecting } => {
                if *intersecting {
                    "disj_overlap".into()
                } else {
                    "disj_disjoint".into()
                }
            }
        }
    }

    /// Builds the instance for the given target node count.
    pub fn build(&self, size: usize) -> Graph {
        let size = size.max(2);
        match self {
            Family::Path => generators::path(size),
            Family::Cycle => generators::cycle(size.max(3)),
            Family::Grid => {
                let side = (size as f64).sqrt().floor() as usize;
                generators::grid(side.max(2), side.max(2))
            }
            Family::Tree { arity } => {
                let k = (*arity).max(2);
                let mut levels = 2usize;
                // Largest complete k-ary tree with at most `size` nodes.
                while tree_nodes(k, levels + 1) <= size {
                    levels += 1;
                }
                generators::complete_k_ary_tree(k, levels)
            }
            Family::Star => generators::star(size),
            Family::Lollipop => {
                // Clamp the clique to the target so tiny sizes degrade to a
                // bare clique instead of underflowing the tail length.
                let clique = (size / 4).max(3).min(size);
                generators::lollipop(clique, size - clique)
            }
            Family::Complete => generators::complete(size.max(3)),
            Family::CompleteMinusEdge => generators::complete_minus_edge(size.max(3), 1, 2),
            Family::Disjointness { intersecting } => {
                // Largest universe k = 2^ℓ with k + 2ℓ + 2 ≤ size (ℓ ≥ 2).
                let mut ell = 2u32;
                while (1usize << (ell + 1)) + 2 * (ell as usize + 1) + 2 <= size {
                    ell += 1;
                }
                let k = 1u64 << ell;
                let set_a: Vec<u64> = (0..k / 2).collect();
                let set_b: Vec<u64> = if *intersecting {
                    (0..k / 2).collect()
                } else {
                    (k / 2..k).collect()
                };
                build_disjointness_graph(&set_a, &set_b, ell).graph
            }
        }
    }
}

/// Number of nodes of the complete `k`-ary tree with `levels` levels.
fn tree_nodes(k: usize, levels: usize) -> usize {
    let mut total = 0usize;
    let mut layer = 1usize;
    for _ in 0..levels {
        total = total.saturating_add(layer);
        layer = layer.saturating_mul(k);
    }
    total
}

/// Which [`RadioStack`] backend a scenario runs on — the stack dimension of
/// the sweep grid, mapped 1:1 onto [`StackBuilder`] calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackSpec {
    /// The paper's LB-unit accounting backend.
    Abstract,
    /// The slot-accurate Decay-expanding backend; with `cd` the stack runs
    /// the CD-aware Decay variant and records fewer slots on sparse
    /// neighbourhoods.
    Physical {
        /// Enable receiver-side collision detection.
        cd: bool,
    },
}

impl StackSpec {
    /// Builds the stack for one seeded run. The record's backend label is
    /// read back from the built stack's `Capabilities::label`, so the JSON
    /// column can never drift from what the stack actually is.
    pub fn build(&self, graph: Graph, seed: u64) -> Stack {
        let builder = StackBuilder::new(graph).with_seed(seed);
        match self {
            StackSpec::Abstract => builder.build(),
            StackSpec::Physical { cd } => {
                let builder = builder.physical(EnergyModel::Uniform);
                if *cd {
                    builder.with_cd().build()
                } else {
                    builder.build()
                }
            }
        }
    }
}

/// Protocol executed on each (size, seed) cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Full-depth trivial wavefront BFS from node 0 (Section 4.3 baseline).
    TrivialBfs,
    /// Recursive BFS from node 0 with `1/β ≈ √D` (the paper's tuning),
    /// hierarchy rebuilt per seed.
    RecursiveBfs,
    /// Distributed MPX clustering (Lemma 2.5) with the given `1/β`.
    Clustering {
        /// The integral `1/β` of the MPX growth.
        inv_beta: u64,
    },
    /// A bare Local-Broadcast stress loop: in round `r`, node `r mod n`
    /// sends and everyone else listens. Most receivers are outside the
    /// sender's neighbourhood, which is exactly the sparse-neighbourhood
    /// regime where the CD-aware Decay variant terminates early — run it
    /// under `physical` and `physical_cd` to measure the saving.
    LbSweep {
        /// Number of Local-Broadcast rounds.
        rounds: u64,
    },
}

impl Protocol {
    /// A printable name for tables and JSON.
    pub fn label(&self) -> String {
        match self {
            Protocol::TrivialBfs => "trivial_bfs".into(),
            Protocol::RecursiveBfs => "recursive_bfs".into(),
            Protocol::Clustering { inv_beta } => format!("clustering_b{inv_beta}"),
            Protocol::LbSweep { rounds } => format!("lb_sweep_{rounds}"),
        }
    }
}

/// One declarative sweep: `family × sizes × seeds`, one protocol, one
/// backend.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Name of the sweep (appears in every record).
    pub name: String,
    /// Graph family.
    pub family: Family,
    /// Target node counts.
    pub sizes: Vec<usize>,
    /// RNG seeds; one run per seed per size.
    pub seeds: Vec<u64>,
    /// Protocol to execute.
    pub protocol: Protocol,
    /// Backend the protocol runs on.
    pub stack: StackSpec,
}

/// Deterministic per-run metrics of one (size, seed) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRecord {
    /// Scenario name.
    pub scenario: String,
    /// Family label.
    pub family: String,
    /// Realized node count.
    pub n: usize,
    /// Seed of this run.
    pub seed: u64,
    /// Protocol label.
    pub protocol: String,
    /// Backend label (`abstract`, `physical`, `physical_cd`).
    pub backend: String,
    /// Local-Broadcast calls (time in LB units).
    pub lb_calls: u64,
    /// Maximum per-node LB participations (the paper's energy measure).
    pub max_lb_energy: u64,
    /// Mean per-node LB participations.
    pub mean_lb_energy: f64,
    /// Maximum per-node physical energy (slots), physical backends only.
    pub max_physical_energy: Option<u64>,
    /// Elapsed physical slots, physical backends only.
    pub physical_slots: Option<u64>,
    /// Protocol-specific output size: vertices labelled (BFS), clusters
    /// formed (clustering), or deliveries (LB sweep); a cheap cross-seed
    /// sanity signal.
    pub outcome: u64,
}

/// Runs one scenario, reusing a single frame allocation across all seeds of
/// each size.
pub fn run_scenario(scenario: &Scenario) -> Vec<ScenarioRecord> {
    let mut records = Vec::new();
    for &size in &scenario.sizes {
        let g = scenario.family.build(size);
        let n = g.num_nodes();
        // One frame per size, shared by every seeded run below.
        let mut frame = radio_protocols::LbFrame::new(n);
        for &seed in &scenario.seeds {
            let mut net = scenario.stack.build(g.clone(), seed);
            let outcome = match &scenario.protocol {
                Protocol::TrivialBfs => {
                    let active = vec![true; n];
                    let result =
                        trivial_bfs_with_frame(&mut net, &[0], &active, n as u64, &mut frame);
                    result.dist.iter().filter(|d| d.is_some()).count() as u64
                }
                Protocol::RecursiveBfs => {
                    let depth = (n - 1) as u64;
                    let config = scaling_config_for(depth, seed);
                    let hierarchy = build_hierarchy(&mut net, &config);
                    let result = recursive_bfs_with_hierarchy(
                        &mut net,
                        &hierarchy,
                        &[0],
                        depth,
                        &config,
                        &[],
                    );
                    result.dist.iter().filter(|d| d.is_some()).count() as u64
                }
                Protocol::Clustering { inv_beta } => {
                    let cfg = ClusteringConfig::new(*inv_beta);
                    let mut rng = ChaCha8Rng::seed_from_u64(seed);
                    let state = cluster_distributed(&mut net, &cfg, &mut rng);
                    state.num_clusters() as u64
                }
                Protocol::LbSweep { rounds } => {
                    let mut delivered = 0u64;
                    for r in 0..*rounds {
                        frame.clear();
                        let src = (r as usize) % n;
                        frame.add_sender(src, Msg::words(&[r]));
                        for v in 0..n {
                            if v != src {
                                frame.add_receiver(v);
                            }
                        }
                        net.local_broadcast(&mut frame);
                        delivered += frame.delivered().len() as u64;
                    }
                    delivered
                }
            };
            let view = net.energy_view();
            records.push(ScenarioRecord {
                scenario: scenario.name.clone(),
                family: scenario.family.label(),
                n,
                seed,
                protocol: scenario.protocol.label(),
                backend: net.capabilities().label(),
                lb_calls: view.lb_time(),
                max_lb_energy: view.max_lb_energy(),
                mean_lb_energy: view.mean_lb_energy(),
                max_physical_energy: view.max_physical_energy(),
                physical_slots: view.physical_slots(),
                outcome,
            });
        }
    }
    records
}

/// Runs a batch of scenarios back to back.
pub fn run_scenarios(scenarios: &[Scenario]) -> Vec<ScenarioRecord> {
    scenarios
        .iter()
        .flat_map(|s| run_scenario(s).into_iter())
        .collect()
}

fn scaling_config_for(depth: u64, seed: u64) -> RecursiveBfsConfig {
    let inv_beta = ((depth as f64).sqrt().round() as u64)
        .next_power_of_two()
        .max(4);
    RecursiveBfsConfig {
        inv_beta,
        max_depth: 1,
        trivial_cutoff: inv_beta,
        seed,
        ..Default::default()
    }
}

/// The default sweep wired into `experiments -- scenarios`: the PR-2 era
/// grid/tree/cluster/contention workloads, the Theorem 5.1/5.2 hardness
/// families, a physical-backend sweep, and the CD-vs-No-CD Local-Broadcast
/// comparison, six seeds each.
pub fn default_scenarios() -> Vec<Scenario> {
    let seeds: Vec<u64> = (0..6).collect();
    let mut out = vec![
        Scenario {
            name: "grid32-trivial".into(),
            family: Family::Grid,
            sizes: vec![1024],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "tree3-trivial".into(),
            family: Family::Tree { arity: 3 },
            sizes: vec![1093],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "path512-recursive".into(),
            family: Family::Path,
            sizes: vec![512],
            seeds: seeds.clone(),
            protocol: Protocol::RecursiveBfs,
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "grid32-clustering".into(),
            family: Family::Grid,
            sizes: vec![1024],
            seeds: seeds.clone(),
            protocol: Protocol::Clustering { inv_beta: 4 },
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "lollipop-trivial".into(),
            family: Family::Lollipop,
            sizes: vec![2048],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        // Hardness families (Theorems 5.1 and 5.2): the K_n / K_n − e pair
        // under maximum contention, and both disjointness diameters.
        Scenario {
            name: "kn-trivial".into(),
            family: Family::Complete,
            sizes: vec![192],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "kn-minus-e-trivial".into(),
            family: Family::CompleteMinusEdge,
            sizes: vec![192],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "disjointness-disjoint".into(),
            family: Family::Disjointness {
                intersecting: false,
            },
            sizes: vec![300],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        Scenario {
            name: "disjointness-overlap".into(),
            family: Family::Disjointness { intersecting: true },
            sizes: vec![300],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Abstract,
        },
        // The physical backend as a scenario dimension: the same trivial
        // BFS, now paying real Decay slots.
        Scenario {
            name: "grid16-trivial-physical".into(),
            family: Family::Grid,
            sizes: vec![256],
            seeds: seeds.clone(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Physical { cd: false },
        },
    ];
    // The CD comparison family: identical sweeps on the physical backend
    // with and without receiver-side collision detection; diff the
    // max_physical_energy / physical_slots columns.
    for cd in [false, true] {
        out.push(Scenario {
            name: format!("path-lbsweep-{}", if cd { "cd" } else { "nocd" }),
            family: Family::Path,
            sizes: vec![256],
            seeds: seeds.clone(),
            protocol: Protocol::LbSweep { rounds: 16 },
            stack: StackSpec::Physical { cd },
        });
    }
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |x| x.to_string())
}

/// Serializes records as a stable, pretty-printed JSON array: fixed field
/// order, floats at three decimals, `null` for absent physical counters, no
/// wall-clock fields — byte-identical across repeated runs of the same
/// sweep.
pub fn records_to_json(records: &[ScenarioRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"scenario\":\"{}\",\"family\":\"{}\",\"n\":{},\"seed\":{},\
             \"protocol\":\"{}\",\"backend\":\"{}\",\"lb_calls\":{},\"max_lb_energy\":{},\
             \"mean_lb_energy\":{:.3},\"max_physical_energy\":{},\"physical_slots\":{},\
             \"outcome\":{}}}{}\n",
            json_escape(&r.scenario),
            json_escape(&r.family),
            r.n,
            r.seed,
            json_escape(&r.protocol),
            json_escape(&r.backend),
            r.lb_calls,
            r.max_lb_energy,
            r.mean_lb_energy,
            json_opt(r.max_physical_energy),
            json_opt(r.physical_slots),
            r.outcome,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "grid-small".into(),
                family: Family::Grid,
                sizes: vec![64],
                seeds: (0..6).collect(),
                protocol: Protocol::TrivialBfs,
                stack: StackSpec::Abstract,
            },
            Scenario {
                name: "tree-small".into(),
                family: Family::Tree { arity: 3 },
                sizes: vec![40],
                seeds: (0..6).collect(),
                protocol: Protocol::Clustering { inv_beta: 3 },
                stack: StackSpec::Abstract,
            },
        ]
    }

    #[test]
    fn lollipop_degrades_gracefully_at_tiny_sizes() {
        // Regression: size < clique must not underflow the tail length.
        for size in [2usize, 3, 4, 7, 11] {
            let g = Family::Lollipop.build(size);
            assert!(g.num_nodes() <= size.max(3), "size {size}");
        }
    }

    #[test]
    fn json_escapes_special_characters_in_names() {
        let records = vec![ScenarioRecord {
            scenario: "grid-\"big\"\\".into(),
            family: "grid".into(),
            n: 4,
            seed: 0,
            protocol: "trivial_bfs".into(),
            backend: "abstract".into(),
            lb_calls: 1,
            max_lb_energy: 1,
            mean_lb_energy: 1.0,
            max_physical_energy: None,
            physical_slots: None,
            outcome: 4,
        }];
        let json = records_to_json(&records);
        assert!(json.contains("grid-\\\"big\\\"\\\\"), "escaped: {json}");
        assert!(json.contains("\"max_physical_energy\":null"));
    }

    #[test]
    fn family_sizes_are_respected() {
        assert_eq!(Family::Path.build(17).num_nodes(), 17);
        assert_eq!(Family::Grid.build(1024).num_nodes(), 1024);
        assert_eq!(Family::Grid.build(1000).num_nodes(), 961); // 31×31
        let t = Family::Tree { arity: 3 }.build(40);
        assert!(t.num_nodes() <= 40 && t.num_nodes() >= 13);
        assert_eq!(Family::Star.build(100).num_nodes(), 100);
        assert!(Family::Lollipop.build(80).num_nodes() <= 80);
        assert_eq!(Family::Complete.build(64).num_nodes(), 64);
        assert_eq!(Family::CompleteMinusEdge.build(64).num_nodes(), 64);
        // K_n has one more edge than K_n − e.
        assert_eq!(
            Family::Complete.build(64).num_edges(),
            Family::CompleteMinusEdge.build(64).num_edges() + 1
        );
        for intersecting in [false, true] {
            let g = Family::Disjointness { intersecting }.build(300);
            assert!(g.num_nodes() <= 300, "{}", g.num_nodes());
            assert!(g.num_nodes() > 150, "{}", g.num_nodes());
        }
    }

    #[test]
    fn disjointness_family_encodes_the_diameter_gap() {
        use radio_graph::diameter::exact_diameter;
        let disjoint = Family::Disjointness {
            intersecting: false,
        }
        .build(120);
        let overlap = Family::Disjointness { intersecting: true }.build(120);
        assert_eq!(exact_diameter(&disjoint), Some(2));
        assert_eq!(exact_diameter(&overlap), Some(3));
    }

    #[test]
    fn sweep_covers_the_full_grid_of_cells() {
        let records = run_scenarios(&small_sweep());
        assert_eq!(records.len(), 12, "2 scenarios × 1 size × 6 seeds");
        // Trivial BFS on a connected graph labels everybody.
        for r in records.iter().filter(|r| r.protocol == "trivial_bfs") {
            assert_eq!(r.outcome, r.n as u64);
            assert!(r.max_lb_energy > 0);
            assert!(r.lb_calls > 0);
            assert_eq!(r.backend, "abstract");
            assert!(r.max_physical_energy.is_none());
        }
        // Clustering forms at least one cluster and stays within budget.
        for r in records
            .iter()
            .filter(|r| r.protocol.starts_with("clustering"))
        {
            assert!(r.outcome >= 1);
        }
    }

    #[test]
    fn sweep_json_is_byte_identical_across_runs() {
        // The multi-seed determinism property the runner guarantees: same
        // scenarios, same seeds ⇒ byte-identical JSON (there is no
        // wall-clock or hash-order dependence anywhere in the pipeline).
        let a = records_to_json(&run_scenarios(&small_sweep()));
        let b = records_to_json(&run_scenarios(&small_sweep()));
        assert_eq!(a, b);
        // And distinct seeds genuinely produce distinct runs where the
        // protocol is randomized (clustering cluster counts vary).
        let records = run_scenarios(&small_sweep());
        let cluster_counts: std::collections::BTreeSet<u64> = records
            .iter()
            .filter(|r| r.protocol.starts_with("clustering"))
            .map(|r| r.outcome)
            .collect();
        assert!(
            cluster_counts.len() > 1,
            "6 clustering seeds all produced identical outcomes: {cluster_counts:?}"
        );
    }

    #[test]
    fn recursive_bfs_scenario_labels_everything_on_a_path() {
        let records = run_scenario(&Scenario {
            name: "rec".into(),
            family: Family::Path,
            sizes: vec![96],
            seeds: (0..3).collect(),
            protocol: Protocol::RecursiveBfs,
            stack: StackSpec::Abstract,
        });
        for r in &records {
            assert_eq!(r.outcome, 96, "seed {} mislabelled the path", r.seed);
        }
    }

    #[test]
    fn physical_backend_scenarios_carry_slot_columns() {
        let records = run_scenario(&Scenario {
            name: "phys".into(),
            family: Family::Grid,
            sizes: vec![36],
            seeds: (0..2).collect(),
            protocol: Protocol::TrivialBfs,
            stack: StackSpec::Physical { cd: false },
        });
        for r in &records {
            assert_eq!(r.backend, "physical");
            assert_eq!(r.outcome, r.n as u64, "physical BFS mislabelled");
            let phys = r.max_physical_energy.expect("slot column");
            assert!(
                phys > r.max_lb_energy,
                "Decay expansion must cost more slots than LB units"
            );
            assert!(r.physical_slots.unwrap() >= r.lb_calls);
        }
    }

    #[test]
    fn cd_sweep_beats_no_cd_on_sparse_neighbourhoods() {
        // The acceptance comparison for the CD-aware decay: identical
        // LbSweep scenarios on path(64), physical backend, CD on vs off.
        // With CD, hopeless receivers resolve after one iteration and
        // senders retire via the echo slot, so both the max per-node energy
        // and the elapsed slots drop.
        let run = |cd: bool| {
            run_scenario(&Scenario {
                name: "cdcmp".into(),
                family: Family::Path,
                sizes: vec![64],
                seeds: (0..3).collect(),
                protocol: Protocol::LbSweep { rounds: 4 },
                stack: StackSpec::Physical { cd },
            })
        };
        for (no_cd, with_cd) in run(false).iter().zip(run(true)) {
            assert_eq!(no_cd.seed, with_cd.seed);
            // Same LB-unit accounting (the unit of analysis is unchanged)...
            assert_eq!(no_cd.lb_calls, with_cd.lb_calls);
            assert_eq!(no_cd.max_lb_energy, with_cd.max_lb_energy);
            // ...but strictly cheaper physical execution.
            assert!(
                with_cd.max_physical_energy.unwrap() < no_cd.max_physical_energy.unwrap(),
                "seed {}: CD {} ≥ no-CD {}",
                no_cd.seed,
                with_cd.max_physical_energy.unwrap(),
                no_cd.max_physical_energy.unwrap()
            );
            assert!(
                with_cd.physical_slots.unwrap() < no_cd.physical_slots.unwrap(),
                "seed {}: CD used as many slots",
                no_cd.seed
            );
        }
    }
}
