//! A minimal JSON value + recursive-descent parser.
//!
//! The `serve` mode speaks line-delimited JSON over TCP, and the offline
//! vendor set has no full serde_json — so this module implements exactly
//! the subset the wire protocol needs: the six JSON value kinds, string
//! escapes (including `\uXXXX` with surrogate pairs), and strict parsing
//! (no trailing garbage, no unbalanced structures). Numbers are held as
//! `f64`, which covers every value the protocol exchanges (seeds, sizes,
//! thread counts — all well under 2^53).
//!
//! Emission stays where it always was: records serialize through the
//! byte-stable formatter in [`crate::scenarios::records_to_json`], and the
//! server composes responses with the same escaping helpers. This parser
//! is the *read* side only.
//!
//! Because the server parses attacker-shaped bytes, nesting depth is
//! capped at [`MAX_DEPTH`]: a line of `[[[[…` must come back as a
//! [`JsonError`], never recurse the accept thread's stack into an abort.

use std::fmt;

/// Maximum container nesting the parser accepts. The wire protocol needs
/// depth ≤ 4 (`{"batch":[{"seeds":[…]}]}`), so 64 is generous for every
/// legitimate request while keeping worst-case recursion small.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order (duplicate keys keep the last value
    /// on lookup, like most parsers).
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses `input` as one complete JSON value (trailing whitespace
    /// allowed, trailing garbage is an error).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            at: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.err("trailing garbage after the value"));
        }
        Ok(value)
    }

    /// Object field lookup (last duplicate wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer, when it is one (an
    /// integral `f64` in `[0, 2^53]` — every count the protocol carries).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9_007_199_254_740_992.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    /// Current container nesting, checked against [`MAX_DEPTH`] on every
    /// object/array descent.
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.at,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => {
                self.enter()?;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.enter()?;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.at + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.at..self.at + 4])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        self.at += 4;
        Ok(hex)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // A surrogate pair: the low half must follow
                                // as another \uXXXX escape.
                                if self.bytes[self.at..].starts_with(b"\\u") {
                                    self.at += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("escape is not a scalar value"))?,
                            );
                            // hex4 already advanced past the digits.
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one whole UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

/// Escapes `s` for embedding in a JSON string literal — the emission twin
/// of the parser, shared by the server's response composer.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v =
            Json::parse(r#"{"cmd":"run","scenario":"grid32-trivial","seeds":[0,1,2],"threads":4}"#)
                .expect("parse");
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("run"));
        assert_eq!(v.get("threads").and_then(Json::as_u64), Some(4));
        let seeds: Vec<u64> = v
            .get("seeds")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(Json::as_u64)
            .collect();
        assert_eq!(seeds, vec![0, 1, 2]);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_scalars_nesting_and_whitespace() {
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse(r#"[[],{},[{"a":[1]}]]"#).unwrap(),
            Json::Arr(vec![
                Json::Arr(vec![]),
                Json::Obj(vec![]),
                Json::Arr(vec![Json::Obj(vec![(
                    "a".into(),
                    Json::Arr(vec![Json::Num(1.0)])
                )])]),
            ])
        );
    }

    #[test]
    fn decodes_escapes_and_round_trips_through_escape() {
        let v = Json::parse(r#""a\"b\\c\nd\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndé😀"));
        let tricky = "he said \"hi\\there\"\n\tok\u{1}";
        let wire = format!("\"{}\"", escape(tricky));
        assert_eq!(Json::parse(&wire).unwrap().as_str(), Some(tricky));
    }

    #[test]
    fn rejects_malformed_input_with_positions() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "1 2",
            "\"unterminated",
            "\"\\u12\"",
            "\"\\ud800x\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // Well under the cap: fine.
        let shallow = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&shallow).is_ok());
        // One past the cap: a typed error.
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&over).expect_err("must be rejected");
        assert!(err.msg.contains("nesting"), "{err}");
        // The attack shape: a megabyte of open brackets, unclosed. This
        // must return quickly with an error, not recurse 10^6 frames.
        let bomb = "[".repeat(1 << 20);
        assert!(Json::parse(&bomb).is_err());
        let obj_bomb = "{\"a\":".repeat(1 << 18);
        assert!(Json::parse(&obj_bomb).is_err());
    }

    #[test]
    fn as_u64_is_strict_about_integrality_and_sign() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"7\"").unwrap().as_u64(), None);
    }
}
