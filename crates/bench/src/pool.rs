//! A scoped-thread worker pool with deterministic, index-ordered results.
//!
//! The scenario runner's unit of work is one (size, seed) cell, and cells
//! are independent by construction — each builds its own seeded stack and
//! draws from its own seeded RNG. What parallel execution must *not* change
//! is the output: `run_scenarios` promises byte-identical JSON for the same
//! sweep, so results have to come back in work-item order, never in
//! completion order.
//!
//! [`run_indexed`] encodes that contract:
//!
//! * work items are the indices `0..len`, handed out through a shared
//!   atomic cursor (no per-item channel, no work stealing, no allocation on
//!   the distribution path);
//! * each worker owns one reusable state value (`make_state` runs once per
//!   worker, on that worker's thread — this is where the scenario runner
//!   parks its per-worker frame so the frame-reuse discipline survives
//!   parallelism);
//! * every result is written to slot `i` of the output, so the returned
//!   `Vec` is ordered by item index regardless of which worker finished
//!   when;
//! * `threads <= 1` runs the items inline on the caller's thread — the
//!   exact serial path, with no pool machinery at all.
//!
//! Workers are scoped threads (`std::thread::scope`), so `work` may borrow
//! from the caller's stack; a panicking worker propagates the panic to the
//! caller once the scope joins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads the machine offers
/// (`std::thread::available_parallelism`), falling back to 1 when the
/// platform cannot say.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `work(state, i)` for every `i in 0..len` on up to `threads` scoped
/// workers and returns the results **ordered by index**.
///
/// `make_state` builds one per-worker state value on each worker's own
/// thread (so `S` need not be `Send`); `work` receives that state mutably
/// together with the item index. With `threads <= 1` (or `len <= 1`) the
/// items run inline on the caller's thread in index order — the exact
/// serial path.
///
/// Determinism contract: for pure-per-item `work` (anything whose output
/// depends only on the index, not on shared mutable state), the returned
/// vector is identical for every thread count, because slot `i` of the
/// output only ever holds the result of item `i`.
pub fn run_indexed<S, R, FS, FW>(len: usize, threads: usize, make_state: FS, work: FW) -> Vec<R>
where
    R: Send,
    FS: Fn() -> S + Sync,
    FW: Fn(&mut S, usize) -> R + Sync,
{
    let workers = threads.max(1).min(len.max(1));
    if workers <= 1 {
        let mut state = make_state();
        return (0..len).map(|i| work(&mut state, i)).collect();
    }
    // Results are collected into index-addressed slots behind one mutex;
    // the lock is taken once per completed item (not per slot probe), so
    // contention is negligible next to any real cell's work.
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..len).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = make_state();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let r = work(&mut state, i);
                    results.lock().expect("result lock")[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .expect("result lock")
        .into_iter()
        .map(|slot| slot.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn results_come_back_in_index_order_for_every_thread_count() {
        // An artificial skew: later items finish *earlier* on a real pool,
        // so completion order disagrees with index order — the output must
        // not care.
        let expected: Vec<u64> = (0..97u64).map(|i| i * i).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let got = run_indexed(
                97,
                threads,
                || (),
                |(), i| {
                    if threads > 1 {
                        std::thread::sleep(std::time::Duration::from_micros(97 - i as u64));
                    }
                    (i as u64) * (i as u64)
                },
            );
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn every_index_is_visited_exactly_once() {
        let visits: Vec<AtomicU64> = (0..200).map(|_| AtomicU64::new(0)).collect();
        let out = run_indexed(
            200,
            7,
            || (),
            |(), i| {
                visits[i].fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out.len(), 200);
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Each worker's state counts the items it processed; the counts must
        // partition the item set (state is created once per worker, not once
        // per item).
        let totals = Mutex::new(0usize);
        struct Tally<'a> {
            seen: usize,
            totals: &'a Mutex<usize>,
        }
        impl Drop for Tally<'_> {
            fn drop(&mut self) {
                *self.totals.lock().unwrap() += self.seen;
            }
        }
        let _ = run_indexed(
            50,
            4,
            || Tally {
                seen: 0,
                totals: &totals,
            },
            |state, i| {
                state.seen += 1;
                i
            },
        );
        assert_eq!(*totals.lock().unwrap(), 50);
    }

    #[test]
    fn four_workers_overlap_blocking_work_at_least_2x() {
        // The wall-clock half of the acceptance contract, phrased so it
        // holds even on a single-core host: per-item *latency* (sleep)
        // overlaps across workers exactly like per-item CPU work overlaps
        // across cores. 8 items × 20ms = 160ms serial; 4 workers need two
        // waves ≈ 40ms, so the 2x assertion has ~80ms of slack. The
        // parallel side takes the best of three attempts so a loaded CI
        // runner's wakeup-latency spikes don't flake an unrelated build
        // (the serial side only sums the same spikes, which can never make
        // it beat an honest parallel run).
        let item = std::time::Duration::from_millis(20);
        let timed = |threads: usize| {
            let t0 = std::time::Instant::now();
            let out = run_indexed(
                8,
                threads,
                || (),
                |(), i| {
                    std::thread::sleep(item);
                    i
                },
            );
            assert_eq!(out, (0..8).collect::<Vec<_>>());
            t0.elapsed()
        };
        let serial = timed(1);
        let parallel = (0..3).map(|_| timed(4)).min().expect("three attempts");
        assert!(
            parallel * 2 < serial,
            "4 workers gave {parallel:?} vs serial {serial:?} — expected ≥2x overlap"
        );
    }

    #[test]
    fn zero_threads_and_empty_input_degrade_gracefully() {
        let got = run_indexed(4, 0, || (), |(), i| i);
        assert_eq!(got, vec![0, 1, 2, 3]);
        let empty: Vec<usize> = run_indexed(0, 8, || (), |(), i| i);
        assert!(empty.is_empty());
    }
}
