//! A scoped-thread worker pool with deterministic, index-ordered results.
//!
//! The scenario runner's unit of work is one (size, seed) cell, and cells
//! are independent by construction — each builds its own seeded stack and
//! draws from its own seeded RNG. What parallel execution must *not* change
//! is the output: `run_scenarios` promises byte-identical JSON for the same
//! sweep, so results have to come back in work-item order, never in
//! completion order.
//!
//! [`run_indexed`] encodes that contract:
//!
//! * work items are the indices `0..len`, handed out through a shared
//!   atomic cursor (no per-item channel, no work stealing, no allocation on
//!   the distribution path);
//! * each worker owns one reusable state value (`make_state` runs once per
//!   worker, on that worker's thread — this is where the scenario runner
//!   parks its per-worker frame so the frame-reuse discipline survives
//!   parallelism);
//! * every result is written to slot `i` of the output, so the returned
//!   `Vec` is ordered by item index regardless of which worker finished
//!   when;
//! * `threads <= 1` runs the items inline on the caller's thread — the
//!   exact serial path, with no pool machinery at all.
//!
//! Workers are scoped threads (`std::thread::scope`), so `work` may borrow
//! from the caller's stack; a panicking worker propagates the panic to the
//! caller once the scope joins.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The number of worker threads the machine offers
/// (`std::thread::available_parallelism`), falling back to 1 when the
/// platform cannot say.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `work(state, i)` for every `i in 0..len` on up to `threads` scoped
/// workers and returns the results **ordered by index**.
///
/// `make_state` builds one per-worker state value on each worker's own
/// thread (so `S` need not be `Send`); `work` receives that state mutably
/// together with the item index. With `threads <= 1` (or `len <= 1`) the
/// items run inline on the caller's thread in index order — the exact
/// serial path.
///
/// Determinism contract: for pure-per-item `work` (anything whose output
/// depends only on the index, not on shared mutable state), the returned
/// vector is identical for every thread count, because slot `i` of the
/// output only ever holds the result of item `i`.
pub fn run_indexed<S, R, FS, FW>(len: usize, threads: usize, make_state: FS, work: FW) -> Vec<R>
where
    R: Send,
    FS: Fn() -> S + Sync,
    FW: Fn(&mut S, usize) -> R + Sync,
{
    let workers = threads.max(1).min(len.max(1));
    if workers <= 1 {
        let mut state = make_state();
        return (0..len).map(|i| work(&mut state, i)).collect();
    }
    // Results are collected into index-addressed slots behind one mutex;
    // the lock is taken once per completed item (not per slot probe), so
    // contention is negligible next to any real cell's work.
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..len).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = make_state();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let r = work(&mut state, i);
                    results.lock().expect("result lock")[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .expect("result lock")
        .into_iter()
        .map(|slot| slot.expect("every index visited exactly once"))
        .collect()
}

/// A queued unit of work owned by the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared between submitters and workers. The shutdown flag
/// lives *inside* the mutex so a worker can never observe "queue empty"
/// and then miss the shutdown notification (no lost-wakeup window).
struct PoolQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signalled when a job is pushed or shutdown is requested.
    available: Condvar,
}

/// Book-keeping for one in-flight [`WorkPool::run_batch`] call: the
/// index-addressed result slots plus a countdown the submitter sleeps on.
struct BatchState<R> {
    slots: Mutex<Vec<Option<R>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

/// A persistent worker pool shared by many submitters.
///
/// [`run_indexed`] spins workers up and down per call, which is the right
/// shape for a CLI sweep (one caller, one batch, scoped borrows). A server
/// handling concurrent connections needs the opposite: **one** set of
/// long-lived workers that every connection handler submits into, so a
/// request's cells are scheduled as one work-item set without each
/// connection spawning its own threads and oversubscribing the machine.
///
/// Contracts, mirroring [`run_indexed`]:
///
/// * [`run_batch`](WorkPool::run_batch) returns results **ordered by item
///   index**, never by completion order — slot `i` only ever holds the
///   result of item `i`, so output bytes cannot depend on scheduling;
/// * jobs from different batches interleave freely on the same workers —
///   fairness across concurrent submitters comes from the single FIFO
///   queue;
/// * a panicking job is confined to its slot (`None`) — the worker thread
///   survives, the batch still completes, and other submitters are
///   unaffected.
///
/// Jobs must be `'static`: the pool outlives any one call, so submitted
/// closures own their data (in practice, `Arc`s over the prepared
/// scenario state).
pub struct WorkPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkPool {
    /// Spawns a pool with `threads` long-lived workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut q = shared.queue.lock().expect("pool queue");
                        loop {
                            if let Some(job) = q.jobs.pop_front() {
                                break job;
                            }
                            if q.shutdown {
                                return;
                            }
                            q = shared.available.wait(q).expect("pool queue");
                        }
                    };
                    // A panicking job must not take the worker down with it;
                    // run_batch already wraps its closures, but belt-and-
                    // braces here keeps raw submits from killing the pool.
                    let _ = catch_unwind(AssertUnwindSafe(job));
                })
            })
            .collect();
        WorkPool { shared, workers }
    }

    /// The number of worker threads this pool runs.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    fn submit(&self, job: Job) {
        let mut q = self.shared.queue.lock().expect("pool queue");
        q.jobs.push_back(job);
        drop(q);
        self.shared.available.notify_one();
    }

    /// Runs `work(i)` for every `i in 0..len` on the pool's workers and
    /// blocks until all items finish, returning the results **ordered by
    /// index**. Slot `i` is `None` iff item `i` panicked; every other slot
    /// is `Some`.
    ///
    /// Many threads may call `run_batch` concurrently: their items share
    /// the FIFO queue, so no batch can starve another, and a batch's
    /// submitter wakes exactly when its own countdown reaches zero.
    pub fn run_batch<R, F>(&self, len: usize, work: F) -> Vec<Option<R>>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        if len == 0 {
            return Vec::new();
        }
        let work = Arc::new(work);
        let batch = Arc::new(BatchState {
            slots: Mutex::new((0..len).map(|_| None).collect()),
            remaining: Mutex::new(len),
            done: Condvar::new(),
        });
        for i in 0..len {
            let work = Arc::clone(&work);
            let batch = Arc::clone(&batch);
            self.submit(Box::new(move || {
                // catch_unwind here (not just in the worker loop) so the
                // countdown below *always* runs — otherwise one panicking
                // cell would leave its submitter asleep forever.
                let result = catch_unwind(AssertUnwindSafe(|| work(i))).ok();
                batch.slots.lock().expect("batch slots")[i] = result;
                let mut remaining = batch.remaining.lock().expect("batch countdown");
                *remaining -= 1;
                if *remaining == 0 {
                    batch.done.notify_all();
                }
            }));
        }
        let mut remaining = batch.remaining.lock().expect("batch countdown");
        while *remaining > 0 {
            remaining = batch.done.wait(remaining).expect("batch countdown");
        }
        drop(remaining);
        let mut slots = batch.slots.lock().expect("batch slots");
        std::mem::take(&mut *slots)
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn results_come_back_in_index_order_for_every_thread_count() {
        // An artificial skew: later items finish *earlier* on a real pool,
        // so completion order disagrees with index order — the output must
        // not care.
        let expected: Vec<u64> = (0..97u64).map(|i| i * i).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let got = run_indexed(
                97,
                threads,
                || (),
                |(), i| {
                    if threads > 1 {
                        std::thread::sleep(std::time::Duration::from_micros(97 - i as u64));
                    }
                    (i as u64) * (i as u64)
                },
            );
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn every_index_is_visited_exactly_once() {
        let visits: Vec<AtomicU64> = (0..200).map(|_| AtomicU64::new(0)).collect();
        let out = run_indexed(
            200,
            7,
            || (),
            |(), i| {
                visits[i].fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out.len(), 200);
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Each worker's state counts the items it processed; the counts must
        // partition the item set (state is created once per worker, not once
        // per item).
        let totals = Mutex::new(0usize);
        struct Tally<'a> {
            seen: usize,
            totals: &'a Mutex<usize>,
        }
        impl Drop for Tally<'_> {
            fn drop(&mut self) {
                *self.totals.lock().unwrap() += self.seen;
            }
        }
        let _ = run_indexed(
            50,
            4,
            || Tally {
                seen: 0,
                totals: &totals,
            },
            |state, i| {
                state.seen += 1;
                i
            },
        );
        assert_eq!(*totals.lock().unwrap(), 50);
    }

    #[test]
    fn four_workers_overlap_blocking_work_at_least_2x() {
        // The wall-clock half of the acceptance contract, phrased so it
        // holds even on a single-core host: per-item *latency* (sleep)
        // overlaps across workers exactly like per-item CPU work overlaps
        // across cores. 8 items × 20ms = 160ms serial; 4 workers need two
        // waves ≈ 40ms, so the 2x assertion has ~80ms of slack. The
        // parallel side takes the best of three attempts so a loaded CI
        // runner's wakeup-latency spikes don't flake an unrelated build
        // (the serial side only sums the same spikes, which can never make
        // it beat an honest parallel run).
        let item = std::time::Duration::from_millis(20);
        let timed = |threads: usize| {
            let t0 = std::time::Instant::now();
            let out = run_indexed(
                8,
                threads,
                || (),
                |(), i| {
                    std::thread::sleep(item);
                    i
                },
            );
            assert_eq!(out, (0..8).collect::<Vec<_>>());
            t0.elapsed()
        };
        let serial = timed(1);
        let parallel = (0..3).map(|_| timed(4)).min().expect("three attempts");
        assert!(
            parallel * 2 < serial,
            "4 workers gave {parallel:?} vs serial {serial:?} — expected ≥2x overlap"
        );
    }

    #[test]
    fn zero_threads_and_empty_input_degrade_gracefully() {
        let got = run_indexed(4, 0, || (), |(), i| i);
        assert_eq!(got, vec![0, 1, 2, 3]);
        let empty: Vec<usize> = run_indexed(0, 8, || (), |(), i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn work_pool_batches_come_back_in_index_order() {
        let pool = WorkPool::new(4);
        assert_eq!(pool.threads(), 4);
        for _ in 0..3 {
            let got = pool.run_batch(97, |i| {
                // Skew completion order away from index order.
                std::thread::sleep(std::time::Duration::from_micros(97 - i as u64));
                (i as u64) * (i as u64)
            });
            let expected: Vec<Option<u64>> = (0..97u64).map(|i| Some(i * i)).collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn work_pool_serves_concurrent_submitters_without_loss() {
        // 6 submitters × 40 items over 3 workers: every batch must get all
        // of its own results back, in its own index order, even though all
        // jobs interleave on the same queue.
        let pool = Arc::new(WorkPool::new(3));
        let mut handles = Vec::new();
        for tag in 0..6u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let got = pool.run_batch(40, move |i| tag * 1000 + i as u64);
                let expected: Vec<Option<u64>> = (0..40u64).map(|i| Some(tag * 1000 + i)).collect();
                assert_eq!(got, expected, "batch {tag}");
            }));
        }
        for h in handles {
            h.join().expect("submitter");
        }
    }

    #[test]
    fn work_pool_confines_a_panicking_job_to_its_slot() {
        let pool = WorkPool::new(2);
        let got = pool.run_batch(10, |i| {
            assert_ne!(i, 7, "cell 7 exploded");
            i
        });
        for (i, slot) in got.iter().enumerate() {
            if i == 7 {
                assert!(slot.is_none(), "panicked slot must be None");
            } else {
                assert_eq!(*slot, Some(i));
            }
        }
        // The pool survives: the same workers complete a follow-up batch.
        let next = pool.run_batch(4, |i| i * 2);
        assert_eq!(next, vec![Some(0), Some(2), Some(4), Some(6)]);
    }

    #[test]
    fn work_pool_empty_batch_and_drop_are_clean() {
        let pool = WorkPool::new(0); // clamped to 1 worker
        assert_eq!(pool.threads(), 1);
        let empty: Vec<Option<usize>> = pool.run_batch(0, |i| i);
        assert!(empty.is_empty());
        drop(pool); // join must not hang
    }
}
