//! Content-addressed result store for scenario sweep records.
//!
//! A sweep cell is a pure function of its coordinates — `{scenario, family,
//! target size, seed, protocol spec, stack spec, active set}` plus the
//! engine that executes it — and PR 4's conformance harness proves the
//! output is byte-identical across runs and thread counts. That is exactly
//! the property that makes a cached [`ScenarioRecord`] trustable, so this
//! module gives every cell a versioned binary artifact on disk, modeled on
//! the `radio_graph::dataset` discipline:
//!
//! * [`ResultKey`] — the identity of a cell. Its FNV-1a
//!   [`ResultKey::content_hash`] is baked into the artifact file name and
//!   header, so a foreign artifact can never be read as the wrong cell. The
//!   optional active set is part of the hash: a restricted-wavefront run
//!   can never alias the full-set run of the same cell.
//! * [`engine_fingerprint`] — a hash of [`ENGINE_VERSION`], stored in every
//!   artifact header and checked on read. Bump [`ENGINE_VERSION`] whenever
//!   record *semantics* change (a protocol's schedule, a stack's
//!   accounting, the record's field meanings): every existing artifact is
//!   then rejected as foreign-fingerprint and recomputed — stale results
//!   are never served silently.
//! * [`write_artifact`] / [`read_artifact`] — the binary record codec with
//!   a fixed header (magic, format version, key hash, engine fingerprint)
//!   and a trailing payload checksum. Floats are stored as raw `f64` bits,
//!   so a cached record round-trips **bit-exactly** — warm-sweep JSON is
//!   byte-identical to cold, including the `{:.3}`-formatted mean. Writes
//!   go through a temp file + rename, so a concurrent reader sees either
//!   nothing or a complete artifact.
//! * [`ResultStore`] — `get`/`put` over a cache directory (the runner uses
//!   `target/results/`): a valid artifact is a **hit**; a missing, corrupt,
//!   truncated, or foreign-fingerprint one is a **miss** that the caller
//!   heals by recomputing and re-storing. Atomic hit/miss counters feed the
//!   `[results]` stderr line the CI smoke asserts on.
//!
//! The store is what turns `run_scenarios_with` into an *incremental*
//! sweep: only absent cells are dispatched to the worker pool, so a warm
//! full sweep costs one directory of small file reads instead of the whole
//! computation — and the `serve` mode answers repeat queries without
//! recomputing anything.
//!
//! Two layers sit above the artifacts for serving at scale:
//!
//! * an **in-memory hot set** ([`ResultStore::with_hot_set`]) — a bounded
//!   LRU of decoded records keyed by [`ResultKey`], so the server's warm
//!   hits skip the filesystem entirely. The hot set is a pure cache over
//!   the decoded bytes: because a cell's record is deterministic, a hot
//!   answer is bit-identical to a disk answer by construction, and tiny
//!   capacities (heavy eviction) can never change a served byte — only
//!   which tier answered.
//! * a **persistent index file** (`index.ridx` in the store directory) —
//!   a fingerprinted header plus one append-on-write `(key hash, bytes)`
//!   entry per stored artifact, so `stats` and startup read one small file
//!   instead of walking the directory. The index is advisory, never
//!   authoritative: when it is absent, corrupt, truncated mid-entry, or
//!   carries a stale engine fingerprint, it is rebuilt by walking the
//!   directory and validating each artifact header — reads of record bytes
//!   always go through the per-artifact checksums regardless. A crash
//!   between an artifact rename and its index append can leave the index
//!   undercounting until the next rebuild; deleting `index.ridx` forces
//!   one.

use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::scenarios::ScenarioRecord;

/// Version of the on-disk artifact format; bumped whenever the header or
/// payload *encoding* changes, so readers never misparse old files.
/// Version 2 appended the diameter columns (`estimate`, `exact`, `agrees`)
/// after `target_n`; version-1 artifacts are rejected and recomputed.
pub const FORMAT_VERSION: u32 = 2;

/// Version of the execution engine's *record semantics*. Bump this whenever
/// a change makes previously computed records wrong — a protocol schedule
/// change, a stack accounting fix, a record field reinterpretation — and
/// every existing artifact becomes a foreign-fingerprint miss instead of a
/// silently stale hit. Pure refactors, new protocols, and new scenarios do
/// **not** need a bump: keys of unaffected cells still name the same
/// deterministic output.
pub const ENGINE_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"RRES";
/// magic + format version + key hash + engine fingerprint + payload len.
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// Version of the on-disk index file layout.
pub const INDEX_FORMAT_VERSION: u32 = 1;
/// File name of the store index inside the store directory.
pub const INDEX_FILE_NAME: &str = "index.ridx";
const INDEX_MAGIC: [u8; 4] = *b"RIDX";
/// magic + format version + engine fingerprint.
const INDEX_HEADER_LEN: usize = 4 + 4 + 8;
/// key hash + artifact byte length.
const INDEX_ENTRY_LEN: usize = 8 + 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// 64-bit FNV-1a over `bytes` — the same platform-stable hash the dataset
/// substrate uses, independent of `std`'s randomized hashers.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The fingerprint stored in every artifact header: a hash of the result
/// domain tag and [`ENGINE_VERSION`]. Not part of the file name, so after
/// an engine bump old artifacts are still *found* — and rejected with a
/// typed foreign-fingerprint error, which heals them as misses.
pub fn engine_fingerprint() -> u64 {
    let h = fnv1a(FNV_OFFSET, b"radio-bench-results");
    fnv1a(h, &ENGINE_VERSION.to_le_bytes())
}

/// Identity of one sweep cell: everything its deterministic output depends
/// on, minus the engine (which lives in the artifact header as the
/// fingerprint). The *target* size is the coordinate — the realized `n`
/// is derived from it by the family and lives in the record.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Scenario name (part of the record payload, so part of the identity).
    pub scenario: String,
    /// Family label, e.g. `grid`, `tree3`.
    pub family: String,
    /// Target node count of the cell.
    pub target_n: usize,
    /// Seed of the cell.
    pub seed: u64,
    /// Registry protocol spec, e.g. `trivial_bfs:depth=64`.
    pub protocol_spec: String,
    /// Canonical stack label (`StackSpec::label`), e.g. `physical_cd:w1l4t`.
    pub stack: String,
    /// Optional restricted active set (`ProtocolInput::active`). `None` is
    /// the full vertex set; a `Some` set hashes element-wise, so restricted
    /// runs never alias full-set runs of the same cell.
    pub active: Option<Vec<usize>>,
}

impl ResultKey {
    /// The content hash over every key field. Field boundaries are
    /// NUL-delimited so adjacent strings cannot collide, and the active set
    /// is tagged by presence before its elements so `None` and `Some([])`
    /// differ.
    pub fn content_hash(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, self.scenario.as_bytes());
        h = fnv1a(h, &[0]);
        h = fnv1a(h, self.family.as_bytes());
        h = fnv1a(h, &[0]);
        h = fnv1a(h, &(self.target_n as u64).to_le_bytes());
        h = fnv1a(h, &self.seed.to_le_bytes());
        h = fnv1a(h, self.protocol_spec.as_bytes());
        h = fnv1a(h, &[0]);
        h = fnv1a(h, self.stack.as_bytes());
        h = fnv1a(h, &[0]);
        match &self.active {
            None => fnv1a(h, &[0]),
            Some(set) => {
                h = fnv1a(h, &[1]);
                h = fnv1a(h, &(set.len() as u64).to_le_bytes());
                for &v in set {
                    h = fnv1a(h, &(v as u64).to_le_bytes());
                }
                h
            }
        }
    }

    /// The artifact file name, `<scenario>-s<seed>-<hash>.rec`, with the
    /// scenario name sanitized to filesystem-safe characters; the hash
    /// keeps names unique even when sanitized names collide.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .scenario
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("{safe}-s{}-{:016x}.rec", self.seed, self.content_hash())
    }
}

/// Why a result artifact could not be read (or written).
#[derive(Debug)]
pub enum ResultError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file exists but is not a valid artifact for the requested key:
    /// wrong magic or format version, a foreign key hash or engine
    /// fingerprint, truncation, trailing garbage, a checksum mismatch, or a
    /// decoded record that contradicts the key.
    Format(String),
}

impl fmt::Display for ResultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResultError::Io(e) => write!(f, "result io error: {e}"),
            ResultError::Format(msg) => write!(f, "malformed result artifact: {msg}"),
        }
    }
}

impl std::error::Error for ResultError {}

impl From<std::io::Error> for ResultError {
    fn from(e: std::io::Error) -> Self {
        ResultError::Io(e)
    }
}

fn format_err<T>(msg: impl Into<String>) -> Result<T, ResultError> {
    Err(ResultError::Format(msg.into()))
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn push_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// `Option<bool>` as one tag byte: 0 = `None`, 1 = `Some(false)`,
/// 2 = `Some(true)`.
fn push_opt_bool(out: &mut Vec<u8>, v: Option<bool>) {
    out.push(match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
}

/// Encodes a record payload: length-prefixed strings, little-endian `u64`s,
/// the mean as raw `f64` bits (bit-exact round-trip — the warm-JSON
/// byte-identity rests on this), `Option` as a tag byte. Field order is
/// the record's declaration order.
fn encode_record(r: &ScenarioRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    push_str(&mut out, &r.scenario);
    push_str(&mut out, &r.family);
    out.extend_from_slice(&(r.n as u64).to_le_bytes());
    out.extend_from_slice(&r.seed.to_le_bytes());
    push_str(&mut out, &r.protocol);
    push_str(&mut out, &r.backend);
    push_str(&mut out, &r.energy_model);
    out.extend_from_slice(&r.lb_calls.to_le_bytes());
    out.extend_from_slice(&r.max_lb_energy.to_le_bytes());
    out.extend_from_slice(&r.mean_lb_energy.to_bits().to_le_bytes());
    push_opt_u64(&mut out, r.max_physical_energy);
    push_opt_u64(&mut out, r.physical_slots);
    out.extend_from_slice(&r.outcome.to_le_bytes());
    out.extend_from_slice(&(r.target_n as u64).to_le_bytes());
    push_opt_u64(&mut out, r.estimate);
    push_opt_u64(&mut out, r.exact);
    push_opt_bool(&mut out, r.agrees);
    out
}

/// A bounds-checked cursor over the payload bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], ResultError> {
        if self.at + len > self.bytes.len() {
            return format_err(format!(
                "payload ends at byte {} but field needs {} more",
                self.bytes.len(),
                self.at + len - self.bytes.len()
            ));
        }
        let slice = &self.bytes[self.at..self.at + len];
        self.at += len;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, ResultError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> Result<String, ResultError> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("4")) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).or_else(|e| format_err(format!("non-UTF-8 string: {e}")))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, ResultError> {
        match self.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => format_err(format!("bad Option tag {t}")),
        }
    }

    fn opt_bool(&mut self) -> Result<Option<bool>, ResultError> {
        match self.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(false)),
            2 => Ok(Some(true)),
            t => format_err(format!("bad Option<bool> tag {t}")),
        }
    }
}

fn decode_record(payload: &[u8]) -> Result<ScenarioRecord, ResultError> {
    let mut r = Reader {
        bytes: payload,
        at: 0,
    };
    let record = ScenarioRecord {
        scenario: r.string()?,
        family: r.string()?,
        n: r.u64()? as usize,
        seed: r.u64()?,
        protocol: r.string()?,
        backend: r.string()?,
        energy_model: r.string()?,
        lb_calls: r.u64()?,
        max_lb_energy: r.u64()?,
        mean_lb_energy: f64::from_bits(r.u64()?),
        max_physical_energy: r.opt_u64()?,
        physical_slots: r.opt_u64()?,
        outcome: r.u64()?,
        target_n: r.u64()? as usize,
        estimate: r.opt_u64()?,
        exact: r.opt_u64()?,
        agrees: r.opt_bool()?,
    };
    if r.at != payload.len() {
        return format_err(format!(
            "payload has {} trailing bytes after the record",
            payload.len() - r.at
        ));
    }
    Ok(record)
}

fn encode(key: &ResultKey, record: &ScenarioRecord) -> Vec<u8> {
    let payload = encode_record(record);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.content_hash().to_le_bytes());
    out.extend_from_slice(&engine_fingerprint().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let checksum = fnv1a(FNV_OFFSET, &out[HEADER_LEN..]);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Writes the artifact for `(key, record)` to `path` atomically: bytes go
/// to a sibling temp file first and are renamed into place, so a concurrent
/// reader sees either the old artifact or the complete new one.
pub fn write_artifact(
    path: &Path,
    key: &ResultKey,
    record: &ScenarioRecord,
) -> Result<(), ResultError> {
    let bytes = encode(key, record);
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, &bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e.into())
        }
    }
}

fn read_u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Reads and validates the artifact at `path` for `key`.
///
/// Every failure mode is a typed [`ResultError`] rather than a panic:
/// wrong magic or format version, a key-hash mismatch (an artifact of a
/// different cell), a **foreign engine fingerprint** (an artifact computed
/// under different record semantics — the [`ENGINE_VERSION`] staleness
/// gate), truncation, trailing garbage, a payload checksum mismatch, a
/// malformed payload, and a decoded record whose own scenario/seed/target
/// contradict the key (defense against hash collisions and hand-edited
/// files).
pub fn read_artifact(path: &Path, key: &ResultKey) -> Result<ScenarioRecord, ResultError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < HEADER_LEN + 8 {
        return format_err(format!(
            "{} bytes is shorter than the {}-byte header",
            bytes.len(),
            HEADER_LEN + 8
        ));
    }
    if bytes[..4] != MAGIC {
        return format_err("bad magic (not a result artifact)");
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return format_err(format!(
            "format version {version} (this build reads {FORMAT_VERSION})"
        ));
    }
    let key_hash = read_u64_at(&bytes, 8);
    if key_hash != key.content_hash() {
        return format_err(format!(
            "key hash {key_hash:016x} does not match requested key {:016x}",
            key.content_hash()
        ));
    }
    let fingerprint = read_u64_at(&bytes, 16);
    if fingerprint != engine_fingerprint() {
        return format_err(format!(
            "foreign engine fingerprint {fingerprint:016x} (this engine is {:016x}); \
             the artifact was computed under different record semantics",
            engine_fingerprint()
        ));
    }
    let payload_len = read_u64_at(&bytes, 24) as usize;
    let expected = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|l| l.checked_add(8))
        .ok_or_else(|| ResultError::Format("payload size overflows".into()))?;
    if bytes.len() < expected {
        return format_err(format!(
            "truncated: {} bytes, header promises {expected}",
            bytes.len()
        ));
    }
    if bytes.len() > expected {
        return format_err(format!(
            "trailing garbage: {} bytes, header promises {expected}",
            bytes.len()
        ));
    }
    let checksum = read_u64_at(&bytes, expected - 8);
    let actual = fnv1a(FNV_OFFSET, &bytes[HEADER_LEN..expected - 8]);
    if checksum != actual {
        return format_err(format!(
            "payload checksum {actual:016x} does not match recorded {checksum:016x}"
        ));
    }
    let record = decode_record(&bytes[HEADER_LEN..expected - 8])?;
    if record.scenario != key.scenario || record.seed != key.seed || record.target_n != key.target_n
    {
        return format_err(format!(
            "decoded record ({}, seed {}, target {}) contradicts the key ({}, seed {}, target {})",
            record.scenario, record.seed, record.target_n, key.scenario, key.seed, key.target_n
        ));
    }
    Ok(record)
}

/// Cumulative size of a store directory, for the server's `stats` answer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreSize {
    /// Number of `.rec` artifacts present.
    pub entries: u64,
    /// Their total size in bytes.
    pub bytes: u64,
}

/// A bounded LRU of decoded records. `cap == 0` disables the tier
/// entirely (every probe falls through to disk — the PR 8 behavior).
#[derive(Debug)]
struct HotSet {
    cap: usize,
    inner: Mutex<HotInner>,
}

#[derive(Debug)]
struct HotInner {
    map: HashMap<ResultKey, (ScenarioRecord, u64)>,
    /// Monotone access clock; the entry with the smallest tick is the
    /// least recently used and the first evicted.
    tick: u64,
}

impl HotSet {
    fn new(cap: usize) -> Self {
        HotSet {
            cap,
            inner: Mutex::new(HotInner {
                map: HashMap::new(),
                tick: 0,
            }),
        }
    }

    fn get(&self, key: &ResultKey) -> Option<ScenarioRecord> {
        if self.cap == 0 {
            return None;
        }
        let mut inner = self.inner.lock().expect("hot set");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|entry| {
            entry.1 = tick;
            entry.0.clone()
        })
    }

    fn insert(&self, key: &ResultKey, record: &ScenarioRecord) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("hot set");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key.clone(), (record.clone(), tick));
        // Evict by minimum tick. O(len) per eviction is fine at the
        // hundreds-of-entries capacities the server runs with.
        while inner.map.len() > self.cap {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                }
                None => break,
            }
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("hot set").map.len()
    }
}

/// Parses the index file, or `None` when it must be rebuilt: missing,
/// bad magic/version, stale engine fingerprint, or a body truncated
/// mid-entry (a crashed append). Duplicate key hashes resolve last-wins,
/// matching append-on-overwrite semantics.
fn load_index_file(path: &Path) -> Option<HashMap<u64, u64>> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() < INDEX_HEADER_LEN || bytes[..4] != INDEX_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != INDEX_FORMAT_VERSION {
        return None;
    }
    if read_u64_at(&bytes, 8) != engine_fingerprint() {
        return None;
    }
    let body = &bytes[INDEX_HEADER_LEN..];
    if body.len() % INDEX_ENTRY_LEN != 0 {
        return None;
    }
    let mut map = HashMap::with_capacity(body.len() / INDEX_ENTRY_LEN);
    for chunk in body.chunks_exact(INDEX_ENTRY_LEN) {
        map.insert(read_u64_at(chunk, 0), read_u64_at(chunk, 8));
    }
    Some(map)
}

/// Rebuilds the index by walking the store directory: every `.rec` file
/// whose header carries the right magic, format version, and the current
/// engine fingerprint contributes one entry. Corrupt and foreign-era
/// artifacts are skipped — the index counts what this engine can serve.
fn rebuild_index_from_walk(dir: &Path) -> HashMap<u64, u64> {
    let mut map = HashMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return map;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("rec") {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        let Ok(mut file) = std::fs::File::open(&path) else {
            continue;
        };
        let mut header = [0u8; HEADER_LEN];
        if file.read_exact(&mut header).is_err() || header[..4] != MAGIC {
            continue;
        }
        if u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) != FORMAT_VERSION {
            continue;
        }
        if read_u64_at(&header, 16) != engine_fingerprint() {
            continue;
        }
        map.insert(read_u64_at(&header, 8), meta.len());
    }
    map
}

/// Writes a complete index file atomically (temp + rename), entries
/// sorted by key hash so the same map always produces the same bytes.
fn write_index_file(path: &Path, map: &HashMap<u64, u64>) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(INDEX_HEADER_LEN + map.len() * INDEX_ENTRY_LEN);
    out.extend_from_slice(&INDEX_MAGIC);
    out.extend_from_slice(&INDEX_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&engine_fingerprint().to_le_bytes());
    let mut entries: Vec<(u64, u64)> = map.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable();
    for (k, v) in entries {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, &out)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// A content-addressed result cache over one directory of artifacts.
///
/// `get` answers a probe — a valid artifact is a **hit**, anything else
/// (missing, corrupt, foreign fingerprint) is a **miss** that the caller
/// heals by recomputing and `put`ting the fresh record back. `put` is
/// best-effort on the sweep path: an unwritable store degrades to
/// recomputing per process, never to an error. Counters are atomic so a
/// multi-threaded sweep — or the server's accept pool — can report
/// `[results] hits=… misses=…` afterwards, and the whole store is `Sync`:
/// one instance is shared by every connection handler.
///
/// Above the artifacts sit two serving tiers:
///
/// * the **hot set** (opt-in via [`ResultStore::with_hot_set`]): a bounded
///   LRU of decoded records, probed before disk. Hot answers count as hits
///   *and* as [`ResultStore::hot_hits`], so `hits == hot_hits + disk hits`
///   always holds.
/// * the **index** (`index.ridx`): loaded lazily on the first
///   [`ResultStore::size`]/`put`, rebuilt from a directory walk when
///   absent, corrupt, or stale-fingerprinted, appended on every `put`.
///   `size()` answers from it in O(1).
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    hot_hits: AtomicU64,
    hot: HotSet,
    /// Lazily-loaded index: `None` until first use, then the in-memory
    /// mirror of `index.ridx` (key hash → artifact bytes).
    index: Mutex<Option<HashMap<u64, u64>>>,
}

impl ResultStore {
    /// A store over `dir` (created lazily on the first `put`), with the
    /// hot set disabled — the sweep path's configuration, where every
    /// cell is probed at most once per run anyway.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultStore {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hot_hits: AtomicU64::new(0),
            hot: HotSet::new(0),
            index: Mutex::new(None),
        }
    }

    /// Enables an in-memory hot set holding up to `cap` decoded records
    /// (`0` disables it). The server turns this on so repeat queries skip
    /// disk entirely.
    pub fn with_hot_set(mut self, cap: usize) -> Self {
        self.hot = HotSet::new(cap);
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where `key`'s artifact lives (whether or not it exists yet).
    pub fn path_for(&self, key: &ResultKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Where the store's index file lives.
    pub fn index_path(&self) -> PathBuf {
        self.dir.join(INDEX_FILE_NAME)
    }

    /// Reads `key`'s artifact, if present and valid — no counter movement
    /// and no hot-set involvement; the counting entry point is
    /// [`ResultStore::get`].
    pub fn load(&self, key: &ResultKey) -> Result<ScenarioRecord, ResultError> {
        read_artifact(&self.path_for(key), key)
    }

    /// Probes the store: hot set first, then disk. A valid answer from
    /// either tier is a hit; anything else — missing file, corrupt bytes,
    /// foreign engine fingerprint — is a miss healed by the caller
    /// recomputing and [`ResultStore::put`]ting the record. Disk hits are
    /// promoted into the hot set.
    pub fn get(&self, key: &ResultKey) -> Option<ScenarioRecord> {
        if let Some(record) = self.hot.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hot_hits.fetch_add(1, Ordering::Relaxed);
            return Some(record);
        }
        match self.load(key) {
            Ok(record) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.hot.insert(key, &record);
                Some(record)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `record` as `key`'s artifact, returning its path. The hot
    /// set and the index are updated in the same call; index persistence
    /// is best-effort (an unwritable index degrades `stats`, never
    /// correctness — record reads still validate per-artifact checksums).
    pub fn put(&self, key: &ResultKey, record: &ScenarioRecord) -> Result<PathBuf, ResultError> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(key);
        write_artifact(&path, key, record)?;
        self.hot.insert(key, record);
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        self.index_record(key.content_hash(), bytes);
        Ok(path)
    }

    /// Cells served from cache (hot set or disk) so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that found no valid artifact so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The subset of [`ResultStore::hits`] answered by the in-memory hot
    /// set without touching disk.
    pub fn hot_hits(&self) -> u64 {
        self.hot_hits.load(Ordering::Relaxed)
    }

    /// Decoded records currently resident in the hot set.
    pub fn hot_len(&self) -> usize {
        self.hot.len()
    }

    /// The hot set's capacity (0 = disabled).
    pub fn hot_capacity(&self) -> usize {
        self.hot.cap
    }

    /// Artifact count and total bytes, answered from the store index in
    /// O(1) — no directory walk. The first call loads `index.ridx`,
    /// rebuilding it from a directory walk if it is absent, corrupt,
    /// truncated, or stale-fingerprinted; every `put` keeps it current.
    pub fn size(&self) -> StoreSize {
        self.with_index(|map| StoreSize {
            entries: map.len() as u64,
            bytes: map.values().sum(),
        })
    }

    /// Runs `f` over the in-memory index map, loading or rebuilding it
    /// first if this is the store's first index touch.
    fn with_index<R>(&self, f: impl FnOnce(&mut HashMap<u64, u64>) -> R) -> R {
        let mut guard = self.index.lock().expect("store index");
        if guard.is_none() {
            let map = load_index_file(&self.index_path()).unwrap_or_else(|| {
                let map = rebuild_index_from_walk(&self.dir);
                // Persist best-effort; a read-only store still gets
                // correct in-memory answers.
                let _ = write_index_file(&self.index_path(), &map);
                map
            });
            *guard = Some(map);
        }
        f(guard.as_mut().expect("index just loaded"))
    }

    /// Records one stored artifact in the index: updates the in-memory
    /// map and appends the entry to `index.ridx` under the same lock, so
    /// concurrent `put`s serialize their appends. Last write wins on
    /// duplicate key hashes, both in memory and on reload.
    fn index_record(&self, key_hash: u64, bytes: u64) {
        let path = self.index_path();
        self.with_index(|map| {
            map.insert(key_hash, bytes);
            let mut entry = [0u8; INDEX_ENTRY_LEN];
            entry[..8].copy_from_slice(&key_hash.to_le_bytes());
            entry[8..].copy_from_slice(&bytes.to_le_bytes());
            match std::fs::OpenOptions::new().append(true).open(&path) {
                Ok(mut file) => {
                    let _ = file.write_all(&entry);
                }
                // The file vanished since load (or was never writable):
                // rewrite it whole from the map, best-effort.
                Err(_) => {
                    let _ = write_index_file(&path, map);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Per-test scratch directory under the system temp dir, removed on
    /// drop (no tempfile crate in the offline vendor set).
    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "radio-bench-results-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("create scratch dir");
            ScratchDir(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sample_key() -> ResultKey {
        ResultKey {
            scenario: "grid-small".into(),
            family: "grid".into(),
            target_n: 64,
            seed: 3,
            protocol_spec: "trivial_bfs".into(),
            stack: "abstract".into(),
            active: None,
        }
    }

    fn sample_record() -> ScenarioRecord {
        ScenarioRecord {
            scenario: "grid-small".into(),
            family: "grid".into(),
            n: 64,
            seed: 3,
            protocol: "trivial_bfs".into(),
            backend: "abstract".into(),
            energy_model: "uniform".into(),
            lb_calls: 17,
            max_lb_energy: 9,
            // A mean that does not round-trip through 3-decimal JSON — the
            // codec must preserve the exact bits anyway.
            mean_lb_energy: 1.0 / 3.0,
            max_physical_energy: Some(123),
            physical_slots: None,
            outcome: 64,
            target_n: 64,
            // Exercise all three diameter-column shapes through the codec:
            // present, present, and tri-state Some(false).
            estimate: Some(13),
            exact: Some(14),
            agrees: Some(false),
        }
    }

    #[test]
    fn artifacts_round_trip_bit_exactly() {
        let scratch = ScratchDir::new("roundtrip");
        let key = sample_key();
        let record = sample_record();
        let path = scratch.0.join(key.file_name());
        write_artifact(&path, &key, &record).expect("write");
        let back = read_artifact(&path, &key).expect("read");
        assert_eq!(back, record);
        assert_eq!(
            back.mean_lb_energy.to_bits(),
            record.mean_lb_energy.to_bits(),
            "float bits must survive the codec exactly"
        );
    }

    #[test]
    fn key_hash_separates_every_field_including_the_active_set() {
        let base = sample_key();
        let mut other = base.clone();
        other.seed = 4;
        assert_ne!(base.content_hash(), other.content_hash());
        let mut spec = base.clone();
        spec.protocol_spec = "trivial_bfs:depth=5".into();
        assert_ne!(base.content_hash(), spec.content_hash());
        let mut stack = base.clone();
        stack.stack = "physical".into();
        assert_ne!(base.content_hash(), stack.content_hash());
        // The active-set satellite: None, Some([]) and two different sets
        // are four distinct identities.
        let mut empty = base.clone();
        empty.active = Some(vec![]);
        let mut lower = base.clone();
        lower.active = Some(vec![0, 1, 2]);
        let mut upper = base.clone();
        upper.active = Some(vec![3, 4, 5]);
        let hashes = [
            base.content_hash(),
            empty.content_hash(),
            lower.content_hash(),
            upper.content_hash(),
        ];
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "keys {i} and {j} collide");
            }
        }
        assert!(base
            .file_name()
            .contains(&format!("{:016x}", base.content_hash())));
    }

    #[test]
    fn corrupt_truncated_and_foreign_artifacts_are_typed_errors() {
        let scratch = ScratchDir::new("corrupt");
        let key = sample_key();
        let record = sample_record();
        let path = scratch.0.join(key.file_name());

        // Garbage bytes: bad magic.
        std::fs::write(&path, b"not an artifact at all").expect("write garbage");
        let err = read_artifact(&path, &key).expect_err("garbage must fail");
        assert!(matches!(err, ResultError::Format(_)), "{err}");

        // Truncation: a valid artifact cut short.
        write_artifact(&path, &key, &record).expect("write");
        let full = std::fs::read(&path).expect("read back");
        std::fs::write(&path, &full[..full.len() - 5]).expect("truncate");
        let err = read_artifact(&path, &key).expect_err("truncated must fail");
        assert!(matches!(err, ResultError::Format(_)), "{err}");

        // Payload corruption under an intact header: checksum catches it.
        let mut flipped = full.clone();
        let mid = HEADER_LEN + 3;
        flipped[mid] ^= 0xff;
        std::fs::write(&path, &flipped).expect("flip payload byte");
        let err = read_artifact(&path, &key).expect_err("corrupt payload must fail");
        assert!(format!("{err}").contains("checksum"), "{err}");

        // A foreign key: the artifact belongs to a different cell.
        std::fs::write(&path, &full).expect("restore");
        let mut foreign = key.clone();
        foreign.seed = 99;
        let err = read_artifact(&path, &foreign).expect_err("foreign key must fail");
        assert!(format!("{err}").contains("key hash"), "{err}");

        // A foreign engine fingerprint: same key, different semantics era.
        let mut stale = full.clone();
        for b in &mut stale[16..24] {
            *b ^= 0xff;
        }
        // Recompute the checksum? No — the fingerprint lives in the header,
        // outside the checksummed payload, precisely so this check fires
        // first and names the real problem.
        std::fs::write(&path, &stale).expect("forge fingerprint");
        let err = read_artifact(&path, &key).expect_err("stale engine must fail");
        assert!(format!("{err}").contains("engine fingerprint"), "{err}");
    }

    #[test]
    fn store_counts_hits_and_misses_and_heals_corruption() {
        let scratch = ScratchDir::new("store");
        let store = ResultStore::new(scratch.0.clone());
        let key = sample_key();
        let record = sample_record();
        assert_eq!(store.get(&key), None);
        assert_eq!((store.hits(), store.misses()), (0, 1));
        store.put(&key, &record).expect("put");
        assert_eq!(store.get(&key).as_ref(), Some(&record));
        assert_eq!((store.hits(), store.misses()), (1, 1));
        let size = store.size();
        assert_eq!(size.entries, 1);
        assert!(size.bytes > 0);
        // Corrupt the artifact: the next get is a miss, and re-putting
        // heals the entry.
        std::fs::write(store.path_for(&key), b"RRESgarbage").expect("corrupt");
        assert_eq!(store.get(&key), None);
        assert_eq!((store.hits(), store.misses()), (1, 2));
        store.put(&key, &record).expect("re-put");
        assert_eq!(store.get(&key).as_ref(), Some(&record));
        assert_eq!((store.hits(), store.misses()), (2, 2));
    }

    #[test]
    fn empty_or_missing_store_directory_reports_zero_size() {
        let scratch = ScratchDir::new("size");
        let store = ResultStore::new(scratch.0.join("never-created"));
        assert_eq!(store.size(), StoreSize::default());
    }

    /// `count` distinct keys/records derived from the sample pair.
    fn keyed_records(count: u64) -> Vec<(ResultKey, ScenarioRecord)> {
        (0..count)
            .map(|seed| {
                let mut key = sample_key();
                key.seed = seed;
                let mut record = sample_record();
                record.seed = seed;
                record.lb_calls = 100 + seed;
                (key, record)
            })
            .collect()
    }

    #[test]
    fn hot_set_serves_warm_probes_without_disk_and_evicts_lru() {
        let scratch = ScratchDir::new("hot");
        let store = ResultStore::new(scratch.0.clone()).with_hot_set(2);
        assert_eq!(store.hot_capacity(), 2);
        let cells = keyed_records(3);
        for (key, record) in &cells {
            store.put(key, record).expect("put");
        }
        // Capacity 2 with 3 inserts: the oldest (seed 0) was evicted.
        assert_eq!(store.hot_len(), 2);
        // Warm probe of a resident key answers from memory even after the
        // artifact is destroyed — the proof it never touched disk.
        std::fs::remove_file(store.path_for(&cells[2].0)).expect("remove artifact");
        assert_eq!(store.get(&cells[2].0).as_ref(), Some(&cells[2].1));
        assert_eq!(store.hot_hits(), 1);
        assert_eq!(store.hits(), 1);
        // The evicted key falls through to disk, is served, and is
        // promoted back into the hot set (evicting the LRU resident).
        assert_eq!(store.get(&cells[0].0).as_ref(), Some(&cells[0].1));
        assert_eq!((store.hits(), store.hot_hits()), (2, 1));
        assert_eq!(store.get(&cells[0].0).as_ref(), Some(&cells[0].1));
        assert_eq!((store.hits(), store.hot_hits()), (3, 2));
    }

    #[test]
    fn hot_set_answers_are_byte_identical_to_disk_answers() {
        let scratch = ScratchDir::new("hot-bytes");
        let cold = ResultStore::new(scratch.0.clone());
        let warm = ResultStore::new(scratch.0.clone()).with_hot_set(1);
        let cells = keyed_records(4);
        for (key, record) in &cells {
            cold.put(key, record).expect("put");
        }
        // Tiny capacity forces eviction churn on every probe; the records
        // must still match the hot-set-off store bit-for-bit.
        for _ in 0..3 {
            for (key, _) in &cells {
                let a = cold.get(key).expect("cold");
                let b = warm.get(key).expect("warm");
                assert_eq!(a, b);
                assert_eq!(a.mean_lb_energy.to_bits(), b.mean_lb_energy.to_bits());
            }
        }
    }

    #[test]
    fn index_is_written_on_put_and_loaded_without_a_walk() {
        let scratch = ScratchDir::new("index");
        let store = ResultStore::new(scratch.0.clone());
        let cells = keyed_records(3);
        for (key, record) in &cells {
            store.put(key, record).expect("put");
        }
        let size = store.size();
        assert_eq!(size.entries, 3);
        assert!(size.bytes > 0);
        assert!(store.index_path().exists());
        // A fresh store over the same directory answers from the index
        // file. Remove every artifact first: a walk would now say 0, so
        // agreeing with the old total proves the index answered.
        let walked = rebuild_index_from_walk(&scratch.0);
        assert_eq!(walked.len(), 3);
        for (key, _) in &cells {
            std::fs::remove_file(store.path_for(key)).expect("remove");
        }
        let reopened = ResultStore::new(scratch.0.clone());
        assert_eq!(reopened.size(), size);
    }

    #[test]
    fn missing_corrupt_truncated_or_stale_index_rebuilds_from_walk() {
        let scratch = ScratchDir::new("index-heal");
        let store = ResultStore::new(scratch.0.clone());
        let cells = keyed_records(4);
        for (key, record) in &cells {
            store.put(key, record).expect("put");
        }
        let truth = store.size();
        assert_eq!(truth.entries, 4);
        let index_path = store.index_path();

        // Deleted index: rebuilt from the walk.
        std::fs::remove_file(&index_path).expect("delete index");
        assert_eq!(ResultStore::new(scratch.0.clone()).size(), truth);
        assert!(index_path.exists(), "rebuild must persist the index");

        // Binary garbage: rejected, rebuilt.
        std::fs::write(&index_path, b"\xde\xad\xbe\xef not an index").expect("garbage");
        assert_eq!(ResultStore::new(scratch.0.clone()).size(), truth);

        // Truncated mid-entry (a crashed append): rejected, rebuilt.
        let full = std::fs::read(&index_path).expect("read index");
        std::fs::write(&index_path, &full[..full.len() - 7]).expect("truncate");
        assert_eq!(ResultStore::new(scratch.0.clone()).size(), truth);

        // Stale engine fingerprint: rejected, rebuilt.
        let mut stale = std::fs::read(&index_path).expect("read index");
        for b in &mut stale[8..16] {
            *b ^= 0xff;
        }
        std::fs::write(&index_path, &stale).expect("forge fingerprint");
        assert_eq!(ResultStore::new(scratch.0.clone()).size(), truth);
        assert_eq!(
            std::fs::read(&index_path).expect("healed index"),
            full,
            "a rebuild from the same artifacts must reproduce the same index bytes"
        );
    }

    #[test]
    fn index_rebuild_skips_foreign_and_corrupt_artifacts() {
        let scratch = ScratchDir::new("index-skip");
        let store = ResultStore::new(scratch.0.clone());
        let cells = keyed_records(2);
        for (key, record) in &cells {
            store.put(key, record).expect("put");
        }
        // Plant a garbage .rec and a stale-fingerprint .rec next to the
        // real ones; the rebuild must not count either.
        std::fs::write(
            scratch.0.join("zz-garbage-s0-0000000000000000.rec"),
            b"junk",
        )
        .expect("garbage rec");
        let real = std::fs::read(store.path_for(&cells[0].0)).expect("read real");
        let mut foreign = real.clone();
        for b in &mut foreign[16..24] {
            *b ^= 0xff;
        }
        std::fs::write(
            scratch.0.join("zz-foreign-s0-ffffffffffffffff.rec"),
            &foreign,
        )
        .expect("foreign rec");
        std::fs::remove_file(store.index_path()).expect("force rebuild");
        let size = ResultStore::new(scratch.0.clone()).size();
        assert_eq!(size.entries, 2, "only servable artifacts count");
    }
}
