//! Shared helpers for the benchmark harness and the `experiments` binary.
//!
//! Every experiment in EXPERIMENTS.md (E1–E14) has a function in the
//! `experiments` binary; the Criterion benches under `benches/` reuse the
//! same building blocks to measure wall-clock scaling of the simulator
//! itself. This library only holds the small amount of code both need.
//!
//! Workload dispatch goes through the protocol registry ([`registry`],
//! re-exported from `energy-bfs`): the scenario runner resolves each
//! [`scenarios::Protocol`] variant's spec once per scenario, and
//! `experiments -- scenarios --protocol <spec>` validates CLI filters
//! through the same path.
//!
//! Sweeps are *incremental*: [`results`] is a content-addressed store of
//! per-cell [`scenarios::ScenarioRecord`] artifacts — fronted by a bounded
//! in-memory hot set and indexed by a persistent append-on-write store
//! index — consulted by the runner before any cell is dispatched, and
//! [`server`] turns the whole pipeline into a long-running concurrent
//! service (`experiments -- serve`): an accept pool of connection
//! handlers over one listener, batched requests scheduled as one
//! work-item set on a persistent [`pool::WorkPool`], answered from the
//! store when warm ([`json`] is the dependency-free parser).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod pool;
pub mod results;
pub mod scenarios;
pub mod server;

pub use energy_bfs::protocol::registry;

use energy_bfs::RecursiveBfsConfig;
use radio_graph::{generators, Graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic RNG for experiment `tag`.
pub fn rng(tag: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0xE4E5_0000 ^ tag)
}

/// The standard graph families used across experiments, with printable
/// names.
pub fn standard_families(seed: u64) -> Vec<(String, Graph)> {
    let mut r = rng(seed);
    let mut out = vec![
        ("path(256)".to_string(), generators::path(256)),
        ("cycle(200)".to_string(), generators::cycle(200)),
        ("grid(16x16)".to_string(), generators::grid(16, 16)),
        (
            "tree(k=3,levels=5)".to_string(),
            generators::complete_k_ary_tree(3, 5),
        ),
        ("lollipop(20,60)".to_string(), generators::lollipop(20, 60)),
    ];
    if let Some(g) = generators::connected_gnp(220, 0.03, 300, &mut r) {
        out.push(("gnp(220,0.03)".to_string(), g));
    }
    if let Some((g, _)) = generators::connected_unit_disc(260, 20.0, 2.2, 300, &mut r) {
        out.push(("unit-disc(260)".to_string(), g));
    }
    out
}

/// The recursive-BFS configuration used by the energy-scaling experiments:
/// `1/β ≈ √D` (the paper's tuning, up to constants) with one recursion
/// level, which is the profitable depth at simulator scale.
pub fn scaling_config(depth: u64, seed: u64) -> RecursiveBfsConfig {
    let inv_beta = ((depth as f64).sqrt().round() as u64)
        .next_power_of_two()
        .max(4);
    RecursiveBfsConfig {
        inv_beta,
        max_depth: 1,
        trivial_cutoff: inv_beta,
        seed,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_nonempty_and_connected() {
        let fams = standard_families(1);
        assert!(fams.len() >= 5);
        for (name, g) in fams {
            assert!(
                radio_graph::components::is_connected(&g),
                "{name} disconnected"
            );
        }
    }

    #[test]
    fn scaling_config_tracks_depth() {
        assert!(scaling_config(100, 0).inv_beta >= 8);
        assert!(scaling_config(4096, 0).inv_beta >= 64);
    }
}
