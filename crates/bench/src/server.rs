//! Sweep-as-a-service: the long-running mode behind `experiments -- serve`.
//!
//! The server accepts line-delimited JSON requests over TCP, validates them
//! through the same [`ProtocolRegistry`]/[`Family::parse`]/
//! [`StackSpec::parse`] paths the CLI uses, runs the cells through
//! [`run_scenario_with_stores`] — so every answer consults the
//! content-addressed [`ResultStore`] first and computes only absent cells on
//! the worker pool — and writes one JSON response line per request. A
//! request naming a catalog scenario shares its result keys with the batch
//! sweep, so a store warmed by `experiments -- scenarios` answers the same
//! cells here without recomputing anything (and vice versa).
//!
//! The wire protocol (one request object per line, one response per line):
//!
//! * `{"cmd":"run","scenario":"grid32-trivial"}` — run a catalog scenario
//!   (default or xl sweep) by name; optional `"seeds":[…]` narrows the
//!   seed list (keys are per-cell, so partial seed lists still warm the
//!   store for the full sweep).
//! * `{"cmd":"run","family":"grid","size":1024,"protocol":"trivial_bfs",
//!   "stack":"abstract","seeds":[0,1]}` — an ad-hoc cell grid; `stack`
//!   defaults to `abstract`, `seeds` to `[0]`, and optional
//!   `"active":[…]` restricts the protocol's active set (a distinct result
//!   key — restricted runs never alias full-set runs). Optional `"name"`
//!   sets the scenario coordinate of the key (default `adhoc`).
//! * `{"cmd":"stats"}` — hit/miss/served/computed counters plus store size.
//! * `{"cmd":"shutdown"}` — acknowledge and stop accepting.
//!
//! Run responses are `{"ok":true,"records":[…],"hits":H,"computed":C}` with
//! each record emitted by [`record_json_object`] — byte-identical to the
//! same record's line in a sweep JSON file. Every failure (unparsable line,
//! unknown scenario/family/stack, a spec the registry rejects, a capability
//! mismatch) is a structured `{"ok":false,"error":…,"code":2}` response
//! mirroring the CLI's exit-2 contract; the connection, and the server,
//! stay up.
//!
//! [`ProtocolRegistry`]: radio_protocols::protocol::ProtocolRegistry

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};

use radio_graph::dataset::DatasetCache;

use crate::json::{escape, Json};
use crate::results::ResultStore;
use crate::scenarios::{
    default_scenarios, record_json_object, run_scenario_with_stores, xl_scenarios, Family,
    Protocol, RunnerConfig, Scenario, ScenarioRecord, StackSpec,
};

/// What a serve session did, returned when the accept loop exits (on a
/// `shutdown` request or a closed listener).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered (including error responses).
    pub requests: u64,
    /// Records returned across all `run` responses.
    pub served: u64,
    /// Records that had to be computed (store misses healed by running).
    pub computed: u64,
}

/// A request-level failure, rendered as the structured error response.
struct Refusal(String);

fn refuse<T>(msg: impl Into<String>) -> Result<T, Refusal> {
    Err(Refusal(msg.into()))
}

/// Looks up a catalog scenario (default sweep first, then xl) by name.
fn catalog_scenario(name: &str) -> Option<Scenario> {
    default_scenarios()
        .into_iter()
        .chain(xl_scenarios())
        .find(|s| s.name == name)
}

fn u64_list(value: &Json, what: &str) -> Result<Vec<u64>, Refusal> {
    let items = value
        .as_array()
        .ok_or_else(|| Refusal(format!("{what} must be an array of non-negative integers")))?;
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| Refusal(format!("{what} must hold non-negative integers")))
        })
        .collect()
}

/// Decodes a `run` request into the scenario to execute plus its optional
/// restricted active set, validating every coordinate through the same
/// parsers the CLI uses.
fn decode_run(request: &Json) -> Result<(Scenario, Option<Vec<usize>>), Refusal> {
    let mut scenario = match request.get("scenario") {
        Some(name) => {
            let name = name
                .as_str()
                .ok_or_else(|| Refusal("scenario must be a string".into()))?;
            catalog_scenario(name)
                .ok_or_else(|| Refusal(format!("unknown scenario {name:?} (not in the catalog)")))?
        }
        None => {
            let family_label = request
                .get("family")
                .and_then(Json::as_str)
                .ok_or_else(|| Refusal("run needs \"scenario\" or \"family\"".into()))?;
            let family = Family::parse(family_label)
                .ok_or_else(|| Refusal(format!("unknown family {family_label:?}")))?;
            let sizes: Vec<usize> = match (request.get("size"), request.get("sizes")) {
                (Some(one), None) => vec![one
                    .as_u64()
                    .ok_or_else(|| Refusal("size must be a non-negative integer".into()))?
                    as usize],
                (None, Some(many)) => u64_list(many, "sizes")?
                    .into_iter()
                    .map(|s| s as usize)
                    .collect(),
                (None, None) => return refuse("ad-hoc run needs \"size\" or \"sizes\""),
                (Some(_), Some(_)) => return refuse("give \"size\" or \"sizes\", not both"),
            };
            let spec = request
                .get("protocol")
                .and_then(Json::as_str)
                .ok_or_else(|| Refusal("ad-hoc run needs a \"protocol\" spec".into()))?;
            let protocol = Protocol::from_spec(spec, &energy_bfs::protocol::registry())
                .map_err(|e| Refusal(e.to_string()))?;
            let stack = match request.get("stack") {
                None => StackSpec::Abstract,
                Some(label) => {
                    let label = label
                        .as_str()
                        .ok_or_else(|| Refusal("stack must be a string label".into()))?;
                    StackSpec::parse(label)
                        .ok_or_else(|| Refusal(format!("unknown stack {label:?}")))?
                }
            };
            let name = match request.get("name") {
                None => "adhoc".to_string(),
                Some(n) => n
                    .as_str()
                    .ok_or_else(|| Refusal("name must be a string".into()))?
                    .to_string(),
            };
            Scenario {
                name,
                family,
                sizes,
                seeds: vec![0],
                protocol,
                stack,
            }
        }
    };
    if let Some(seeds) = request.get("seeds") {
        scenario.seeds = u64_list(seeds, "seeds")?;
    }
    let active = match request.get("active") {
        None => None,
        Some(list) => Some(
            u64_list(list, "active")?
                .into_iter()
                .map(|v| v as usize)
                .collect::<Vec<usize>>(),
        ),
    };
    Ok((scenario, active))
}

/// Runs one decoded request, catching the runner's capability-mismatch
/// panic so a bad request degrades to a structured error instead of
/// killing the server.
fn execute(
    scenario: &Scenario,
    active: Option<&[usize]>,
    config: &RunnerConfig,
    datasets: Option<&DatasetCache>,
    results: &ResultStore,
) -> Result<Vec<ScenarioRecord>, Refusal> {
    catch_unwind(AssertUnwindSafe(|| {
        run_scenario_with_stores(scenario, config, datasets, Some(results), active)
    }))
    .map_err(|panic| {
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "protocol execution failed".into());
        Refusal(msg)
    })
}

/// Answers one request line, updating `summary`. Returns the response line
/// and whether the server should shut down afterwards.
fn handle_line(
    line: &str,
    config: &RunnerConfig,
    datasets: Option<&DatasetCache>,
    results: &ResultStore,
    summary: &mut ServeSummary,
) -> (String, bool) {
    summary.requests += 1;
    let outcome: Result<(String, bool), Refusal> = (|| {
        let request = Json::parse(line).map_err(|e| Refusal(e.to_string()))?;
        let cmd = request
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| Refusal("request needs a string \"cmd\"".into()))?;
        match cmd {
            "run" => {
                let (scenario, active) = decode_run(&request)?;
                let hits_before = results.hits();
                let misses_before = results.misses();
                let records = execute(&scenario, active.as_deref(), config, datasets, results)?;
                let hits = results.hits() - hits_before;
                let computed = results.misses() - misses_before;
                summary.served += records.len() as u64;
                summary.computed += computed;
                let body: Vec<String> = records.iter().map(record_json_object).collect();
                Ok((
                    format!(
                        "{{\"ok\":true,\"records\":[{}],\"hits\":{hits},\"computed\":{computed}}}",
                        body.join(",")
                    ),
                    false,
                ))
            }
            "stats" => {
                let size = results.size();
                Ok((
                    format!(
                        "{{\"ok\":true,\"hits\":{},\"misses\":{},\"served\":{},\
                         \"computed\":{},\"entries\":{},\"bytes\":{}}}",
                        results.hits(),
                        results.misses(),
                        summary.served,
                        summary.computed,
                        size.entries,
                        size.bytes
                    ),
                    false,
                ))
            }
            "shutdown" => Ok(("{\"ok\":true,\"shutdown\":true}".into(), true)),
            other => refuse(format!("unknown cmd {other:?} (run, stats, shutdown)")),
        }
    })();
    match outcome {
        Ok(done) => done,
        Err(Refusal(msg)) => (
            format!("{{\"ok\":false,\"error\":\"{}\",\"code\":2}}", escape(&msg)),
            false,
        ),
    }
}

fn handle_connection(
    stream: TcpStream,
    config: &RunnerConfig,
    datasets: Option<&DatasetCache>,
    results: &ResultStore,
    summary: &mut ServeSummary,
) -> std::io::Result<bool> {
    // One write + TCP_NODELAY per response: the request/response ping-pong
    // otherwise trips Nagle against delayed ACKs, turning a sub-millisecond
    // warm store read into a ~40ms round trip.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (mut response, shutdown) = handle_line(&line, config, datasets, results, summary);
        response.push('\n');
        writer.write_all(response.as_bytes())?;
        writer.flush()?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// The accept loop: one connection at a time (requests shard their *cells*
/// across the worker pool, so concurrency lives inside a request, where the
/// determinism contract already governs it), one response line per request
/// line, until a `shutdown` request. Per-connection I/O errors drop that
/// connection and keep serving; the returned summary is what the
/// `experiments` binary prints on exit.
pub fn serve(
    listener: TcpListener,
    config: &RunnerConfig,
    datasets: Option<&DatasetCache>,
    results: &ResultStore,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    for stream in listener.incoming() {
        let stream = stream?;
        match handle_connection(stream, config, datasets, results, &mut summary) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => eprintln!("[serve] connection error: {e}"),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "radio-bench-server-{tag}-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    /// One in-process round trip over an ephemeral port: compute, re-answer
    /// from the store, stats, a structured spec error, then shutdown.
    #[test]
    fn server_round_trips_over_an_ephemeral_port() {
        let dir = scratch("roundtrip");
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
        let addr = listener.local_addr().expect("local addr");
        let results_dir = dir.clone();
        let server = std::thread::spawn(move || {
            let results = ResultStore::new(results_dir);
            serve(listener, &RunnerConfig::serial(), None, &results).expect("serve")
        });

        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut ask = |request: &str| -> Json {
            writer.write_all(request.as_bytes()).expect("send");
            writer.write_all(b"\n").expect("send newline");
            writer.flush().expect("flush");
            let mut line = String::new();
            reader.read_line(&mut line).expect("response");
            Json::parse(line.trim()).expect("response is JSON")
        };

        // Cold: every cell computed.
        let run =
            r#"{"cmd":"run","family":"path","size":24,"protocol":"trivial_bfs","seeds":[0,1]}"#;
        let cold = ask(run);
        assert_eq!(cold.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(cold.get("computed").and_then(Json::as_u64), Some(2));
        assert_eq!(cold.get("hits").and_then(Json::as_u64), Some(0));
        let records = cold
            .get("records")
            .and_then(Json::as_array)
            .expect("records");
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0].get("outcome").and_then(Json::as_u64),
            Some(24),
            "trivial BFS labels the whole path"
        );

        // Warm: the identical request is answered from the store.
        let warm = ask(run);
        assert_eq!(warm.get("computed").and_then(Json::as_u64), Some(0));
        assert_eq!(warm.get("hits").and_then(Json::as_u64), Some(2));
        assert_eq!(warm.get("records"), cold.get("records"));

        // A restricted active set is a different key: computed again, and
        // the wavefront stops at the boundary.
        let restricted = ask(
            r#"{"cmd":"run","family":"path","size":24,"protocol":"trivial_bfs","seeds":[0],"active":[0,1,2,3,4,5,6,7,8,9,10,11]}"#,
        );
        assert_eq!(restricted.get("computed").and_then(Json::as_u64), Some(1));
        let rec = &restricted.get("records").and_then(Json::as_array).unwrap()[0];
        assert_eq!(rec.get("outcome").and_then(Json::as_u64), Some(12));

        // Stats carry the cumulative counters and a non-empty store.
        let stats = ask(r#"{"cmd":"stats"}"#);
        assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(stats.get("hits").and_then(Json::as_u64), Some(2));
        assert_eq!(stats.get("served").and_then(Json::as_u64), Some(5));
        assert_eq!(stats.get("computed").and_then(Json::as_u64), Some(3));
        assert_eq!(stats.get("entries").and_then(Json::as_u64), Some(3));

        // An unknown protocol spec is the registry's structured error, not
        // a dropped connection.
        let err = ask(r#"{"cmd":"run","family":"path","size":8,"protocol":"warp_drive"}"#);
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("code").and_then(Json::as_u64), Some(2));
        assert!(
            err.get("error")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .contains("warp_drive"),
            "error names the bad spec: {err:?}"
        );

        // And malformed JSON likewise.
        let bad = ask("{\"cmd\":");
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));

        let bye = ask(r#"{"cmd":"shutdown"}"#);
        assert_eq!(bye.get("shutdown").and_then(Json::as_bool), Some(true));
        let summary = server.join().expect("server thread");
        assert_eq!(summary.served, 5);
        assert_eq!(summary.computed, 3);
        assert!(summary.requests >= 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A named catalog request shares keys with the batch sweep: warming
    /// the store through the runner makes the served request all-hits.
    #[test]
    fn named_catalog_requests_cross_warm_with_batch_sweeps() {
        let dir = scratch("crosswarm");
        let results = ResultStore::new(dir.clone());
        let scenario = catalog_scenario("grid32-trivial").expect("catalog name");
        run_scenario_with_stores(
            &scenario,
            &RunnerConfig::serial(),
            None,
            Some(&results),
            None,
        );
        let warmed_misses = results.misses();

        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            serve(listener, &RunnerConfig::serial(), None, &results).expect("serve")
        });
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        for request in [
            r#"{"cmd":"run","scenario":"grid32-trivial"}"#,
            r#"{"cmd":"shutdown"}"#,
        ] {
            writer.write_all(request.as_bytes()).expect("send");
            writer.write_all(b"\n").expect("newline");
        }
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("run response");
        let run = Json::parse(line.trim()).expect("JSON");
        assert_eq!(
            run.get("computed").and_then(Json::as_u64),
            Some(0),
            "a sweep-warmed store must answer the named request without recomputing"
        );
        assert_eq!(
            run.get("hits").and_then(Json::as_u64),
            Some(scenario.seeds.len() as u64)
        );
        let summary = server.join().expect("server thread");
        assert_eq!(summary.computed, 0, "misses stayed at {warmed_misses}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Requests that panic inside the runner (a CD protocol on a no-CD
    /// stack) come back as structured errors and the server keeps going.
    #[test]
    fn capability_mismatches_are_structured_errors_not_crashes() {
        let dir = scratch("caps");
        let results = ResultStore::new(dir.clone());
        let cfg = RunnerConfig::serial();
        let mut summary = ServeSummary::default();
        let (response, shutdown) = handle_line(
            r#"{"cmd":"run","family":"path","size":8,"protocol":"trivial_bfs_cd","stack":"physical"}"#,
            &cfg,
            None,
            &results,
            &mut summary,
        );
        assert!(!shutdown);
        let v = Json::parse(&response).expect("JSON error response");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert!(
            v.get("error")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .contains("collision detection"),
            "error names the missing capability: {response}"
        );
        // The server is still able to answer a good request afterwards.
        let (ok_response, _) = handle_line(
            r#"{"cmd":"run","family":"path","size":8,"protocol":"trivial_bfs"}"#,
            &cfg,
            None,
            &results,
            &mut summary,
        );
        let ok = Json::parse(&ok_response).expect("JSON");
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }
}
