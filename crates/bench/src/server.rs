//! Sweep-as-a-service: the long-running mode behind `experiments -- serve`.
//!
//! The server accepts line-delimited JSON requests over TCP, validates them
//! through the same [`ProtocolRegistry`]/[`Family::parse`]/
//! [`StackSpec::parse`] paths the CLI uses, runs the cells through
//! [`run_batch_with_stores`] — so every answer consults the
//! content-addressed [`ResultStore`] first (hot set, then disk) and
//! computes only absent cells — and writes one JSON response line per
//! request. A request naming a catalog scenario shares its result keys
//! with the batch sweep, so a store warmed by `experiments -- scenarios`
//! answers the same cells here without recomputing anything (and vice
//! versa).
//!
//! ## Concurrency
//!
//! The serving side is an **accept pool**: `accept_threads` connection-
//! handler threads all accept on the same (non-blocking) listener, so a
//! slow or stalled client occupies one handler and never serializes the
//! listener. Handlers share one persistent [`WorkPool`] of
//! `config.threads` compute workers — a request's missing cells are
//! submitted there as one work-item set, and concurrent requests
//! interleave their cells on the pool's FIFO queue. Counters
//! (requests/served/computed and the store's hits/misses) are atomics;
//! each response's own `hits`/`computed` fields come from the batch
//! runner's per-item accounting, not from global counter deltas, so
//! per-response numbers sum exactly to the `stats` totals no matter how
//! requests overlap. Because every record is a pure function of its
//! [`ResultKey`](crate::results::ResultKey), responses are byte-identical
//! to a serial single-client run — concurrency changes scheduling, never
//! bytes.
//!
//! ## Wire protocol
//!
//! One request object per line, one response per line:
//!
//! * `{"cmd":"run","scenario":"grid32-trivial"}` — run a catalog scenario
//!   (default or xl sweep) by name; optional `"seeds":[…]` narrows the
//!   seed list (keys are per-cell, so partial seed lists still warm the
//!   store for the full sweep).
//! * `{"cmd":"run","family":"grid","size":1024,"protocol":"trivial_bfs",
//!   "stack":"abstract","seeds":[0,1]}` — an ad-hoc cell grid; `stack`
//!   defaults to `abstract`, `seeds` to `[0]`, and optional
//!   `"active":[…]` restricts the protocol's active set (a distinct result
//!   key — restricted runs never alias full-set runs). Optional `"name"`
//!   sets the scenario coordinate of the key (default `adhoc`).
//! * `{"cmd":"run","batch":[{…},{…}]}` — a **batched** request: each
//!   element is a run object of either shape above. All items are
//!   validated before anything computes (an invalid item refuses the whole
//!   request, naming the offending index), then every missing cell across
//!   every item is scheduled as one work-item set. The response is
//!   `{"ok":true,"batch":[{"records":[…],"hits":…,"computed":…},…],
//!   "hits":H,"computed":C}` — one entry per item, in request order, plus
//!   request-level totals.
//! * `{"cmd":"stats"}` — hit/miss/hot-hit/served/computed/request/
//!   connection counters plus store size (answered from the store index in
//!   O(1)).
//! * `{"cmd":"shutdown"}` — acknowledge, stop accepting, and let in-flight
//!   requests finish their responses.
//!
//! Single-scenario run responses keep the PR 8 shape:
//! `{"ok":true,"records":[…],"hits":H,"computed":C}` with each record
//! emitted by [`record_json_object`] — byte-identical to the same record's
//! line in a sweep JSON file.
//!
//! ## Fault containment
//!
//! Every failure is structured, and none is fatal: unparsable or non-UTF-8
//! lines, unknown scenarios/families/stacks, specs the registry rejects,
//! and capability mismatches all answer `{"ok":false,"error":…,"code":2}`
//! (mirroring the CLI's exit-2 contract) and keep the connection; a
//! request line longer than [`MAX_LINE_BYTES`] answers the same way and
//! then drops the connection (its framing can no longer be trusted);
//! nesting bombs are cut off by the JSON parser's depth cap; a client that
//! disconnects mid-request or stalls after connect costs one handler a
//! poll tick, never the listener. The accept pool itself only exits on
//! `shutdown`.
//!
//! [`ProtocolRegistry`]: radio_protocols::protocol::ProtocolRegistry
//! [`WorkPool`]: crate::pool::WorkPool

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use radio_graph::dataset::DatasetCache;

use crate::json::{escape, Json};
use crate::pool::WorkPool;
use crate::results::ResultStore;
use crate::scenarios::{
    default_scenarios, record_json_object, run_batch_with_stores, xl_scenarios, BatchItem,
    BatchOutcome, Family, Protocol, RunnerConfig, Scenario, StackSpec,
};

/// Hard cap on one request line. A line that exceeds it is answered with a
/// structured error and the connection is dropped — past this point the
/// line framing cannot be re-synchronized cheaply, and no legitimate
/// request is anywhere near this size.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Cap on the number of items in one batched request.
pub const MAX_BATCH_ITEMS: usize = 256;

/// How long a blocked read waits before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long an idle accept thread sleeps between accept polls. Short
/// enough that connection setup is never the visible latency (a freshly
/// connecting client waits at most one tick for a free handler), long
/// enough that an idle pool costs a few hundred wakeups per second.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How long a response write may stall before the client is dropped (a
/// client that never drains its socket must not pin a handler forever).
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Serving knobs of [`serve`], separate from the compute-side
/// [`RunnerConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeOptions {
    /// Connection-handler threads sharing the listener. Each handles one
    /// connection at a time; all share the one compute pool. Clamped to
    /// ≥ 1.
    pub accept_threads: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { accept_threads: 4 }
    }
}

/// What a serve session did, returned when the accept pool exits on a
/// `shutdown` request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered (including error responses).
    pub requests: u64,
    /// Records returned across all `run` responses.
    pub served: u64,
    /// Records that had to be computed (store misses healed by running).
    pub computed: u64,
    /// Connections accepted.
    pub connections: u64,
}

/// Everything the connection handlers share: the read-only run
/// configuration, the stores, the one persistent compute pool, the
/// summary counters, and the shutdown flag.
struct ServerShared<'a> {
    config: &'a RunnerConfig,
    datasets: Option<&'a DatasetCache>,
    results: &'a ResultStore,
    pool: WorkPool,
    requests: AtomicU64,
    served: AtomicU64,
    computed: AtomicU64,
    connections: AtomicU64,
    shutdown: AtomicBool,
}

impl<'a> ServerShared<'a> {
    fn new(
        config: &'a RunnerConfig,
        datasets: Option<&'a DatasetCache>,
        results: &'a ResultStore,
    ) -> Self {
        ServerShared {
            config,
            datasets,
            results,
            pool: WorkPool::new(config.threads),
            requests: AtomicU64::new(0),
            served: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    fn summary(&self) -> ServeSummary {
        ServeSummary {
            requests: self.requests.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }
}

/// A request-level failure, rendered as the structured error response.
struct Refusal(String);

fn refuse<T>(msg: impl Into<String>) -> Result<T, Refusal> {
    Err(Refusal(msg.into()))
}

/// Looks up a catalog scenario (default sweep first, then xl) by name.
fn catalog_scenario(name: &str) -> Option<Scenario> {
    default_scenarios()
        .into_iter()
        .chain(xl_scenarios())
        .find(|s| s.name == name)
}

fn u64_list(value: &Json, what: &str) -> Result<Vec<u64>, Refusal> {
    let items = value
        .as_array()
        .ok_or_else(|| Refusal(format!("{what} must be an array of non-negative integers")))?;
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| Refusal(format!("{what} must hold non-negative integers")))
        })
        .collect()
}

/// Decodes one `run` object into the scenario to execute plus its optional
/// restricted active set, validating every coordinate through the same
/// parsers the CLI uses.
fn decode_run(request: &Json) -> Result<(Scenario, Option<Vec<usize>>), Refusal> {
    let mut scenario = match request.get("scenario") {
        Some(name) => {
            let name = name
                .as_str()
                .ok_or_else(|| Refusal("scenario must be a string".into()))?;
            catalog_scenario(name)
                .ok_or_else(|| Refusal(format!("unknown scenario {name:?} (not in the catalog)")))?
        }
        None => {
            let family_label = request
                .get("family")
                .and_then(Json::as_str)
                .ok_or_else(|| Refusal("run needs \"scenario\" or \"family\"".into()))?;
            let family = Family::parse(family_label)
                .ok_or_else(|| Refusal(format!("unknown family {family_label:?}")))?;
            let sizes: Vec<usize> = match (request.get("size"), request.get("sizes")) {
                (Some(one), None) => vec![one
                    .as_u64()
                    .ok_or_else(|| Refusal("size must be a non-negative integer".into()))?
                    as usize],
                (None, Some(many)) => u64_list(many, "sizes")?
                    .into_iter()
                    .map(|s| s as usize)
                    .collect(),
                (None, None) => return refuse("ad-hoc run needs \"size\" or \"sizes\""),
                (Some(_), Some(_)) => return refuse("give \"size\" or \"sizes\", not both"),
            };
            let spec = request
                .get("protocol")
                .and_then(Json::as_str)
                .ok_or_else(|| Refusal("ad-hoc run needs a \"protocol\" spec".into()))?;
            let protocol = Protocol::from_spec(spec, &energy_bfs::protocol::registry())
                .map_err(|e| Refusal(e.to_string()))?;
            let stack = match request.get("stack") {
                None => StackSpec::Abstract,
                Some(label) => {
                    let label = label
                        .as_str()
                        .ok_or_else(|| Refusal("stack must be a string label".into()))?;
                    StackSpec::parse(label)
                        .ok_or_else(|| Refusal(format!("unknown stack {label:?}")))?
                }
            };
            let name = match request.get("name") {
                None => "adhoc".to_string(),
                Some(n) => n
                    .as_str()
                    .ok_or_else(|| Refusal("name must be a string".into()))?
                    .to_string(),
            };
            Scenario {
                name,
                family,
                sizes,
                seeds: vec![0],
                protocol,
                stack,
            }
        }
    };
    if let Some(seeds) = request.get("seeds") {
        scenario.seeds = u64_list(seeds, "seeds")?;
    }
    let active = match request.get("active") {
        None => None,
        Some(list) => Some(
            u64_list(list, "active")?
                .into_iter()
                .map(|v| v as usize)
                .collect::<Vec<usize>>(),
        ),
    };
    Ok((scenario, active))
}

/// Decodes a `run` request into its batch items: either the single run
/// object itself, or every element of `"batch"`. **All** items validate
/// before any cell computes — an invalid element refuses the whole
/// request, naming its index.
fn decode_items(request: &Json) -> Result<(Vec<BatchItem>, bool), Refusal> {
    let Some(batch) = request.get("batch") else {
        let (scenario, active) = decode_run(request)?;
        return Ok((vec![BatchItem { scenario, active }], false));
    };
    if request.get("scenario").is_some() || request.get("family").is_some() {
        return refuse("give \"batch\" or a single scenario/family run, not both");
    }
    let entries = batch
        .as_array()
        .ok_or_else(|| Refusal("batch must be an array of run objects".into()))?;
    if entries.is_empty() {
        return refuse("batch must hold at least one run object");
    }
    if entries.len() > MAX_BATCH_ITEMS {
        return refuse(format!(
            "batch holds {} items (limit {MAX_BATCH_ITEMS})",
            entries.len()
        ));
    }
    let items = entries
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            if !matches!(entry, Json::Obj(_)) {
                return refuse(format!("batch[{i}] must be a run object"));
            }
            let (scenario, active) =
                decode_run(entry).map_err(|Refusal(msg)| Refusal(format!("batch[{i}]: {msg}")))?;
            Ok(BatchItem { scenario, active })
        })
        .collect::<Result<Vec<BatchItem>, Refusal>>()?;
    Ok((items, true))
}

/// Runs the decoded items as one work-item set on the shared pool,
/// catching the runner's capability-mismatch panic so a bad request
/// degrades to a structured error instead of killing the handler.
fn execute(items: &[BatchItem], shared: &ServerShared<'_>) -> Result<Vec<BatchOutcome>, Refusal> {
    catch_unwind(AssertUnwindSafe(|| {
        run_batch_with_stores(
            items,
            shared.config,
            shared.datasets,
            Some(shared.results),
            Some(&shared.pool),
        )
    }))
    .map_err(|panic| {
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "protocol execution failed".into());
        Refusal(msg)
    })
}

fn error_response(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\",\"code\":2}}", escape(msg))
}

fn item_json(outcome: &BatchOutcome) -> String {
    let body: Vec<String> = outcome.records.iter().map(record_json_object).collect();
    format!(
        "{{\"records\":[{}],\"hits\":{},\"computed\":{}}}",
        body.join(","),
        outcome.hits,
        outcome.computed
    )
}

/// Answers one request line. Returns the response line and whether the
/// server should shut down afterwards.
fn handle_request(line: &str, shared: &ServerShared<'_>) -> (String, bool) {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let outcome: Result<(String, bool), Refusal> = (|| {
        let request = Json::parse(line).map_err(|e| Refusal(e.to_string()))?;
        let cmd = request
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| Refusal("request needs a string \"cmd\"".into()))?;
        match cmd {
            "run" => {
                let (items, batched) = decode_items(&request)?;
                let outcomes = execute(&items, shared)?;
                let served: u64 = outcomes.iter().map(|o| o.records.len() as u64).sum();
                let hits: u64 = outcomes.iter().map(|o| o.hits).sum();
                let computed: u64 = outcomes.iter().map(|o| o.computed).sum();
                shared.served.fetch_add(served, Ordering::Relaxed);
                shared.computed.fetch_add(computed, Ordering::Relaxed);
                let response = if batched {
                    let parts: Vec<String> = outcomes.iter().map(item_json).collect();
                    format!(
                        "{{\"ok\":true,\"batch\":[{}],\"hits\":{hits},\"computed\":{computed}}}",
                        parts.join(",")
                    )
                } else {
                    let body: Vec<String> =
                        outcomes[0].records.iter().map(record_json_object).collect();
                    format!(
                        "{{\"ok\":true,\"records\":[{}],\"hits\":{hits},\"computed\":{computed}}}",
                        body.join(",")
                    )
                };
                Ok((response, false))
            }
            "stats" => {
                let size = shared.results.size();
                Ok((
                    format!(
                        "{{\"ok\":true,\"hits\":{},\"misses\":{},\"hot_hits\":{},\
                         \"served\":{},\"computed\":{},\"requests\":{},\
                         \"connections\":{},\"entries\":{},\"bytes\":{}}}",
                        shared.results.hits(),
                        shared.results.misses(),
                        shared.results.hot_hits(),
                        shared.served.load(Ordering::Relaxed),
                        shared.computed.load(Ordering::Relaxed),
                        shared.requests.load(Ordering::Relaxed),
                        shared.connections.load(Ordering::Relaxed),
                        size.entries,
                        size.bytes
                    ),
                    false,
                ))
            }
            "shutdown" => {
                shared.shutdown.store(true, Ordering::SeqCst);
                Ok(("{\"ok\":true,\"shutdown\":true}".into(), true))
            }
            other => refuse(format!("unknown cmd {other:?} (run, stats, shutdown)")),
        }
    })();
    match outcome {
        Ok(done) => done,
        Err(Refusal(msg)) => (error_response(&msg), false),
    }
}

/// What one bounded line read produced.
enum LineOutcome {
    /// `buf` holds a complete line (newline stripped).
    Line,
    /// Clean end of stream; `buf` may hold a final unterminated line.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`] — framing is lost.
    Oversized,
    /// The server is shutting down; stop reading.
    Shutdown,
}

/// Reads one newline-terminated line into `buf` with a hard size cap,
/// re-checking the shutdown flag on every read-timeout tick. Unlike
/// `BufRead::lines`, this never buffers unboundedly (the cap is checked
/// per `fill_buf` chunk) and never errors on invalid UTF-8 — byte
/// validation is the caller's, so a garbage line gets a structured
/// response instead of a dropped connection.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    shared: &ServerShared<'_>,
) -> std::io::Result<LineOutcome> {
    loop {
        let available = match reader.fill_buf() {
            Ok(bytes) => bytes,
            // Linux reports a hit SO_RCVTIMEO as WouldBlock; other
            // platforms say TimedOut. Either way: poll the flag, retry.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(LineOutcome::Shutdown);
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(LineOutcome::Eof);
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            return Ok(if buf.len() > MAX_LINE_BYTES {
                LineOutcome::Oversized
            } else {
                LineOutcome::Line
            });
        }
        let len = available.len();
        buf.extend_from_slice(available);
        reader.consume(len);
        if buf.len() > MAX_LINE_BYTES {
            return Ok(LineOutcome::Oversized);
        }
    }
}

fn write_response(writer: &mut TcpStream, response: &str) -> std::io::Result<()> {
    // One write + TCP_NODELAY per response: the request/response ping-pong
    // otherwise trips Nagle against delayed ACKs, turning a sub-millisecond
    // warm store read into a ~40ms round trip.
    let mut line = String::with_capacity(response.len() + 1);
    line.push_str(response);
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Serves one accepted connection to completion: request lines in,
/// response lines out, until the peer closes, the server shuts down, or
/// the connection forfeits its framing (oversized line) or its socket
/// (I/O error, surfaced to the accept loop as `Err`).
fn handle_connection(stream: TcpStream, shared: &ServerShared<'_>) -> std::io::Result<()> {
    // The listener is non-blocking (accept threads poll it); the accepted
    // stream must not inherit that — reads are governed by READ_POLL.
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        let outcome = read_line_bounded(&mut reader, &mut buf, shared)?;
        let at_eof = matches!(outcome, LineOutcome::Eof);
        match outcome {
            LineOutcome::Shutdown => return Ok(()),
            LineOutcome::Oversized => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let msg = format!("request line exceeds {MAX_LINE_BYTES} bytes");
                write_response(&mut writer, &error_response(&msg))?;
                return Ok(());
            }
            LineOutcome::Line | LineOutcome::Eof => {
                let Ok(text) = std::str::from_utf8(&buf) else {
                    shared.requests.fetch_add(1, Ordering::Relaxed);
                    write_response(&mut writer, &error_response("request is not valid UTF-8"))?;
                    if at_eof {
                        return Ok(());
                    }
                    // The newline framing held; keep serving this client.
                    continue;
                };
                if text.trim().is_empty() {
                    if at_eof {
                        return Ok(());
                    }
                    continue;
                }
                let (response, shutdown) = handle_request(text, shared);
                write_response(&mut writer, &response)?;
                if shutdown || at_eof || shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
        }
    }
}

/// One accept thread: poll-accept until shutdown, handling each accepted
/// connection to completion. Per-connection I/O errors drop that
/// connection and keep serving; accept errors are logged and retried.
fn accept_loop(listener: &TcpListener, shared: &ServerShared<'_>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                if let Err(e) = handle_connection(stream, shared) {
                    eprintln!("[serve] connection error: {e}");
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("[serve] accept error: {e}");
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// Runs the server until a `shutdown` request: an accept pool of
/// `options.accept_threads` handler threads over one non-blocking
/// listener, all sharing one persistent compute pool of `config.threads`
/// workers. The returned summary is what the `experiments` binary prints
/// on exit. Handlers finish their in-flight request (and its response)
/// before exiting, so shutdown under load is clean.
pub fn serve(
    listener: TcpListener,
    config: &RunnerConfig,
    datasets: Option<&DatasetCache>,
    results: &ResultStore,
    options: &ServeOptions,
) -> std::io::Result<ServeSummary> {
    listener.set_nonblocking(true)?;
    let shared = ServerShared::new(config, datasets, results);
    std::thread::scope(|scope| {
        for _ in 0..options.accept_threads.max(1) {
            scope.spawn(|| accept_loop(&listener, &shared));
        }
    });
    Ok(shared.summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::run_scenario_with_stores;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "radio-bench-server-{tag}-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    /// One in-process round trip over an ephemeral port: compute, re-answer
    /// from the store, stats, a structured spec error, then shutdown.
    #[test]
    fn server_round_trips_over_an_ephemeral_port() {
        let dir = scratch("roundtrip");
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
        let addr = listener.local_addr().expect("local addr");
        let results_dir = dir.clone();
        let server = std::thread::spawn(move || {
            let results = ResultStore::new(results_dir).with_hot_set(64);
            serve(
                listener,
                &RunnerConfig::serial(),
                None,
                &results,
                &ServeOptions::default(),
            )
            .expect("serve")
        });

        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut ask = |request: &str| -> Json {
            writer.write_all(request.as_bytes()).expect("send");
            writer.write_all(b"\n").expect("send newline");
            writer.flush().expect("flush");
            let mut line = String::new();
            reader.read_line(&mut line).expect("response");
            Json::parse(line.trim()).expect("response is JSON")
        };

        // Cold: every cell computed.
        let run =
            r#"{"cmd":"run","family":"path","size":24,"protocol":"trivial_bfs","seeds":[0,1]}"#;
        let cold = ask(run);
        assert_eq!(cold.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(cold.get("computed").and_then(Json::as_u64), Some(2));
        assert_eq!(cold.get("hits").and_then(Json::as_u64), Some(0));
        let records = cold
            .get("records")
            .and_then(Json::as_array)
            .expect("records");
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0].get("outcome").and_then(Json::as_u64),
            Some(24),
            "trivial BFS labels the whole path"
        );

        // Warm: the identical request is answered from the store (and,
        // with the hot set on, from memory).
        let warm = ask(run);
        assert_eq!(warm.get("computed").and_then(Json::as_u64), Some(0));
        assert_eq!(warm.get("hits").and_then(Json::as_u64), Some(2));
        assert_eq!(warm.get("records"), cold.get("records"));

        // A restricted active set is a different key: computed again, and
        // the wavefront stops at the boundary.
        let restricted = ask(
            r#"{"cmd":"run","family":"path","size":24,"protocol":"trivial_bfs","seeds":[0],"active":[0,1,2,3,4,5,6,7,8,9,10,11]}"#,
        );
        assert_eq!(restricted.get("computed").and_then(Json::as_u64), Some(1));
        let rec = &restricted.get("records").and_then(Json::as_array).unwrap()[0];
        assert_eq!(rec.get("outcome").and_then(Json::as_u64), Some(12));

        // Stats carry the cumulative counters and a non-empty store. The
        // two warm hits were hot-set hits (the cold request populated it).
        let stats = ask(r#"{"cmd":"stats"}"#);
        assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(stats.get("hits").and_then(Json::as_u64), Some(2));
        assert_eq!(stats.get("hot_hits").and_then(Json::as_u64), Some(2));
        assert_eq!(stats.get("served").and_then(Json::as_u64), Some(5));
        assert_eq!(stats.get("computed").and_then(Json::as_u64), Some(3));
        assert_eq!(stats.get("entries").and_then(Json::as_u64), Some(3));
        assert_eq!(stats.get("connections").and_then(Json::as_u64), Some(1));

        // An unknown protocol spec is the registry's structured error, not
        // a dropped connection.
        let err = ask(r#"{"cmd":"run","family":"path","size":8,"protocol":"warp_drive"}"#);
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("code").and_then(Json::as_u64), Some(2));
        assert!(
            err.get("error")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .contains("warp_drive"),
            "error names the bad spec: {err:?}"
        );

        // And malformed JSON likewise.
        let bad = ask("{\"cmd\":");
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));

        let bye = ask(r#"{"cmd":"shutdown"}"#);
        assert_eq!(bye.get("shutdown").and_then(Json::as_bool), Some(true));
        let summary = server.join().expect("server thread");
        assert_eq!(summary.served, 5);
        assert_eq!(summary.computed, 3);
        assert_eq!(summary.connections, 1);
        assert!(summary.requests >= 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A batched request answers every item in request order, as one
    /// response, with per-item and request-level accounting that agree.
    #[test]
    fn batched_requests_answer_items_in_order_with_exact_accounting() {
        let dir = scratch("batch");
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
        let addr = listener.local_addr().expect("local addr");
        let results_dir = dir.clone();
        let server = std::thread::spawn(move || {
            let results = ResultStore::new(results_dir).with_hot_set(64);
            serve(
                listener,
                &RunnerConfig::serial(),
                None,
                &results,
                &ServeOptions::default(),
            )
            .expect("serve")
        });
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut ask = |request: &str| -> Json {
            writer.write_all(request.as_bytes()).expect("send");
            writer.write_all(b"\n").expect("newline");
            writer.flush().expect("flush");
            let mut line = String::new();
            reader.read_line(&mut line).expect("response");
            Json::parse(line.trim()).expect("response is JSON")
        };

        // Warm one item's cells first, so the batch mixes hits and
        // computes across items.
        let single = ask(
            r#"{"cmd":"run","family":"path","size":16,"protocol":"trivial_bfs","seeds":[0,1]}"#,
        );
        assert_eq!(single.get("computed").and_then(Json::as_u64), Some(2));

        let batch = ask(
            r#"{"cmd":"run","batch":[{"family":"path","size":16,"protocol":"trivial_bfs","seeds":[0,1]},{"family":"cycle","size":12,"protocol":"trivial_bfs","seeds":[0]},{"family":"path","size":16,"protocol":"trivial_bfs","seeds":[0,1,2]}]}"#,
        );
        assert_eq!(batch.get("ok").and_then(Json::as_bool), Some(true));
        let items = batch.get("batch").and_then(Json::as_array).expect("batch");
        assert_eq!(items.len(), 3);
        // Item 0: fully warm. Item 1: fully cold. Item 2: two warm cells
        // plus one cold seed.
        assert_eq!(items[0].get("hits").and_then(Json::as_u64), Some(2));
        assert_eq!(items[0].get("computed").and_then(Json::as_u64), Some(0));
        assert_eq!(items[1].get("hits").and_then(Json::as_u64), Some(0));
        assert_eq!(items[1].get("computed").and_then(Json::as_u64), Some(1));
        assert_eq!(items[2].get("hits").and_then(Json::as_u64), Some(2));
        assert_eq!(items[2].get("computed").and_then(Json::as_u64), Some(1));
        // Request totals are the exact sums of the items.
        assert_eq!(batch.get("hits").and_then(Json::as_u64), Some(4));
        assert_eq!(batch.get("computed").and_then(Json::as_u64), Some(2));
        // The warm item's records are byte-wise the records of the single
        // request that warmed them.
        assert_eq!(items[0].get("records"), single.get("records"));
        // And item records are in cell order: the extra seed comes last.
        let third = items[2].get("records").and_then(Json::as_array).unwrap();
        let seeds: Vec<u64> = third
            .iter()
            .filter_map(|r| r.get("seed").and_then(Json::as_u64))
            .collect();
        assert_eq!(seeds, vec![0, 1, 2]);

        // An invalid element refuses the whole request by index; nothing
        // about the server state changes.
        let refused = ask(
            r#"{"cmd":"run","batch":[{"family":"path","size":8,"protocol":"trivial_bfs"},{"family":"warp","size":8,"protocol":"trivial_bfs"}]}"#,
        );
        assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
        assert!(
            refused
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .contains("batch[1]"),
            "error names the offending item: {refused:?}"
        );

        let bye = ask(r#"{"cmd":"shutdown"}"#);
        assert_eq!(bye.get("shutdown").and_then(Json::as_bool), Some(true));
        let summary = server.join().expect("server thread");
        assert_eq!(summary.served, 2 + 6);
        assert_eq!(summary.computed, 2 + 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A named catalog request shares keys with the batch sweep: warming
    /// the store through the runner makes the served request all-hits.
    #[test]
    fn named_catalog_requests_cross_warm_with_batch_sweeps() {
        let dir = scratch("crosswarm");
        let results = ResultStore::new(dir.clone());
        let scenario = catalog_scenario("grid32-trivial").expect("catalog name");
        run_scenario_with_stores(
            &scenario,
            &RunnerConfig::serial(),
            None,
            Some(&results),
            None,
        );
        let warmed_misses = results.misses();

        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            serve(
                listener,
                &RunnerConfig::serial(),
                None,
                &results,
                &ServeOptions::default(),
            )
            .expect("serve")
        });
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        for request in [
            r#"{"cmd":"run","scenario":"grid32-trivial"}"#,
            r#"{"cmd":"shutdown"}"#,
        ] {
            writer.write_all(request.as_bytes()).expect("send");
            writer.write_all(b"\n").expect("newline");
        }
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("run response");
        let run = Json::parse(line.trim()).expect("JSON");
        assert_eq!(
            run.get("computed").and_then(Json::as_u64),
            Some(0),
            "a sweep-warmed store must answer the named request without recomputing"
        );
        assert_eq!(
            run.get("hits").and_then(Json::as_u64),
            Some(scenario.seeds.len() as u64)
        );
        let summary = server.join().expect("server thread");
        assert_eq!(summary.computed, 0, "misses stayed at {warmed_misses}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Requests that panic inside the runner (a CD protocol on a no-CD
    /// stack) come back as structured errors and the server keeps going.
    #[test]
    fn capability_mismatches_are_structured_errors_not_crashes() {
        let dir = scratch("caps");
        let results = ResultStore::new(dir.clone());
        let cfg = RunnerConfig::serial();
        let shared = ServerShared::new(&cfg, None, &results);
        let (response, shutdown) = handle_request(
            r#"{"cmd":"run","family":"path","size":8,"protocol":"trivial_bfs_cd","stack":"physical"}"#,
            &shared,
        );
        assert!(!shutdown);
        let v = Json::parse(&response).expect("JSON error response");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert!(
            v.get("error")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .contains("collision detection"),
            "error names the missing capability: {response}"
        );
        // The server is still able to answer a good request afterwards —
        // the panicking cell neither killed a pool worker nor wedged the
        // batch countdown.
        let (ok_response, _) = handle_request(
            r#"{"cmd":"run","family":"path","size":8,"protocol":"trivial_bfs"}"#,
            &shared,
        );
        let ok = Json::parse(&ok_response).expect("JSON");
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        // A capability mismatch inside a *batch* refuses the batch but
        // leaves the pool healthy too.
        let (mixed, _) = handle_request(
            r#"{"cmd":"run","batch":[{"family":"path","size":8,"protocol":"trivial_bfs","seeds":[7]},{"family":"path","size":8,"protocol":"trivial_bfs_cd","stack":"physical"}]}"#,
            &shared,
        );
        let mixed = Json::parse(&mixed).expect("JSON");
        assert_eq!(mixed.get("ok").and_then(Json::as_bool), Some(false));
        let (after, _) = handle_request(
            r#"{"cmd":"run","family":"path","size":8,"protocol":"trivial_bfs","seeds":[7]}"#,
            &shared,
        );
        let after = Json::parse(&after).expect("JSON");
        assert_eq!(after.get("ok").and_then(Json::as_bool), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }
}
