//! E6/E7 bench: one recursive-BFS query (hierarchy prebuilt) versus the
//! trivial baseline, across path lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use energy_bfs::baseline::trivial_bfs;
use energy_bfs::{build_hierarchy, recursive_bfs_with_hierarchy};
use radio_bench::scaling_config;
use radio_graph::generators;
use radio_protocols::StackBuilder;

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_on_path");
    group.sample_size(10);
    for &n in &[128usize, 512, 1024] {
        let depth = (n - 1) as u64;
        group.bench_with_input(BenchmarkId::new("recursive_query", n), &n, |b, &n| {
            let g = generators::path(n);
            let config = scaling_config(depth, 600);
            let mut net = StackBuilder::new(g).build();
            let hierarchy = build_hierarchy(&mut net, &config);
            b.iter(|| {
                recursive_bfs_with_hierarchy(&mut net, &hierarchy, &[0], depth, &config, &[])
            });
        });
        group.bench_with_input(BenchmarkId::new("trivial_baseline", n), &n, |b, &n| {
            let g = generators::path(n);
            let active = vec![true; n];
            b.iter(|| {
                let mut net = StackBuilder::new(g.clone()).build();
                trivial_bfs(&mut net, &[0], &active, depth)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bfs);
criterion_main!(benches);
