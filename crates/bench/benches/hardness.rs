//! E10/E11 bench: the Theorem 5.1 counting argument and the Theorem 5.2
//! construction, as the instance grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use energy_bfs::hardness::{edge_probing_protocol, GoodSlotAccounting};
use radio_bench::rng;
use radio_graph::generators;
use radio_graph::lower_bound::build_disjointness_graph;

fn bench_hardness(c: &mut Criterion) {
    let mut group = c.benchmark_group("hardness");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        group.bench_with_input(BenchmarkId::new("good_slot_accounting", n), &n, |b, &n| {
            let g = generators::complete(n);
            let mut r = rng(900 + n as u64);
            let (trace, _) = edge_probing_protocol(&g, 64, &mut r);
            b.iter(|| GoodSlotAccounting::evaluate(n, &trace));
        });
    }
    for &ell in &[6u32, 8, 10] {
        group.bench_with_input(
            BenchmarkId::new("disjointness_graph", ell),
            &ell,
            |b, &ell| {
                let k = 1u64 << ell;
                let set_a: Vec<u64> = (0..k / 2).map(|i| (2 * i + 1) % k).collect();
                let set_b: Vec<u64> = (0..k / 2).map(|i| (2 * i) % k).collect();
                b.iter(|| build_disjointness_graph(&set_a, &set_b, ell));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hardness);
criterion_main!(benches);
