//! E3 bench: wall-clock cost of the Decay Local-Broadcast (Lemma 2.4) on the
//! physical simulator as contention grows.
//!
//! The frame and the decay scratch are allocated once per size and reused
//! across iterations, as every hot caller does.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_bench::rng;
use radio_graph::generators;
use radio_sim::{
    decay_local_broadcast, decay_local_broadcast_cd, CollisionDetection, DecayParams, DecayScratch,
    RadioNetwork, RoundFrame,
};

fn bench_decay(c: &mut Criterion) {
    let mut group = c.benchmark_group("decay_local_broadcast");
    group.sample_size(20);
    for &n in &[16usize, 64, 256, 4096] {
        group.bench_with_input(BenchmarkId::new("star_all_senders", n), &n, |b, &n| {
            let g = generators::star(n);
            let params = DecayParams::for_network(n, n - 1);
            let mut frame: RoundFrame<u64> = RoundFrame::new(n);
            let mut scratch: DecayScratch<u64> = DecayScratch::new(n);
            let mut r = rng(300 + n as u64);
            b.iter(|| {
                let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
                frame.clear();
                for v in 1..n {
                    frame.add_sender(v, v as u64);
                }
                frame.add_receiver(0);
                decay_local_broadcast(&mut net, &mut frame, &mut scratch, params, &mut r)
            });
        });
    }
    group.finish();
}

/// CD-aware decay vs plain decay on a sparse instance (one sender on a
/// path, every other node listening): the CD variant resolves hopeless
/// receivers after one iteration and retires the sender via the echo slot,
/// so it simulates far fewer slots — the wall-clock counterpart of the
/// energy saving recorded by the `path-lbsweep-*` scenarios.
fn bench_decay_cd(c: &mut Criterion) {
    let mut group = c.benchmark_group("decay_cd");
    group.sample_size(20);
    for &n in &[64usize, 256, 4096] {
        let g = generators::path(n);
        let params = DecayParams::for_network(n, 2);
        group.bench_with_input(BenchmarkId::new("path_no_cd", n), &n, |b, &n| {
            let mut frame: RoundFrame<u64> = RoundFrame::new(n);
            let mut scratch: DecayScratch<u64> = DecayScratch::new(n);
            let mut r = rng(400 + n as u64);
            b.iter(|| {
                let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
                frame.clear();
                frame.add_sender(0, 7u64);
                for v in 1..n {
                    frame.add_receiver(v);
                }
                decay_local_broadcast(&mut net, &mut frame, &mut scratch, params, &mut r)
            });
        });
        group.bench_with_input(BenchmarkId::new("path_cd", n), &n, |b, &n| {
            let mut frame: RoundFrame<u64> = RoundFrame::new(n);
            let mut scratch: DecayScratch<u64> = DecayScratch::new(n);
            let mut r = rng(400 + n as u64);
            b.iter(|| {
                let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone())
                    .with_collision_detection(CollisionDetection::Receiver);
                frame.clear();
                frame.add_sender(0, 7u64);
                for v in 1..n {
                    frame.add_receiver(v);
                }
                decay_local_broadcast_cd(&mut net, &mut frame, &mut scratch, params, &mut r)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decay, bench_decay_cd);
criterion_main!(benches);
