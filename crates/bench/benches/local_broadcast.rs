//! E3 bench: wall-clock cost of the Decay Local-Broadcast (Lemma 2.4) on the
//! physical simulator as contention grows.
//!
//! The frame and the decay scratch are allocated once per size and reused
//! across iterations, as every hot caller does.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_bench::rng;
use radio_graph::generators;
use radio_sim::{decay_local_broadcast, DecayParams, DecayScratch, RadioNetwork, RoundFrame};

fn bench_decay(c: &mut Criterion) {
    let mut group = c.benchmark_group("decay_local_broadcast");
    group.sample_size(20);
    for &n in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("star_all_senders", n), &n, |b, &n| {
            let g = generators::star(n);
            let params = DecayParams::for_network(n, n - 1);
            let mut frame: RoundFrame<u64> = RoundFrame::new(n);
            let mut scratch: DecayScratch<u64> = DecayScratch::new(n);
            let mut r = rng(300 + n as u64);
            b.iter(|| {
                let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
                frame.clear();
                for v in 1..n {
                    frame.add_sender(v, v as u64);
                }
                frame.add_receiver(0);
                decay_local_broadcast(&mut net, &mut frame, &mut scratch, params, &mut r)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decay);
criterion_main!(benches);
