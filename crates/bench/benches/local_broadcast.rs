//! E3 bench: wall-clock cost of the Decay Local-Broadcast (Lemma 2.4) on the
//! physical simulator as contention grows.

use std::collections::{HashMap, HashSet};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_bench::rng;
use radio_graph::generators;
use radio_sim::{decay_local_broadcast, DecayParams, RadioNetwork};

fn bench_decay(c: &mut Criterion) {
    let mut group = c.benchmark_group("decay_local_broadcast");
    group.sample_size(20);
    for &n in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("star_all_senders", n), &n, |b, &n| {
            let g = generators::star(n);
            let params = DecayParams::for_network(n, n - 1);
            let senders: HashMap<usize, u64> = (1..n).map(|v| (v, v as u64)).collect();
            let receivers: HashSet<usize> = [0usize].into_iter().collect();
            let mut r = rng(300 + n as u64);
            b.iter(|| {
                let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
                decay_local_broadcast(&mut net, &senders, &receivers, params, &mut r)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decay);
criterion_main!(benches);
