//! E1/E2 bench: centralized MPX clustering and the distance-proxy checks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_bench::rng;
use radio_graph::cluster_graph::{distance_proxy_stats, ClusterGraph};
use radio_graph::generators;
use radio_graph::mpx::{cluster_centralized, MpxParams};

fn bench_mpx(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpx_clustering");
    group.sample_size(20);
    for &side in &[16usize, 32, 48] {
        group.bench_with_input(BenchmarkId::new("cluster_grid", side), &side, |b, &side| {
            let g = generators::grid(side, side);
            let params = MpxParams::from_inverse_beta(8);
            let mut r = rng(100 + side as u64);
            b.iter(|| cluster_centralized(&g, params, &mut r));
        });
    }
    group.bench_function("distance_proxy_grid_30", |b| {
        let g = generators::grid(30, 30);
        let params = MpxParams::from_inverse_beta(8);
        let mut r = rng(111);
        let clustering = cluster_centralized(&g, params, &mut r);
        let cg = ClusterGraph::build(&g, clustering);
        let pairs: Vec<(usize, usize)> = (0..g.num_nodes())
            .step_by(31)
            .flat_map(|u| (0..g.num_nodes()).step_by(37).map(move |v| (u, v)))
            .collect();
        b.iter(|| distance_proxy_stats(&g, &cg, &pairs, 4.0));
    });
    group.finish();
}

criterion_group!(benches, bench_mpx);
criterion_main!(benches);
