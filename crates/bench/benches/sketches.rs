//! Sketch-subsystem bench: word-parallel HLL kernels in isolation, and
//! the full HyperBall protocol end to end.
//!
//! Two groups:
//!
//! * `sketch_kernels` — `merge_words` / `covers_words` / `estimate_words`
//!   on realistic register arrays across precisions, with a per-byte
//!   scalar merge as the reference the SWAR kernel is measured against.
//!   Merge-as-receive makes this kernel the per-delivery cost of every
//!   HyperBall round, so its throughput bounds the protocol's constant.
//! * `hyperball` — full `hyperball:p=6` runs to convergence on grids of
//!   n ∈ {1024, 4096}, through the same `Protocol::run` path the sweep
//!   uses; the number every sketch-vs-exact energy comparison rests on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_graph::generators;
use radio_protocols::protocol::{Protocol, ProtocolInput};
use radio_protocols::sketch::{covers_words, estimate_words, merge_words, node_hash};
use radio_protocols::{HllSketch, HyperballProtocol, StackBuilder};

/// A realistic register array: the sketch of `count` hashed items.
fn loaded_sketch(p: u32, seed: u64, count: usize) -> HllSketch {
    let mut s = HllSketch::new(p);
    for v in 0..count {
        s.insert_hash(node_hash(seed, v));
    }
    s
}

/// Per-byte scalar merge — the reference implementation the word-parallel
/// kernel replaces.
fn merge_scalar_ref(dst: &mut [u64], src: &[u64]) -> bool {
    let mut grew = false;
    for (d, &s) in dst.iter_mut().zip(src) {
        for lane in 0..8 {
            let shift = 8 * lane;
            let a = (*d >> shift) & 0xFF;
            let b = (s >> shift) & 0xFF;
            if b > a {
                *d = (*d & !(0xFFu64 << shift)) | (b << shift);
                grew = true;
            }
        }
    }
    grew
}

fn bench_sketch_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_kernels");
    group.sample_size(200);
    for &p in &[8u32, 10, 12] {
        let a = loaded_sketch(p, 7, 4096);
        let b_sk = loaded_sketch(p, 11, 4096);
        let words = a.words().len();
        let id = format!("p{p}/{words}w");

        group.bench_with_input(BenchmarkId::new("merge_words", &id), &p, |b, _| {
            let mut dst = a.words().to_vec();
            b.iter(|| {
                dst.copy_from_slice(a.words());
                black_box(merge_words(&mut dst, b_sk.words()))
            });
        });
        group.bench_with_input(BenchmarkId::new("merge_scalar_ref", &id), &p, |b, _| {
            let mut dst = a.words().to_vec();
            b.iter(|| {
                dst.copy_from_slice(a.words());
                black_box(merge_scalar_ref(&mut dst, b_sk.words()))
            });
        });
        group.bench_with_input(BenchmarkId::new("covers_words", &id), &p, |b, _| {
            b.iter(|| black_box(covers_words(a.words(), b_sk.words())))
        });
        group.bench_with_input(BenchmarkId::new("estimate_words", &id), &p, |b, _| {
            b.iter(|| black_box(estimate_words(a.words(), p)))
        });
    }
    group.finish();
}

fn bench_hyperball(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyperball");
    group.sample_size(10);
    for &side in &[32usize, 64] {
        let n = side * side;
        let g = generators::grid(side, side);
        group.bench_with_input(BenchmarkId::new("grid_p6", n), &n, |b, _| {
            let proto = HyperballProtocol { p: 6, rounds: None };
            b.iter(|| {
                let mut net = StackBuilder::new(g.clone()).build();
                let report = proto
                    .run(&mut net, &ProtocolInput::from_seed(0))
                    .expect("hyperball runs on the abstract stack");
                black_box(report.outcome())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sketch_kernels, bench_hyperball);
criterion_main!(benches);
