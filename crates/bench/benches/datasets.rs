//! PR-7 bench: the dataset substrate and the setup-vs-run split at xl
//! scale.
//!
//! Three groups:
//!
//! * `dataset_build` — generator cost per family at 2^16 (what a cache
//!   *miss* pays once, and what every sweep re-run used to pay per size).
//! * `dataset_load` — bulk-reading the compiled CSR artifact at sizes up
//!   to 2^20 (what a cache *hit* pays), plus `arc_clone`, the per-cell
//!   share cost — the two numbers the content-addressed cache trades the
//!   generator for.
//! * `xl_sweep_setup_vs_run` — at n = 2^20: the old per-cell setup
//!   (`graph_clone`: a full CSR copy, what `run_cell` did before), the new
//!   per-cell setup (`arc_stack_build`: refcount bump + stack
//!   construction), and one full protocol cell (`cell_run`:
//!   `trivial_bfs:depth=64`). Setup no longer dominating at 2^20 means
//!   `arc_stack_build ≪ cell_run` where `graph_clone` was comparable to
//!   it.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_bench::scenarios::{Family, Protocol, StackSpec};
use radio_graph::dataset::{read_artifact, write_artifact, DatasetCache};
use radio_graph::Graph;
use radio_protocols::protocol::ProtocolInput;

fn bench_dataset_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_build");
    group.sample_size(10);
    let n = 1usize << 16;
    for family in [Family::Path, Family::Grid, Family::GridHilbert] {
        group.bench_with_input(BenchmarkId::from_parameter(family.label()), &n, |b, &n| {
            b.iter(|| black_box(family.build(n)).num_edges())
        });
    }
    group.finish();
}

fn bench_dataset_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_load");
    group.sample_size(10);
    let dir = std::env::temp_dir().join(format!("radio-dataset-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let cache = DatasetCache::new(&dir);
    for &exp in &[16u32, 18, 20] {
        let n = 1usize << exp;
        let key = Family::Grid.dataset_key(n);
        let path = cache.path_for(&key);
        let g = Family::Grid.build(n);
        write_artifact(&path, &key, &g).expect("write artifact");
        group.bench_with_input(BenchmarkId::new("grid", format!("2^{exp}")), &n, |b, _| {
            b.iter(|| black_box(read_artifact(&path, &key).expect("read")).num_edges())
        });
        let shared = Arc::new(g);
        group.bench_with_input(
            BenchmarkId::new("arc_clone", format!("2^{exp}")),
            &n,
            |b, _| b.iter(|| black_box(Arc::clone(&shared)).num_nodes()),
        );
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_xl_setup_vs_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("xl_sweep_setup_vs_run");
    group.sample_size(10);
    let n = 1usize << 20;
    let shared: Arc<Graph> = Arc::new(Family::Grid.build(n));
    let spec = StackSpec::Abstract;

    // The pre-PR-7 per-cell setup: one full CSR copy per (size, seed).
    group.bench_function("graph_clone", |b| {
        b.iter(|| black_box(Graph::clone(&shared)).num_edges())
    });
    // The post-PR-7 per-cell setup: refcount bump + stack construction.
    group.bench_function("arc_stack_build", |b| {
        b.iter(|| {
            let stack = spec.build(Arc::clone(&shared), 0);
            black_box(stack).graph().num_nodes()
        })
    });
    // One full xl cell: the depth-64 wavefront, frame included — the work
    // the setup should be negligible next to.
    let protocol = energy_bfs::protocol::registry()
        .get(&Protocol::TrivialBfsDepth { depth: 64 }.spec())
        .expect("registry spec");
    group.bench_function("cell_run", |b| {
        let mut frame = radio_protocols::LbFrame::new(n);
        b.iter(|| {
            let mut stack = spec.build(Arc::clone(&shared), 0);
            let report = protocol
                .run_with_frame(&mut stack, &ProtocolInput::from_seed(0), &mut frame)
                .expect("cell run");
            black_box(report.outcome())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dataset_build,
    bench_dataset_load,
    bench_xl_setup_vs_run
);
criterion_main!(benches);
