//! E5 bench: simulating one Local-Broadcast on the cluster graph
//! (Lemma 3.2), i.e. the per-virtual-call overhead the recursion pays.
//!
//! The virtual net and the cluster-level frame are built once per size and
//! reused across iterations — the steady-state shape of the recursion,
//! where one `VirtualClusterNet` serves thousands of calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_bench::rng;
use radio_graph::generators;
use radio_protocols::{
    cluster_distributed, ClusteringConfig, Msg, RadioStack, StackBuilder, VirtualClusterNet,
};

fn bench_virtual_lb(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtual_cluster_local_broadcast");
    group.sample_size(20);
    for &side in &[12usize, 20, 28, 64] {
        group.bench_with_input(BenchmarkId::new("grid", side), &side, |b, &side| {
            let g = generators::grid(side, side);
            let cfg = ClusteringConfig::new(4);
            let mut r = rng(500 + side as u64);
            let mut net = StackBuilder::new(g.clone()).build();
            let state = cluster_distributed(&mut net, &cfg, &mut r);
            let k = state.num_clusters();
            let mut virt = VirtualClusterNet::new(&mut net, &state);
            let mut frame = virt.new_frame();
            b.iter(|| {
                frame.clear();
                for c in 0..k / 2 {
                    frame.add_sender(c, Msg::words(&[c as u64]));
                }
                for c in k / 2..k {
                    frame.add_receiver(c);
                }
                virt.local_broadcast(&mut frame);
                frame.delivered().len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_virtual_lb);
criterion_main!(benches);
