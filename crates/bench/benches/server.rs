//! PR-9 bench: serve-mode request latency and accept-pool scaleout.
//!
//! Two groups:
//!
//! * `server_warm` — round-trip latency of one warm request over TCP
//!   (single scenario, then a 3-item batch), measured on a persistent
//!   connection against a hot-set-backed store. This is the serve mode's
//!   steady-state unit cost: one hot-set probe + one response line.
//! * `server_scaleout` — the accept-pool acceptance number: four
//!   concurrent clients, each issuing a warm think-time request mix over
//!   its own connection, against `--accept-threads 1` (the PR 8
//!   single-connection behaviour: connections are served one at a time to
//!   completion) and `--accept-threads 4`. The `mix_accept1` /
//!   `mix_accept4` mean ratio is the aggregate-throughput speedup
//!   recorded in BENCH_pr9.json (`meta.server_scaleout`, acceptance
//!   ≥ 3x). Think time dominates compute, so the ratio measures
//!   connection-level concurrency, not CPU count.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use radio_bench::results::ResultStore;
use radio_bench::scenarios::RunnerConfig;
use radio_bench::server::{serve, ServeOptions, ServeSummary};

const WARM_SINGLE: &str =
    r#"{"cmd":"run","family":"path","size":48,"protocol":"trivial_bfs","seeds":[0,1,2]}"#;
const WARM_BATCH: &str = r#"{"cmd":"run","batch":[{"family":"path","size":48,"protocol":"trivial_bfs","seeds":[0,1,2]},{"family":"grid","size":64,"protocol":"trivial_bfs","seeds":[0,1]},{"family":"cycle","size":40,"protocol":"trivial_bfs","seeds":[0]}]}"#;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("radio-server-bench-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    dir
}

fn start_server(
    dir: &Path,
    accept_threads: usize,
) -> (std::net::SocketAddr, std::thread::JoinHandle<ServeSummary>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let dir = dir.to_path_buf();
    let handle = std::thread::spawn(move || {
        let results = ResultStore::new(dir).with_hot_set(256);
        serve(
            listener,
            &RunnerConfig::serial(),
            None,
            &results,
            &ServeOptions { accept_threads },
        )
        .expect("serve")
    });
    (addr, handle)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        // Mirror the server's transport discipline on the client side: one
        // write per request and TCP_NODELAY, so the bench measures the
        // server, not client-side Nagle/delayed-ACK stalls.
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().expect("clone");
        Client {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn ask(&mut self, line: &str) -> String {
        let mut request = String::with_capacity(line.len() + 1);
        request.push_str(line);
        request.push('\n');
        self.writer.write_all(request.as_bytes()).expect("send");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("response");
        response
    }
}

fn shutdown(addr: std::net::SocketAddr) {
    let mut c = Client::connect(addr);
    let _ = c.ask(r#"{"cmd":"shutdown"}"#);
}

fn bench_server_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_warm");
    group.sample_size(30);
    let dir = scratch("warm");
    let (addr, server) = start_server(&dir, 2);
    let mut client = Client::connect(addr);
    // Warm every cell of both requests (and the hot set) before timing.
    let _ = client.ask(WARM_SINGLE);
    let _ = client.ask(WARM_BATCH);
    group.bench_function("single_request", |b| {
        b.iter(|| black_box(client.ask(WARM_SINGLE)).len())
    });
    group.bench_function("batched_request", |b| {
        b.iter(|| black_box(client.ask(WARM_BATCH)).len())
    });
    group.finish();
    drop(client);
    shutdown(addr);
    server.join().expect("server");
    std::fs::remove_dir_all(&dir).ok();
}

/// One client's share of the scaleout mix: REQUESTS warm asks with a
/// think-time sleep between them, on its own connection.
fn client_mix(addr: std::net::SocketAddr) {
    const REQUESTS: usize = 12;
    const THINK: Duration = Duration::from_millis(2);
    let mut client = Client::connect(addr);
    for i in 0..REQUESTS {
        let request = if i % 2 == 0 { WARM_SINGLE } else { WARM_BATCH };
        let response = client.ask(request);
        assert!(response.starts_with(r#"{"ok":true"#), "{response}");
        std::thread::sleep(THINK);
    }
}

fn run_mix(addr: std::net::SocketAddr, clients: usize) {
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| client_mix(addr));
        }
    });
}

fn bench_server_scaleout(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_scaleout");
    group.sample_size(10);
    const CLIENTS: usize = 4;
    for accept_threads in [1usize, 4] {
        let dir = scratch(&format!("scaleout-{accept_threads}"));
        let (addr, server) = start_server(&dir, accept_threads);
        // Warm the store once so the mix is pure transport + think time.
        let mut warmer = Client::connect(addr);
        let _ = warmer.ask(WARM_SINGLE);
        let _ = warmer.ask(WARM_BATCH);
        drop(warmer);
        group.bench_function(format!("mix_accept{accept_threads}"), |b| {
            b.iter(|| run_mix(addr, CLIENTS))
        });
        shutdown(addr);
        server.join().expect("server");
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_server_warm, bench_server_scaleout);
criterion_main!(benches);
