//! Protocol-registry bench: the dispatch overhead of the first-class
//! `Protocol` surface (spec resolution + capability gate + energy-diff
//! report) against the direct free-function call it wraps, plus the two
//! wavefront baselines side by side. Dispatch must be noise-level: the
//! report costs two `EnergyView` snapshots per run, everything else is a
//! vtable call.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use energy_bfs::baseline::trivial_bfs_with_frame;
use energy_bfs::protocol::registry;
use radio_graph::generators;
use radio_protocols::protocol::ProtocolInput;
use radio_protocols::{RadioStack, StackBuilder};

fn bench_registry_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_registry");
    group.sample_size(20);
    for &n in &[256usize, 1024] {
        let side = (n as f64).sqrt() as usize;
        let g = generators::grid(side, side);
        group.bench_with_input(BenchmarkId::new("trivial_direct", n), &n, |b, _| {
            let mut frame = radio_protocols::LbFrame::new(g.num_nodes());
            b.iter(|| {
                let mut net = StackBuilder::new(g.clone()).with_seed(1).build();
                let nodes = net.num_nodes();
                let active = vec![true; nodes];
                let result =
                    trivial_bfs_with_frame(&mut net, &[0], &active, nodes as u64, &mut frame);
                result.dist.iter().filter(|d| d.is_some()).count()
            });
        });
        group.bench_with_input(BenchmarkId::new("trivial_registry", n), &n, |b, _| {
            // Spec resolution inside the loop, as the scenario runner pays
            // it once per scenario — still noise next to the BFS itself.
            let mut frame = radio_protocols::LbFrame::new(g.num_nodes());
            b.iter(|| {
                let protocol = registry().get("trivial_bfs").expect("registered");
                let mut net = StackBuilder::new(g.clone()).with_seed(1).build();
                let report = protocol
                    .run_with_frame(&mut net, &ProtocolInput::from_seed(1), &mut frame)
                    .expect("capabilities satisfied");
                report.outcome()
            });
        });
        group.bench_with_input(BenchmarkId::new("decay_registry", n), &n, |b, _| {
            let mut frame = radio_protocols::LbFrame::new(g.num_nodes());
            b.iter(|| {
                let protocol = registry().get("decay_bfs").expect("registered");
                let mut net = StackBuilder::new(g.clone()).with_seed(1).build();
                let report = protocol
                    .run_with_frame(&mut net, &ProtocolInput::from_seed(1), &mut frame)
                    .expect("capabilities satisfied");
                report.outcome()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_registry_dispatch);
criterion_main!(benches);
