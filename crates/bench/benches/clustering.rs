//! E4 bench: distributed MPX clustering (Lemma 2.5) across graph sizes and β.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_bench::rng;
use radio_graph::generators;
use radio_protocols::{cluster_distributed, ClusteringConfig, StackBuilder};

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_clustering");
    group.sample_size(10);
    for &side in &[10usize, 20, 30] {
        for &inv_beta in &[4u64, 8] {
            let id = format!("grid{side}x{side}_invbeta{inv_beta}");
            group.bench_with_input(
                BenchmarkId::new("grid", id),
                &(side, inv_beta),
                |b, &(side, inv_beta)| {
                    let g = generators::grid(side, side);
                    let cfg = ClusteringConfig::new(inv_beta);
                    let mut r = rng(400 + side as u64 + inv_beta);
                    b.iter(|| {
                        let mut net = StackBuilder::new(g.clone()).build();
                        cluster_distributed(&mut net, &cfg, &mut r)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
