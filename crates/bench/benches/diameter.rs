//! E12/E13 bench: the two diameter approximations on a fixed graph family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use energy_bfs::diameter::{three_halves_approx_diameter, two_approx_diameter};
use energy_bfs::RecursiveBfsConfig;
use radio_graph::generators;
use radio_protocols::StackBuilder;

fn config() -> RecursiveBfsConfig {
    RecursiveBfsConfig {
        inv_beta: 8,
        max_depth: 1,
        trivial_cutoff: 8,
        seed: 70,
        ..Default::default()
    }
}

fn bench_diameter(c: &mut Criterion) {
    let mut group = c.benchmark_group("diameter_approximation");
    group.sample_size(10);
    for &side in &[6usize, 8, 10] {
        group.bench_with_input(
            BenchmarkId::new("two_approx_grid", side),
            &side,
            |b, &side| {
                let g = generators::grid(side, side);
                b.iter(|| {
                    let mut net = StackBuilder::new(g.clone()).build();
                    two_approx_diameter(&mut net, &config())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("three_halves_grid", side),
            &side,
            |b, &side| {
                let g = generators::grid(side, side);
                b.iter(|| {
                    let mut net = StackBuilder::new(g.clone()).build();
                    three_halves_approx_diameter(&mut net, &config(), 7)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_diameter);
criterion_main!(benches);
