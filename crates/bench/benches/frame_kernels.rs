//! E6 bench: the word-parallel frame kernels in isolation.
//!
//! Two groups:
//!
//! * `nodeset_kernels` — bulk [`NodeSet`] operations (`union_with`,
//!   `difference_with`, `count_intersection`) against a per-bit scalar
//!   reference, across universe sizes and fill densities. The kernels are
//!   what every hot loop in the simulator now calls, so their throughput
//!   bounds the per-slot cost of delivery resolution and decay bookkeeping.
//! * `delivery_resolution` — `step_frame_scan` vs `step_frame_columnar` on
//!   the same physical slot, at the two extremes the adaptive dispatch in
//!   `step_frame` arbitrates between: a handful of transmitters with the
//!   whole graph listening (columnar territory) and a dense transmitter set
//!   (scan territory).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_graph::generators;
use radio_sim::{NodeSet, RadioNetwork, SlotFrame};

/// A deterministic set over `0..n` holding every `stride`-th element,
/// phase-shifted so two sets with different offsets overlap partially.
fn strided_set(n: usize, stride: usize, offset: usize) -> NodeSet {
    let mut s = NodeSet::new(n);
    let mut v = offset % stride.max(1);
    while v < n {
        s.insert(v);
        v += stride;
    }
    s
}

fn bench_nodeset_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("nodeset_kernels");
    group.sample_size(200);
    for &n in &[1024usize, 4096, 16384] {
        // stride 64 ≈ 1.6% full (sparse), stride 2 = 50% full (dense).
        for &(label, stride) in &[("sparse", 64usize), ("dense", 2)] {
            let a = strided_set(n, stride, 0);
            let b_set = strided_set(n, stride, stride / 2 + 1);
            let id = format!("{label}/{n}");

            group.bench_with_input(BenchmarkId::new("union_with", &id), &n, |b, _| {
                let mut dst = NodeSet::new(n);
                b.iter(|| {
                    dst.copy_from(&a);
                    dst.union_with(&b_set);
                    black_box(dst.len())
                });
            });
            group.bench_with_input(BenchmarkId::new("union_scalar_ref", &id), &n, |b, _| {
                let mut dst = NodeSet::new(n);
                b.iter(|| {
                    dst.copy_from(&a);
                    for v in b_set.iter() {
                        dst.insert(v);
                    }
                    black_box(dst.len())
                });
            });
            group.bench_with_input(BenchmarkId::new("difference_with", &id), &n, |b, _| {
                let mut dst = NodeSet::new(n);
                b.iter(|| {
                    dst.copy_from(&a);
                    dst.difference_with(&b_set);
                    black_box(dst.len())
                });
            });
            group.bench_with_input(BenchmarkId::new("count_intersection", &id), &n, |b, _| {
                b.iter(|| black_box(a.count_intersection(&b_set)))
            });
        }
    }
    group.finish();
}

/// One physical slot on a grid: `k` spread-out transmitters, everyone else
/// listening. Benchmarks both resolution paths on the identical frame so
/// the crossover the adaptive dispatch encodes is visible in wall-clock.
fn bench_delivery_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("delivery_resolution");
    group.sample_size(50);
    let side = 64usize;
    let n = side * side;
    let g = generators::grid(side, side);
    for &k in &[4usize, 64, 1024] {
        let mut frame: SlotFrame<u64> = SlotFrame::new(n);
        for i in 0..k {
            frame.transmit.insert(i * (n / k), i as u64);
        }
        for v in 0..n {
            if frame.transmit.get(v).is_none() {
                frame.listen.insert(v);
            }
        }
        group.bench_with_input(BenchmarkId::new("scan", k), &k, |b, _| {
            let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
            b.iter(|| {
                net.step_frame_scan(&mut frame);
                black_box(frame.received.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("columnar", k), &k, |b, _| {
            let mut net: RadioNetwork<u64> = RadioNetwork::new(g.clone());
            b.iter(|| {
                net.step_frame_columnar(&mut frame);
                black_box(frame.received.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nodeset_kernels, bench_delivery_resolution);
criterion_main!(benches);
