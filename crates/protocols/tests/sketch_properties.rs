//! Property-based tests for the sketch algebra: HyperLogLog merge as a
//! join-semilattice (commutative, associative, idempotent, and equal to
//! the sketch of the set union), the `covers`/`merge` convergence
//! contract, payload round-trips, and — on random connected graphs of up
//! to 64 nodes — the HyperBall recurrence against *exact* BFS
//! neighborhood balls with monotone estimates along the radius.

use std::collections::VecDeque;

use proptest::prelude::*;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use radio_graph::{generators, Graph};
use radio_protocols::sketch::{
    covers_words, node_hash, words_for, HllSketch, MAX_PRECISION, MIN_PRECISION,
};

/// The sketch of an explicit node set — the executable specification every
/// algebra law below is checked against.
fn sketch_of(p: u32, seed: u64, nodes: &[usize]) -> HllSketch {
    let mut s = HllSketch::new(p);
    for &v in nodes {
        s.insert_hash(node_hash(seed, v));
    }
    s
}

fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (
        3usize..65,
        any::<u64>(),
        proptest::collection::vec((0usize..64, 0usize..64), 0..48),
    )
        .prop_map(|(n, seed, extra)| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let tree = generators::random_tree(n, &mut rng);
            let mut edges: Vec<(usize, usize)> = tree.edges().collect();
            for (u, v) in extra {
                if u % n != v % n {
                    edges.push((u % n, v % n));
                }
            }
            Graph::from_edges(n, &edges)
        })
}

/// Single-source BFS distances on a connected graph.
fn bfs_distances(g: &Graph, src: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merge is a join-semilattice on the register arrays, and agrees with
    /// the set semantics: sketching `A ∪ B` directly gives exactly the
    /// merge of the two per-set sketches.
    #[test]
    fn merge_is_a_join_semilattice_over_set_union(
        p in MIN_PRECISION..MAX_PRECISION + 1,
        seed in any::<u64>(),
        set_a in proptest::collection::vec(0usize..512, 0..64),
        set_b in proptest::collection::vec(0usize..512, 0..64),
        set_c in proptest::collection::vec(0usize..512, 0..64),
    ) {
        let a = sketch_of(p, seed, &set_a);
        let b = sketch_of(p, seed, &set_b);
        let c = sketch_of(p, seed, &set_c);
        prop_assert_eq!(a.words().len(), words_for(p));

        // Union semantics: merge(sketch(A), sketch(B)) == sketch(A ∪ B).
        let mut union_ab: Vec<usize> = set_a.clone();
        union_ab.extend_from_slice(&set_b);
        let direct = sketch_of(p, seed, &union_ab);
        let mut ab = a.clone();
        ab.merge(&b);
        prop_assert_eq!(&ab, &direct);

        // Commutativity.
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Idempotence, reported through the "did anything grow" flag.
        let mut aa = a.clone();
        prop_assert!(!aa.merge(&a));
        prop_assert_eq!(&aa, &a);

        // `merge` grows iff `covers` said it would not be a no-op, and the
        // result dominates both inputs — the local convergence contract
        // HyperBall's sender-set maintenance relies on.
        let covered = covers_words(a.words(), b.words());
        let mut m = a.clone();
        let grew = m.merge(&b);
        prop_assert_eq!(grew, !covered);
        prop_assert!(covers_words(m.words(), a.words()));
        prop_assert!(covers_words(m.words(), b.words()));

        // Local-Broadcast payload round-trip.
        prop_assert_eq!(HllSketch::from_msg(p, &a.to_msg()), Some(a.clone()));

        // Fixed points of the estimator at the bottom of the lattice: the
        // empty sketch reads 0 and any singleton reads m·ln(m/(m−1)) ≈ 1,
        // independent of which register the hash lands in.
        prop_assert_eq!(HllSketch::new(p).estimate(), 0.0);
        let one = sketch_of(p, seed, &set_a[..set_a.len().min(1)]);
        if !set_a.is_empty() {
            prop_assert!((one.estimate() - 1.0).abs() < 0.05);
        }
    }

    /// On random connected graphs of ≤ 64 nodes, the HyperBall recurrence
    /// `S_r(v) = S_{r−1}(v) ∪ ⋃_{u∈N(v)} S_{r−1}(u)` reproduces the sketch
    /// of the *exact* BFS ball `B_r(v)` at every radius, registers only
    /// ever grow along the radius, and the estimates are monotone
    /// non-decreasing. With `p ≥ 8` every ball sketch here has `≥ 2^p − n
    /// > 0` zero registers, so the estimator stays in its linear-counting
    /// regime throughout and the monotonicity is exact, not statistical.
    #[test]
    fn hyperball_recurrence_matches_exact_balls_with_monotone_estimates(
        g in arb_connected_graph(),
        seed in any::<u64>(),
        p in 8u32..11,
    ) {
        let n = g.num_nodes();
        let dist: Vec<Vec<usize>> = (0..n).map(|v| bfs_distances(&g, v)).collect();
        let max_ecc = dist
            .iter()
            .map(|row| row.iter().copied().max().unwrap_or(0))
            .max()
            .unwrap_or(0);

        let mut cur: Vec<HllSketch> =
            (0..n).map(|v| HllSketch::singleton(p, seed, v)).collect();
        let mut prev_est: Vec<f64> = cur.iter().map(HllSketch::estimate).collect();

        for r in 1..=max_ecc {
            let next: Vec<HllSketch> = (0..n)
                .map(|v| {
                    let mut s = cur[v].clone();
                    for &u in g.neighbors(v) {
                        s.merge(&cur[u]);
                    }
                    s
                })
                .collect();
            for v in 0..n {
                let ball: Vec<usize> =
                    (0..n).filter(|&u| dist[v][u] <= r).collect();
                let direct = sketch_of(p, seed, &ball);
                prop_assert_eq!(
                    &next[v], &direct,
                    "recurrence diverged from the exact ball B_{}({})", r, v
                );
                prop_assert!(covers_words(next[v].words(), cur[v].words()));
                let est = next[v].estimate();
                prop_assert!(
                    est >= prev_est[v] - 1e-9,
                    "estimate shrank at radius {} of node {}: {} < {}",
                    r, v, est, prev_est[v]
                );
                prev_est[v] = est;
            }
            cur = next;
        }

        // After ecc(G) rounds every ball is V(G): all counters agree with
        // the whole-graph sketch.
        let everyone: Vec<usize> = (0..n).collect();
        let full = sketch_of(p, seed, &everyone);
        for counter in &cur {
            prop_assert_eq!(counter, &full);
        }
    }
}
