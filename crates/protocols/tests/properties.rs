//! Property-based tests for the Local-Broadcast layer: the delivery
//! specification of the abstract backend, the ledger arithmetic, the
//! structural guarantees of the distributed clustering and the casts on
//! randomly generated connected graphs — and the equivalence of the dense
//! frame-based engine with a straightforward map-based reference
//! implementation of the Local-Broadcast specification.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use radio_graph::{generators, Graph};
use radio_protocols::cast::{down_cast, up_cast};
use radio_protocols::Stack;
use radio_protocols::{
    cluster_distributed, local_broadcast_once, ClusteringConfig, CollisionDetection, EnergyModel,
    Msg, NodeSet, NodeSlots, RadioStack, StackBuilder,
};

fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (
        3usize..30,
        any::<u64>(),
        proptest::collection::vec((0usize..30, 0usize..30), 0..40),
    )
        .prop_map(|(n, seed, extra)| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let tree = generators::random_tree(n, &mut rng);
            let mut edges: Vec<(usize, usize)> = tree.edges().collect();
            for (u, v) in extra {
                if u % n != v % n {
                    edges.push((u % n, v % n));
                }
            }
            Graph::from_edges(n, &edges)
        })
}

/// A straightforward map-based reference implementation of one reliable
/// Local-Broadcast call — the representation the seed repository used —
/// kept here purely as an executable specification for the frame engine.
/// Iterates receivers in sorted order and draws the uniform sender pick
/// from the same RNG discipline as `AbstractLbNetwork`, so a reliable
/// frame-based call must reproduce it exactly.
fn reference_local_broadcast(
    g: &Graph,
    senders: &HashMap<usize, Msg>,
    receivers: &HashSet<usize>,
    rng: &mut ChaCha8Rng,
) -> HashMap<usize, Msg> {
    let mut delivered = HashMap::new();
    let mut ordered: Vec<usize> = receivers.iter().copied().collect();
    ordered.sort_unstable();
    for r in ordered {
        if senders.contains_key(&r) {
            continue;
        }
        let sending: Vec<usize> = g
            .neighbors(r)
            .iter()
            .copied()
            .filter(|u| senders.contains_key(u))
            .collect();
        if sending.is_empty() {
            continue;
        }
        let pick = sending[rng.gen_range(0..sending.len())];
        delivered.insert(r, senders[&pick].clone());
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn local_broadcast_delivery_matches_spec(
        g in arb_connected_graph(),
        sender_bits in proptest::collection::vec(any::<bool>(), 30),
        receiver_bits in proptest::collection::vec(any::<bool>(), 30),
    ) {
        let n = g.num_nodes();
        let senders: Vec<(usize, Msg)> = (0..n)
            .filter(|&v| sender_bits[v % sender_bits.len()])
            .map(|v| (v, Msg::words(&[v as u64])))
            .collect();
        let sender_ids: HashSet<usize> = senders.iter().map(|&(v, _)| v).collect();
        let receivers: Vec<usize> = (0..n)
            .filter(|&v| receiver_bits[v % receiver_bits.len()] && !sender_ids.contains(&v))
            .collect();
        let mut net = StackBuilder::new(g.clone()).build();
        let out = local_broadcast_once(&mut net, &senders, &receivers);
        for &r in &receivers {
            let has_sending_neighbor = g.neighbors(r).iter().any(|u| sender_ids.contains(u));
            match out.get(r) {
                Some(m) => {
                    // The message must come from an actual sending neighbour.
                    let from = m.word(0) as usize;
                    prop_assert!(g.has_edge(r, from));
                    prop_assert!(sender_ids.contains(&from));
                }
                None => prop_assert!(!has_sending_neighbor, "receiver {} missed a delivery", r),
            }
        }
        // Non-receivers never appear in the output.
        for (v, _) in out.iter() {
            prop_assert!(receivers.contains(&v));
        }
        // Ledger: exactly one call, every participant charged exactly once.
        prop_assert_eq!(net.lb_time(), 1);
        for v in 0..n {
            let expected = u64::from(sender_ids.contains(&v) || receivers.contains(&v));
            prop_assert_eq!(net.lb_energy(v), expected);
        }
    }

    /// Cross-backend equivalence: on seeded instances, the frame-based
    /// engine delivers exactly the receiver → message outcomes of the
    /// map-based reference implementation (same RNG seed), and charges the
    /// same per-node energy.
    #[test]
    fn frame_engine_matches_map_reference(
        g in arb_connected_graph(),
        seed in 0u64..1000,
        sender_bits in proptest::collection::vec(any::<bool>(), 30),
        receiver_bits in proptest::collection::vec(any::<bool>(), 30),
    ) {
        let n = g.num_nodes();
        let sender_map: HashMap<usize, Msg> = (0..n)
            .filter(|&v| sender_bits[v % sender_bits.len()])
            .map(|v| (v, Msg::words(&[100 + v as u64])))
            .collect();
        let receiver_set: HashSet<usize> = (0..n)
            .filter(|&v| receiver_bits[v % receiver_bits.len()] && !sender_map.contains_key(&v))
            .collect();

        // Frame engine, seeded.
        let mut net = StackBuilder::new(g.clone()).with_seed(seed).build();
        let senders: Vec<(usize, Msg)> =
            sender_map.iter().map(|(&v, m)| (v, m.clone())).collect();
        let receivers: Vec<usize> = receiver_set.iter().copied().collect();
        let out = local_broadcast_once(&mut net, &senders, &receivers);

        // Reference, same seed. `with_failures(0.0, seed)` reseeds the
        // network's RNG, whose only draws are the per-receiver picks.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let want = reference_local_broadcast(&g, &sender_map, &receiver_set, &mut rng);

        let got: HashMap<usize, Msg> = out.iter().map(|(v, m)| (v, m.clone())).collect();
        prop_assert_eq!(got, want);

        // Energy parity with the specification's accounting.
        for v in 0..n {
            let expected = u64::from(sender_map.contains_key(&v) || receiver_set.contains(&v));
            prop_assert_eq!(net.lb_energy(v), expected);
        }
    }

    #[test]
    fn clustering_partitions_any_connected_graph(g in arb_connected_graph(), seed in 0u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = StackBuilder::new(g.clone()).build();
        let cfg = ClusteringConfig::new(3);
        let state = cluster_distributed(&mut net, &cfg, &mut rng);
        prop_assert!(state.validate().is_ok(), "{:?}", state.validate());
        prop_assert_eq!(state.cluster_sizes().iter().sum::<usize>(), g.num_nodes());
        // Energy and time never exceed the Lemma 2.5 round budget.
        prop_assert!(net.lb_time() <= cfg.rounds(net.global_n()));
        prop_assert!(net.max_lb_energy() <= net.lb_time());
        // Quotient graph is a well-formed simple graph on the clusters.
        let q = state.quotient_graph(&g);
        prop_assert_eq!(q.num_nodes(), state.num_clusters());
    }

    /// Capability honesty: stacks built without `with_cd()` must report
    /// `CollisionDetection::None` — on either backend, with or without a
    /// ledger — and must leave the frame's feedback lane empty after a call.
    #[test]
    fn no_cd_stacks_report_no_collision_detection(
        g in arb_connected_graph(),
        seed in 0u64..500,
        physical in any::<bool>(),
        ledger in any::<bool>(),
    ) {
        let mut builder = StackBuilder::new(g.clone()).with_seed(seed);
        if physical {
            builder = builder.physical(EnergyModel::Uniform);
        }
        if !ledger {
            builder = builder.without_ledger();
        }
        let mut stack = builder.build();
        let caps = stack.capabilities();
        prop_assert_eq!(caps.collision_detection, CollisionDetection::None);
        prop_assert_eq!(caps.physical, physical);
        prop_assert_eq!(caps.ledger, ledger);
        let mut frame = stack.new_frame();
        frame.add_sender(0, Msg::words(&[1]));
        for v in 1..g.num_nodes().min(4) {
            frame.add_receiver(v);
        }
        stack.local_broadcast(&mut frame);
        prop_assert!(
            frame.feedback().is_empty(),
            "a No-CD stack populated the feedback lane"
        );
        // And the CD counterpart reports what it was given.
        let cd_caps = StackBuilder::new(g).with_cd().build().capabilities();
        prop_assert_eq!(cd_caps.collision_detection, CollisionDetection::Receiver);
    }

    /// `EnergyView` snapshots and diffs agree with the legacy per-node
    /// counters (`lb_energy`, `physical_energy`) on both backends.
    #[test]
    fn energy_view_agrees_with_legacy_counters(
        g in arb_connected_graph(),
        seed in 0u64..500,
        physical in any::<bool>(),
    ) {
        let n = g.num_nodes();
        let mut builder = StackBuilder::new(g.clone()).with_seed(seed);
        if physical {
            builder = builder.physical(EnergyModel::Uniform);
        }
        let mut stack = builder.build();
        let mut frame = stack.new_frame();
        let run_round = |stack: &mut dyn RadioStack, frame: &mut radio_protocols::LbFrame, r: usize| {
            frame.clear();
            for v in 0..n {
                if v % 3 == r % 3 {
                    frame.add_sender(v, Msg::words(&[v as u64]));
                } else {
                    frame.add_receiver(v);
                }
            }
            stack.local_broadcast(frame);
        };
        run_round(&mut stack, &mut frame, 0);
        let mid = stack.energy_view();
        run_round(&mut stack, &mut frame, 1);
        let total = stack.energy_view();
        let phase = total.diff(&mid);

        prop_assert_eq!(total.lb_time(), stack.lb_time());
        prop_assert_eq!(total.max_lb_energy(), stack.max_lb_energy());
        prop_assert_eq!(mid.lb_time() + phase.lb_time(), total.lb_time());
        for v in 0..n {
            prop_assert_eq!(total.lb_energy(v), stack.lb_energy(v), "node {}", v);
            prop_assert_eq!(
                mid.lb_energy(v) + phase.lb_energy(v),
                total.lb_energy(v),
                "diff broke for node {}", v
            );
        }
        prop_assert_eq!(total.has_physical(), physical);
        if let Stack::Physical(p) = &stack {
            for v in 0..n {
                prop_assert_eq!(total.physical_energy(v), Some(p.physical_energy(v)));
            }
            prop_assert_eq!(total.physical_slots(), Some(p.physical_slots()));
            prop_assert_eq!(total.max_physical_energy(), Some(p.max_physical_energy()));
        }
    }

    #[test]
    fn down_cast_then_up_cast_roundtrip(g in arb_connected_graph(), seed in 0u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = StackBuilder::new(g.clone()).build();
        let cfg = ClusteringConfig::new(3);
        let state = cluster_distributed(&mut net, &cfg, &mut rng);
        let mut frame = net.new_frame();

        // Down-cast a per-cluster token to every member...
        let mut messages: NodeSlots<Msg> = NodeSlots::new(state.num_clusters());
        for c in 0..state.num_clusters() {
            messages.insert(c, Msg::words(&[7000 + c as u64]));
        }
        let holding = down_cast(&mut net, &state, &messages, &mut frame);
        for (v, held) in holding.iter().enumerate() {
            let c = state.cluster_of[v];
            prop_assert_eq!(
                held.as_ref().map(|m| m.word(0)),
                Some(7000 + c as u64),
                "vertex {} missed its cluster's down-cast", v
            );
        }
        // ...then up-cast it back: every center must recover its own token.
        let mut holders: NodeSlots<Msg> = NodeSlots::new(state.num_nodes());
        for (v, m) in holding.iter().enumerate() {
            if let Some(m) = m {
                holders.insert(v, m.clone());
            }
        }
        let mut participating = NodeSet::new(state.num_clusters());
        participating.extend(0..state.num_clusters());
        let at_centers = up_cast(&mut net, &state, &participating, &holders, &mut frame);
        for c in 0..state.num_clusters() {
            prop_assert_eq!(
                at_centers.get(c).map(|m| m.word(0)),
                Some(7000 + c as u64),
                "cluster {} center got the wrong token back", c
            );
        }
    }

    /// The capability lattice honoured by the protocol gate, across the
    /// whole builder matrix: every stack satisfies the baseline (empty)
    /// requirement and its own capabilities; a receiver-CD requirement is
    /// satisfied exactly by the `with_cd()` stacks; and the gate in
    /// `Protocol::run` agrees with `Capabilities::satisfies` — refusing
    /// with the typed error before any Local-Broadcast, never panicking.
    #[test]
    fn capability_gate_agrees_with_the_satisfies_lattice(
        g in arb_connected_graph(),
        backend_pick in 0u8..4,
        require_cd in any::<bool>(),
    ) {
        use radio_protocols::protocol::{
            Protocol, ProtocolError, ProtocolId, ProtocolInput, ProtocolOutput,
        };
        use radio_protocols::{Capabilities, LbFrame, RadioStack};
        use radio_sim::{CollisionDetection, EnergyModel};

        struct Probe {
            required: Capabilities,
        }
        impl Protocol for Probe {
            fn name(&self) -> ProtocolId {
                ProtocolId::new("probe")
            }
            fn requires(&self) -> Capabilities {
                self.required
            }
            fn execute(
                &self,
                net: &mut dyn RadioStack,
                _input: &ProtocolInput,
                frame: &mut LbFrame,
            ) -> ProtocolOutput {
                frame.clear();
                frame.add_sender(0, Msg::words(&[1]));
                for v in 1..net.num_nodes() {
                    frame.add_receiver(v);
                }
                net.local_broadcast(frame);
                ProtocolOutput::Deliveries(frame.delivered().len() as u64)
            }
        }

        let builder = StackBuilder::new(g.clone());
        let builder = match backend_pick % 2 {
            0 => builder,
            _ => builder.physical(EnergyModel::Uniform),
        };
        let mut stack = if backend_pick >= 2 {
            builder.with_cd().build()
        } else {
            builder.build()
        };
        let caps = stack.capabilities();

        // Lattice laws.
        prop_assert!(caps.satisfies(&Capabilities::baseline()));
        prop_assert!(caps.satisfies(&caps));
        let mut cd_req = Capabilities::baseline();
        cd_req.collision_detection = CollisionDetection::Receiver;
        prop_assert_eq!(caps.satisfies(&cd_req), backend_pick >= 2);

        // Gate agreement.
        let required = if require_cd { cd_req } else { Capabilities::baseline() };
        let probe = Probe { required };
        match probe.run(&mut stack, &ProtocolInput::default()) {
            Ok(report) => {
                prop_assert!(caps.satisfies(&required));
                prop_assert_eq!(report.lb_calls(), 1);
            }
            Err(ProtocolError::MissingCapability { available, .. }) => {
                prop_assert!(!caps.satisfies(&required));
                prop_assert_eq!(available, caps.label());
                prop_assert_eq!(stack.lb_time(), 0, "gate fired after a call");
            }
            Err(e) => prop_assert!(false, "unexpected error {}", e),
        }
    }
}
