//! Property-based tests for the Local-Broadcast layer: the delivery
//! specification of the abstract backend, the ledger arithmetic, and the
//! structural guarantees of the distributed clustering and the casts on
//! randomly generated connected graphs.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use radio_graph::{generators, Graph};
use radio_protocols::cast::{down_cast, up_cast};
use radio_protocols::{cluster_distributed, AbstractLbNetwork, ClusteringConfig, LbNetwork, Msg};

fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (
        3usize..30,
        any::<u64>(),
        proptest::collection::vec((0usize..30, 0usize..30), 0..40),
    )
        .prop_map(|(n, seed, extra)| {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let tree = generators::random_tree(n, &mut rng);
            let mut edges: Vec<(usize, usize)> = tree.edges().collect();
            for (u, v) in extra {
                if u % n != v % n {
                    edges.push((u % n, v % n));
                }
            }
            Graph::from_edges(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn local_broadcast_delivery_matches_spec(
        g in arb_connected_graph(),
        sender_bits in proptest::collection::vec(any::<bool>(), 30),
        receiver_bits in proptest::collection::vec(any::<bool>(), 30),
    ) {
        let n = g.num_nodes();
        let senders: HashMap<usize, Msg> = (0..n)
            .filter(|&v| sender_bits[v % sender_bits.len()])
            .map(|v| (v, Msg::words(&[v as u64])))
            .collect();
        let receivers: HashSet<usize> = (0..n)
            .filter(|&v| receiver_bits[v % receiver_bits.len()] && !senders.contains_key(&v))
            .collect();
        let mut net = AbstractLbNetwork::new(g.clone());
        let out = net.local_broadcast(&senders, &receivers);
        for &r in &receivers {
            let has_sending_neighbor = g.neighbors(r).iter().any(|u| senders.contains_key(u));
            match out.get(&r) {
                Some(m) => {
                    // The message must come from an actual sending neighbour.
                    let from = m.word(0) as usize;
                    prop_assert!(g.has_edge(r, from));
                    prop_assert!(senders.contains_key(&from));
                }
                None => prop_assert!(!has_sending_neighbor, "receiver {} missed a delivery", r),
            }
        }
        // Non-receivers never appear in the output.
        for v in out.keys() {
            prop_assert!(receivers.contains(v));
        }
        // Ledger: exactly one call, every participant charged exactly once.
        prop_assert_eq!(net.lb_time(), 1);
        for v in 0..n {
            let expected = u64::from(senders.contains_key(&v) || receivers.contains(&v));
            prop_assert_eq!(net.lb_energy(v), expected);
        }
    }

    #[test]
    fn clustering_partitions_any_connected_graph(g in arb_connected_graph(), seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut net = AbstractLbNetwork::new(g.clone());
        let cfg = ClusteringConfig::new(3);
        let state = cluster_distributed(&mut net, &cfg, &mut rng);
        prop_assert!(state.validate().is_ok(), "{:?}", state.validate());
        prop_assert_eq!(state.cluster_sizes().iter().sum::<usize>(), g.num_nodes());
        // Energy and time never exceed the Lemma 2.5 round budget.
        prop_assert!(net.lb_time() <= cfg.rounds(net.global_n()));
        prop_assert!(net.max_lb_energy() <= net.lb_time());
        // Quotient graph is a well-formed simple graph on the clusters.
        let q = state.quotient_graph(&g);
        prop_assert_eq!(q.num_nodes(), state.num_clusters());
    }

    #[test]
    fn down_cast_then_up_cast_roundtrip(g in arb_connected_graph(), seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut net = AbstractLbNetwork::new(g.clone());
        let cfg = ClusteringConfig::new(3);
        let state = cluster_distributed(&mut net, &cfg, &mut rng);

        // Down-cast a per-cluster token to every member...
        let messages: HashMap<usize, Msg> = (0..state.num_clusters())
            .map(|c| (c, Msg::words(&[7000 + c as u64])))
            .collect();
        let holding = down_cast(&mut net, &state, &messages);
        for (v, held) in holding.iter().enumerate() {
            let c = state.cluster_of[v];
            prop_assert_eq!(
                held.as_ref().map(|m| m.word(0)),
                Some(7000 + c as u64),
                "vertex {} missed its cluster's down-cast", v
            );
        }
        // ...then up-cast it back: every center must recover its own token.
        let holders: HashMap<usize, Msg> = holding
            .iter()
            .enumerate()
            .filter_map(|(v, m)| m.clone().map(|m| (v, m)))
            .collect();
        let participating: HashSet<usize> = (0..state.num_clusters()).collect();
        let at_centers = up_cast(&mut net, &state, &participating, &holders);
        for c in 0..state.num_clusters() {
            prop_assert_eq!(
                at_centers.get(&c).map(|m| m.word(0)),
                Some(7000 + c as u64),
                "cluster {} center got the wrong token back", c
            );
        }
    }
}
