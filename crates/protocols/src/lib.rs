//! Local-Broadcast-level protocol layer (paper, Sections 2.2 and 3).
//!
//! The paper analyses all of its algorithms in units of **calls to
//! Local-Broadcast**: "calling Local-Broadcast takes one unit of time, and
//! every participating vertex expends one unit of energy" (Section 4.3).
//! This crate provides that abstraction as the capability-typed
//! [`RadioStack`] trait (see [`stack`]) with two interchangeable back-ends,
//! built exclusively through [`StackBuilder`]:
//!
//! * [`AbstractLbNetwork`] — one unit of time/energy per participation, the
//!   exact accounting of Theorem 4.1; optionally injects delivery failures.
//! * [`PhysicalLbNetwork`] — every call expands into real Decay slots on the
//!   `radio-sim` channel (Lemma 2.4), so per-slot energy and collisions are
//!   fully modelled; with collision detection enabled it runs the CD-aware
//!   Decay variant and surfaces per-receiver verdicts through the frame's
//!   feedback lane.
//!
//! Each stack advertises a [`Capabilities`] descriptor (collision
//! detection, energy model, physical counters, ledger) and snapshots all of
//! its counters into one [`EnergyView`] — the unified surface that replaced
//! reading `LbLedger` and `EnergyMeter` separately.
//!
//! On top of the abstraction it implements the machinery of Sections 2.2–3:
//!
//! * [`clustering`] — the distributed MPX clustering of Lemma 2.5;
//! * [`cast`] — the Up-cast and Down-cast primitives of Lemma 3.1;
//! * [`cluster_net`] — the simulation of Local-Broadcast on the cluster
//!   graph `G*` (Lemma 3.2), itself a [`RadioStack`], which is what lets
//!   the recursive BFS of Section 4 call itself on `G*`;
//! * [`aggregate`] / [`broadcast`] / [`leader`] — the Find-Minimum /
//!   Find-Maximum, layered broadcast, and leader-election subroutines used
//!   by the diameter algorithms of Section 5.1;
//! * [`protocol`] — the first-class [`Protocol`] trait and the
//!   [`ProtocolRegistry`] resolving string specs (`clustering:b=4`,
//!   `lb_sweep:r=16`, and — via `energy-bfs` — the BFS drivers) into boxed
//!   protocols with capability gating and unified [`ProtocolReport`]
//!   telemetry;
//! * [`sketch`] — HyperLogLog counters with word-parallel merge kernels
//!   and the HyperBall neighborhood-function protocol (`hyperball:p=6`),
//!   the sketch-based end of the distance-computation spectrum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod broadcast;
pub mod cast;
pub mod cluster_net;
pub mod clustering;
pub mod lb;
pub mod leader;
pub mod ledger;
pub mod message;
pub mod protocol;
pub mod sketch;
pub mod stack;

pub use cluster_net::VirtualClusterNet;
pub use clustering::{cluster_distributed, ClusterState, ClusteringConfig};
pub use lb::{local_broadcast_once, AbstractLbNetwork, LbFrame, PhysicalLbNetwork};
pub use ledger::LbLedger;
pub use message::Msg;
pub use protocol::{
    Protocol, ProtocolError, ProtocolId, ProtocolInput, ProtocolOutput, ProtocolRegistry,
    ProtocolReport,
};
pub use sketch::{HllSketch, HyperballProtocol, SketchSummary};
pub use stack::{Capabilities, EnergyView, RadioStack, Stack, StackBuilder};
// Re-exported so protocol callers can build stacks and cast/sweep inputs
// without depending on `radio-sim` directly.
pub use radio_sim::{CollisionDetection, EnergyModel, LbFeedback, NodeSet, NodeSlots};
