//! Sketch protocols: HyperLogLog counters and the HyperBall
//! neighborhood-function protocol.
//!
//! The paper's BFS drivers compute *exact* distances; this module puts the
//! sketch-based end of the distance-computation spectrum on the same
//! [`Protocol`] surface. A HyperBall run maintains one fixed-precision
//! HyperLogLog counter per node, seeded with the node's own hash. Each
//! round, every node whose counter changed in the previous round
//! Local-Broadcasts its register array and every receiver merges what it
//! hears (bytewise register max — the receive step *is* the merge). After
//! `r` rounds node `v`'s counter covers exactly the ball `B_r(v)`, so the
//! per-round estimate sums trace the neighborhood function `N(r)` and the
//! last round that changed any register is a diameter estimate.
//!
//! Layout and kernels follow the word-parallel discipline of the frame
//! engine: `2^p` one-byte registers are packed eight per `u64`, and
//! [`merge_words`]/[`covers_words`] operate on whole words with SWAR
//! bytewise comparisons (no per-register branching). Registers never reach
//! `0x80` — the maximum rank is `65 − p ≤ 61` — which is what makes the
//! carry-free SWAR max sound.
//!
//! Determinism: node hashes derive from (sweep seed, node id) via a
//! splitmix64 mix, merges are order-independent (max is commutative and
//! associative), and the round schedule visits senders in ascending id
//! order — so on a loss-free stack the whole run, estimates included, is a
//! pure function of (graph, p, seed). On lossy stacks missed deliveries
//! can only *lower* register values, never corrupt them.

use crate::lb::LbFrame;
use crate::message::Msg;
use crate::protocol::{
    Protocol, ProtocolError, ProtocolId, ProtocolInput, ProtocolOutput, SpecParams,
};
use crate::stack::RadioStack;

/// Smallest supported precision (`m = 16` registers) — below this the
/// standard bias correction has no published constant.
pub const MIN_PRECISION: u32 = 4;
/// Largest supported precision (`m = 4096` registers, 512-word payloads).
pub const MAX_PRECISION: u32 = 12;

/// The high bit of every register byte. Registers stay strictly below it,
/// so `(a | HIGH) - b` never borrows across byte lanes.
const HIGH: u64 = 0x8080_8080_8080_8080;

/// One round of splitmix64 — the stateless mixer used for per-node hashing
/// (deterministic, seedable, and good enough avalanche for HLL's
/// "uniform 64-bit hash" requirement).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The 64-bit item hash of `node` under `seed`: two splitmix64 rounds so
/// that neither consecutive ids nor consecutive seeds produce correlated
/// register indices.
pub fn node_hash(seed: u64, node: usize) -> u64 {
    splitmix64(seed ^ splitmix64(node as u64))
}

/// Number of `u64` words holding the `2^p` one-byte registers.
pub fn words_for(p: u32) -> usize {
    (1usize << p) / 8
}

/// The standard HyperLogLog relative-error envelope `1.04 / √(2^p)`.
pub fn relative_error(p: u32) -> f64 {
    1.04 / ((1u64 << p) as f64).sqrt()
}

/// Word-parallel bytewise-max merge of `src` into `dst`; returns whether
/// any register grew. Eight registers per word, no per-byte branching:
/// `(a | HIGH) - b` sets each lane's high bit iff `a ≥ b` (both < 0x80, so
/// lanes never borrow), and the spread mask selects the larger byte.
pub fn merge_words(dst: &mut [u64], src: &[u64]) -> bool {
    debug_assert_eq!(dst.len(), src.len());
    let mut grew = 0u64;
    for (d, &b) in dst.iter_mut().zip(src) {
        let a = *d;
        let ge = (((a | HIGH).wrapping_sub(b)) & HIGH) >> 7;
        let keep = ge.wrapping_mul(0xFF);
        let max = (a & keep) | (b & !keep);
        grew |= max ^ a;
        *d = max;
    }
    grew != 0
}

/// `true` iff merging `src` into `dst` would change nothing — every `dst`
/// register already dominates its `src` counterpart. The word-parallel
/// convergence test: a node whose counter covers everything it can hear
/// has locally converged.
pub fn covers_words(dst: &[u64], src: &[u64]) -> bool {
    debug_assert_eq!(dst.len(), src.len());
    dst.iter()
        .zip(src)
        .all(|(&a, &b)| (((a | HIGH).wrapping_sub(b)) & HIGH) >> 7 == HIGH >> 7)
}

/// The cardinality estimate of a packed register array at precision `p`:
/// the bias-corrected harmonic mean, falling back to linear counting in
/// the small range (the standard estimator, so the `1.04/√m` envelope
/// applies).
pub fn estimate_words(words: &[u64], p: u32) -> f64 {
    debug_assert_eq!(words.len(), words_for(p));
    let m = 1usize << p;
    let mut sum = 0.0f64;
    let mut zeros = 0usize;
    for &w in words {
        for lane in 0..8 {
            let r = ((w >> (8 * lane)) & 0xFF) as u32;
            zeros += usize::from(r == 0);
            sum += 1.0 / (1u64 << r) as f64;
        }
    }
    let mf = m as f64;
    let alpha = match m {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / mf),
    };
    let raw = alpha * mf * mf / sum;
    if raw <= 2.5 * mf && zeros > 0 {
        mf * (mf / zeros as f64).ln()
    } else {
        raw
    }
}

/// A fixed-precision HyperLogLog counter: `2^p` one-byte registers packed
/// eight per `u64`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HllSketch {
    p: u32,
    words: Vec<u64>,
}

impl HllSketch {
    /// An empty counter at precision `p`.
    ///
    /// Panics outside [`MIN_PRECISION`]`..=`[`MAX_PRECISION`] — registry
    /// factories validate first, so an out-of-range `p` here is a
    /// programming error.
    pub fn new(p: u32) -> Self {
        assert!(
            (MIN_PRECISION..=MAX_PRECISION).contains(&p),
            "precision p={p} outside {MIN_PRECISION}..={MAX_PRECISION}"
        );
        HllSketch {
            p,
            words: vec![0; words_for(p)],
        }
    }

    /// The counter holding exactly `{node}` — HyperBall's per-node initial
    /// state under `seed`.
    pub fn singleton(p: u32, seed: u64, node: usize) -> Self {
        let mut s = HllSketch::new(p);
        s.insert_hash(node_hash(seed, node));
        s
    }

    /// Precision.
    pub fn precision(&self) -> u32 {
        self.p
    }

    /// The packed register words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Inserts a pre-hashed item: the top `p` bits pick the register, the
    /// rank is the position of the first set bit among the rest (all-zero
    /// rest saturates at `65 − p`, which keeps every register < 0x80).
    pub fn insert_hash(&mut self, h: u64) {
        let idx = (h >> (64 - self.p)) as usize;
        let rank = ((h << self.p).leading_zeros() + 1).min(65 - self.p);
        let (w, shift) = (idx / 8, 8 * (idx % 8));
        let cur = (self.words[w] >> shift) & 0xFF;
        if u64::from(rank) > cur {
            self.words[w] = (self.words[w] & !(0xFFu64 << shift)) | (u64::from(rank) << shift);
        }
    }

    /// Merges `other` into `self` (bytewise register max); returns whether
    /// any register grew.
    pub fn merge(&mut self, other: &HllSketch) -> bool {
        assert_eq!(self.p, other.p, "merging sketches of different precision");
        merge_words(&mut self.words, &other.words)
    }

    /// The cardinality estimate.
    pub fn estimate(&self) -> f64 {
        estimate_words(&self.words, self.p)
    }

    /// The register array as a Local-Broadcast payload ([`HllSketch::from_msg`]
    /// is the inverse).
    pub fn to_msg(&self) -> Msg {
        Msg::words(&self.words)
    }

    /// Reconstructs a counter of precision `p` from a payload produced by
    /// [`HllSketch::to_msg`]; `None` if the word count does not match.
    pub fn from_msg(p: u32, msg: &Msg) -> Option<Self> {
        if !(MIN_PRECISION..=MAX_PRECISION).contains(&p) || msg.len() != words_for(p) {
            return None;
        }
        Some(HllSketch {
            p,
            words: msg.as_slice().to_vec(),
        })
    }
}

/// The result of a HyperBall run: the neighborhood function and the
/// distance estimates read off it.
#[derive(Clone, Debug, PartialEq)]
pub struct SketchSummary {
    /// Register-index bits (`2^p` registers per node).
    pub p: u32,
    /// Local-Broadcast rounds executed, the final all-quiet round (or the
    /// bound cutoff) included.
    pub rounds: u64,
    /// `neighborhood_function[r]` estimates `Σ_v |B_r(v)|` — the number of
    /// node pairs within distance `r` — for `r = 0..` up to the last round
    /// that changed a register.
    pub neighborhood_function: Vec<f64>,
    /// The last round that changed any register anywhere: on a loss-free
    /// stack this is the graph diameter up to hash collisions (collisions
    /// can only make it undershoot, never overshoot).
    pub diameter_estimate: u64,
    /// The smallest (interpolated) radius at which the neighborhood
    /// function reaches 90% of its final value.
    pub effective_diameter: f64,
    /// Per-node eccentricity estimates: the last round node `v`'s counter
    /// changed (a lower estimate of `ecc(v)` under the same collision
    /// caveat).
    pub eccentricities: Vec<u64>,
}

impl SketchSummary {
    /// The scalar the scenario records carry.
    pub fn outcome(&self) -> u64 {
        self.diameter_estimate
    }
}

/// The HyperBall protocol: per-node HyperLogLog counters flooded along
/// edges until a round changes no register (or the round bound is hit).
///
/// Each round, every *active* node — one whose counter changed in the
/// previous round, everyone in round 1 — takes one Local-Broadcast as the
/// sole sender with its neighbors listening, so delivery is deterministic
/// and after round `r` every counter covers exactly `B_r(v)`. Neighbor
/// sets come from [`RadioStack::topology`]; on a stack without one
/// (virtual cluster networks) every other node listens instead, which is
/// semantically identical and merely costs more listener energy. A node
/// that hears nothing new goes inactive, so the sender set *is* the
/// convergence state and the run terminates exactly when the wave of
/// register changes dies out — the feedback the frame's delivery lane
/// already provides.
///
/// Like clustering, the protocol ignores [`ProtocolInput::active`] (the
/// neighborhood function is a whole-graph quantity). `rounds` bounds the
/// run for graphs whose diameter exceeds the time budget — the xl sweep's
/// regime, where the estimate becomes "the NF up to radius `rounds`".
#[derive(Clone, Debug)]
pub struct HyperballProtocol {
    /// Register-index bits (`2^p` registers, error `1.04/√2^p`).
    pub p: u32,
    /// Optional round bound; `None` runs to convergence.
    pub rounds: Option<u64>,
}

impl HyperballProtocol {
    /// Resolves `hyperball[:p=…[,rounds=…]]` spec parameters (registry
    /// factory body; also reused by the `diameter:hyperball` wrapper).
    pub fn from_params(params: &SpecParams) -> Result<Self, ProtocolError> {
        params.ensure_known_keys(&["p", "rounds"])?;
        let p = params.get_u64("p", 6)?;
        if !(u64::from(MIN_PRECISION)..=u64::from(MAX_PRECISION)).contains(&p) {
            return Err(params.invalid(format!(
                "parameter p={p} outside {MIN_PRECISION}..={MAX_PRECISION}"
            )));
        }
        let rounds = params.get_opt_u64("rounds")?;
        if rounds == Some(0) {
            return Err(params.invalid("parameter rounds must be ≥ 1"));
        }
        Ok(HyperballProtocol {
            p: p as u32,
            rounds,
        })
    }

    /// Runs the rounds and reads the summary off the register history.
    fn hyperball(&self, net: &mut dyn RadioStack, seed: u64, frame: &mut LbFrame) -> SketchSummary {
        let n = net.num_nodes();
        let wp = words_for(self.p);
        // Flat register plane: node v's counter is regs[v*wp..(v+1)*wp],
        // so the per-round snapshot is one memcpy, not n allocations.
        let mut regs: Vec<u64> = Vec::with_capacity(n * wp);
        for v in 0..n {
            regs.extend_from_slice(HllSketch::singleton(self.p, seed, v).words());
        }
        let mut prev = regs.clone();
        let mut est: Vec<f64> = (0..n)
            .map(|v| estimate_words(&regs[v * wp..(v + 1) * wp], self.p))
            .collect();
        let mut nf_sum: f64 = est.iter().sum();
        let mut nf = vec![nf_sum];
        let mut ecc = vec![0u64; n];
        let mut active = vec![true; n];
        let mut changed = vec![false; n];
        let bound = self.rounds.unwrap_or(n as u64);
        let mut round = 0u64;
        let mut last_change = 0u64;
        while round < bound && active.iter().any(|&a| a) {
            round += 1;
            prev.copy_from_slice(&regs);
            changed.iter_mut().for_each(|c| *c = false);
            for u in 0..n {
                if !active[u] {
                    continue;
                }
                frame.clear();
                frame.add_sender(u, Msg::words(&prev[u * wp..(u + 1) * wp]));
                match net.topology() {
                    Some(g) => {
                        for &v in g.neighbors(u) {
                            frame.add_receiver(v);
                        }
                    }
                    None => {
                        for v in (0..n).filter(|&v| v != u) {
                            frame.add_receiver(v);
                        }
                    }
                }
                net.local_broadcast(frame);
                for (v, msg) in frame.delivered().iter() {
                    changed[v] |= merge_words(&mut regs[v * wp..(v + 1) * wp], msg.as_slice());
                }
            }
            let mut any = false;
            for v in 0..n {
                if changed[v] {
                    any = true;
                    let e = estimate_words(&regs[v * wp..(v + 1) * wp], self.p);
                    nf_sum += e - est[v];
                    est[v] = e;
                    ecc[v] = round;
                }
            }
            if any {
                last_change = round;
                nf.push(nf_sum);
            }
            std::mem::swap(&mut active, &mut changed);
        }
        let effective = effective_diameter(&nf);
        SketchSummary {
            p: self.p,
            rounds: round,
            neighborhood_function: nf,
            diameter_estimate: last_change,
            effective_diameter: effective,
            eccentricities: ecc,
        }
    }
}

/// The smallest interpolated radius at which `nf` reaches 90% of its final
/// value (HyperBall's effective-diameter readout).
fn effective_diameter(nf: &[f64]) -> f64 {
    let last = match nf.last() {
        Some(&x) if x > 0.0 => x,
        _ => return 0.0,
    };
    let target = 0.9 * last;
    if nf[0] >= target {
        return 0.0;
    }
    for r in 1..nf.len() {
        if nf[r] >= target {
            let step = nf[r] - nf[r - 1];
            let frac = if step > 0.0 {
                (target - nf[r - 1]) / step
            } else {
                0.0
            };
            return (r - 1) as f64 + frac;
        }
    }
    (nf.len() - 1) as f64
}

impl Protocol for HyperballProtocol {
    fn name(&self) -> ProtocolId {
        match self.rounds {
            None => ProtocolId::new(format!("hyperball_p{}", self.p)),
            Some(r) => ProtocolId::new(format!("hyperball_p{}_r{r}", self.p)),
        }
    }

    fn execute(
        &self,
        net: &mut dyn RadioStack,
        input: &ProtocolInput,
        frame: &mut LbFrame,
    ) -> ProtocolOutput {
        ProtocolOutput::Sketch(self.hyperball(net, input.seed, frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::base_registry;
    use crate::stack::StackBuilder;
    use radio_graph::generators;

    fn exact_counter(p: u32, seed: u64, nodes: impl IntoIterator<Item = usize>) -> HllSketch {
        let mut s = HllSketch::new(p);
        for v in nodes {
            s.insert_hash(node_hash(seed, v));
        }
        s
    }

    #[test]
    fn merge_is_bytewise_max_and_reports_growth() {
        let mut a = exact_counter(6, 3, 0..10);
        let b = exact_counter(6, 3, 5..20);
        let mut union = exact_counter(6, 3, 0..20);
        assert!(a.merge(&b), "merging new items must report growth");
        assert_eq!(a, union);
        assert!(!a.merge(&b), "re-merging a covered counter changes nothing");
        assert!(covers_words(a.words(), b.words()));
        assert!(!union.merge(&a));
    }

    #[test]
    fn estimates_track_exact_cardinalities_inside_the_envelope() {
        let p = 8;
        for &count in &[1usize, 10, 50, 200, 1000] {
            let s = exact_counter(p, 42, 0..count);
            let err = (s.estimate() - count as f64).abs() / count as f64;
            // 3σ of the 1.04/√m envelope — generous, but catches a broken
            // estimator (which is off by whole multiples).
            assert!(
                err <= 3.0 * relative_error(p),
                "count {count}: estimate {} err {err}",
                s.estimate()
            );
        }
    }

    #[test]
    fn registers_never_reach_the_swar_high_bit() {
        let mut s = HllSketch::new(4);
        // The all-zero suffix saturates the rank at 65 - p.
        s.insert_hash(0);
        for &w in s.words() {
            for lane in 0..8 {
                assert!(((w >> (8 * lane)) & 0xFF) < 0x80);
            }
        }
        assert_eq!(s.words()[0] & 0xFF, 65 - 4);
    }

    #[test]
    fn msg_round_trip_preserves_registers() {
        let s = exact_counter(6, 9, 0..33);
        let msg = s.to_msg();
        assert_eq!(msg.len(), words_for(6));
        assert_eq!(HllSketch::from_msg(6, &msg).unwrap(), s);
        assert!(
            HllSketch::from_msg(7, &msg).is_none(),
            "word-count mismatch"
        );
    }

    #[test]
    fn hyperball_counters_cover_exact_balls_on_a_path() {
        // On a loss-free abstract stack the round-r counter of v must equal
        // the counter built directly from B_r(v) — the ball-exactness the
        // schedule is designed for. Diameter falls out as the last change.
        let n = 8;
        let g = generators::path(n);
        let mut net = StackBuilder::new(g).build();
        let proto = HyperballProtocol { p: 6, rounds: None };
        let report = proto.run(&mut net, &ProtocolInput::from_seed(5)).unwrap();
        let summary = match &report.output {
            ProtocolOutput::Sketch(s) => s,
            other => panic!("expected sketch output, got {other:?}"),
        };
        assert_eq!(summary.diameter_estimate, (n - 1) as u64);
        assert_eq!(summary.rounds, n as u64, "n-1 changing rounds + 1 quiet");
        assert_eq!(summary.neighborhood_function.len(), n);
        // Endpoint eccentricity n-1, midpoint n/2.
        assert_eq!(summary.eccentricities[0], (n - 1) as u64);
        assert_eq!(summary.eccentricities[n / 2], (n / 2) as u64);
        // NF is nondecreasing and ends at ~n² (every pair within range).
        for w in summary.neighborhood_function.windows(2) {
            assert!(w[1] >= w[0]);
        }
        let final_nf = *summary.neighborhood_function.last().unwrap();
        assert!((final_nf - (n * n) as f64).abs() / (n * n) as f64 <= 3.0 * relative_error(6));
        assert!(summary.effective_diameter <= summary.diameter_estimate as f64);
    }

    #[test]
    fn round_bound_caps_the_run_and_labels_the_protocol() {
        let g = generators::path(16);
        let mut net = StackBuilder::new(g).build();
        let proto = HyperballProtocol {
            p: 6,
            rounds: Some(3),
        };
        assert_eq!(proto.name(), "hyperball_p6_r3");
        let report = proto.run(&mut net, &ProtocolInput::from_seed(0)).unwrap();
        let summary = match &report.output {
            ProtocolOutput::Sketch(s) => s,
            other => panic!("expected sketch output, got {other:?}"),
        };
        assert_eq!(summary.rounds, 3);
        assert_eq!(summary.diameter_estimate, 3);
    }

    #[test]
    fn registry_resolves_hyperball_specs() {
        let r = base_registry();
        assert_eq!(r.get("hyperball").unwrap().name(), "hyperball_p6");
        assert_eq!(r.get("hyperball:p=8").unwrap().name(), "hyperball_p8");
        assert_eq!(
            r.get("hyperball:p=6,rounds=4").unwrap().name(),
            "hyperball_p6_r4"
        );
        assert!(r.get("hyperball:p=2").is_err(), "p below the floor");
        assert!(r.get("hyperball:p=13").is_err(), "p above the ceiling");
        assert!(r.get("hyperball:rounds=0").is_err());
        assert!(r.get("hyperball:q=1").is_err(), "unknown key");
    }

    #[test]
    fn hyperball_is_deterministic_across_runs_and_backends_share_semantics() {
        let g = generators::grid(5, 5);
        let run = || {
            let mut net = StackBuilder::new(g.clone()).build();
            let proto = HyperballProtocol { p: 6, rounds: None };
            let report = proto.run(&mut net, &ProtocolInput::from_seed(7)).unwrap();
            match report.output {
                ProtocolOutput::Sketch(s) => s,
                other => panic!("expected sketch output, got {other:?}"),
            }
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.diameter_estimate, 8, "grid(5,5) diameter");
    }
}
