//! Find-Minimum / Find-Maximum over a BFS tree (paper, Section 5.1).
//!
//! Setting: a leader `v₀` has been elected and every vertex knows its BFS
//! label `dist(v₀, ·)`. Every vertex `u` holds an integer key `k_u ∈ [0, K)`
//! and a message `m_u`. Find-Minimum elects one vertex `u*` with the
//! minimum key and makes `m_{u*}` (and the key) known to everybody;
//! Find-Maximum is symmetric.
//!
//! The implementation follows the paper: binary search over the key range.
//! For each candidate interval the leader floods the query down the BFS
//! layers (a down sweep) and the "does anyone's key fall in the interval?"
//! bit is aggregated back up (an up sweep); each vertex participates in
//! `O(1)` Local-Broadcasts per sweep, so a full Find-Minimum costs
//! `O(log K)` energy and `O(D log K)` time — the `Õ(1)`-energy primitive the
//! diameter algorithms rely on.

use radio_graph::Dist;
use radio_sim::NodeSlots;

use crate::broadcast::{down_sweep, up_sweep};
use crate::message::Msg;
use crate::stack::RadioStack;

/// The winner of an aggregation: its key and its message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateResult {
    /// The extremal key value.
    pub key: u64,
    /// The payload of one vertex achieving it.
    pub message: Msg,
}

/// Whether to search for the minimum or the maximum key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    Min,
    Max,
}

/// Finds the minimum key among vertices with `Some` key, and returns it
/// together with the message of one vertex achieving it. Returns `None` if
/// no vertex holds a key.
///
/// `labels` must be a BFS labelling rooted at the leader (label 0);
/// `key_bound` is the exclusive upper bound `K` on key values.
pub fn find_min(
    net: &mut dyn RadioStack,
    labels: &[Dist],
    keys: &[Option<u64>],
    messages: &[Msg],
    key_bound: u64,
) -> Option<AggregateResult> {
    find_extremum(net, labels, keys, messages, key_bound, Direction::Min)
}

/// Finds the maximum key among vertices with `Some` key (see [`find_min`]).
pub fn find_max(
    net: &mut dyn RadioStack,
    labels: &[Dist],
    keys: &[Option<u64>],
    messages: &[Msg],
    key_bound: u64,
) -> Option<AggregateResult> {
    find_extremum(net, labels, keys, messages, key_bound, Direction::Max)
}

/// One "existence query": the leader learns whether any vertex's key lies in
/// `[lo, hi]`. Implemented as a query down sweep followed by an OR up sweep.
fn exists_in_range(
    net: &mut dyn RadioStack,
    labels: &[Dist],
    keys: &[Option<u64>],
    lo: u64,
    hi: u64,
) -> bool {
    // Down sweep is only needed to model the dissemination of the query; in
    // the orchestrated simulation every vertex can evaluate the predicate
    // locally once the query reaches it. We charge the sweep so the energy
    // accounting matches the real protocol.
    let query = Msg::words(&[lo, hi]);
    let reached = down_sweep(net, labels, |v| {
        if labels[v] == 0 {
            Some(query.clone())
        } else {
            None
        }
    });
    let mut holders: NodeSlots<Msg> = NodeSlots::new(labels.len());
    for v in 0..labels.len() {
        if (reached[v].is_some() || labels[v] == 0) && keys[v].is_some_and(|k| k >= lo && k <= hi) {
            holders.insert(v, Msg::words(&[1]));
        }
    }
    let at_root = up_sweep(net, labels, &holders);
    !at_root.is_empty() || holders.keys().iter().any(|v| labels[v] == 0)
}

fn find_extremum(
    net: &mut dyn RadioStack,
    labels: &[Dist],
    keys: &[Option<u64>],
    messages: &[Msg],
    key_bound: u64,
    direction: Direction,
) -> Option<AggregateResult> {
    assert_eq!(labels.len(), keys.len());
    assert_eq!(labels.len(), messages.len());
    if key_bound == 0 || keys.iter().all(|k| k.is_none()) {
        // The leader still has to pay one existence query to discover that
        // nobody holds a key.
        if key_bound > 0 {
            let _ = exists_in_range(net, labels, keys, 0, key_bound - 1);
        }
        return None;
    }

    // Binary search for the extremal value.
    let (mut lo, mut hi) = (0u64, key_bound - 1);
    if !exists_in_range(net, labels, keys, lo, hi) {
        return None;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match direction {
            Direction::Min => {
                if exists_in_range(net, labels, keys, lo, mid) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            Direction::Max => {
                if exists_in_range(net, labels, keys, mid + 1, hi) {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
        }
    }
    let winner_key = lo;

    // One more pair of sweeps: the leader announces the winning value, the
    // winners send their payloads up, the first to arrive wins.
    let announce = Msg::words(&[winner_key]);
    let _ = down_sweep(net, labels, |v| {
        if labels[v] == 0 {
            Some(announce.clone())
        } else {
            None
        }
    });
    let mut holders: NodeSlots<Msg> = NodeSlots::new(labels.len());
    for v in 0..labels.len() {
        if keys[v] == Some(winner_key) {
            holders.insert(v, messages[v].clone());
        }
    }
    let at_root = up_sweep(net, labels, &holders);
    let message = at_root
        .iter()
        .next()
        .map(|(_, m)| m.clone())
        .or_else(|| holders.iter().next().map(|(_, m)| m.clone()))?;

    // Final dissemination of the winner to everyone (the diameter algorithms
    // need all vertices to know the result).
    let final_msg = message.prepended(winner_key);
    let _ = down_sweep(net, labels, |v| {
        if labels[v] == 0 {
            Some(final_msg.clone())
        } else {
            None
        }
    });

    Some(AggregateResult {
        key: winner_key,
        message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{RadioStack, StackBuilder};
    use radio_graph::bfs::bfs_distances;
    use radio_graph::generators;

    fn keys_from(values: &[u64]) -> Vec<Option<u64>> {
        values.iter().map(|&v| Some(v)).collect()
    }

    fn id_messages(n: usize) -> Vec<Msg> {
        (0..n as u64).map(|v| Msg::words(&[v])).collect()
    }

    #[test]
    fn find_min_on_a_grid() {
        let g = generators::grid(6, 6);
        let labels = bfs_distances(&g, 0);
        let n = g.num_nodes();
        let values: Vec<u64> = (0..n as u64).map(|v| (v * 7 + 3) % 101).collect();
        let mut net = StackBuilder::new(g).build();
        let result = find_min(&mut net, &labels, &keys_from(&values), &id_messages(n), 101)
            .expect("a minimum exists");
        let true_min = *values.iter().min().unwrap();
        assert_eq!(result.key, true_min);
        let winner = result.message.word(0) as usize;
        assert_eq!(values[winner], true_min);
    }

    #[test]
    fn find_max_on_a_path() {
        let g = generators::path(20);
        let labels = bfs_distances(&g, 0);
        let values: Vec<u64> = (0..20).map(|v| (v * 13) % 50).collect();
        let mut net = StackBuilder::new(g).build();
        let result = find_max(&mut net, &labels, &keys_from(&values), &id_messages(20), 50)
            .expect("a maximum exists");
        assert_eq!(result.key, *values.iter().max().unwrap());
    }

    #[test]
    fn vertices_without_keys_are_ignored() {
        let g = generators::path(10);
        let labels = bfs_distances(&g, 0);
        let mut keys = vec![None; 10];
        keys[7] = Some(42);
        keys[3] = Some(17);
        let mut net = StackBuilder::new(g).build();
        let result = find_min(&mut net, &labels, &keys, &id_messages(10), 1000).unwrap();
        assert_eq!(result.key, 17);
        assert_eq!(result.message.word(0), 3);
        let result = find_max(&mut net, &labels, &keys, &id_messages(10), 1000).unwrap();
        assert_eq!(result.key, 42);
        assert_eq!(result.message.word(0), 7);
    }

    #[test]
    fn no_keys_returns_none() {
        let g = generators::path(5);
        let labels = bfs_distances(&g, 0);
        let mut net = StackBuilder::new(g).build();
        assert!(find_min(&mut net, &labels, &[None; 5], &id_messages(5), 10).is_none());
    }

    #[test]
    fn energy_is_logarithmic_in_key_bound() {
        // Each vertex should participate in O(log K) Local-Broadcasts.
        let g = generators::grid(8, 8);
        let labels = bfs_distances(&g, 0);
        let n = g.num_nodes();
        let values: Vec<u64> = (0..n as u64).map(|v| v % 997).collect();
        let key_bound = 1u64 << 20;
        let mut net = StackBuilder::new(g).build();
        let _ = find_min(
            &mut net,
            &labels,
            &keys_from(&values),
            &id_messages(n),
            key_bound,
        );
        let log_k = (key_bound as f64).log2().ceil() as u64;
        // ~4 participations per existence query (two sweeps, send+receive),
        // plus the final dissemination rounds.
        assert!(
            net.max_lb_energy() <= 6 * (log_k + 3),
            "energy {} too high for log K = {log_k}",
            net.max_lb_energy()
        );
    }

    #[test]
    fn ties_resolve_to_some_witness() {
        let g = generators::cycle(12);
        let labels = bfs_distances(&g, 0);
        let values = vec![5u64; 12];
        let mut net = StackBuilder::new(g).build();
        let result =
            find_min(&mut net, &labels, &keys_from(&values), &id_messages(12), 10).unwrap();
        assert_eq!(result.key, 5);
        assert!((result.message.word(0) as usize) < 12);
    }
}
