//! Layered broadcast over a BFS labelling.
//!
//! Once a BFS labelling is known (the output of the paper's main
//! algorithm), disseminating a message from the source costs each device
//! `O(1)` Local-Broadcast participations: devices at layer `i` listen only
//! during call `i` and transmit only during call `i + 1`. This is exactly
//! the "efficient dissemination via up-casts and down-casts" the paper's
//! introduction motivates, and the primitive the diameter algorithms of
//! Section 5.1 use for their layer-by-layer sweeps.
//!
//! Both sweeps drive all of their layer calls through one internally reused
//! [`LbFrame`](crate::LbFrame), so a sweep performs no per-layer allocation.

use radio_graph::Dist;
use radio_sim::NodeSlots;

use crate::message::Msg;
use crate::stack::RadioStack;

/// Broadcasts `message` from the vertices labelled 0 in `labels` down the
/// BFS layers. Returns, for every vertex, the message it received (`None`
/// for unreachable vertices, i.e. those with label [`radio_graph::INFINITY`],
/// or on Local-Broadcast delivery failure).
///
/// Each vertex participates in at most two Local-Broadcast calls.
pub fn layered_broadcast(
    net: &mut dyn RadioStack,
    labels: &[Dist],
    message: &Msg,
) -> Vec<Option<Msg>> {
    down_sweep(net, labels, |v| {
        if labels[v] == 0 {
            Some(message.clone())
        } else {
            None
        }
    })
}

/// Generalized down sweep: vertices at layer 0 start out holding the message
/// produced by `initial`; each subsequent layer receives from the previous
/// one. Holders forward what they hold (or their own initial message).
pub fn down_sweep<F>(net: &mut dyn RadioStack, labels: &[Dist], initial: F) -> Vec<Option<Msg>>
where
    F: Fn(usize) -> Option<Msg>,
{
    let n = labels.len();
    let mut holding: Vec<Option<Msg>> = (0..n).map(&initial).collect();
    let max_layer = labels
        .iter()
        .copied()
        .filter(|&d| d != radio_graph::INFINITY)
        .max()
        .unwrap_or(0);
    let mut frame = net.new_frame();
    for layer in 1..=max_layer {
        frame.clear();
        for v in 0..n {
            if labels[v] == layer - 1 {
                if let Some(m) = &holding[v] {
                    frame.add_sender(v, m.clone());
                }
            } else if labels[v] == layer {
                frame.add_receiver(v);
            }
        }
        if frame.receivers().is_empty() {
            continue;
        }
        net.local_broadcast(&mut frame);
        for (v, m) in frame.delivered().iter() {
            if holding[v].is_none() {
                holding[v] = Some(m.clone());
            }
        }
    }
    holding
}

/// Generalized up sweep: some vertices hold messages (`holders`, keyed by
/// node over the network's universe); messages travel up the BFS layers
/// towards layer 0, each vertex forwarding the first message it hears (or
/// its own). Returns the message each layer-0 vertex ended up with, keyed
/// by node.
pub fn up_sweep(
    net: &mut dyn RadioStack,
    labels: &[Dist],
    holders: &NodeSlots<Msg>,
) -> NodeSlots<Msg> {
    let n = labels.len();
    let mut holding: Vec<Option<Msg>> = vec![None; n];
    for (v, m) in holders.iter() {
        holding[v] = Some(m.clone());
    }
    let max_layer = labels
        .iter()
        .copied()
        .filter(|&d| d != radio_graph::INFINITY)
        .max()
        .unwrap_or(0);
    let mut frame = net.new_frame();
    for layer in (1..=max_layer).rev() {
        frame.clear();
        for v in 0..n {
            if labels[v] == layer {
                if let Some(m) = &holding[v] {
                    frame.add_sender(v, m.clone());
                }
            } else if labels[v] == layer - 1 {
                frame.add_receiver(v);
            }
        }
        if frame.senders().is_empty() || frame.receivers().is_empty() {
            continue;
        }
        net.local_broadcast(&mut frame);
        for (v, m) in frame.delivered().iter() {
            if holding[v].is_none() {
                holding[v] = Some(m.clone());
            }
        }
    }
    let mut out = NodeSlots::new(n);
    for v in 0..n {
        if labels[v] == 0 {
            if let Some(m) = &holding[v] {
                out.insert(v, m.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{RadioStack, StackBuilder};
    use radio_graph::bfs::bfs_distances;
    use radio_graph::generators;

    #[test]
    fn broadcast_reaches_every_vertex_on_a_grid() {
        let g = generators::grid(8, 8);
        let labels = bfs_distances(&g, 0);
        let mut net = StackBuilder::new(g.clone()).build();
        let out = layered_broadcast(&mut net, &labels, &Msg::words(&[123]));
        for v in g.nodes() {
            assert_eq!(out[v].as_ref().map(|m| m.word(0)), Some(123), "vertex {v}");
        }
        // Each vertex participates in at most 2 calls.
        assert!(net.max_lb_energy() <= 2);
    }

    #[test]
    fn broadcast_skips_unreachable_vertices() {
        let g = radio_graph::Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let labels = bfs_distances(&g, 0);
        let mut net = StackBuilder::new(g).build();
        let out = layered_broadcast(&mut net, &labels, &Msg::words(&[9]));
        assert!(out[2].is_some());
        assert!(out[3].is_none());
        assert!(out[4].is_none());
    }

    #[test]
    fn up_sweep_delivers_a_deep_message_to_the_root() {
        let g = generators::path(10);
        let labels = bfs_distances(&g, 0);
        let mut net = StackBuilder::new(g).build();
        let mut holders = NodeSlots::new(10);
        holders.insert(9, Msg::words(&[55]));
        let at_root = up_sweep(&mut net, &labels, &holders);
        assert_eq!(at_root.get(0).map(|m| m.word(0)), Some(55));
        // Relays pay O(1): two calls each (receive once, send once).
        assert!(net.max_lb_energy() <= 2);
    }

    #[test]
    fn up_sweep_with_no_holders_returns_nothing() {
        let g = generators::path(5);
        let labels = bfs_distances(&g, 0);
        let mut net = StackBuilder::new(g).build();
        let at_root = up_sweep(&mut net, &labels, &NodeSlots::new(5));
        assert!(at_root.is_empty());
    }

    #[test]
    fn down_sweep_merges_multiple_sources() {
        let g = generators::path(9);
        let labels = radio_graph::bfs::multi_source_bfs(&g, &[0, 8]);
        let mut net = StackBuilder::new(g.clone()).build();
        let out = down_sweep(&mut net, &labels, |v| {
            if labels[v] == 0 {
                Some(Msg::words(&[v as u64]))
            } else {
                None
            }
        });
        for v in g.nodes() {
            let got = out[v].as_ref().map(|m| m.word(0)).expect("delivered");
            assert!(got == 0 || got == 8);
        }
    }
}
