//! Distributed MPX clustering over Local-Broadcast (paper, Lemma 2.5).
//!
//! Every vertex samples `δ_v ∼ Exponential(β)` and sets
//! `start_v = ⌈4 log(n)/β − δ_v⌉`. The protocol then runs `⌈4 log(n)/β⌉`
//! rounds; in round `i` every not-yet-clustered vertex whose start time has
//! arrived becomes a cluster center, and one Local-Broadcast lets clustered
//! vertices absorb unclustered neighbours, which learn their cluster
//! identifier, their layer (distance to the center along the growth), and
//! the cluster's random tag.
//!
//! The tag replaces the "shared randomness within a cluster" that Section 3
//! needs for the index sets `S_Cl ⊂ [ℓ]`: the center draws a 64-bit tag,
//! disseminates it in the join messages (still `O(log n)` bits), and every
//! member expands it pseudorandomly into the same subset `S_Cl`. This is the
//! standard derandomization-by-seed trick and preserves the property (2)
//! the casts rely on.

use radio_graph::exponential::{sample_exponential, start_time};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::message::Msg;
use crate::stack::RadioStack;

/// Configuration of the distributed clustering.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// The MPX rate β (the paper requires `1/β` to be an integer).
    pub beta: f64,
    /// Multiplier on `log(1/β)⁻¹ log n` for the contention bound `C`
    /// (Lemma 2.1 gives `C = O(log_{1/β} n)`); 1.0 reproduces the paper's
    /// choice up to its own unspecified constant.
    pub contention_factor: f64,
    /// Multiplier on `C·log n` for the index-set length `ℓ` of Section 3.
    pub ell_factor: f64,
}

impl ClusteringConfig {
    /// Configuration with integral `1/β` and default constants.
    pub fn new(inv_beta: u64) -> Self {
        assert!(inv_beta >= 2, "1/β must be at least 2");
        ClusteringConfig {
            beta: 1.0 / inv_beta as f64,
            contention_factor: 1.0,
            // The paper leaves the Θ(C log n) constant open; 4.0 keeps the
            // probability that some vertex lacks a private index in S_Cl
            // (property (2) of Section 3, which the casts rely on)
            // negligible even at test-sized n, where 2.0 failed a few
            // instances per thousand.
            ell_factor: 4.0,
        }
    }

    /// `1/β` as an integer.
    pub fn inverse_beta(&self) -> u64 {
        (1.0 / self.beta).round() as u64
    }

    /// The contention bound `C = Θ(log_{1/β} n)`: with high probability at
    /// most this many clusters intersect any closed neighbourhood
    /// (Lemma 2.1 with `ℓ = 1`).
    pub fn contention_bound(&self, global_n: usize) -> usize {
        let n = global_n.max(2) as f64;
        let base = (1.0 / self.beta).max(2.0);
        ((self.contention_factor * n.ln() / base.ln()).ceil() as usize).max(2)
    }

    /// The index-set length `ℓ = Θ(C log n)` used by the casts.
    pub fn ell(&self, global_n: usize) -> usize {
        let n = global_n.max(2) as f64;
        ((self.ell_factor * self.contention_bound(global_n) as f64 * n.ln()).ceil() as usize).max(4)
    }

    /// Number of growth rounds `⌈4 log(n)/β⌉` (Lemma 2.5).
    pub fn rounds(&self, global_n: usize) -> u64 {
        let n = global_n.max(2) as f64;
        (4.0 * n.ln() / self.beta).ceil() as u64
    }
}

/// The state shared by all members of a clustering, produced by
/// [`cluster_distributed`] and consumed by the casts, the virtual cluster
/// network, and the recursive BFS.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterState {
    /// β used to grow the clustering.
    pub beta: f64,
    /// Cluster index of every node of the parent network.
    pub cluster_of: Vec<usize>,
    /// Layer (hop distance from the center along the growth) of every node.
    pub layer: Vec<u32>,
    /// Center node of every cluster.
    pub centers: Vec<usize>,
    /// Random 64-bit tag of every cluster (the shared-randomness seed).
    pub tags: Vec<u64>,
    /// The index sets `S_Cl ⊂ [ℓ]`, one per cluster, derived from the tags.
    pub s_sets: Vec<Vec<usize>>,
    /// Length `ℓ` of the index universe.
    pub ell: usize,
    /// Maximum layer over all nodes (the cast stage count `D`).
    pub max_layer: u32,
    /// The start times that drove the growth (for reproducibility/testing).
    pub start_times: Vec<u64>,
    /// Members of every cluster, grouped by layer:
    /// `members_by_layer[c][l]` lists the layer-`l` members of cluster `c`.
    pub members_by_layer: Vec<Vec<Vec<usize>>>,
}

impl ClusterState {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// Number of nodes of the parent network.
    pub fn num_nodes(&self) -> usize {
        self.cluster_of.len()
    }

    /// All members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.members_by_layer[c].iter().flatten().copied().collect()
    }

    /// Members of cluster `c` at layer `l` (empty past the cluster radius).
    pub fn members_at_layer(&self, c: usize, l: u32) -> &[usize] {
        self.members_by_layer[c]
            .get(l as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Radius (maximum layer) of cluster `c`.
    pub fn radius(&self, c: usize) -> u32 {
        (self.members_by_layer[c].len() as u32).saturating_sub(1)
    }

    /// Whether index `j` belongs to `S_Cl` of cluster `c`.
    pub fn in_s_set(&self, c: usize, j: usize) -> bool {
        self.s_sets[c].binary_search(&j).is_ok()
    }

    /// Cluster sizes.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        (0..self.num_clusters())
            .map(|c| self.members(c).len())
            .collect()
    }

    /// Converts to the centralized [`radio_graph::Clustering`] representation
    /// so the `radio-graph` lemma checkers and the cluster-graph builder can
    /// be reused on distributed output.
    pub fn to_graph_clustering(&self) -> radio_graph::Clustering {
        radio_graph::Clustering {
            beta: self.beta,
            cluster_of: self.cluster_of.clone(),
            centers: self.centers.clone(),
            layer: self.layer.clone(),
            start_times: self.start_times.clone(),
            joined_round: self
                .start_times
                .iter()
                .zip(&self.layer)
                .zip(&self.cluster_of)
                .map(|((_, &l), &c)| self.start_times[self.centers[c]] + l as u64)
                .collect(),
        }
    }

    /// The quotient (cluster) graph `G*` implied by this clustering on the
    /// given parent topology.
    pub fn quotient_graph(&self, parent: &radio_graph::Graph) -> radio_graph::Graph {
        let mut b = radio_graph::GraphBuilder::new(self.num_clusters());
        for (u, v) in parent.edges() {
            let cu = self.cluster_of[u];
            let cv = self.cluster_of[v];
            if cu != cv {
                b.add_edge(cu, cv);
            }
        }
        b.build()
    }

    /// Structural validation (mirrors `radio_graph::Clustering::validate`
    /// plus the cast prerequisites).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if self.layer.len() != n || self.start_times.len() != n {
            return Err("length mismatch".into());
        }
        if self.s_sets.len() != self.num_clusters() || self.tags.len() != self.num_clusters() {
            return Err("per-cluster data length mismatch".into());
        }
        for (c, &center) in self.centers.iter().enumerate() {
            if self.cluster_of[center] != c || self.layer[center] != 0 {
                return Err(format!("bad center for cluster {c}"));
            }
        }
        for v in 0..n {
            let c = self.cluster_of[v];
            if c >= self.num_clusters() {
                return Err(format!("vertex {v} has out-of-range cluster"));
            }
            let l = self.layer[v];
            if !self.members_at_layer(c, l).contains(&v) {
                return Err(format!("vertex {v} missing from members_by_layer"));
            }
            if l > self.max_layer {
                return Err(format!("vertex {v} has layer beyond max_layer"));
            }
        }
        for (c, s) in self.s_sets.iter().enumerate() {
            if s.is_empty() {
                return Err(format!("cluster {c} has an empty index set"));
            }
            if s.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("cluster {c} index set not sorted/unique"));
            }
            if s.iter().any(|&j| j >= self.ell) {
                return Err(format!("cluster {c} index out of range"));
            }
        }
        Ok(())
    }
}

/// Expands a cluster tag into its index set `S_Cl ⊂ [ℓ]`, including each
/// index independently with probability `1/contention`, and always at least
/// one index (resampling a single deterministic fallback otherwise) so that
/// casts can never strand a cluster.
pub fn expand_tag_to_s_set(tag: u64, ell: usize, contention: usize) -> Vec<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(tag);
    let p = 1.0 / contention.max(1) as f64;
    let mut set: Vec<usize> = (0..ell).filter(|_| rng.gen_bool(p)).collect();
    if set.is_empty() {
        set.push((tag % ell as u64) as usize);
    }
    set
}

/// Runs the distributed MPX clustering protocol of Lemma 2.5 on `net`.
///
/// Energy per node is `O(rounds) = O(log n / β)` Local-Broadcast
/// participations (every not-yet-clustered node listens each round, every
/// clustered node sends each round), matching the lemma's accounting.
pub fn cluster_distributed<R: Rng + ?Sized>(
    net: &mut dyn RadioStack,
    config: &ClusteringConfig,
    rng: &mut R,
) -> ClusterState {
    let n = net.num_nodes();
    let global_n = net.global_n();
    let rounds = config.rounds(global_n);

    // Each device samples its start time locally.
    let start_times: Vec<u64> = (0..n)
        .map(|_| start_time(global_n, config.beta, sample_exponential(config.beta, rng)))
        .collect();

    let mut cluster_of = vec![usize::MAX; n];
    let mut layer = vec![0u32; n];
    let mut centers: Vec<usize> = Vec::new();
    let mut tags: Vec<u64> = Vec::new();

    let mut by_start: Vec<usize> = (0..n).collect();
    by_start.sort_by_key(|&v| start_times[v]);
    let mut next_start_idx = 0usize;
    let mut clustered_count = 0usize;
    // One frame reused across every growth round.
    let mut frame = net.new_frame();

    for round in 1..=rounds {
        if clustered_count == n {
            break;
        }
        // New centers: unclustered vertices whose start time has arrived.
        while next_start_idx < n && start_times[by_start[next_start_idx]] <= round {
            let v = by_start[next_start_idx];
            next_start_idx += 1;
            if cluster_of[v] == usize::MAX {
                cluster_of[v] = centers.len();
                layer[v] = 0;
                centers.push(v);
                tags.push(rng.gen());
                clustered_count += 1;
            }
        }
        if centers.is_empty() {
            continue;
        }
        // One Local-Broadcast: clustered vertices advertise
        // (cluster id, layer, tag); unclustered vertices listen.
        frame.clear();
        for v in 0..n {
            let c = cluster_of[v];
            if c != usize::MAX {
                frame.add_sender(v, Msg::words(&[c as u64, layer[v] as u64, tags[c]]));
            } else {
                frame.add_receiver(v);
            }
        }
        if frame.receivers().is_empty() {
            break;
        }
        net.local_broadcast(&mut frame);
        for (v, m) in frame.delivered().iter() {
            if cluster_of[v] == usize::MAX {
                let c = m.word(0) as usize;
                cluster_of[v] = c;
                layer[v] = m.word(1) as u32 + 1;
                clustered_count += 1;
            }
        }
    }

    // Vertices never reached (disconnected, or unlucky delivery failures past
    // the horizon) become singleton clusters, as they would by starting their
    // own cluster once their start time arrives.
    for v in 0..n {
        if cluster_of[v] == usize::MAX {
            cluster_of[v] = centers.len();
            layer[v] = 0;
            centers.push(v);
            tags.push(rng.gen());
        }
    }

    let num_clusters = centers.len();
    let contention = config.contention_bound(global_n);
    let ell = config.ell(global_n);
    let s_sets: Vec<Vec<usize>> = tags
        .iter()
        .map(|&t| expand_tag_to_s_set(t, ell, contention))
        .collect();

    let max_layer = layer.iter().copied().max().unwrap_or(0);
    let mut members_by_layer: Vec<Vec<Vec<usize>>> = vec![Vec::new(); num_clusters];
    for v in 0..n {
        let c = cluster_of[v];
        let l = layer[v] as usize;
        if members_by_layer[c].len() <= l {
            members_by_layer[c].resize(l + 1, Vec::new());
        }
        members_by_layer[c][l].push(v);
    }

    ClusterState {
        beta: config.beta,
        cluster_of,
        layer,
        centers,
        tags,
        s_sets,
        ell,
        max_layer,
        start_times,
        members_by_layer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackBuilder;
    use radio_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn config_parameters_are_sane() {
        let cfg = ClusteringConfig::new(8);
        assert_eq!(cfg.inverse_beta(), 8);
        assert!(cfg.contention_bound(1000) >= 2);
        assert!(cfg.ell(1000) >= cfg.contention_bound(1000));
        assert!(cfg.rounds(1000) >= 8);
    }

    #[test]
    fn distributed_clustering_partitions_and_validates() {
        let g = generators::grid(12, 12);
        let mut net = StackBuilder::new(g.clone()).build();
        let cfg = ClusteringConfig::new(4);
        let mut r = rng(1);
        let state = cluster_distributed(&mut net, &cfg, &mut r);
        assert_eq!(state.num_nodes(), 144);
        assert_eq!(state.cluster_sizes().iter().sum::<usize>(), 144);
        state.validate().expect("valid state");
        // Cross-check against the centralized structural validator.
        state
            .to_graph_clustering()
            .validate(&g)
            .expect("centralized invariants hold for distributed output");
    }

    #[test]
    fn clusters_are_connected_and_radius_bounded() {
        let g = generators::grid(15, 15);
        let mut net = StackBuilder::new(g.clone()).build();
        let cfg = ClusteringConfig::new(5);
        let mut r = rng(2);
        let state = cluster_distributed(&mut net, &cfg, &mut r);
        let bound = (4.0 * (g.num_nodes() as f64).ln() / cfg.beta).ceil() as u32;
        assert!(state.max_layer <= bound);
        // Connectivity within each cluster: every member is reachable from
        // the center through same-cluster vertices (validated by layer
        // structure in validate(), but double-check via BFS).
        for c in 0..state.num_clusters() {
            let members: std::collections::HashSet<_> = state.members(c).into_iter().collect();
            let active: Vec<bool> = (0..g.num_nodes()).map(|v| members.contains(&v)).collect();
            let dist = radio_graph::bfs::restricted_bfs(&g, &[state.centers[c]], &active);
            for &m in &members {
                assert_ne!(
                    dist[m],
                    radio_graph::INFINITY,
                    "cluster {c} disconnected at {m}"
                );
            }
        }
    }

    #[test]
    fn energy_is_bounded_by_round_count() {
        let g = generators::grid(10, 10);
        let mut net = StackBuilder::new(g).build();
        let cfg = ClusteringConfig::new(4);
        let mut r = rng(3);
        let _ = cluster_distributed(&mut net, &cfg, &mut r);
        // Lemma 2.5: at most `rounds` Local-Broadcasts, every vertex
        // participates in each at most once.
        assert!(net.lb_time() <= cfg.rounds(net.global_n()));
        assert!(net.max_lb_energy() <= net.lb_time());
    }

    #[test]
    fn lossy_delivery_still_yields_valid_partition() {
        let g = generators::grid(8, 8);
        let mut net = StackBuilder::new(g)
            .with_failures(0.3)
            .with_seed(99)
            .build();
        let cfg = ClusteringConfig::new(3);
        let mut r = rng(4);
        let state = cluster_distributed(&mut net, &cfg, &mut r);
        state.validate().expect("partition survives lossy delivery");
        assert_eq!(state.cluster_sizes().iter().sum::<usize>(), 64);
    }

    #[test]
    fn tag_expansion_is_deterministic_and_in_range() {
        let s1 = expand_tag_to_s_set(12345, 64, 4);
        let s2 = expand_tag_to_s_set(12345, 64, 4);
        assert_eq!(s1, s2);
        assert!(!s1.is_empty());
        assert!(s1.iter().all(|&j| j < 64));
        // Different tags give (almost surely) different sets.
        let s3 = expand_tag_to_s_set(54321, 64, 4);
        assert_ne!(s1, s3);
    }

    #[test]
    fn expected_s_set_size_tracks_contention() {
        let ell = 400;
        let contention = 8;
        let sizes: Vec<usize> = (0..200u64)
            .map(|t| expand_tag_to_s_set(t, ell, contention).len())
            .collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let expected = ell as f64 / contention as f64;
        assert!(
            (mean - expected).abs() < 0.2 * expected,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn larger_beta_gives_more_clusters() {
        let g = generators::grid(16, 16);
        let count = |inv_beta: u64, seed: u64| {
            let mut net = StackBuilder::new(g.clone()).build();
            let cfg = ClusteringConfig::new(inv_beta);
            let mut r = rng(seed);
            cluster_distributed(&mut net, &cfg, &mut r).num_clusters()
        };
        let many: usize = (0..5).map(|s| count(2, s)).sum();
        let few: usize = (0..5).map(|s| count(16, 100 + s)).sum();
        assert!(many > few, "β=1/2 gave {many}, β=1/16 gave {few}");
    }

    #[test]
    fn singleton_graph_clusters_trivially() {
        let g = radio_graph::Graph::from_edges(1, &[]);
        let mut net = StackBuilder::new(g).build();
        let cfg = ClusteringConfig::new(2);
        let mut r = rng(6);
        let state = cluster_distributed(&mut net, &cfg, &mut r);
        assert_eq!(state.num_clusters(), 1);
        assert_eq!(state.max_layer, 0);
        state.validate().unwrap();
    }
}
