//! Simulating a radio network on the cluster graph `G*` (paper, Lemma 3.2).
//!
//! [`VirtualClusterNet`] exposes the cluster graph as a [`RadioStack`]
//! whose nodes are clusters. A Local-Broadcast call on `G*` with sending
//! clusters `S` and receiving clusters `R` is simulated by:
//!
//! 1. a Down-cast in every `C ∈ S`, so every member of `C` learns `m_C`;
//! 2. one Local-Broadcast on the parent network with senders
//!    `⋃_{C∈S} C` and receivers `⋃_{C'∈R} C'`;
//! 3. an Up-cast in every `C ∈ R`, delivering one received message to the
//!    cluster center.
//!
//! Because the result is itself a `RadioStack`, any algorithm written
//! against the abstraction — including the recursive BFS of Section 4 and
//! the distributed clustering itself — runs unchanged on `G*`, at the cost
//! of `O(log n)` extra Local-Broadcast participations per underlying device
//! per virtual call, exactly the overhead the paper charges in
//! equation (3).

use radio_sim::{NodeSet, NodeSlots};

use crate::cast::{down_cast_with, up_cast_into, CastScratch};
use crate::clustering::ClusterState;
use crate::lb::LbFrame;
use crate::ledger::LbLedger;
use crate::message::Msg;
use crate::stack::{Capabilities, EnergyView, RadioStack};

/// A virtual radio network whose nodes are the clusters of a
/// [`ClusterState`] over some parent [`RadioStack`].
///
/// The net owns the scratch buffers for the parent-level plumbing — one
/// parent-sized [`LbFrame`] driven through both casts and the crossing
/// call, a holder arena for the crossing deliveries, and the participating
/// cluster set — so a long sequence of virtual calls (the normal case in
/// the recursive BFS) allocates nothing per call.
pub struct VirtualClusterNet<'a> {
    parent: &'a mut dyn RadioStack,
    state: &'a ClusterState,
    ledger: LbLedger,
    global_n: usize,
    /// Scratch frame over the parent's nodes, reused by every cast and
    /// crossing Local-Broadcast of every virtual call.
    parent_frame: LbFrame,
    /// Crossing-call deliveries, held while `parent_frame` is reused by the
    /// up-cast (swapped, not cloned).
    crossed: NodeSlots<Msg>,
    /// Receiving clusters of the current call.
    participating: NodeSet,
    /// Holder arena + step-schedule buffers shared by both casts.
    cast_scratch: CastScratch,
    /// Up-cast output over the cluster universe, swapped into the virtual
    /// frame's delivery arena (not cloned).
    at_centers: NodeSlots<Msg>,
}

impl<'a> VirtualClusterNet<'a> {
    /// Wraps `parent` with the clustering `state`.
    pub fn new(parent: &'a mut dyn RadioStack, state: &'a ClusterState) -> Self {
        let global_n = parent.global_n();
        let ledger = LbLedger::new(state.num_clusters());
        let parent_frame = parent.new_frame();
        let crossed = NodeSlots::new(parent.num_nodes());
        let participating = NodeSet::new(state.num_clusters());
        let cast_scratch = CastScratch::new(parent.num_nodes());
        let at_centers = NodeSlots::new(state.num_clusters());
        VirtualClusterNet {
            parent,
            state,
            ledger,
            global_n,
            parent_frame,
            crossed,
            participating,
            cast_scratch,
            at_centers,
        }
    }

    /// The clustering this network is built on.
    pub fn state(&self) -> &ClusterState {
        self.state
    }

    /// The virtual ledger (energy/time of the *clusters*, in virtual LB
    /// units). The parent's ledger keeps charging the real devices.
    pub fn ledger(&self) -> &LbLedger {
        &self.ledger
    }

    /// The parent's capability descriptor. Note the contrast with
    /// [`RadioStack::capabilities`] *on this net*, which always reports the
    /// plain no-CD abstraction: the virtual layer cannot propagate channel
    /// verdicts through cluster centers, whatever the parent can do.
    pub fn parent_capabilities(&self) -> Capabilities {
        self.parent.capabilities()
    }

    /// A read-only snapshot of the parent's energy counters — for measuring
    /// what a sequence of virtual calls costs the real devices (the
    /// equation (3) accounting), without handing out the parent itself.
    ///
    /// This deliberately replaces the old `parent_mut` accessor: exposing
    /// `&mut dyn RadioStack` let callers issue raw Local-Broadcasts on the
    /// parent mid-virtual-call, bypassing the cast discipline and the
    /// capability checks of [`crate::protocol::Protocol::run`]. Interleaved
    /// real/virtual phases (as in the recursive BFS) should instead hold the
    /// parent themselves and scope the `VirtualClusterNet` borrow to the
    /// virtual phase.
    pub fn parent_energy_view(&self) -> EnergyView {
        self.parent.energy_view()
    }
}

impl RadioStack for VirtualClusterNet<'_> {
    fn num_nodes(&self) -> usize {
        self.state.num_clusters()
    }

    fn global_n(&self) -> usize {
        self.global_n
    }

    fn capabilities(&self) -> Capabilities {
        // The virtual layer exposes the paper's plain Local-Broadcast
        // abstraction regardless of what the parent can do: casts cannot
        // propagate channel verdicts through cluster centers, so the
        // feedback lane stays empty and CD is reported as absent. Slot-level
        // counters likewise live on the (possibly physical) parent.
        Capabilities {
            collision_detection: radio_sim::CollisionDetection::None,
            energy_model: radio_sim::EnergyModel::Uniform,
            physical: false,
            ledger: true,
        }
    }

    fn local_broadcast(&mut self, frame: &mut LbFrame) {
        frame.clear_delivered();
        self.ledger
            .record_call(frame.senders().keys().iter(), frame.receivers().iter());

        // Step 1: Down-cast the senders' messages within their clusters.
        let holding = down_cast_with(
            &mut *self.parent,
            self.state,
            frame.senders(),
            &mut self.parent_frame,
            &mut self.cast_scratch,
        );

        // Step 2: one Local-Broadcast on the parent network between the
        // member sets (walked layer by layer — the member lists live in
        // per-layer buckets, so no flattened copy is materialised).
        self.parent_frame.clear();
        for (c, _) in frame.senders().iter() {
            for layer in 0..=self.state.radius(c) {
                for &v in self.state.members_at_layer(c, layer) {
                    if let Some(m) = &holding[v] {
                        self.parent_frame.add_sender(v, m.clone());
                    }
                }
            }
        }
        for c in frame.receivers().iter() {
            if frame.senders().contains(c) {
                continue;
            }
            for layer in 0..=self.state.radius(c) {
                for &v in self.state.members_at_layer(c, layer) {
                    self.parent_frame.add_receiver(v);
                }
            }
        }
        if !(self.parent_frame.senders().is_empty() && self.parent_frame.receivers().is_empty()) {
            self.parent.local_broadcast(&mut self.parent_frame);
        }
        // Hold the crossing deliveries while the frame is reused below.
        self.crossed.clear();
        self.parent_frame.swap_delivered(&mut self.crossed);

        // Step 3: Up-cast within the receiving clusters (receivers minus
        // senders, word-parallel).
        self.participating.copy_from(frame.receivers());
        self.participating.difference_with(frame.senders().keys());
        up_cast_into(
            &mut *self.parent,
            self.state,
            &self.participating,
            &self.crossed,
            &mut self.parent_frame,
            &mut self.cast_scratch,
            &mut self.at_centers,
        );
        frame.swap_delivered(&mut self.at_centers);
    }

    fn lb_energy(&self, v: usize) -> u64 {
        self.ledger.participations(v)
    }

    fn lb_time(&self) -> u64 {
        self.ledger.calls()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster_distributed, ClusteringConfig};
    use crate::lb::local_broadcast_once;
    use crate::stack::{Stack, StackBuilder};
    use radio_graph::bfs::bfs_distances;
    use radio_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(g: radio_graph::Graph, inv_beta: u64, seed: u64) -> (Stack, ClusterState) {
        let mut net = StackBuilder::new(g).build();
        let cfg = ClusteringConfig::new(inv_beta);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let state = cluster_distributed(&mut net, &cfg, &mut rng);
        (net, state)
    }

    #[test]
    fn virtual_lb_delivers_between_adjacent_clusters() {
        let g = generators::grid(10, 10);
        let (mut net, state) = setup(g.clone(), 3, 1);
        let quotient = state.quotient_graph(&g);
        if quotient.num_edges() == 0 {
            return; // single cluster; nothing to test with this seed
        }
        let (a, b) = quotient.edges().next().unwrap();
        let mut virt = VirtualClusterNet::new(&mut net, &state);
        let out = local_broadcast_once(&mut virt, &[(a, Msg::words(&[77]))], &[b]);
        assert_eq!(out.get(b).map(|m| m.word(0)), Some(77));
        assert_eq!(virt.lb_time(), 1);
        assert_eq!(virt.lb_energy(a), 1);
        assert_eq!(virt.lb_energy(b), 1);
    }

    #[test]
    fn virtual_lb_does_not_deliver_between_non_adjacent_clusters() {
        let g = generators::path(40);
        let (mut net, state) = setup(g.clone(), 4, 2);
        let quotient = state.quotient_graph(&g);
        if quotient.num_nodes() < 3 {
            return;
        }
        // Find two clusters at quotient distance ≥ 2.
        let d = bfs_distances(&quotient, 0);
        let Some(far) =
            (0..quotient.num_nodes()).find(|&c| d[c] >= 2 && d[c] != radio_graph::INFINITY)
        else {
            return;
        };
        let mut virt = VirtualClusterNet::new(&mut net, &state);
        let out = local_broadcast_once(&mut virt, &[(0usize, Msg::words(&[5]))], &[far]);
        assert!(out.is_empty());
    }

    #[test]
    fn virtual_lb_matches_quotient_graph_semantics() {
        // Flood one virtual LB from every cluster simultaneously and check
        // that exactly the quotient-graph neighbours of a receiving cluster
        // can be heard.
        let g = generators::grid(9, 9);
        let (mut net, state) = setup(g.clone(), 3, 3);
        let quotient = state.quotient_graph(&g);
        let k = quotient.num_nodes();
        if k < 2 {
            return;
        }
        for target in 0..k.min(4) {
            let mut virt = VirtualClusterNet::new(&mut net, &state);
            let senders: Vec<(usize, Msg)> = (0..k)
                .filter(|&c| c != target)
                .map(|c| (c, Msg::words(&[c as u64])))
                .collect();
            let out = local_broadcast_once(&mut virt, &senders, &[target]);
            if quotient.degree(target) > 0 {
                let heard = out.get(target).expect("adjacent sender exists").word(0) as usize;
                assert!(
                    quotient.has_edge(target, heard),
                    "cluster {target} heard non-neighbour {heard}"
                );
            } else {
                assert!(out.is_empty());
            }
        }
    }

    #[test]
    fn parent_devices_pay_logarithmic_overhead_per_virtual_call() {
        // Lemma 3.2: each vertex of G participates in O(log n)
        // Local-Broadcasts per simulated call on G*.
        let g = generators::grid(12, 12);
        let (mut net, state) = setup(g.clone(), 4, 4);
        let quotient = state.quotient_graph(&g);
        if quotient.num_edges() == 0 {
            return;
        }
        let before: Vec<u64> = (0..g.num_nodes()).map(|v| net.lb_energy(v)).collect();
        let (a, b) = quotient.edges().next().unwrap();
        {
            let mut virt = VirtualClusterNet::new(&mut net, &state);
            let _ = local_broadcast_once(&mut virt, &[(a, Msg::words(&[1]))], &[b]);
        }
        // One virtual call = down-cast + one crossing LB + up-cast; each
        // cast charges a vertex at most one participation per index of its
        // cluster's S_Cl per stage it takes part in (≤ 2 stages), so
        // 4·max|S_Cl| + 2 bounds the whole call whatever ℓ-constant the
        // clustering config picked. |S_Cl| = O(log n), as Lemma 3.2 charges.
        let max_s = state.s_sets.iter().map(|s| s.len()).max().unwrap_or(0) as u64;
        let budget = 4 * max_s + 2;
        for (v, &already_used) in before.iter().enumerate() {
            let used = net.lb_energy(v) - already_used;
            assert!(
                used <= budget,
                "vertex {v} paid {used} parent participations for one virtual call (budget {budget})"
            );
        }
    }

    #[test]
    fn parent_accessors_expose_counters_and_capabilities_read_only() {
        // The narrowed replacement for the old `parent_mut`: mid-virtual-
        // phase callers can observe the parent's energy and capabilities but
        // cannot issue raw parent Local-Broadcasts around the cast
        // discipline.
        let g = generators::grid(8, 8);
        let (mut net, state) = setup(g.clone(), 3, 6);
        let quotient = state.quotient_graph(&g);
        if quotient.num_edges() == 0 {
            return;
        }
        let (a, b) = quotient.edges().next().unwrap();
        let mut virt = VirtualClusterNet::new(&mut net, &state);
        assert!(!virt.parent_capabilities().physical);
        assert!(virt.parent_capabilities().ledger);
        let before = virt.parent_energy_view();
        let _ = local_broadcast_once(&mut virt, &[(a, Msg::words(&[9]))], &[b]);
        let spent = virt.parent_energy_view().diff(&before);
        // The virtual call charged real devices (down-cast + crossing call +
        // up-cast), all visible through the read-only view.
        assert!(spent.lb_time() >= 1);
        assert!(spent.max_lb_energy() >= 1);
        // The virtual layer itself still reports the plain abstraction.
        assert!(!virt.capabilities().collision_detection.is_receiver());
    }

    #[test]
    fn clustering_can_run_recursively_on_the_virtual_network() {
        // The key compositional property behind Recursive-BFS: the virtual
        // cluster network is itself a RadioStack, so the distributed MPX
        // clustering runs on it unchanged.
        let g = generators::grid(12, 12);
        let (mut net, state) = setup(g.clone(), 3, 5);
        if state.num_clusters() < 4 {
            return;
        }
        let mut virt = VirtualClusterNet::new(&mut net, &state);
        let cfg = ClusteringConfig::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let second_level = cluster_distributed(&mut virt, &cfg, &mut rng);
        second_level
            .validate()
            .expect("second-level clustering is valid");
        assert_eq!(second_level.num_nodes(), state.num_clusters());
        assert!(second_level.num_clusters() <= state.num_clusters());
        // Second-level clusters must be connected in the quotient graph.
        let quotient = state.quotient_graph(&g);
        for c in 0..second_level.num_clusters() {
            let members: std::collections::HashSet<_> =
                second_level.members(c).into_iter().collect();
            let active: Vec<bool> = (0..quotient.num_nodes())
                .map(|v| members.contains(&v))
                .collect();
            let dist =
                radio_graph::bfs::restricted_bfs(&quotient, &[second_level.centers[c]], &active);
            for &m in &members {
                assert_ne!(
                    dist[m],
                    radio_graph::INFINITY,
                    "second-level cluster {c} is disconnected in G*"
                );
            }
        }
    }
}
