//! The capability-typed `RadioStack` API: one trait surface for backends,
//! energy accounting, and collision detection.
//!
//! Historically this crate exposed an `LbNetwork` trait whose two backends
//! hid everything but deliveries: channel feedback never crossed the trait
//! boundary (so no protocol could exploit receiver-side collision
//! detection, even though the simulator resolves Silence/Noise), and energy
//! accounting was split across three ad-hoc surfaces (`LbLedger`,
//! `EnergyMeter`, and `EnergySummary::of`/`of_physical` in `energy-bfs`).
//! [`RadioStack`] supersedes it with three additions:
//!
//! * a [`Capabilities`] descriptor — what the stack can do (collision
//!   detection: none or receiver-side; energy model: `listen = transmit` or
//!   weighted; whether slot-level physical counters and a per-node ledger
//!   exist) — so generic code can branch on capabilities instead of
//!   downcasting to concrete backends;
//! * a unified [`EnergyView`] snapshot/diff API that subsumes the ledger
//!   and the meter: one call captures LB-unit *and* (when capable)
//!   slot-level counters, and `view.diff(&earlier)` measures any phase of a
//!   longer run under any energy model;
//! * per-call channel feedback surfaced through the frame's feedback lane
//!   (`LbFrame::feedback`), so protocols running on a CD-capable stack can
//!   branch on [`radio_sim::LbFeedback`] verdicts.
//!
//! [`StackBuilder`] is the one way examples, tests, and the scenario runner
//! construct stacks:
//!
//! ```
//! use radio_protocols::{RadioStack, StackBuilder};
//! use radio_sim::EnergyModel;
//!
//! let g = radio_graph::generators::grid(4, 4);
//! // The paper's accounting backend:
//! let mut abstract_stack = StackBuilder::new(g.clone()).build();
//! // A slot-accurate physical stack with receiver-side CD and a radio
//! // whose transmissions cost 3x a listen:
//! let mut cd_stack = StackBuilder::new(g)
//!     .physical(EnergyModel::Weighted { listen: 1, transmit: 3 })
//!     .with_cd()
//!     .with_seed(42)
//!     .build();
//! assert!(cd_stack.capabilities().collision_detection.is_receiver());
//! let view = cd_stack.energy_view();
//! assert_eq!(view.max_lb_energy(), 0);
//! # let _ = abstract_stack.new_frame();
//! ```

use std::sync::Arc;

use radio_graph::Graph;
use radio_sim::{CollisionDetection, DecayParams, EnergyModel};

use crate::lb::{AbstractLbNetwork, LbFrame, PhysicalLbNetwork};

/// What a [`RadioStack`] is capable of — the coordinates of the backend ×
/// collision-detection × energy-model matrix (see ARCHITECTURE.md for the
/// full table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capabilities {
    /// Whether receivers can distinguish silence from collisions, i.e.
    /// whether the frame's feedback lane is populated after a call.
    pub collision_detection: CollisionDetection,
    /// How listening/transmitting slots convert into physical energy.
    /// Always [`EnergyModel::Uniform`] on abstract stacks (LB units have no
    /// slot-level structure to weight).
    pub energy_model: EnergyModel,
    /// Whether slot-level counters exist ([`EnergyView::physical_energy`]
    /// returns `Some`): true exactly for Decay-expanding physical backends.
    pub physical: bool,
    /// Whether per-node LB-unit accounting is recorded. Stacks built
    /// `without_ledger` report zero LB energy/time (useful only for raw
    /// delivery benchmarks).
    pub ledger: bool,
}

impl Capabilities {
    /// The empty requirement/weakest capability set: no collision detection,
    /// uniform energy model, no physical counters, no ledger. As a
    /// [`crate::protocol::Protocol::requires`] descriptor this means "runs
    /// on any stack"; every concrete stack satisfies it.
    pub fn baseline() -> Self {
        Capabilities {
            collision_detection: CollisionDetection::None,
            energy_model: EnergyModel::Uniform,
            physical: false,
            ledger: false,
        }
    }

    /// Whether a stack with these capabilities satisfies `required`,
    /// interpreting `required` field-wise as lower bounds: receiver-side
    /// collision detection, physical counters, and the ledger are required
    /// only when set in `required`; the energy model is descriptive, never a
    /// requirement (any model satisfies any other).
    pub fn satisfies(&self, required: &Capabilities) -> bool {
        (!required.collision_detection.is_receiver() || self.collision_detection.is_receiver())
            && (!required.physical || self.physical)
            && (!required.ledger || self.ledger)
    }

    /// A human-readable rendering of these capabilities *as a requirement*,
    /// for [`crate::protocol::ProtocolError::MissingCapability`] messages.
    /// Every required component is named, so the message points at the
    /// right builder call whichever field actually failed the gate.
    pub fn requirement_label(&self) -> String {
        let mut parts = Vec::new();
        if self.collision_detection.is_receiver() {
            parts.push("receiver-side collision detection (build the stack `with_cd()`)");
        }
        if self.physical {
            parts.push("slot-level physical counters (a `physical(...)` stack)");
        }
        if self.ledger {
            parts.push("per-node LB accounting (a stack built with its ledger)");
        }
        if parts.is_empty() {
            "no particular capabilities".to_string()
        } else {
            parts.join(" plus ")
        }
    }

    /// A compact label, e.g. `abstract`, `physical`, `physical_cd` — used by
    /// scenario records and capability tables.
    pub fn label(&self) -> String {
        let base = if self.physical {
            "physical"
        } else {
            "abstract"
        };
        match self.collision_detection {
            CollisionDetection::None => base.to_string(),
            CollisionDetection::Receiver => format!("{base}_cd"),
        }
    }
}

/// An owned snapshot of a stack's energy/time counters, in LB units plus —
/// on physically-capable stacks — slot-level counters.
///
/// Snapshots are cheap (two or four `Vec<u64>` copies), order totally by
/// time, and subtract: `later.diff(&earlier)` isolates one phase of a run.
/// This is the single surface that replaces reading `LbLedger` and
/// `EnergyMeter` separately.
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyView {
    lb_participations: Vec<u64>,
    lb_sends: Vec<u64>,
    lb_calls: u64,
    physical: Option<PhysicalCounters>,
    energy_model: EnergyModel,
}

/// Slot-level counters of a physical stack.
#[derive(Clone, Debug, PartialEq)]
struct PhysicalCounters {
    listen: Vec<u64>,
    transmit: Vec<u64>,
    slots: u64,
}

impl EnergyView {
    /// A view holding only LB-unit counters (what the default
    /// [`RadioStack::energy_view`] produces).
    pub fn lb_only(participations: Vec<u64>, sends: Vec<u64>, calls: u64) -> Self {
        assert_eq!(participations.len(), sends.len());
        EnergyView {
            lb_participations: participations,
            lb_sends: sends,
            lb_calls: calls,
            physical: None,
            energy_model: EnergyModel::Uniform,
        }
    }

    /// Extends an LB-only view with slot-level counters under `model`.
    pub fn with_physical(
        mut self,
        listen: Vec<u64>,
        transmit: Vec<u64>,
        slots: u64,
        model: EnergyModel,
    ) -> Self {
        assert_eq!(listen.len(), self.lb_participations.len());
        assert_eq!(transmit.len(), self.lb_participations.len());
        self.physical = Some(PhysicalCounters {
            listen,
            transmit,
            slots,
        });
        self.energy_model = model;
        self
    }

    /// Number of nodes covered.
    pub fn nodes(&self) -> usize {
        self.lb_participations.len()
    }

    /// The energy model slot-level counters are weighted under.
    pub fn energy_model(&self) -> EnergyModel {
        self.energy_model
    }

    /// Energy of node `v` in LB units (calls participated in).
    pub fn lb_energy(&self, v: usize) -> u64 {
        self.lb_participations[v]
    }

    /// Calls in which node `v` was a sender.
    pub fn lb_sends(&self, v: usize) -> u64 {
        self.lb_sends[v]
    }

    /// Time in LB units (total calls).
    pub fn lb_time(&self) -> u64 {
        self.lb_calls
    }

    /// Maximum per-node LB-unit energy — the paper's energy measure.
    pub fn max_lb_energy(&self) -> u64 {
        self.lb_participations.iter().copied().max().unwrap_or(0)
    }

    /// Sum of LB-unit energy over all nodes.
    pub fn total_lb_energy(&self) -> u64 {
        self.lb_participations.iter().sum()
    }

    /// Mean per-node LB-unit energy.
    pub fn mean_lb_energy(&self) -> f64 {
        if self.nodes() == 0 {
            0.0
        } else {
            self.total_lb_energy() as f64 / self.nodes() as f64
        }
    }

    /// Whether slot-level counters are present.
    pub fn has_physical(&self) -> bool {
        self.physical.is_some()
    }

    /// Physical energy of node `v` under the view's energy model (equals
    /// listening + transmitting slots under [`EnergyModel::Uniform`]), or
    /// `None` on LB-only views.
    pub fn physical_energy(&self, v: usize) -> Option<u64> {
        self.physical
            .as_ref()
            .map(|p| self.energy_model.cost(p.listen[v], p.transmit[v]))
    }

    /// Maximum per-node physical energy, when available.
    pub fn max_physical_energy(&self) -> Option<u64> {
        self.physical.as_ref().map(|p| {
            (0..p.listen.len())
                .map(|v| self.energy_model.cost(p.listen[v], p.transmit[v]))
                .max()
                .unwrap_or(0)
        })
    }

    /// Elapsed physical slots, when available.
    pub fn physical_slots(&self) -> Option<u64> {
        self.physical.as_ref().map(|p| p.slots)
    }

    /// Raw listening slots of node `v` (model-independent), or `None` on
    /// LB-only views. Together with [`EnergyView::transmit_slots`] this
    /// exposes the counters [`EnergyView::physical_energy`] weights, so
    /// tests can recompute `listen_w · listens + transmit_w · transmits`
    /// independently.
    pub fn listen_slots(&self, v: usize) -> Option<u64> {
        self.physical.as_ref().map(|p| p.listen[v])
    }

    /// Raw transmitting slots of node `v` (model-independent), or `None`
    /// on LB-only views.
    pub fn transmit_slots(&self, v: usize) -> Option<u64> {
        self.physical.as_ref().map(|p| p.transmit[v])
    }

    /// Sum of per-node physical energy under the view's model, when
    /// available.
    pub fn total_physical_energy(&self) -> Option<u64> {
        self.physical.as_ref().map(|p| {
            (0..p.listen.len())
                .map(|v| self.energy_model.cost(p.listen[v], p.transmit[v]))
                .sum()
        })
    }

    /// The counter-wise difference `self − before`, for measuring one phase
    /// of a longer run (e.g. query energy after setup energy). Counters are
    /// monotone, so ordinary subtraction applies; panics if the views cover
    /// different node universes.
    pub fn diff(&self, before: &EnergyView) -> EnergyView {
        assert_eq!(self.nodes(), before.nodes(), "view universe mismatch");
        let sub = |a: &[u64], b: &[u64]| -> Vec<u64> {
            a.iter().zip(b).map(|(x, y)| x.saturating_sub(*y)).collect()
        };
        EnergyView {
            lb_participations: sub(&self.lb_participations, &before.lb_participations),
            lb_sends: sub(&self.lb_sends, &before.lb_sends),
            lb_calls: self.lb_calls.saturating_sub(before.lb_calls),
            physical: match (&self.physical, &before.physical) {
                (Some(a), Some(b)) => Some(PhysicalCounters {
                    listen: sub(&a.listen, &b.listen),
                    transmit: sub(&a.transmit, &b.transmit),
                    slots: a.slots.saturating_sub(b.slots),
                }),
                (a, _) => a.clone(),
            },
            energy_model: self.energy_model,
        }
    }
}

/// A network on which Local-Broadcast can be invoked — the one trait
/// surface every protocol, BFS driver, and experiment is written against.
///
/// Node identifiers are `0..num_nodes()`. `global_n()` is the common upper
/// bound "n" that all devices agree on (used for `w.h.p.` parameters); for
/// virtual cluster networks it remains the size of the *original* network,
/// as in the paper.
///
/// The trait is deliberately object-safe: the recursive BFS builds virtual
/// networks on top of virtual networks to an arbitrary, runtime-chosen
/// depth, so composition happens through `&mut dyn RadioStack` rather than
/// through generics. Concrete stacks are built with [`StackBuilder`];
/// [`crate::VirtualClusterNet`] layers a virtual stack over any parent.
pub trait RadioStack {
    /// Number of nodes in this (possibly virtual) network.
    fn num_nodes(&self) -> usize;

    /// The globally agreed upper bound `n ≥ |V|` of the underlying radio
    /// network; all polylogarithmic parameters are functions of this.
    fn global_n(&self) -> usize;

    /// What this stack can do. Protocols branch on this — e.g.
    /// [`crate::lb::local_broadcast_once`] works everywhere, while a
    /// CD-aware protocol checks `capabilities().collision_detection` before
    /// reading the frame's feedback lane.
    fn capabilities(&self) -> Capabilities;

    /// Executes one Local-Broadcast over `frame`: senders and receivers are
    /// read from the frame, and the message each receiver heard (if any) is
    /// written into `frame.delivered()` (cleared on entry). On CD-capable
    /// stacks, per-receiver verdicts additionally land in
    /// `frame.feedback()`.
    fn local_broadcast(&mut self, frame: &mut LbFrame);

    /// Energy of node `v` in Local-Broadcast units (number of calls on this
    /// network in which `v` participated). Zero on ledger-less stacks.
    fn lb_energy(&self, v: usize) -> u64;

    /// Time in Local-Broadcast units (number of calls on this network).
    fn lb_time(&self) -> u64;

    /// Maximum per-node energy in Local-Broadcast units.
    fn max_lb_energy(&self) -> u64 {
        (0..self.num_nodes())
            .map(|v| self.lb_energy(v))
            .max()
            .unwrap_or(0)
    }

    /// An owned snapshot of all energy/time counters. The default
    /// implementation captures LB units only; physically-capable backends
    /// override it to include slot-level counters, so one call sees
    /// everything regardless of backend.
    fn energy_view(&self) -> EnergyView {
        EnergyView::lb_only(
            (0..self.num_nodes()).map(|v| self.lb_energy(v)).collect(),
            vec![0; self.num_nodes()],
            self.lb_time(),
        )
    }

    /// Allocates a frame sized for this network. Callers should hold on to
    /// it and `clear`/refill across calls rather than allocating per call.
    fn new_frame(&self) -> LbFrame {
        LbFrame::new(self.num_nodes())
    }

    /// The simulator's bird's-eye view of the topology, when this stack
    /// has a concrete one. Protocols in the paper's KT1 setting (every
    /// node knows its neighbors) use it to precompute schedules — e.g.
    /// HyperBall targeting each sender's neighborhood instead of the whole
    /// vertex set. Virtual stacks return `None` (the default): their node
    /// ids do not name vertices of any concrete graph, and callers must
    /// fall back to all-node receiver sets.
    fn topology(&self) -> Option<&Graph> {
        None
    }
}

/// Which backend a [`StackBuilder`] produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Backend {
    Abstract,
    Physical,
}

/// The one way to construct a concrete [`RadioStack`].
///
/// Defaults: abstract backend (the paper's LB-unit accounting), no
/// collision detection, uniform energy model, per-node ledger on, seed 0.
#[derive(Clone, Debug)]
pub struct StackBuilder {
    graph: Arc<Graph>,
    backend: Backend,
    energy_model: EnergyModel,
    cd: CollisionDetection,
    ledger: bool,
    seed: u64,
    failure_prob: f64,
    global_n: Option<usize>,
    decay: Option<DecayParams>,
}

impl StackBuilder {
    /// Starts a builder over `graph` with the defaults above.
    ///
    /// Accepts either an owned [`Graph`] or an `Arc<Graph>`; pass a shared
    /// `Arc` when many stacks are built over one topology (e.g. the sweep
    /// runner's per-seed cells) so construction is a refcount bump rather
    /// than a CSR copy.
    pub fn new(graph: impl Into<Arc<Graph>>) -> Self {
        StackBuilder {
            graph: graph.into(),
            backend: Backend::Abstract,
            energy_model: EnergyModel::Uniform,
            cd: CollisionDetection::None,
            ledger: true,
            seed: 0,
            failure_prob: 0.0,
            global_n: None,
            decay: None,
        }
    }

    /// Selects the abstract accounting backend (the default): one unit of
    /// time per call, one unit of energy per participation — the exact
    /// accounting of Theorem 4.1.
    pub fn abstract_backend(mut self) -> Self {
        self.backend = Backend::Abstract;
        self
    }

    /// Selects the physical backend under the given energy model: every
    /// call expands into Decay slots (Lemma 2.4) on the slot-accurate
    /// simulator, so collisions and per-slot energy are fully modelled.
    pub fn physical(mut self, model: EnergyModel) -> Self {
        self.backend = Backend::Physical;
        self.energy_model = model;
        self
    }

    /// Enables receiver-side collision detection. On the physical backend
    /// Local-Broadcast switches to the CD-aware Decay variant
    /// ([`radio_sim::decay_local_broadcast_cd`]); on both backends the
    /// frame's feedback lane carries per-receiver verdicts after each call.
    pub fn with_cd(mut self) -> Self {
        self.cd = CollisionDetection::Receiver;
        self
    }

    /// Enables per-node LB-unit accounting (on by default; pairs with
    /// [`StackBuilder::without_ledger`]).
    pub fn with_ledger(mut self) -> Self {
        self.ledger = true;
        self
    }

    /// Disables per-node LB-unit accounting: `lb_energy`/`lb_time` report
    /// zero. Only for raw delivery benchmarks where the ledger writes are
    /// measurable overhead.
    pub fn without_ledger(mut self) -> Self {
        self.ledger = false;
        self
    }

    /// Seeds the stack's RNG (tie-breaking and failure draws on the
    /// abstract backend; Decay slot draws on the physical one).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-receiver delivery failure probability `f` injected by
    /// the abstract backend (the physical backend's failures arise from real
    /// collisions instead; it ignores this).
    pub fn with_failures(mut self, failure_prob: f64) -> Self {
        assert!((0.0..1.0).contains(&failure_prob));
        self.failure_prob = failure_prob;
        self
    }

    /// Overrides the globally known upper bound `n` (defaults to `|V|`).
    pub fn with_global_n(mut self, n: usize) -> Self {
        assert!(n >= self.graph.num_nodes());
        self.global_n = Some(n.max(2));
        self
    }

    /// Overrides the physical backend's Decay parameters (defaults to
    /// `Δ` = max degree, `f = n^{-3}`).
    pub fn with_decay_params(mut self, decay: DecayParams) -> Self {
        self.decay = Some(decay);
        self
    }

    /// Builds the stack.
    ///
    /// Panics if injected failures were requested on the physical backend
    /// (its losses arise from real collisions; silently dropping the
    /// configured probability would mislabel a reliable run as lossy).
    pub fn build(self) -> Stack {
        assert!(
            self.failure_prob == 0.0 || self.backend == Backend::Abstract,
            "with_failures is an abstract-backend knob; the physical backend's \
             failures come from real collisions"
        );
        let global_n = self
            .global_n
            .unwrap_or_else(|| self.graph.num_nodes().max(2));
        match self.backend {
            Backend::Abstract => Stack::Abstract(Box::new(AbstractLbNetwork::from_builder(
                self.graph,
                global_n,
                self.cd,
                self.ledger,
                self.failure_prob,
                self.seed,
            ))),
            Backend::Physical => Stack::Physical(Box::new(PhysicalLbNetwork::from_builder(
                self.graph,
                global_n,
                self.cd,
                self.ledger,
                self.energy_model,
                self.decay,
                self.seed,
            ))),
        }
    }
}

/// A concrete stack produced by [`StackBuilder::build`]. Use it as a
/// `&mut dyn RadioStack`, or reach the backend-specific accessors through
/// [`Stack::as_abstract`]/[`Stack::as_physical`].
#[derive(Clone, Debug)]
pub enum Stack {
    /// The LB-unit accounting backend (boxed, as is the physical variant,
    /// so the enum stays a thin pointer-sized handle).
    Abstract(Box<AbstractLbNetwork>),
    /// The Decay-expanding slot-level backend (boxed: it owns the slot
    /// simulator and the decay scratch, far larger than the abstract one).
    Physical(Box<PhysicalLbNetwork>),
}

impl Stack {
    /// The abstract backend, if that is what was built.
    pub fn as_abstract(&self) -> Option<&AbstractLbNetwork> {
        match self {
            Stack::Abstract(a) => Some(a),
            Stack::Physical(_) => None,
        }
    }

    /// The physical backend, if that is what was built.
    pub fn as_physical(&self) -> Option<&PhysicalLbNetwork> {
        match self {
            Stack::Abstract(_) => None,
            Stack::Physical(p) => Some(p),
        }
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Graph {
        match self {
            Stack::Abstract(a) => a.graph(),
            Stack::Physical(p) => p.radio().graph(),
        }
    }
}

impl RadioStack for Stack {
    fn num_nodes(&self) -> usize {
        match self {
            Stack::Abstract(a) => a.num_nodes(),
            Stack::Physical(p) => p.num_nodes(),
        }
    }

    fn global_n(&self) -> usize {
        match self {
            Stack::Abstract(a) => a.global_n(),
            Stack::Physical(p) => p.global_n(),
        }
    }

    fn capabilities(&self) -> Capabilities {
        match self {
            Stack::Abstract(a) => a.capabilities(),
            Stack::Physical(p) => p.capabilities(),
        }
    }

    fn local_broadcast(&mut self, frame: &mut LbFrame) {
        match self {
            Stack::Abstract(a) => a.local_broadcast(frame),
            Stack::Physical(p) => p.local_broadcast(frame),
        }
    }

    fn lb_energy(&self, v: usize) -> u64 {
        match self {
            Stack::Abstract(a) => a.lb_energy(v),
            Stack::Physical(p) => p.lb_energy(v),
        }
    }

    fn lb_time(&self) -> u64 {
        match self {
            Stack::Abstract(a) => a.lb_time(),
            Stack::Physical(p) => p.lb_time(),
        }
    }

    fn energy_view(&self) -> EnergyView {
        match self {
            Stack::Abstract(a) => a.energy_view(),
            Stack::Physical(p) => p.energy_view(),
        }
    }

    fn topology(&self) -> Option<&Graph> {
        Some(self.graph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generators;

    #[test]
    fn stacks_and_views_are_send_and_sync_sound() {
        // The scenario runner moves whole stacks (and the frames/views they
        // produce) onto pool workers; this pins the auto-traits so a future
        // `Rc`/`RefCell` in a backend fails here instead of in the pool.
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Stack>();
        assert_send::<AbstractLbNetwork>();
        assert_send::<PhysicalLbNetwork>();
        assert_send::<LbFrame>();
        assert_send::<EnergyView>();
        assert_sync::<Capabilities>();
        assert_sync::<StackBuilder>();
    }

    #[test]
    fn builder_defaults_are_the_paper_model() {
        let stack = StackBuilder::new(generators::path(4)).build();
        let caps = stack.capabilities();
        assert_eq!(caps.collision_detection, CollisionDetection::None);
        assert_eq!(caps.energy_model, EnergyModel::Uniform);
        assert!(!caps.physical);
        assert!(caps.ledger);
        assert_eq!(caps.label(), "abstract");
        assert!(stack.as_abstract().is_some());
    }

    #[test]
    fn builder_capability_matrix_round_trips() {
        let g = generators::path(4);
        let model = EnergyModel::Weighted {
            listen: 1,
            transmit: 3,
        };
        let cases: Vec<(Stack, &str, bool)> = vec![
            (StackBuilder::new(g.clone()).build(), "abstract", false),
            (
                StackBuilder::new(g.clone()).with_cd().build(),
                "abstract_cd",
                false,
            ),
            (
                StackBuilder::new(g.clone())
                    .physical(EnergyModel::Uniform)
                    .build(),
                "physical",
                true,
            ),
            (
                StackBuilder::new(g.clone())
                    .physical(model)
                    .with_cd()
                    .build(),
                "physical_cd",
                true,
            ),
        ];
        for (stack, label, physical) in &cases {
            let caps = stack.capabilities();
            assert_eq!(&caps.label(), label);
            assert_eq!(caps.physical, *physical);
            assert_eq!(caps.physical, stack.energy_view().has_physical());
        }
        assert_eq!(cases[3].0.capabilities().energy_model, model);
    }

    #[test]
    #[should_panic]
    fn physical_backend_rejects_injected_failures() {
        let _ = StackBuilder::new(generators::path(3))
            .physical(EnergyModel::Uniform)
            .with_failures(0.3)
            .build();
    }

    #[test]
    fn ledgerless_stacks_report_zero_lb_counters() {
        let mut stack = StackBuilder::new(generators::path(3))
            .without_ledger()
            .build();
        let mut frame = stack.new_frame();
        frame.add_sender(0, crate::Msg::words(&[1]));
        frame.add_receiver(1);
        stack.local_broadcast(&mut frame);
        assert_eq!(frame.delivered().get(1), Some(&crate::Msg::words(&[1])));
        assert!(!stack.capabilities().ledger);
        assert_eq!(stack.lb_time(), 0);
        assert_eq!(stack.max_lb_energy(), 0);
    }

    #[test]
    fn energy_view_diff_isolates_a_phase() {
        let mut stack = StackBuilder::new(generators::path(4)).build();
        let mut frame = stack.new_frame();
        frame.add_sender(0, crate::Msg::words(&[1]));
        frame.add_receiver(1);
        stack.local_broadcast(&mut frame);
        let mid = stack.energy_view();
        frame.clear();
        frame.add_sender(1, crate::Msg::words(&[2]));
        frame.add_receiver(2);
        frame.add_receiver(3);
        stack.local_broadcast(&mut frame);
        let phase = stack.energy_view().diff(&mid);
        assert_eq!(phase.lb_time(), 1);
        assert_eq!(phase.lb_energy(0), 0);
        assert_eq!(phase.lb_energy(1), 1);
        assert_eq!(phase.lb_sends(1), 1);
        assert_eq!(phase.lb_energy(2), 1);
        assert_eq!(phase.max_lb_energy(), 1);
    }

    #[test]
    fn weighted_energy_model_scales_physical_costs() {
        let run = |model: EnergyModel| -> u64 {
            let mut stack = StackBuilder::new(generators::path(2))
                .physical(model)
                .with_seed(5)
                .build();
            let mut frame = stack.new_frame();
            frame.add_sender(0, crate::Msg::words(&[9]));
            frame.add_receiver(1);
            stack.local_broadcast(&mut frame);
            stack.energy_view().physical_energy(0).expect("physical")
        };
        let uniform = run(EnergyModel::Uniform);
        let weighted = run(EnergyModel::Weighted {
            listen: 1,
            transmit: 3,
        });
        // Node 0 only transmits, so tripling the transmit weight triples it.
        assert_eq!(weighted, 3 * uniform);
    }
}
