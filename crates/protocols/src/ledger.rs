//! Per-node accounting in Local-Broadcast units.
//!
//! Theorem 4.1 measures time as the number of Local-Broadcast calls and
//! energy as the number of calls a node participates in (sender or
//! receiver); Lemma 2.4 converts those units into physical slots. The
//! ledger records the Local-Broadcast-unit side of that equation.

use serde::{Deserialize, Serialize};

/// Counts Local-Broadcast participations per node and calls overall.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LbLedger {
    participations: Vec<u64>,
    sent: Vec<u64>,
    calls: u64,
}

impl LbLedger {
    /// A ledger for `n` nodes.
    pub fn new(n: usize) -> Self {
        LbLedger {
            participations: vec![0; n],
            sent: vec![0; n],
            calls: 0,
        }
    }

    /// Number of nodes tracked.
    pub fn num_nodes(&self) -> usize {
        self.participations.len()
    }

    /// Records one Local-Broadcast call with the given participants.
    /// Senders are also counted in `senders_sent`.
    pub fn record_call<I, J>(&mut self, senders: I, receivers: J)
    where
        I: IntoIterator<Item = usize>,
        J: IntoIterator<Item = usize>,
    {
        self.calls += 1;
        for s in senders {
            self.participations[s] += 1;
            self.sent[s] += 1;
        }
        for r in receivers {
            self.participations[r] += 1;
        }
    }

    /// Number of calls a node has participated in (its energy in LB units).
    pub fn participations(&self, v: usize) -> u64 {
        self.participations[v]
    }

    /// Number of calls in which the node was a sender.
    pub fn sends(&self, v: usize) -> u64 {
        self.sent[v]
    }

    /// Total calls recorded (time in LB units).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Maximum per-node participation count — the algorithm's energy in LB
    /// units.
    pub fn max_participations(&self) -> u64 {
        self.participations.iter().copied().max().unwrap_or(0)
    }

    /// Sum of participations across nodes.
    pub fn total_participations(&self) -> u64 {
        self.participations.iter().sum()
    }

    /// Mean participations per node.
    pub fn mean_participations(&self) -> f64 {
        if self.participations.is_empty() {
            0.0
        } else {
            self.total_participations() as f64 / self.participations.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_participants_and_calls() {
        let mut l = LbLedger::new(4);
        l.record_call([0usize, 1], [2usize, 3]);
        l.record_call([2usize], [0usize]);
        assert_eq!(l.calls(), 2);
        assert_eq!(l.participations(0), 2);
        assert_eq!(l.participations(1), 1);
        assert_eq!(l.participations(2), 2);
        assert_eq!(l.sends(0), 1);
        assert_eq!(l.sends(2), 1);
        assert_eq!(l.sends(3), 0);
        assert_eq!(l.max_participations(), 2);
        assert_eq!(l.total_participations(), 6);
        assert!((l.mean_participations() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger() {
        let l = LbLedger::new(0);
        assert_eq!(l.max_participations(), 0);
        assert_eq!(l.mean_participations(), 0.0);
        assert_eq!(l.calls(), 0);
    }
}
