//! The message type exchanged by all Local-Broadcast-level protocols.
//!
//! Every protocol in this repository encodes its payload as a short vector
//! of 64-bit words (`Msg`). The paper's algorithms only ever need to carry
//! `O(1)` identifiers, layer numbers, and distance labels per message, i.e.
//! `O(log n)` bits, which the tests check through [`Msg::bit_size`].

use radio_sim::Payload;
use serde::{Deserialize, Serialize};

/// A Local-Broadcast payload: a short vector of words.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Msg(pub Vec<u64>);

impl Msg {
    /// An empty message (used by pure "beacon"/existence signals).
    pub fn empty() -> Self {
        Msg(Vec::new())
    }

    /// A message with the given words.
    pub fn words(words: &[u64]) -> Self {
        Msg(words.to_vec())
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the message carries no words.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Word at position `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<u64> {
        self.0.get(i).copied()
    }

    /// Word at position `i`; panics if absent (protocol decoding errors are
    /// programming errors, not runtime conditions).
    pub fn word(&self, i: usize) -> u64 {
        self.0[i]
    }

    /// Size in bits when transmitted.
    pub fn bit_size(&self) -> usize {
        64 * self.0.len()
    }
}

impl Payload for Msg {
    fn bit_size(&self) -> usize {
        Msg::bit_size(self)
    }
}

impl From<Vec<u64>> for Msg {
    fn from(v: Vec<u64>) -> Self {
        Msg(v)
    }
}

impl FromIterator<u64> for Msg {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        Msg(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Msg::words(&[3, 7, 11]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.word(1), 7);
        assert_eq!(m.get(2), Some(11));
        assert_eq!(m.get(3), None);
        assert_eq!(m.bit_size(), 192);
        assert!(Msg::empty().is_empty());
        assert_eq!(Msg::empty().bit_size(), 0);
    }

    #[test]
    fn from_and_collect() {
        let m: Msg = (0..4u64).collect();
        assert_eq!(m, Msg::from(vec![0, 1, 2, 3]));
    }
}
