//! The message type exchanged by all Local-Broadcast-level protocols.
//!
//! Every protocol in this repository encodes its payload as a short vector
//! of 64-bit words (`Msg`). The paper's algorithms only ever need to carry
//! `O(1)` identifiers, layer numbers, and distance labels per message, i.e.
//! `O(log n)` bits, which the tests check through [`Msg::bit_size`].
//!
//! `Msg` is an inline small-vector: up to [`Msg::INLINE_WORDS`] words live
//! directly in the struct, spilling to a heap `Vec` only beyond that. The
//! decay hot loop clones one message per transmitter per slot
//! (`slot.transmit.insert(u, m.clone())`), and the overwhelming majority of
//! protocol payloads — wavefront distances (1 word), cast-wrapped distances
//! (2 words), clustering join messages (3 words) — now clone without
//! touching the allocator.

use radio_sim::Payload;
use serde::{Deserialize, Serialize};

/// A Local-Broadcast payload: a short vector of words, stored inline up to
/// [`Msg::INLINE_WORDS`] words.
#[derive(Clone, Debug)]
pub struct Msg(Repr);

#[derive(Clone, Debug)]
enum Repr {
    /// Up to `INLINE_WORDS` words, no heap allocation. `len ≤ INLINE_WORDS`;
    /// words past `len` are zero and never observed.
    Inline {
        len: u8,
        words: [u64; Msg::INLINE_WORDS],
    },
    /// Longer payloads spill to the heap.
    Heap(Vec<u64>),
}

impl Msg {
    /// Number of words stored inline before spilling to the heap.
    pub const INLINE_WORDS: usize = 3;

    /// An empty message (used by pure "beacon"/existence signals).
    pub fn empty() -> Self {
        Msg(Repr::Inline {
            len: 0,
            words: [0; Msg::INLINE_WORDS],
        })
    }

    /// A message with the given words.
    pub fn words(words: &[u64]) -> Self {
        if words.len() <= Msg::INLINE_WORDS {
            let mut inline = [0u64; Msg::INLINE_WORDS];
            inline[..words.len()].copy_from_slice(words);
            Msg(Repr::Inline {
                len: words.len() as u8,
                words: inline,
            })
        } else {
            Msg(Repr::Heap(words.to_vec()))
        }
    }

    /// The words as a slice (the canonical view; equality and hashing are
    /// defined over it, so inline and spilled representations of the same
    /// words compare equal).
    pub fn as_slice(&self) -> &[u64] {
        match &self.0 {
            Repr::Inline { len, words } => &words[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// `true` if the message carries no words.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Word at position `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<u64> {
        self.as_slice().get(i).copied()
    }

    /// Word at position `i`; panics if absent (protocol decoding errors are
    /// programming errors, not runtime conditions).
    pub fn word(&self, i: usize) -> u64 {
        self.as_slice()[i]
    }

    /// Size in bits when transmitted.
    pub fn bit_size(&self) -> usize {
        64 * self.len()
    }

    /// A copy with `word` prepended — the "tag with an identifier" shape
    /// both casts use ([`Msg::split_first`] is the inverse).
    pub fn prepended(&self, word: u64) -> Msg {
        let s = self.as_slice();
        if s.len() < Msg::INLINE_WORDS {
            let mut words = [0u64; Msg::INLINE_WORDS];
            words[0] = word;
            words[1..=s.len()].copy_from_slice(s);
            Msg(Repr::Inline {
                len: s.len() as u8 + 1,
                words,
            })
        } else {
            let mut v = Vec::with_capacity(s.len() + 1);
            v.push(word);
            v.extend_from_slice(s);
            Msg(Repr::Heap(v))
        }
    }

    /// Splits into the first word and the remaining payload; panics on an
    /// empty message (a decoding error, as with [`Msg::word`]).
    pub fn split_first(&self) -> (u64, Msg) {
        let s = self.as_slice();
        (s[0], Msg::words(&s[1..]))
    }
}

impl Default for Msg {
    fn default() -> Self {
        Msg::empty()
    }
}

impl PartialEq for Msg {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Msg {}

impl std::hash::Hash for Msg {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Serialize for Msg {}
impl<'de> Deserialize<'de> for Msg {}

impl Payload for Msg {
    fn bit_size(&self) -> usize {
        Msg::bit_size(self)
    }
}

impl From<Vec<u64>> for Msg {
    fn from(v: Vec<u64>) -> Self {
        if v.len() <= Msg::INLINE_WORDS {
            Msg::words(&v)
        } else {
            Msg(Repr::Heap(v))
        }
    }
}

impl FromIterator<u64> for Msg {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        Msg::from(iter.into_iter().collect::<Vec<u64>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Msg::words(&[3, 7, 11]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.word(1), 7);
        assert_eq!(m.get(2), Some(11));
        assert_eq!(m.get(3), None);
        assert_eq!(m.bit_size(), 192);
        assert!(Msg::empty().is_empty());
        assert_eq!(Msg::empty().bit_size(), 0);
    }

    #[test]
    fn from_and_collect() {
        let m: Msg = (0..4u64).collect();
        assert_eq!(m, Msg::from(vec![0, 1, 2, 3]));
    }

    #[test]
    fn inline_and_spilled_representations_compare_equal() {
        // A 2-word message reached via split_first on a spilled 5-word
        // message must equal the directly-built inline one.
        let long: Msg = (0..5u64).collect();
        assert!(matches!(long.0, Repr::Heap(_)));
        let (_, rest) = long.split_first();
        let (_, rest) = rest.split_first();
        let (_, rest) = rest.split_first();
        assert!(matches!(rest.0, Repr::Inline { .. }));
        assert_eq!(rest, Msg::words(&[3, 4]));
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |m: &Msg| {
            let mut h = DefaultHasher::new();
            m.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&rest), hash(&Msg::words(&[3, 4])));
    }

    #[test]
    fn boundary_sizes_round_trip() {
        for n in 0..=6usize {
            let words: Vec<u64> = (0..n as u64).map(|x| x * 100 + 1).collect();
            let m = Msg::words(&words);
            assert_eq!(m.as_slice(), &words[..], "{n} words");
            assert_eq!(m.len(), n);
            let spilled = n > Msg::INLINE_WORDS;
            assert_eq!(matches!(m.0, Repr::Heap(_)), spilled, "{n} words");
        }
    }

    #[test]
    fn prepended_is_inverse_of_split_first() {
        for base in [
            &[][..],
            &[9][..],
            &[9, 8][..],
            &[9, 8, 7][..],
            &[9, 8, 7, 6][..],
        ] {
            let m = Msg::words(base);
            let tagged = m.prepended(42);
            assert_eq!(tagged.len(), base.len() + 1);
            assert_eq!(tagged.word(0), 42);
            let (tag, payload) = tagged.split_first();
            assert_eq!(tag, 42);
            assert_eq!(payload, m);
        }
    }

    #[test]
    fn hot_path_payloads_stay_inline() {
        // Wavefront distances (1 word), cast-wrapped distances (2 words) and
        // clustering join messages (3 words) must not touch the heap.
        for words in [&[5u64][..], &[1, 5][..], &[2, 3, 0xDEAD][..]] {
            assert!(matches!(Msg::words(words).0, Repr::Inline { .. }));
        }
    }
}
