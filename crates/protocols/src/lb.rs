//! The Local-Broadcast abstraction and its two back-ends.
//!
//! **Local-Broadcast** (paper, Section 2.2): given disjoint sets `S`
//! (senders, each holding a message) and `R` (receivers), every `v ∈ R`
//! with `N(v) ∩ S ≠ ∅` receives some message from a neighbour in `S` with
//! probability `1 − f`.
//!
//! The trait [`LbNetwork`] is deliberately object-safe: the recursive BFS
//! builds virtual networks on top of virtual networks to an arbitrary,
//! runtime-chosen depth, so composition happens through `&mut dyn
//! LbNetwork` rather than through generics.

use std::collections::{HashMap, HashSet};

use radio_graph::Graph;
use radio_sim::{decay_local_broadcast, DecayParams, RadioNetwork};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::ledger::LbLedger;
use crate::message::Msg;

/// A network on which Local-Broadcast can be invoked.
///
/// Node identifiers are `0..num_nodes()`. `global_n()` is the common upper
/// bound "n" that all devices agree on (used for `w.h.p.` parameters); for
/// virtual cluster networks it remains the size of the *original* network,
/// as in the paper.
pub trait LbNetwork {
    /// Number of nodes in this (possibly virtual) network.
    fn num_nodes(&self) -> usize;

    /// The globally agreed upper bound `n ≥ |V|` of the underlying radio
    /// network; all polylogarithmic parameters are functions of this.
    fn global_n(&self) -> usize;

    /// Executes one Local-Broadcast with sender messages `senders` and
    /// receiver set `receivers`. Returns, for each receiver that heard a
    /// message, the message it heard.
    fn local_broadcast(
        &mut self,
        senders: &HashMap<usize, Msg>,
        receivers: &HashSet<usize>,
    ) -> HashMap<usize, Msg>;

    /// Energy of node `v` in Local-Broadcast units (number of calls on this
    /// network in which `v` participated).
    fn lb_energy(&self, v: usize) -> u64;

    /// Time in Local-Broadcast units (number of calls on this network).
    fn lb_time(&self) -> u64;

    /// Maximum per-node energy in Local-Broadcast units.
    fn max_lb_energy(&self) -> u64 {
        (0..self.num_nodes())
            .map(|v| self.lb_energy(v))
            .max()
            .unwrap_or(0)
    }
}

/// The accounting back-end used by the paper's analysis: each call costs one
/// unit of time, each participant one unit of energy, and delivery follows
/// the Local-Broadcast specification exactly (optionally with an injected
/// failure probability `f` per receiver).
#[derive(Clone, Debug)]
pub struct AbstractLbNetwork {
    graph: Graph,
    global_n: usize,
    ledger: LbLedger,
    failure_prob: f64,
    rng: ChaCha8Rng,
}

impl AbstractLbNetwork {
    /// A perfectly reliable abstract network over `graph`.
    pub fn new(graph: Graph) -> Self {
        let n = graph.num_nodes();
        AbstractLbNetwork {
            graph,
            global_n: n.max(2),
            ledger: LbLedger::new(n),
            failure_prob: 0.0,
            rng: ChaCha8Rng::seed_from_u64(0),
        }
    }

    /// Sets the per-receiver delivery failure probability `f` and the RNG
    /// seed driving both failures and tie-breaking among senders.
    pub fn with_failures(mut self, failure_prob: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&failure_prob));
        self.failure_prob = failure_prob;
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self
    }

    /// Overrides the globally known upper bound `n` (defaults to `|V|`).
    pub fn with_global_n(mut self, n: usize) -> Self {
        assert!(n >= self.graph.num_nodes());
        self.global_n = n.max(2);
        self
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The full ledger.
    pub fn ledger(&self) -> &LbLedger {
        &self.ledger
    }
}

impl LbNetwork for AbstractLbNetwork {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn global_n(&self) -> usize {
        self.global_n
    }

    fn local_broadcast(
        &mut self,
        senders: &HashMap<usize, Msg>,
        receivers: &HashSet<usize>,
    ) -> HashMap<usize, Msg> {
        self.ledger
            .record_call(senders.keys().copied(), receivers.iter().copied());
        let mut delivered = HashMap::new();
        // Iterate receivers in node order: the RNG stream must map to
        // receivers deterministically, or seeded runs differ across
        // processes (HashSet iteration order is randomized per process).
        let mut ordered: Vec<usize> = receivers.iter().copied().collect();
        ordered.sort_unstable();
        for r in ordered {
            if senders.contains_key(&r) {
                // Sender/receiver sets are required to be disjoint; a vertex
                // listed in both acts as a sender only.
                continue;
            }
            // Collect sending neighbours.
            let sending: Vec<usize> = self
                .graph
                .neighbors(r)
                .iter()
                .copied()
                .filter(|u| senders.contains_key(u))
                .collect();
            if sending.is_empty() {
                continue;
            }
            if self.failure_prob > 0.0 && self.rng.gen_bool(self.failure_prob) {
                continue;
            }
            // The specification only promises *some* neighbour's message; we
            // pick uniformly to avoid accidental reliance on a tie-break.
            let pick = sending[self.rng.gen_range(0..sending.len())];
            delivered.insert(r, senders[&pick].clone());
        }
        delivered
    }

    fn lb_energy(&self, v: usize) -> u64 {
        self.ledger.participations(v)
    }

    fn lb_time(&self) -> u64 {
        self.ledger.calls()
    }
}

/// The physical back-end: every Local-Broadcast call expands into Decay
/// slots (Lemma 2.4) on the `radio-sim` channel, so collisions and per-slot
/// energy are fully modelled.
#[derive(Clone, Debug)]
pub struct PhysicalLbNetwork {
    net: RadioNetwork<Msg>,
    global_n: usize,
    decay: DecayParams,
    ledger: LbLedger,
    rng: ChaCha8Rng,
}

impl PhysicalLbNetwork {
    /// Creates a physical network over `graph`, with Decay parameters
    /// derived from the graph (Δ = max degree, `f = n^{-3}`), seeded by
    /// `seed`.
    pub fn new(graph: Graph, seed: u64) -> Self {
        let n = graph.num_nodes();
        let decay = DecayParams::for_network(n.max(2), graph.max_degree().max(1));
        PhysicalLbNetwork {
            net: RadioNetwork::new(graph),
            global_n: n.max(2),
            decay,
            ledger: LbLedger::new(n),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Overrides the Decay parameters.
    pub fn with_decay_params(mut self, decay: DecayParams) -> Self {
        self.decay = decay;
        self
    }

    /// The Decay parameters in force.
    pub fn decay_params(&self) -> DecayParams {
        self.decay
    }

    /// The underlying physical simulator (per-slot energy, elapsed slots).
    pub fn radio(&self) -> &RadioNetwork<Msg> {
        &self.net
    }

    /// Per-node *physical* energy (slots listening or transmitting), as
    /// opposed to the LB-unit energy of [`LbNetwork::lb_energy`].
    pub fn physical_energy(&self, v: usize) -> u64 {
        self.net.energy(v)
    }

    /// Maximum per-node physical energy.
    pub fn max_physical_energy(&self) -> u64 {
        self.net.max_energy()
    }

    /// Total elapsed physical slots.
    pub fn physical_slots(&self) -> u64 {
        self.net.slots()
    }

    /// The LB ledger.
    pub fn ledger(&self) -> &LbLedger {
        &self.ledger
    }
}

impl LbNetwork for PhysicalLbNetwork {
    fn num_nodes(&self) -> usize {
        self.net.num_nodes()
    }

    fn global_n(&self) -> usize {
        self.global_n
    }

    fn local_broadcast(
        &mut self,
        senders: &HashMap<usize, Msg>,
        receivers: &HashSet<usize>,
    ) -> HashMap<usize, Msg> {
        self.ledger
            .record_call(senders.keys().copied(), receivers.iter().copied());
        let outcome =
            decay_local_broadcast(&mut self.net, senders, receivers, self.decay, &mut self.rng);
        outcome.received
    }

    fn lb_energy(&self, v: usize) -> u64 {
        self.ledger.participations(v)
    }

    fn lb_time(&self) -> u64 {
        self.ledger.calls()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generators;

    fn msg(x: u64) -> Msg {
        Msg::words(&[x])
    }

    #[test]
    fn abstract_delivery_follows_spec() {
        let g = generators::path(4); // 0-1-2-3
        let mut net = AbstractLbNetwork::new(g);
        let senders: HashMap<_, _> = [(0, msg(10)), (3, msg(30))].into_iter().collect();
        let receivers: HashSet<_> = [1, 2].into_iter().collect();
        let out = net.local_broadcast(&senders, &receivers);
        assert_eq!(out[&1], msg(10));
        assert_eq!(out[&2], msg(30));
        assert_eq!(net.lb_time(), 1);
        assert_eq!(net.lb_energy(0), 1);
        assert_eq!(net.lb_energy(1), 1);
        assert_eq!(net.max_lb_energy(), 1);
    }

    #[test]
    fn abstract_receiver_without_sending_neighbor_gets_nothing() {
        let g = generators::path(4);
        let mut net = AbstractLbNetwork::new(g);
        let senders: HashMap<_, _> = [(0, msg(1))].into_iter().collect();
        let receivers: HashSet<_> = [3].into_iter().collect();
        let out = net.local_broadcast(&senders, &receivers);
        assert!(out.is_empty());
        // The hopeless receiver still pays for participating.
        assert_eq!(net.lb_energy(3), 1);
    }

    #[test]
    fn abstract_receiver_with_multiple_senders_hears_one_of_them() {
        let g = generators::star(5);
        let mut net = AbstractLbNetwork::new(g).with_failures(0.0, 7);
        let senders: HashMap<_, _> = (1..5).map(|v| (v, msg(v as u64))).collect();
        let receivers: HashSet<_> = [0].into_iter().collect();
        let out = net.local_broadcast(&senders, &receivers);
        let heard = out[&0].word(0);
        assert!((1..5).contains(&(heard as usize)));
    }

    #[test]
    fn abstract_failures_do_fail_sometimes() {
        let g = generators::path(2);
        let mut net = AbstractLbNetwork::new(g).with_failures(0.5, 3);
        let senders: HashMap<_, _> = [(0, msg(1))].into_iter().collect();
        let receivers: HashSet<_> = [1].into_iter().collect();
        let mut hits = 0;
        for _ in 0..200 {
            if !net.local_broadcast(&senders, &receivers).is_empty() {
                hits += 1;
            }
        }
        assert!(hits > 50 && hits < 150, "hits = {hits}");
    }

    #[test]
    fn sender_listed_as_receiver_is_ignored_as_receiver() {
        let g = generators::path(3);
        let mut net = AbstractLbNetwork::new(g);
        let senders: HashMap<_, _> = [(0, msg(1)), (1, msg(2))].into_iter().collect();
        let receivers: HashSet<_> = [1, 2].into_iter().collect();
        let out = net.local_broadcast(&senders, &receivers);
        assert!(!out.contains_key(&1));
        assert_eq!(out[&2], msg(2));
    }

    #[test]
    fn physical_backend_delivers_and_charges_slots() {
        let g = generators::path(3);
        let mut net = PhysicalLbNetwork::new(g, 42);
        let senders: HashMap<_, _> = [(0, msg(9))].into_iter().collect();
        let receivers: HashSet<_> = [1, 2].into_iter().collect();
        let out = net.local_broadcast(&senders, &receivers);
        assert_eq!(out.get(&1), Some(&msg(9)));
        assert_eq!(out.get(&2), None);
        assert_eq!(net.lb_time(), 1);
        assert_eq!(net.lb_energy(0), 1);
        // Physical energy is the Lemma 2.4 expansion: strictly more than one
        // slot for listeners without a sending neighbour.
        assert!(net.physical_energy(2) > 1);
        assert!(net.physical_slots() as usize >= net.decay_params().total_slots());
    }

    #[test]
    fn physical_and_abstract_agree_on_lb_unit_accounting() {
        let g = generators::grid(3, 3);
        let senders: HashMap<_, _> = [(0, msg(1)), (4, msg(2))].into_iter().collect();
        let receivers: HashSet<_> = [1, 3, 5, 7].into_iter().collect();
        let mut a = AbstractLbNetwork::new(g.clone());
        let mut p = PhysicalLbNetwork::new(g, 1);
        a.local_broadcast(&senders, &receivers);
        p.local_broadcast(&senders, &receivers);
        for v in 0..9 {
            assert_eq!(a.lb_energy(v), p.lb_energy(v), "node {v}");
        }
        assert_eq!(a.lb_time(), p.lb_time());
    }
}
