//! The Local-Broadcast abstraction and its two back-ends.
//!
//! **Local-Broadcast** (paper, Section 2.2): given disjoint sets `S`
//! (senders, each holding a message) and `R` (receivers), every `v ∈ R`
//! with `N(v) ∩ S ≠ ∅` receives some message from a neighbour in `S` with
//! probability `1 − f`.
//!
//! The trait [`LbNetwork`] is deliberately object-safe: the recursive BFS
//! builds virtual networks on top of virtual networks to an arbitrary,
//! runtime-chosen depth, so composition happens through `&mut dyn
//! LbNetwork` rather than through generics.
//!
//! Calls operate on a reusable [`LbFrame`] (a dense
//! [`RoundFrame`](radio_sim::RoundFrame) over the network's nodes): the
//! caller fills senders and receivers, the backend writes deliveries into
//! `frame.delivered()`. Because the frame's sets iterate in ascending node
//! order *by construction*, seeded runs are reproducible without any
//! per-call sort, and a frame held across the thousands of calls a protocol
//! makes costs zero allocations after the first.

use radio_graph::Graph;
use radio_sim::{
    decay_local_broadcast, DecayParams, DecayScratch, NodeSlots, RadioNetwork, RoundFrame,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::ledger::LbLedger;
use crate::message::Msg;

/// The round frame all Local-Broadcast calls operate on: senders with their
/// [`Msg`] payloads, receivers, and the delivered output.
pub type LbFrame = RoundFrame<Msg>;

/// A network on which Local-Broadcast can be invoked.
///
/// Node identifiers are `0..num_nodes()`. `global_n()` is the common upper
/// bound "n" that all devices agree on (used for `w.h.p.` parameters); for
/// virtual cluster networks it remains the size of the *original* network,
/// as in the paper.
pub trait LbNetwork {
    /// Number of nodes in this (possibly virtual) network.
    fn num_nodes(&self) -> usize;

    /// The globally agreed upper bound `n ≥ |V|` of the underlying radio
    /// network; all polylogarithmic parameters are functions of this.
    fn global_n(&self) -> usize;

    /// Executes one Local-Broadcast over `frame`: senders and receivers are
    /// read from the frame, and the message each receiver heard (if any) is
    /// written into `frame.delivered()` (cleared on entry).
    fn local_broadcast(&mut self, frame: &mut LbFrame);

    /// Energy of node `v` in Local-Broadcast units (number of calls on this
    /// network in which `v` participated).
    fn lb_energy(&self, v: usize) -> u64;

    /// Time in Local-Broadcast units (number of calls on this network).
    fn lb_time(&self) -> u64;

    /// Maximum per-node energy in Local-Broadcast units.
    fn max_lb_energy(&self) -> u64 {
        (0..self.num_nodes())
            .map(|v| self.lb_energy(v))
            .max()
            .unwrap_or(0)
    }

    /// Allocates a frame sized for this network. Callers should hold on to
    /// it and `clear`/refill across calls rather than allocating per call.
    fn new_frame(&self) -> LbFrame {
        LbFrame::new(self.num_nodes())
    }
}

/// Convenience for tests and one-off calls: runs one Local-Broadcast with a
/// freshly allocated frame and returns the deliveries. Hot paths should
/// hold their own [`LbFrame`] and call
/// [`LbNetwork::local_broadcast`] directly.
pub fn local_broadcast_once(
    net: &mut dyn LbNetwork,
    senders: &[(usize, Msg)],
    receivers: &[usize],
) -> NodeSlots<Msg> {
    let mut frame = net.new_frame();
    for (v, m) in senders {
        frame.add_sender(*v, m.clone());
    }
    for &v in receivers {
        frame.add_receiver(v);
    }
    net.local_broadcast(&mut frame);
    let mut out = NodeSlots::new(frame.num_nodes());
    frame.swap_delivered(&mut out);
    out
}

/// The accounting back-end used by the paper's analysis: each call costs one
/// unit of time, each participant one unit of energy, and delivery follows
/// the Local-Broadcast specification exactly (optionally with an injected
/// failure probability `f` per receiver).
#[derive(Clone, Debug)]
pub struct AbstractLbNetwork {
    graph: Graph,
    global_n: usize,
    ledger: LbLedger,
    failure_prob: f64,
    rng: ChaCha8Rng,
}

impl AbstractLbNetwork {
    /// A perfectly reliable abstract network over `graph`.
    pub fn new(graph: Graph) -> Self {
        let n = graph.num_nodes();
        AbstractLbNetwork {
            graph,
            global_n: n.max(2),
            ledger: LbLedger::new(n),
            failure_prob: 0.0,
            rng: ChaCha8Rng::seed_from_u64(0),
        }
    }

    /// Sets the per-receiver delivery failure probability `f` and the RNG
    /// seed driving both failures and tie-breaking among senders.
    pub fn with_failures(mut self, failure_prob: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&failure_prob));
        self.failure_prob = failure_prob;
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self
    }

    /// Overrides the globally known upper bound `n` (defaults to `|V|`).
    pub fn with_global_n(mut self, n: usize) -> Self {
        assert!(n >= self.graph.num_nodes());
        self.global_n = n.max(2);
        self
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The full ledger.
    pub fn ledger(&self) -> &LbLedger {
        &self.ledger
    }
}

impl LbNetwork for AbstractLbNetwork {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn global_n(&self) -> usize {
        self.global_n
    }

    fn local_broadcast(&mut self, frame: &mut LbFrame) {
        frame.clear_delivered();
        let (senders, receivers, delivered) = frame.parts_mut();
        self.ledger
            .record_call(senders.keys().iter(), receivers.iter());
        // Receivers are visited in ascending node order — the frame's
        // iteration order by construction — so the RNG stream maps to
        // receivers deterministically on every run.
        for r in receivers.iter() {
            if senders.contains(r) {
                // Sender/receiver sets are required to be disjoint; a vertex
                // listed in both acts as a sender only.
                continue;
            }
            // Count sending neighbours columnar: one pass over the CSR
            // adjacency against the sender occupancy bitset.
            let mut count = 0usize;
            for &u in self.graph.neighbors(r) {
                count += usize::from(senders.contains(u));
            }
            if count == 0 {
                continue;
            }
            if self.failure_prob > 0.0 && self.rng.gen_bool(self.failure_prob) {
                continue;
            }
            // The specification only promises *some* neighbour's message; we
            // pick uniformly to avoid accidental reliance on a tie-break.
            let pick = self.rng.gen_range(0..count);
            let mut seen = 0usize;
            for &u in self.graph.neighbors(r) {
                if senders.contains(u) {
                    if seen == pick {
                        delivered.insert(r, senders.get(u).expect("occupied sender").clone());
                        break;
                    }
                    seen += 1;
                }
            }
        }
    }

    fn lb_energy(&self, v: usize) -> u64 {
        self.ledger.participations(v)
    }

    fn lb_time(&self) -> u64 {
        self.ledger.calls()
    }
}

/// The physical back-end: every Local-Broadcast call expands into Decay
/// slots (Lemma 2.4) on the `radio-sim` channel, so collisions and per-slot
/// energy are fully modelled.
#[derive(Clone, Debug)]
pub struct PhysicalLbNetwork {
    net: RadioNetwork<Msg>,
    global_n: usize,
    decay: DecayParams,
    ledger: LbLedger,
    scratch: DecayScratch<Msg>,
    rng: ChaCha8Rng,
}

impl PhysicalLbNetwork {
    /// Creates a physical network over `graph`, with Decay parameters
    /// derived from the graph (Δ = max degree, `f = n^{-3}`), seeded by
    /// `seed`.
    pub fn new(graph: Graph, seed: u64) -> Self {
        let n = graph.num_nodes();
        let decay = DecayParams::for_network(n.max(2), graph.max_degree().max(1));
        PhysicalLbNetwork {
            net: RadioNetwork::new(graph),
            global_n: n.max(2),
            decay,
            ledger: LbLedger::new(n),
            scratch: DecayScratch::new(n),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Overrides the Decay parameters.
    pub fn with_decay_params(mut self, decay: DecayParams) -> Self {
        self.decay = decay;
        self
    }

    /// The Decay parameters in force.
    pub fn decay_params(&self) -> DecayParams {
        self.decay
    }

    /// The underlying physical simulator (per-slot energy, elapsed slots).
    pub fn radio(&self) -> &RadioNetwork<Msg> {
        &self.net
    }

    /// Per-node *physical* energy (slots listening or transmitting), as
    /// opposed to the LB-unit energy of [`LbNetwork::lb_energy`].
    pub fn physical_energy(&self, v: usize) -> u64 {
        self.net.energy(v)
    }

    /// Maximum per-node physical energy.
    pub fn max_physical_energy(&self) -> u64 {
        self.net.max_energy()
    }

    /// Total elapsed physical slots.
    pub fn physical_slots(&self) -> u64 {
        self.net.slots()
    }

    /// The LB ledger.
    pub fn ledger(&self) -> &LbLedger {
        &self.ledger
    }
}

impl LbNetwork for PhysicalLbNetwork {
    fn num_nodes(&self) -> usize {
        self.net.num_nodes()
    }

    fn global_n(&self) -> usize {
        self.global_n
    }

    fn local_broadcast(&mut self, frame: &mut LbFrame) {
        self.ledger
            .record_call(frame.senders().keys().iter(), frame.receivers().iter());
        decay_local_broadcast(
            &mut self.net,
            frame,
            &mut self.scratch,
            self.decay,
            &mut self.rng,
        );
    }

    fn lb_energy(&self, v: usize) -> u64 {
        self.ledger.participations(v)
    }

    fn lb_time(&self) -> u64 {
        self.ledger.calls()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generators;

    fn msg(x: u64) -> Msg {
        Msg::words(&[x])
    }

    #[test]
    fn abstract_delivery_follows_spec() {
        let g = generators::path(4); // 0-1-2-3
        let mut net = AbstractLbNetwork::new(g);
        let out = local_broadcast_once(&mut net, &[(0, msg(10)), (3, msg(30))], &[1, 2]);
        assert_eq!(out.get(1), Some(&msg(10)));
        assert_eq!(out.get(2), Some(&msg(30)));
        assert_eq!(net.lb_time(), 1);
        assert_eq!(net.lb_energy(0), 1);
        assert_eq!(net.lb_energy(1), 1);
        assert_eq!(net.max_lb_energy(), 1);
    }

    #[test]
    fn abstract_receiver_without_sending_neighbor_gets_nothing() {
        let g = generators::path(4);
        let mut net = AbstractLbNetwork::new(g);
        let out = local_broadcast_once(&mut net, &[(0, msg(1))], &[3]);
        assert!(out.is_empty());
        // The hopeless receiver still pays for participating.
        assert_eq!(net.lb_energy(3), 1);
    }

    #[test]
    fn abstract_receiver_with_multiple_senders_hears_one_of_them() {
        let g = generators::star(5);
        let mut net = AbstractLbNetwork::new(g).with_failures(0.0, 7);
        let senders: Vec<(usize, Msg)> = (1..5).map(|v| (v, msg(v as u64))).collect();
        let out = local_broadcast_once(&mut net, &senders, &[0]);
        let heard = out.get(0).expect("delivered").word(0);
        assert!((1..5).contains(&(heard as usize)));
    }

    #[test]
    fn abstract_failures_do_fail_sometimes() {
        let g = generators::path(2);
        let mut net = AbstractLbNetwork::new(g).with_failures(0.5, 3);
        let mut frame = net.new_frame();
        let mut hits = 0;
        for _ in 0..200 {
            frame.clear();
            frame.add_sender(0, msg(1));
            frame.add_receiver(1);
            net.local_broadcast(&mut frame);
            if !frame.delivered().is_empty() {
                hits += 1;
            }
        }
        assert!(hits > 50 && hits < 150, "hits = {hits}");
    }

    #[test]
    fn sender_listed_as_receiver_is_ignored_as_receiver() {
        let g = generators::path(3);
        let mut net = AbstractLbNetwork::new(g);
        let out = local_broadcast_once(&mut net, &[(0, msg(1)), (1, msg(2))], &[1, 2]);
        assert!(!out.contains(1));
        assert_eq!(out.get(2), Some(&msg(2)));
    }

    #[test]
    fn physical_backend_delivers_and_charges_slots() {
        let g = generators::path(3);
        let mut net = PhysicalLbNetwork::new(g, 42);
        let out = local_broadcast_once(&mut net, &[(0, msg(9))], &[1, 2]);
        assert_eq!(out.get(1), Some(&msg(9)));
        assert_eq!(out.get(2), None);
        assert_eq!(net.lb_time(), 1);
        assert_eq!(net.lb_energy(0), 1);
        // Physical energy is the Lemma 2.4 expansion: strictly more than one
        // slot for listeners without a sending neighbour.
        assert!(net.physical_energy(2) > 1);
        assert!(net.physical_slots() as usize >= net.decay_params().total_slots());
    }

    #[test]
    fn physical_and_abstract_agree_on_lb_unit_accounting() {
        let g = generators::grid(3, 3);
        let senders = [(0, msg(1)), (4, msg(2))];
        let receivers = [1, 3, 5, 7];
        let mut a = AbstractLbNetwork::new(g.clone());
        let mut p = PhysicalLbNetwork::new(g, 1);
        local_broadcast_once(&mut a, &senders, &receivers);
        local_broadcast_once(&mut p, &senders, &receivers);
        for v in 0..9 {
            assert_eq!(a.lb_energy(v), p.lb_energy(v), "node {v}");
        }
        assert_eq!(a.lb_time(), p.lb_time());
    }

    #[test]
    fn reused_frame_is_equivalent_to_fresh_frames() {
        // One frame reused across calls must behave exactly like fresh
        // frames per call (same deliveries, same ledger) on a reliable net.
        let g = generators::grid(4, 4);
        let mut a = AbstractLbNetwork::new(g.clone());
        let mut b = AbstractLbNetwork::new(g);
        let mut reused = a.new_frame();
        for round in 0..8u64 {
            let senders: Vec<(usize, Msg)> = (0..16)
                .filter(|v| (v + round as usize).is_multiple_of(3))
                .map(|v| (v, msg(round)))
                .collect();
            let receivers: Vec<usize> = (0..16)
                .filter(|v| !(v + round as usize).is_multiple_of(3))
                .collect();
            reused.clear();
            for (v, m) in &senders {
                reused.add_sender(*v, m.clone());
            }
            for &v in &receivers {
                reused.add_receiver(v);
            }
            a.local_broadcast(&mut reused);
            let fresh = local_broadcast_once(&mut b, &senders, &receivers);
            let got: Vec<(usize, Msg)> = reused
                .delivered()
                .iter()
                .map(|(v, m)| (v, m.clone()))
                .collect();
            let want: Vec<(usize, Msg)> = fresh.iter().map(|(v, m)| (v, m.clone())).collect();
            assert_eq!(got, want, "round {round}");
        }
        for v in 0..16 {
            assert_eq!(a.lb_energy(v), b.lb_energy(v));
        }
    }
}
