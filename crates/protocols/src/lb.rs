//! The Local-Broadcast frame and the two concrete [`RadioStack`] backends.
//!
//! **Local-Broadcast** (paper, Section 2.2): given disjoint sets `S`
//! (senders, each holding a message) and `R` (receivers), every `v ∈ R`
//! with `N(v) ∩ S ≠ ∅` receives some message from a neighbour in `S` with
//! probability `1 − f`.
//!
//! Calls operate on a reusable [`LbFrame`] (a dense [`RoundFrame`] over
//! the network's nodes): the
//! caller fills senders and receivers, the backend writes deliveries into
//! `frame.delivered()` — and, on collision-detection-capable stacks,
//! per-receiver verdicts into `frame.feedback()`. Because the frame's sets
//! iterate in ascending node order *by construction*, seeded runs are
//! reproducible without any per-call sort, and a frame held across the
//! thousands of calls a protocol makes costs zero allocations after the
//! first.
//!
//! Both backends are constructed exclusively through
//! [`StackBuilder`](crate::StackBuilder); see [`crate::stack`] for the
//! trait surface and the capability matrix.

use std::sync::Arc;

use radio_graph::Graph;
use radio_sim::{
    decay_local_broadcast, decay_local_broadcast_cd, CollisionDetection, DecayParams, DecayScratch,
    EnergyModel, LbFeedback, NodeSlots, RadioNetwork, RoundFrame,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::ledger::LbLedger;
use crate::message::Msg;
use crate::stack::{Capabilities, EnergyView, RadioStack};

/// The round frame all Local-Broadcast calls operate on: senders with their
/// [`Msg`] payloads, receivers, the delivered output, and (on CD stacks)
/// the per-receiver feedback lane.
pub type LbFrame = RoundFrame<Msg>;

/// Convenience for tests and one-off calls: runs one Local-Broadcast with a
/// freshly allocated frame and returns the deliveries. Hot paths should
/// hold their own [`LbFrame`] and call
/// [`RadioStack::local_broadcast`] directly.
pub fn local_broadcast_once(
    net: &mut dyn RadioStack,
    senders: &[(usize, Msg)],
    receivers: &[usize],
) -> NodeSlots<Msg> {
    let mut frame = net.new_frame();
    for (v, m) in senders {
        frame.add_sender(*v, m.clone());
    }
    for &v in receivers {
        frame.add_receiver(v);
    }
    net.local_broadcast(&mut frame);
    let mut out = NodeSlots::new(frame.num_nodes());
    frame.swap_delivered(&mut out);
    out
}

/// The accounting back-end used by the paper's analysis: each call costs one
/// unit of time, each participant one unit of energy, and delivery follows
/// the Local-Broadcast specification exactly (optionally with an injected
/// failure probability `f` per receiver). With collision detection enabled,
/// the frame's feedback lane reports per-receiver verdicts: `Silence` for
/// receivers with no sending neighbour, `Noise` for receivers whose
/// delivery failed despite sending neighbours.
#[derive(Clone, Debug)]
pub struct AbstractLbNetwork {
    graph: Arc<Graph>,
    global_n: usize,
    cd: CollisionDetection,
    ledger: Option<LbLedger>,
    failure_prob: f64,
    rng: ChaCha8Rng,
    /// Per-receiver scratch: the sending neighbours found in the single CSR
    /// pass, so the uniform pick indexes the buffer instead of re-scanning.
    pick_buf: Vec<usize>,
}

impl AbstractLbNetwork {
    pub(crate) fn from_builder(
        graph: Arc<Graph>,
        global_n: usize,
        cd: CollisionDetection,
        ledger: bool,
        failure_prob: f64,
        seed: u64,
    ) -> Self {
        let n = graph.num_nodes();
        AbstractLbNetwork {
            graph,
            global_n,
            cd,
            ledger: ledger.then(|| LbLedger::new(n)),
            failure_prob,
            rng: ChaCha8Rng::seed_from_u64(seed),
            pick_buf: Vec::new(),
        }
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The full ledger, when per-node accounting is enabled.
    pub fn ledger(&self) -> Option<&LbLedger> {
        self.ledger.as_ref()
    }
}

impl RadioStack for AbstractLbNetwork {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn global_n(&self) -> usize {
        self.global_n
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            collision_detection: self.cd,
            energy_model: EnergyModel::Uniform,
            physical: false,
            ledger: self.ledger.is_some(),
        }
    }

    fn local_broadcast(&mut self, frame: &mut LbFrame) {
        frame.clear_delivered();
        let (senders, receivers, delivered, feedback) = frame.parts_with_feedback_mut();
        if let Some(ledger) = &mut self.ledger {
            ledger.record_call(senders.keys().iter(), receivers.iter());
        }
        let cd = self.cd == CollisionDetection::Receiver;
        // Receivers are visited in ascending node order — the frame's
        // iteration order by construction — so the RNG stream maps to
        // receivers deterministically on every run.
        for r in receivers.iter() {
            if senders.contains(r) {
                // Sender/receiver sets are required to be disjoint; a vertex
                // listed in both acts as a sender only.
                continue;
            }
            // Collect sending neighbours in one pass over the CSR adjacency
            // against the sender occupancy bitset; the uniform pick then
            // indexes the buffer instead of re-scanning the adjacency.
            self.pick_buf.clear();
            for &u in self.graph.neighbors(r) {
                if senders.contains(u) {
                    self.pick_buf.push(u);
                }
            }
            let count = self.pick_buf.len();
            if count == 0 {
                if cd {
                    feedback.insert(r, LbFeedback::Silence);
                }
                continue;
            }
            if self.failure_prob > 0.0 && self.rng.gen_bool(self.failure_prob) {
                if cd {
                    feedback.insert(r, LbFeedback::Noise);
                }
                continue;
            }
            // The specification only promises *some* neighbour's message; we
            // pick uniformly to avoid accidental reliance on a tie-break.
            let pick = self.rng.gen_range(0..count);
            let u = self.pick_buf[pick];
            delivered.insert(r, senders.get(u).expect("occupied sender").clone());
            if cd {
                feedback.insert(r, LbFeedback::Delivered);
            }
        }
    }

    fn lb_energy(&self, v: usize) -> u64 {
        self.ledger.as_ref().map_or(0, |l| l.participations(v))
    }

    fn lb_time(&self) -> u64 {
        self.ledger.as_ref().map_or(0, LbLedger::calls)
    }

    fn energy_view(&self) -> EnergyView {
        let n = self.num_nodes();
        EnergyView::lb_only(
            (0..n).map(|v| self.lb_energy(v)).collect(),
            (0..n)
                .map(|v| self.ledger.as_ref().map_or(0, |l| l.sends(v)))
                .collect(),
            self.lb_time(),
        )
    }

    fn topology(&self) -> Option<&Graph> {
        Some(&self.graph)
    }
}

/// The physical back-end: every Local-Broadcast call expands into Decay
/// slots (Lemma 2.4) on the `radio-sim` channel, so collisions and per-slot
/// energy are fully modelled. With collision detection enabled, calls run
/// the CD-aware Decay variant
/// ([`decay_local_broadcast_cd`]), which uses Silence
/// feedback to retire hopeless receivers after one iteration and idle
/// senders after their neighbourhoods resolve — fewer slots and lower
/// per-node energy on sparse instances, with the per-receiver verdicts
/// surfaced through the frame's feedback lane.
#[derive(Clone, Debug)]
pub struct PhysicalLbNetwork {
    net: RadioNetwork<Msg>,
    global_n: usize,
    cd: CollisionDetection,
    model: EnergyModel,
    decay: DecayParams,
    ledger: Option<LbLedger>,
    scratch: DecayScratch<Msg>,
    rng: ChaCha8Rng,
}

impl PhysicalLbNetwork {
    pub(crate) fn from_builder(
        graph: Arc<Graph>,
        global_n: usize,
        cd: CollisionDetection,
        ledger: bool,
        model: EnergyModel,
        decay: Option<DecayParams>,
        seed: u64,
    ) -> Self {
        let n = graph.num_nodes();
        let decay =
            decay.unwrap_or_else(|| DecayParams::for_network(n.max(2), graph.max_degree().max(1)));
        PhysicalLbNetwork {
            net: RadioNetwork::new(graph).with_collision_detection(cd),
            global_n,
            cd,
            model,
            decay,
            ledger: ledger.then(|| LbLedger::new(n)),
            scratch: DecayScratch::new(n),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The Decay parameters in force.
    pub fn decay_params(&self) -> DecayParams {
        self.decay
    }

    /// The underlying physical simulator (per-slot energy, elapsed slots).
    pub fn radio(&self) -> &RadioNetwork<Msg> {
        &self.net
    }

    /// Per-node *physical* energy in raw slots (listening or transmitting),
    /// as opposed to the LB-unit energy of [`RadioStack::lb_energy`]. For
    /// model-weighted costs use [`RadioStack::energy_view`].
    pub fn physical_energy(&self, v: usize) -> u64 {
        self.net.energy(v)
    }

    /// Maximum per-node physical energy in raw slots.
    pub fn max_physical_energy(&self) -> u64 {
        self.net.max_energy()
    }

    /// Total elapsed physical slots.
    pub fn physical_slots(&self) -> u64 {
        self.net.slots()
    }

    /// The LB ledger, when per-node accounting is enabled.
    pub fn ledger(&self) -> Option<&LbLedger> {
        self.ledger.as_ref()
    }
}

impl RadioStack for PhysicalLbNetwork {
    fn num_nodes(&self) -> usize {
        self.net.num_nodes()
    }

    fn global_n(&self) -> usize {
        self.global_n
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            collision_detection: self.cd,
            energy_model: self.model,
            physical: true,
            ledger: self.ledger.is_some(),
        }
    }

    fn local_broadcast(&mut self, frame: &mut LbFrame) {
        if let Some(ledger) = &mut self.ledger {
            ledger.record_call(frame.senders().keys().iter(), frame.receivers().iter());
        }
        match self.cd {
            CollisionDetection::None => {
                decay_local_broadcast(
                    &mut self.net,
                    frame,
                    &mut self.scratch,
                    self.decay,
                    &mut self.rng,
                );
            }
            CollisionDetection::Receiver => {
                decay_local_broadcast_cd(
                    &mut self.net,
                    frame,
                    &mut self.scratch,
                    self.decay,
                    &mut self.rng,
                );
            }
        }
    }

    fn lb_energy(&self, v: usize) -> u64 {
        self.ledger.as_ref().map_or(0, |l| l.participations(v))
    }

    fn lb_time(&self) -> u64 {
        self.ledger.as_ref().map_or(0, LbLedger::calls)
    }

    fn energy_view(&self) -> EnergyView {
        let n = self.num_nodes();
        let meter = self.net.meter();
        EnergyView::lb_only(
            (0..n).map(|v| self.lb_energy(v)).collect(),
            (0..n)
                .map(|v| self.ledger.as_ref().map_or(0, |l| l.sends(v)))
                .collect(),
            self.lb_time(),
        )
        .with_physical(
            meter.listen_counts().to_vec(),
            meter.transmit_counts().to_vec(),
            meter.slots(),
            self.model,
        )
    }

    fn topology(&self) -> Option<&Graph> {
        Some(self.net.graph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackBuilder;
    use radio_graph::generators;

    fn msg(x: u64) -> Msg {
        Msg::words(&[x])
    }

    fn abstract_stack(g: Graph) -> AbstractLbNetwork {
        match StackBuilder::new(g).build() {
            crate::Stack::Abstract(a) => *a,
            _ => unreachable!(),
        }
    }

    fn physical_stack(g: Graph, seed: u64) -> PhysicalLbNetwork {
        match StackBuilder::new(g)
            .physical(EnergyModel::Uniform)
            .with_seed(seed)
            .build()
        {
            crate::Stack::Physical(p) => *p,
            _ => unreachable!(),
        }
    }

    #[test]
    fn abstract_delivery_follows_spec() {
        let g = generators::path(4); // 0-1-2-3
        let mut net = abstract_stack(g);
        let out = local_broadcast_once(&mut net, &[(0, msg(10)), (3, msg(30))], &[1, 2]);
        assert_eq!(out.get(1), Some(&msg(10)));
        assert_eq!(out.get(2), Some(&msg(30)));
        assert_eq!(net.lb_time(), 1);
        assert_eq!(net.lb_energy(0), 1);
        assert_eq!(net.lb_energy(1), 1);
        assert_eq!(net.max_lb_energy(), 1);
    }

    #[test]
    fn abstract_receiver_without_sending_neighbor_gets_nothing() {
        let g = generators::path(4);
        let mut net = abstract_stack(g);
        let out = local_broadcast_once(&mut net, &[(0, msg(1))], &[3]);
        assert!(out.is_empty());
        // The hopeless receiver still pays for participating.
        assert_eq!(net.lb_energy(3), 1);
    }

    #[test]
    fn abstract_receiver_with_multiple_senders_hears_one_of_them() {
        let g = generators::star(5);
        let mut net = StackBuilder::new(g).with_seed(7).build();
        let senders: Vec<(usize, Msg)> = (1..5).map(|v| (v, msg(v as u64))).collect();
        let out = local_broadcast_once(&mut net, &senders, &[0]);
        let heard = out.get(0).expect("delivered").word(0);
        assert!((1..5).contains(&(heard as usize)));
    }

    #[test]
    fn abstract_failures_do_fail_sometimes() {
        let g = generators::path(2);
        let mut net = StackBuilder::new(g).with_failures(0.5).with_seed(3).build();
        let mut frame = net.new_frame();
        let mut hits = 0;
        for _ in 0..200 {
            frame.clear();
            frame.add_sender(0, msg(1));
            frame.add_receiver(1);
            net.local_broadcast(&mut frame);
            if !frame.delivered().is_empty() {
                hits += 1;
            }
        }
        assert!(hits > 50 && hits < 150, "hits = {hits}");
    }

    #[test]
    fn sender_listed_as_receiver_is_ignored_as_receiver() {
        let g = generators::path(3);
        let mut net = abstract_stack(g);
        let out = local_broadcast_once(&mut net, &[(0, msg(1)), (1, msg(2))], &[1, 2]);
        assert!(!out.contains(1));
        assert_eq!(out.get(2), Some(&msg(2)));
    }

    #[test]
    fn abstract_cd_records_per_receiver_verdicts() {
        // Path 0-1-2-3, sender 0, receivers {1, 3}: with CD the frame's
        // feedback lane distinguishes the delivered receiver from the one
        // with provably no sending neighbour.
        let g = generators::path(4);
        let mut net = StackBuilder::new(g).with_cd().build();
        let mut frame = net.new_frame();
        frame.add_sender(0, msg(7));
        frame.add_receiver(1);
        frame.add_receiver(3);
        net.local_broadcast(&mut frame);
        assert_eq!(frame.feedback().get(1), Some(&LbFeedback::Delivered));
        assert_eq!(frame.feedback().get(3), Some(&LbFeedback::Silence));
        // Injected failures read as noise: the receiver knows senders exist.
        let g = generators::path(2);
        let mut lossy = StackBuilder::new(g)
            .with_cd()
            .with_failures(0.999)
            .with_seed(1)
            .build();
        let mut frame = lossy.new_frame();
        frame.add_sender(0, msg(1));
        frame.add_receiver(1);
        lossy.local_broadcast(&mut frame);
        if !frame.delivered().contains(1) {
            assert_eq!(frame.feedback().get(1), Some(&LbFeedback::Noise));
        }
    }

    #[test]
    fn no_cd_stacks_leave_the_feedback_lane_empty() {
        let g = generators::path(4);
        let mut net = abstract_stack(g);
        let mut frame = net.new_frame();
        frame.add_sender(0, msg(7));
        frame.add_receiver(1);
        frame.add_receiver(3);
        net.local_broadcast(&mut frame);
        assert!(frame.feedback().is_empty());
    }

    #[test]
    fn physical_backend_delivers_and_charges_slots() {
        let g = generators::path(3);
        let mut net = physical_stack(g, 42);
        let out = local_broadcast_once(&mut net, &[(0, msg(9))], &[1, 2]);
        assert_eq!(out.get(1), Some(&msg(9)));
        assert_eq!(out.get(2), None);
        assert_eq!(net.lb_time(), 1);
        assert_eq!(net.lb_energy(0), 1);
        // Physical energy is the Lemma 2.4 expansion: strictly more than one
        // slot for listeners without a sending neighbour.
        assert!(net.physical_energy(2) > 1);
        assert!(net.physical_slots() as usize >= net.decay_params().total_slots());
    }

    #[test]
    fn physical_cd_backend_saves_energy_on_hopeless_receivers() {
        // The CD-aware decay resolves a receiver with no sending neighbour
        // after one iteration instead of the full slot budget.
        let g = generators::path(4);
        let run = |cd: bool| -> (u64, u64) {
            let mut b = StackBuilder::new(g.clone())
                .physical(EnergyModel::Uniform)
                .with_seed(11);
            if cd {
                b = b.with_cd();
            }
            let mut net = b.build();
            let _ = local_broadcast_once(&mut net, &[(0, msg(9))], &[1, 3]);
            let view = net.energy_view();
            (
                view.physical_energy(3).unwrap(),
                view.physical_slots().unwrap(),
            )
        };
        let (plain_energy, plain_slots) = run(false);
        let (cd_energy, cd_slots) = run(true);
        assert!(cd_energy < plain_energy, "{cd_energy} vs {plain_energy}");
        assert!(cd_slots < plain_slots, "{cd_slots} vs {plain_slots}");
    }

    #[test]
    fn physical_and_abstract_agree_on_lb_unit_accounting() {
        let g = generators::grid(3, 3);
        let senders = [(0, msg(1)), (4, msg(2))];
        let receivers = [1, 3, 5, 7];
        let mut a = abstract_stack(g.clone());
        let mut p = physical_stack(g, 1);
        local_broadcast_once(&mut a, &senders, &receivers);
        local_broadcast_once(&mut p, &senders, &receivers);
        for v in 0..9 {
            assert_eq!(a.lb_energy(v), p.lb_energy(v), "node {v}");
        }
        assert_eq!(a.lb_time(), p.lb_time());
    }

    #[test]
    fn reused_frame_is_equivalent_to_fresh_frames() {
        // One frame reused across calls must behave exactly like fresh
        // frames per call (same deliveries, same ledger) on a reliable net.
        let g = generators::grid(4, 4);
        let mut a = abstract_stack(g.clone());
        let mut b = abstract_stack(g);
        let mut reused = a.new_frame();
        for round in 0..8u64 {
            let senders: Vec<(usize, Msg)> = (0..16)
                .filter(|v| (v + round as usize).is_multiple_of(3))
                .map(|v| (v, msg(round)))
                .collect();
            let receivers: Vec<usize> = (0..16)
                .filter(|v| !(v + round as usize).is_multiple_of(3))
                .collect();
            reused.clear();
            for (v, m) in &senders {
                reused.add_sender(*v, m.clone());
            }
            for &v in &receivers {
                reused.add_receiver(v);
            }
            a.local_broadcast(&mut reused);
            let fresh = local_broadcast_once(&mut b, &senders, &receivers);
            let got: Vec<(usize, Msg)> = reused
                .delivered()
                .iter()
                .map(|(v, m)| (v, m.clone()))
                .collect();
            let want: Vec<(usize, Msg)> = fresh.iter().map(|(v, m)| (v, m.clone())).collect();
            assert_eq!(got, want, "round {round}");
        }
        for v in 0..16 {
            assert_eq!(a.lb_energy(v), b.lb_energy(v));
        }
    }
}
