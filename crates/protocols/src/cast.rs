//! Up-cast and Down-cast within clusters (paper, Lemma 3.1).
//!
//! * **Down-cast**: each participating cluster center holds a message that
//!   must reach every member of its cluster.
//! * **Up-cast**: some members hold messages; each participating cluster
//!   center must receive a message from at least one of its holders.
//!
//! Both run in `D` stages (one per layer) of `ℓ` steps. In step `j` of a
//! stage only the vertices whose cluster's index set `S_Cl` contains `j`
//! participate; property (2) of Section 3 (some `j ∈ S_Cl(v)` is not in any
//! neighbouring cluster's set) guarantees that in at least one step a vertex
//! hears from its *own* cluster rather than from a neighbouring one.
//! Messages are additionally tagged with the cluster index, so a vertex can
//! discard same-step deliveries from foreign clusters — something a real
//! device can do because cluster identifiers are part of every message.
//!
//! Per-vertex energy is `O(|S_Cl|) = O(log n)` Local-Broadcast
//! participations per cast, as in Lemma 3.1.

use std::collections::{HashMap, HashSet};

use crate::clustering::ClusterState;
use crate::lb::LbNetwork;
use crate::message::Msg;

/// Wraps a payload with the cluster index it belongs to.
fn wrap(cluster: usize, payload: &Msg) -> Msg {
    let mut words = Vec::with_capacity(payload.len() + 1);
    words.push(cluster as u64);
    words.extend_from_slice(&payload.0);
    Msg(words)
}

/// Splits a wrapped message into (cluster index, payload).
fn unwrap(m: &Msg) -> (usize, Msg) {
    (m.word(0) as usize, Msg(m.0[1..].to_vec()))
}

/// For each step `j ∈ [ℓ]`, the participating clusters whose `S_Cl`
/// contains `j` (restricted to `clusters`).
fn steps_to_clusters(state: &ClusterState, clusters: &[usize]) -> HashMap<usize, Vec<usize>> {
    let mut map: HashMap<usize, Vec<usize>> = HashMap::new();
    for &c in clusters {
        for &j in &state.s_sets[c] {
            map.entry(j).or_default().push(c);
        }
    }
    map
}

/// Down-cast: disseminates `messages[c]` from the center of each cluster `c`
/// to all of its members.
///
/// Returns, for every node of the parent network, the payload it ended up
/// holding (`None` for nodes of non-participating clusters, and for members
/// the cast failed to reach, which happens only through Local-Broadcast
/// delivery failures).
pub fn down_cast(
    parent: &mut dyn LbNetwork,
    state: &ClusterState,
    messages: &HashMap<usize, Msg>,
) -> Vec<Option<Msg>> {
    let n = state.num_nodes();
    let mut holding: Vec<Option<Msg>> = vec![None; n];
    if messages.is_empty() {
        return holding;
    }
    let participating: Vec<usize> = messages.keys().copied().collect();
    // Centers start out holding their message.
    for &c in &participating {
        holding[state.centers[c]] = Some(messages[&c].clone());
    }
    let step_map = steps_to_clusters(state, &participating);
    let mut steps: Vec<usize> = step_map.keys().copied().collect();
    steps.sort_unstable();

    let max_stage = participating
        .iter()
        .map(|&c| state.radius(c))
        .max()
        .unwrap_or(0);
    for stage in 1..=max_stage {
        for &j in &steps {
            let clusters = &step_map[&j];
            let mut senders: HashMap<usize, Msg> = HashMap::new();
            let mut receivers: HashSet<usize> = HashSet::new();
            for &c in clusters {
                for &v in state.members_at_layer(c, stage - 1) {
                    if let Some(payload) = &holding[v] {
                        senders.insert(v, wrap(c, payload));
                    }
                }
                for &v in state.members_at_layer(c, stage) {
                    receivers.insert(v);
                }
            }
            if senders.is_empty() && receivers.is_empty() {
                continue;
            }
            let delivered = parent.local_broadcast(&senders, &receivers);
            for (v, m) in delivered {
                let (c, payload) = unwrap(&m);
                if c == state.cluster_of[v] && holding[v].is_none() {
                    holding[v] = Some(payload);
                }
            }
        }
    }
    holding
}

/// Up-cast: every cluster in `participating` whose members include at least
/// one holder of a message (given in `messages`, keyed by node) delivers one
/// such message to its center.
///
/// Returns the message received by each participating cluster's center
/// (keyed by cluster index). Clusters with no holders are absent from the
/// result.
pub fn up_cast(
    parent: &mut dyn LbNetwork,
    state: &ClusterState,
    participating: &HashSet<usize>,
    messages: &HashMap<usize, Msg>,
) -> HashMap<usize, Msg> {
    let n = state.num_nodes();
    let mut holding: Vec<Option<Msg>> = vec![None; n];
    for (&v, m) in messages {
        if participating.contains(&state.cluster_of[v]) {
            holding[v] = Some(m.clone());
        }
    }
    let clusters: Vec<usize> = participating.iter().copied().collect();
    if clusters.is_empty() {
        return HashMap::new();
    }
    let step_map = steps_to_clusters(state, &clusters);
    let mut steps: Vec<usize> = step_map.keys().copied().collect();
    steps.sort_unstable();

    let max_stage = clusters.iter().map(|&c| state.radius(c)).max().unwrap_or(0);
    // Stages walk from the deepest layer towards the center.
    for stage in (1..=max_stage).rev() {
        for &j in &steps {
            let step_clusters = &step_map[&j];
            let mut senders: HashMap<usize, Msg> = HashMap::new();
            let mut receivers: HashSet<usize> = HashSet::new();
            for &c in step_clusters {
                for &v in state.members_at_layer(c, stage) {
                    if let Some(payload) = &holding[v] {
                        senders.insert(v, wrap(c, payload));
                    }
                }
                for &v in state.members_at_layer(c, stage - 1) {
                    receivers.insert(v);
                }
            }
            if senders.is_empty() && receivers.is_empty() {
                continue;
            }
            let delivered = parent.local_broadcast(&senders, &receivers);
            for (v, m) in delivered {
                let (c, payload) = unwrap(&m);
                if c == state.cluster_of[v] && holding[v].is_none() {
                    holding[v] = Some(payload);
                }
            }
        }
    }

    let mut out = HashMap::new();
    for &c in &clusters {
        if let Some(m) = &holding[state.centers[c]] {
            out.insert(c, m.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster_distributed, ClusteringConfig};
    use crate::lb::AbstractLbNetwork;
    use radio_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(g: radio_graph::Graph, inv_beta: u64, seed: u64) -> (AbstractLbNetwork, ClusterState) {
        let mut net = AbstractLbNetwork::new(g);
        let cfg = ClusteringConfig::new(inv_beta);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let state = cluster_distributed(&mut net, &cfg, &mut rng);
        (net, state)
    }

    #[test]
    fn down_cast_reaches_every_member() {
        let g = generators::grid(10, 10);
        let (mut net, state) = setup(g, 4, 1);
        let messages: HashMap<usize, Msg> = (0..state.num_clusters())
            .map(|c| (c, Msg::words(&[1000 + c as u64])))
            .collect();
        let holding = down_cast(&mut net, &state, &messages);
        for (v, held) in holding.iter().enumerate() {
            let c = state.cluster_of[v];
            assert_eq!(
                held.as_ref().map(|m| m.word(0)),
                Some(1000 + c as u64),
                "vertex {v} (cluster {c}, layer {}) missed the down-cast",
                state.layer[v]
            );
        }
    }

    #[test]
    fn down_cast_only_touches_participating_clusters() {
        let g = generators::grid(8, 8);
        let (mut net, state) = setup(g, 3, 2);
        if state.num_clusters() < 2 {
            return; // degenerate sample; other seeds cover the logic
        }
        let messages: HashMap<usize, Msg> = [(0usize, Msg::words(&[7]))].into_iter().collect();
        let holding = down_cast(&mut net, &state, &messages);
        for (v, held) in holding.iter().enumerate() {
            if state.cluster_of[v] != 0 {
                assert!(held.is_none());
            }
        }
        // Members of cluster 0 all hold the message.
        for &v in &state.members(0) {
            assert_eq!(holding[v].as_ref().map(|m| m.word(0)), Some(7));
        }
    }

    #[test]
    fn up_cast_delivers_some_holder_message_to_center() {
        let g = generators::grid(10, 10);
        let (mut net, state) = setup(g, 4, 3);
        // Every vertex of every cluster holds a message encoding its id.
        let messages: HashMap<usize, Msg> = (0..state.num_nodes())
            .map(|v| (v, Msg::words(&[v as u64])))
            .collect();
        let participating: HashSet<usize> = (0..state.num_clusters()).collect();
        let received = up_cast(&mut net, &state, &participating, &messages);
        assert_eq!(received.len(), state.num_clusters());
        for (c, m) in &received {
            let holder = m.word(0) as usize;
            assert_eq!(
                state.cluster_of[holder], *c,
                "cluster {c} got a foreign message"
            );
        }
    }

    #[test]
    fn up_cast_with_single_holder_reaches_center() {
        let g = generators::grid(9, 9);
        let (mut net, state) = setup(g, 4, 4);
        // Pick the deepest vertex of the largest cluster as the only holder.
        let (c, _) = state
            .cluster_sizes()
            .into_iter()
            .enumerate()
            .max_by_key(|&(_, s)| s)
            .unwrap();
        let deepest = *state
            .members(c)
            .iter()
            .max_by_key(|&&v| state.layer[v])
            .unwrap();
        let messages: HashMap<usize, Msg> = [(deepest, Msg::words(&[4242]))].into_iter().collect();
        let participating: HashSet<usize> = [c].into_iter().collect();
        let received = up_cast(&mut net, &state, &participating, &messages);
        assert_eq!(received.get(&c).map(|m| m.word(0)), Some(4242));
    }

    #[test]
    fn up_cast_ignores_holders_outside_participating_clusters() {
        let g = generators::grid(8, 8);
        let (mut net, state) = setup(g, 3, 5);
        if state.num_clusters() < 2 {
            return;
        }
        let outsider = state.centers[1];
        let messages: HashMap<usize, Msg> = [(outsider, Msg::words(&[5]))].into_iter().collect();
        let participating: HashSet<usize> = [0usize].into_iter().collect();
        let received = up_cast(&mut net, &state, &participating, &messages);
        assert!(received.is_empty());
    }

    #[test]
    fn cast_energy_per_vertex_is_logarithmic() {
        // Lemma 3.1: each vertex participates in O(log n) Local-Broadcasts
        // per cast. Compare against a generous constant times |S_Cl| bound.
        let g = generators::grid(14, 14);
        let (mut net, state) = setup(g, 4, 6);
        let before: Vec<u64> = (0..state.num_nodes()).map(|v| net.lb_energy(v)).collect();
        let messages: HashMap<usize, Msg> = (0..state.num_clusters())
            .map(|c| (c, Msg::words(&[c as u64])))
            .collect();
        let _ = down_cast(&mut net, &state, &messages);
        for (v, &already_used) in before.iter().enumerate() {
            let used = net.lb_energy(v) - already_used;
            let s_len = state.s_sets[state.cluster_of[v]].len() as u64;
            assert!(
                used <= 2 * s_len + 2,
                "vertex {v} used {used} participations for one down-cast (|S_Cl| = {s_len})"
            );
        }
    }

    #[test]
    fn wrap_unwrap_roundtrip() {
        let payload = Msg::words(&[9, 8, 7]);
        let wrapped = wrap(3, &payload);
        let (c, p) = unwrap(&wrapped);
        assert_eq!(c, 3);
        assert_eq!(p, payload);
    }
}
