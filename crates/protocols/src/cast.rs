//! Up-cast and Down-cast within clusters (paper, Lemma 3.1).
//!
//! * **Down-cast**: each participating cluster center holds a message that
//!   must reach every member of its cluster.
//! * **Up-cast**: some members hold messages; each participating cluster
//!   center must receive a message from at least one of its holders.
//!
//! Both run in `D` stages (one per layer) of `ℓ` steps. In step `j` of a
//! stage only the vertices whose cluster's index set `S_Cl` contains `j`
//! participate; property (2) of Section 3 (some `j ∈ S_Cl(v)` is not in any
//! neighbouring cluster's set) guarantees that in at least one step a vertex
//! hears from its *own* cluster rather than from a neighbouring one.
//! Messages are additionally tagged with the cluster index, so a vertex can
//! discard same-step deliveries from foreign clusters — something a real
//! device can do because cluster identifiers are part of every message.
//!
//! Per-vertex energy is `O(|S_Cl|) = O(log n)` Local-Broadcast
//! participations per cast, as in Lemma 3.1.
//!
//! Both casts drive all of their `D · ℓ` Local-Broadcast calls through one
//! caller-provided [`LbFrame`] scratch (sized for the parent network), so a
//! cast allocates nothing per call; the step → clusters schedule is a dense
//! table over `[ℓ]`, iterated in ascending step order by construction.

use radio_sim::{NodeSet, NodeSlots};

use crate::clustering::ClusterState;
use crate::lb::LbFrame;
use crate::message::Msg;
use crate::stack::RadioStack;

/// Wraps a payload with the cluster index it belongs to.
fn wrap(cluster: usize, payload: &Msg) -> Msg {
    payload.prepended(cluster as u64)
}

/// Splits a wrapped message into (cluster index, payload). The hot harvest
/// loops inline the tag check instead (cheaper on rejects); this named form
/// documents the framing and pins it in tests.
#[cfg(test)]
fn unwrap(m: &Msg) -> (usize, Msg) {
    let (cluster, payload) = m.split_first();
    (cluster as usize, payload)
}

/// Reusable buffers for the casts: the per-parent-node holder arena and the
/// step → clusters schedule table.
///
/// Callers that issue many casts (one virtual Local-Broadcast is two) hold
/// one of these next to their [`LbFrame`] so a cast allocates nothing; the
/// one-shot entry points [`down_cast`] / [`up_cast`] build a fresh scratch
/// per call instead.
#[derive(Clone, Debug, Default)]
pub struct CastScratch {
    /// `holding[v]`: the payload parent node `v` currently holds.
    holding: Vec<Option<Msg>>,
    /// The occupied entries of `holding`, so reset is `O(|touched|)` rather
    /// than `O(n)` per cast.
    touched: Vec<usize>,
    /// `clusters_at[j]`: participating clusters whose `S_Cl` contains `j`.
    /// Dense over `[ℓ]`, so iteration is ascending without sorting.
    clusters_at: Vec<Vec<usize>>,
    /// The steps `j` with `clusters_at[j]` non-empty, ascending.
    steps: Vec<usize>,
    /// Down-cast only: `wrapped[c]` is `wrap(c, messages[c])`, computed once
    /// per cast — every holder of cluster `c` sends exactly this message, so
    /// the per-sender tag-prepend becomes a straight clone.
    wrapped: Vec<Option<Msg>>,
}

impl CastScratch {
    /// Scratch buffers for a parent network of `n` nodes.
    pub fn new(n: usize) -> Self {
        CastScratch {
            holding: vec![None; n],
            touched: Vec::new(),
            clusters_at: Vec::new(),
            steps: Vec::new(),
            wrapped: Vec::new(),
        }
    }

    /// Clears the holder arena (touching only occupied entries) and ensures
    /// it covers `n` parent nodes.
    fn reset_holding(&mut self, n: usize) {
        if self.holding.len() < n {
            self.holding.resize(n, None);
        }
        for &v in &self.touched {
            self.holding[v] = None;
        }
        self.touched.clear();
    }

    /// Rebuilds the step schedule for `clusters` in the buffers.
    fn build_schedule(&mut self, state: &ClusterState, clusters: impl Iterator<Item = usize>) {
        if self.clusters_at.len() < state.ell {
            self.clusters_at.resize_with(state.ell, Vec::new);
        }
        for bucket in &mut self.clusters_at[..state.ell] {
            bucket.clear();
        }
        for c in clusters {
            for &j in &state.s_sets[c] {
                self.clusters_at[j].push(c);
            }
        }
        self.steps.clear();
        let clusters_at = &self.clusters_at;
        self.steps
            .extend((0..state.ell).filter(|&j| !clusters_at[j].is_empty()));
    }
}

/// Down-cast: disseminates `messages[c]` from the center of each cluster `c`
/// (over the cluster universe, i.e. `messages` is keyed by cluster index) to
/// all of its members. `frame` is the Local-Broadcast scratch, sized for the
/// parent network.
///
/// Returns, for every node of the parent network, the payload it ended up
/// holding (`None` for nodes of non-participating clusters, and for members
/// the cast failed to reach, which happens only through Local-Broadcast
/// delivery failures). The slice borrows `scratch`'s holder arena.
pub fn down_cast_with<'s>(
    parent: &mut dyn RadioStack,
    state: &ClusterState,
    messages: &NodeSlots<Msg>,
    frame: &mut LbFrame,
    scratch: &'s mut CastScratch,
) -> &'s [Option<Msg>] {
    let n = state.num_nodes();
    debug_assert_eq!(frame.num_nodes(), n, "cast frame must cover the parent");
    scratch.reset_holding(n);
    if messages.is_empty() {
        return &scratch.holding[..n];
    }
    scratch.build_schedule(state, messages.keys().iter());
    let CastScratch {
        holding,
        touched,
        clusters_at,
        steps,
        wrapped,
    } = scratch;
    // Centers start out holding their message; by induction every holder of
    // cluster `c` holds exactly `messages[c]`, so the tagged message each
    // sender transmits is the same per cluster — wrap it once up front.
    wrapped.clear();
    wrapped.resize(state.num_clusters(), None);
    for (c, m) in messages.iter() {
        holding[state.centers[c]] = Some(m.clone());
        touched.push(state.centers[c]);
        wrapped[c] = Some(wrap(c, m));
    }

    let max_stage = messages
        .keys()
        .iter()
        .map(|c| state.radius(c))
        .max()
        .unwrap_or(0);
    for stage in 1..=max_stage {
        for &j in &*steps {
            frame.clear();
            for &c in &clusters_at[j] {
                let tagged = wrapped[c]
                    .as_ref()
                    .expect("scheduled cluster has a message");
                for &v in state.members_at_layer(c, stage - 1) {
                    if holding[v].is_some() {
                        frame.add_sender(v, tagged.clone());
                    }
                }
                for &v in state.members_at_layer(c, stage) {
                    frame.add_receiver(v);
                }
            }
            if frame.senders().is_empty() && frame.receivers().is_empty() {
                continue;
            }
            parent.local_broadcast(frame);
            for (v, m) in frame.delivered().iter() {
                // Check the cluster tag before paying for the payload split.
                if m.word(0) as usize == state.cluster_of[v] && holding[v].is_none() {
                    holding[v] = Some(m.split_first().1);
                    touched.push(v);
                }
            }
        }
    }
    &scratch.holding[..n]
}

/// One-shot [`down_cast_with`] with a freshly allocated scratch, returning
/// the holder arena by value. Hot paths should hold a [`CastScratch`] and
/// call [`down_cast_with`] instead.
pub fn down_cast(
    parent: &mut dyn RadioStack,
    state: &ClusterState,
    messages: &NodeSlots<Msg>,
    frame: &mut LbFrame,
) -> Vec<Option<Msg>> {
    let mut scratch = CastScratch::new(state.num_nodes());
    down_cast_with(parent, state, messages, frame, &mut scratch);
    scratch.holding
}

/// Up-cast: every cluster in `participating` whose members include at least
/// one holder of a message (given in `messages`, keyed by parent node)
/// delivers one such message to its center. `frame` is the Local-Broadcast
/// scratch, sized for the parent network; `out` (over the cluster universe,
/// cleared on entry) receives the message each participating cluster's
/// center heard. Clusters with no holders are absent from the result.
pub fn up_cast_into(
    parent: &mut dyn RadioStack,
    state: &ClusterState,
    participating: &NodeSet,
    messages: &NodeSlots<Msg>,
    frame: &mut LbFrame,
    scratch: &mut CastScratch,
    out: &mut NodeSlots<Msg>,
) {
    let n = state.num_nodes();
    debug_assert_eq!(frame.num_nodes(), n, "cast frame must cover the parent");
    debug_assert_eq!(
        out.universe(),
        state.num_clusters(),
        "up-cast output must cover the clusters"
    );
    out.clear();
    scratch.reset_holding(n);
    if participating.is_empty() {
        return;
    }
    scratch.build_schedule(state, participating.iter());
    let CastScratch {
        holding,
        touched,
        clusters_at,
        steps,
        ..
    } = scratch;
    for (v, m) in messages.iter() {
        if participating.contains(state.cluster_of[v]) {
            holding[v] = Some(m.clone());
            touched.push(v);
        }
    }

    let max_stage = participating
        .iter()
        .map(|c| state.radius(c))
        .max()
        .unwrap_or(0);
    // Stages walk from the deepest layer towards the center.
    for stage in (1..=max_stage).rev() {
        for &j in &*steps {
            frame.clear();
            for &c in &clusters_at[j] {
                for &v in state.members_at_layer(c, stage) {
                    if let Some(payload) = &holding[v] {
                        frame.add_sender(v, wrap(c, payload));
                    }
                }
                for &v in state.members_at_layer(c, stage - 1) {
                    frame.add_receiver(v);
                }
            }
            if frame.senders().is_empty() && frame.receivers().is_empty() {
                continue;
            }
            parent.local_broadcast(frame);
            for (v, m) in frame.delivered().iter() {
                // Check the cluster tag before paying for the payload split.
                if m.word(0) as usize == state.cluster_of[v] && holding[v].is_none() {
                    holding[v] = Some(m.split_first().1);
                    touched.push(v);
                }
            }
        }
    }

    for c in participating.iter() {
        if let Some(m) = &holding[state.centers[c]] {
            out.insert(c, m.clone());
        }
    }
}

/// One-shot [`up_cast_into`] with freshly allocated scratch and output. Hot
/// paths should hold a [`CastScratch`] and an output arena and call
/// [`up_cast_into`] instead.
pub fn up_cast(
    parent: &mut dyn RadioStack,
    state: &ClusterState,
    participating: &NodeSet,
    messages: &NodeSlots<Msg>,
    frame: &mut LbFrame,
) -> NodeSlots<Msg> {
    let mut scratch = CastScratch::new(state.num_nodes());
    let mut out = NodeSlots::new(state.num_clusters());
    up_cast_into(
        parent,
        state,
        participating,
        messages,
        frame,
        &mut scratch,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster_distributed, ClusteringConfig};
    use crate::stack::{Stack, StackBuilder};
    use radio_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(g: radio_graph::Graph, inv_beta: u64, seed: u64) -> (Stack, ClusterState) {
        let mut net = StackBuilder::new(g).build();
        let cfg = ClusteringConfig::new(inv_beta);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let state = cluster_distributed(&mut net, &cfg, &mut rng);
        (net, state)
    }

    fn per_cluster_messages(state: &ClusterState, offset: u64) -> NodeSlots<Msg> {
        let mut m = NodeSlots::new(state.num_clusters());
        for c in 0..state.num_clusters() {
            m.insert(c, Msg::words(&[offset + c as u64]));
        }
        m
    }

    fn all_clusters(state: &ClusterState) -> NodeSet {
        let mut s = NodeSet::new(state.num_clusters());
        s.extend(0..state.num_clusters());
        s
    }

    #[test]
    fn down_cast_reaches_every_member() {
        let g = generators::grid(10, 10);
        let (mut net, state) = setup(g, 4, 1);
        let messages = per_cluster_messages(&state, 1000);
        let mut frame = net.new_frame();
        let holding = down_cast(&mut net, &state, &messages, &mut frame);
        for (v, held) in holding.iter().enumerate() {
            let c = state.cluster_of[v];
            assert_eq!(
                held.as_ref().map(|m| m.word(0)),
                Some(1000 + c as u64),
                "vertex {v} (cluster {c}, layer {}) missed the down-cast",
                state.layer[v]
            );
        }
    }

    #[test]
    fn down_cast_only_touches_participating_clusters() {
        let g = generators::grid(8, 8);
        let (mut net, state) = setup(g, 3, 2);
        if state.num_clusters() < 2 {
            return; // degenerate sample; other seeds cover the logic
        }
        let mut messages = NodeSlots::new(state.num_clusters());
        messages.insert(0, Msg::words(&[7]));
        let mut frame = net.new_frame();
        let holding = down_cast(&mut net, &state, &messages, &mut frame);
        for (v, held) in holding.iter().enumerate() {
            if state.cluster_of[v] != 0 {
                assert!(held.is_none());
            }
        }
        // Members of cluster 0 all hold the message.
        for &v in &state.members(0) {
            assert_eq!(holding[v].as_ref().map(|m| m.word(0)), Some(7));
        }
    }

    #[test]
    fn up_cast_delivers_some_holder_message_to_center() {
        let g = generators::grid(10, 10);
        let (mut net, state) = setup(g, 4, 3);
        // Every vertex of every cluster holds a message encoding its id.
        let mut messages = NodeSlots::new(state.num_nodes());
        for v in 0..state.num_nodes() {
            messages.insert(v, Msg::words(&[v as u64]));
        }
        let participating = all_clusters(&state);
        let mut frame = net.new_frame();
        let received = up_cast(&mut net, &state, &participating, &messages, &mut frame);
        assert_eq!(received.len(), state.num_clusters());
        for (c, m) in received.iter() {
            let holder = m.word(0) as usize;
            assert_eq!(
                state.cluster_of[holder], c,
                "cluster {c} got a foreign message"
            );
        }
    }

    #[test]
    fn up_cast_with_single_holder_reaches_center() {
        let g = generators::grid(9, 9);
        let (mut net, state) = setup(g, 4, 4);
        // Pick the deepest vertex of the largest cluster as the only holder.
        let (c, _) = state
            .cluster_sizes()
            .into_iter()
            .enumerate()
            .max_by_key(|&(_, s)| s)
            .unwrap();
        let deepest = *state
            .members(c)
            .iter()
            .max_by_key(|&&v| state.layer[v])
            .unwrap();
        let mut messages = NodeSlots::new(state.num_nodes());
        messages.insert(deepest, Msg::words(&[4242]));
        let mut participating = NodeSet::new(state.num_clusters());
        participating.insert(c);
        let mut frame = net.new_frame();
        let received = up_cast(&mut net, &state, &participating, &messages, &mut frame);
        assert_eq!(received.get(c).map(|m| m.word(0)), Some(4242));
    }

    #[test]
    fn up_cast_ignores_holders_outside_participating_clusters() {
        let g = generators::grid(8, 8);
        let (mut net, state) = setup(g, 3, 5);
        if state.num_clusters() < 2 {
            return;
        }
        let outsider = state.centers[1];
        let mut messages = NodeSlots::new(state.num_nodes());
        messages.insert(outsider, Msg::words(&[5]));
        let mut participating = NodeSet::new(state.num_clusters());
        participating.insert(0);
        let mut frame = net.new_frame();
        let received = up_cast(&mut net, &state, &participating, &messages, &mut frame);
        assert!(received.is_empty());
    }

    #[test]
    fn cast_energy_per_vertex_is_logarithmic() {
        // Lemma 3.1: each vertex participates in O(log n) Local-Broadcasts
        // per cast. Compare against a generous constant times |S_Cl| bound.
        let g = generators::grid(14, 14);
        let (mut net, state) = setup(g, 4, 6);
        let before: Vec<u64> = (0..state.num_nodes()).map(|v| net.lb_energy(v)).collect();
        let messages = per_cluster_messages(&state, 0);
        let mut frame = net.new_frame();
        let _ = down_cast(&mut net, &state, &messages, &mut frame);
        for (v, &already_used) in before.iter().enumerate() {
            let used = net.lb_energy(v) - already_used;
            let s_len = state.s_sets[state.cluster_of[v]].len() as u64;
            assert!(
                used <= 2 * s_len + 2,
                "vertex {v} used {used} participations for one down-cast (|S_Cl| = {s_len})"
            );
        }
    }

    #[test]
    fn wrap_unwrap_roundtrip() {
        let payload = Msg::words(&[9, 8, 7]);
        let wrapped = wrap(3, &payload);
        let (c, p) = unwrap(&wrapped);
        assert_eq!(c, 3);
        assert_eq!(p, payload);
    }
}
