//! Up-cast and Down-cast within clusters (paper, Lemma 3.1).
//!
//! * **Down-cast**: each participating cluster center holds a message that
//!   must reach every member of its cluster.
//! * **Up-cast**: some members hold messages; each participating cluster
//!   center must receive a message from at least one of its holders.
//!
//! Both run in `D` stages (one per layer) of `ℓ` steps. In step `j` of a
//! stage only the vertices whose cluster's index set `S_Cl` contains `j`
//! participate; property (2) of Section 3 (some `j ∈ S_Cl(v)` is not in any
//! neighbouring cluster's set) guarantees that in at least one step a vertex
//! hears from its *own* cluster rather than from a neighbouring one.
//! Messages are additionally tagged with the cluster index, so a vertex can
//! discard same-step deliveries from foreign clusters — something a real
//! device can do because cluster identifiers are part of every message.
//!
//! Per-vertex energy is `O(|S_Cl|) = O(log n)` Local-Broadcast
//! participations per cast, as in Lemma 3.1.
//!
//! Both casts drive all of their `D · ℓ` Local-Broadcast calls through one
//! caller-provided [`LbFrame`] scratch (sized for the parent network), so a
//! cast allocates nothing per call; the step → clusters schedule is a dense
//! table over `[ℓ]`, iterated in ascending step order by construction.

use radio_sim::{NodeSet, NodeSlots};

use crate::clustering::ClusterState;
use crate::lb::LbFrame;
use crate::message::Msg;
use crate::stack::RadioStack;

/// Wraps a payload with the cluster index it belongs to.
fn wrap(cluster: usize, payload: &Msg) -> Msg {
    payload.prepended(cluster as u64)
}

/// Splits a wrapped message into (cluster index, payload).
fn unwrap(m: &Msg) -> (usize, Msg) {
    let (cluster, payload) = m.split_first();
    (cluster as usize, payload)
}

/// The step schedule of one cast: for each step `j ∈ [ℓ]` used by some
/// participating cluster, the clusters whose `S_Cl` contains `j`. Dense over
/// `[ℓ]`, so iteration is ascending without sorting.
struct StepSchedule {
    clusters_at: Vec<Vec<usize>>,
    steps: Vec<usize>,
}

impl StepSchedule {
    fn build(state: &ClusterState, clusters: impl Iterator<Item = usize>) -> Self {
        let mut clusters_at: Vec<Vec<usize>> = vec![Vec::new(); state.ell];
        for c in clusters {
            for &j in &state.s_sets[c] {
                clusters_at[j].push(c);
            }
        }
        let steps: Vec<usize> = (0..state.ell)
            .filter(|&j| !clusters_at[j].is_empty())
            .collect();
        StepSchedule { clusters_at, steps }
    }
}

/// Down-cast: disseminates `messages[c]` from the center of each cluster `c`
/// (over the cluster universe, i.e. `messages` is keyed by cluster index) to
/// all of its members. `frame` is the Local-Broadcast scratch, sized for the
/// parent network.
///
/// Returns, for every node of the parent network, the payload it ended up
/// holding (`None` for nodes of non-participating clusters, and for members
/// the cast failed to reach, which happens only through Local-Broadcast
/// delivery failures).
pub fn down_cast(
    parent: &mut dyn RadioStack,
    state: &ClusterState,
    messages: &NodeSlots<Msg>,
    frame: &mut LbFrame,
) -> Vec<Option<Msg>> {
    let n = state.num_nodes();
    debug_assert_eq!(frame.num_nodes(), n, "cast frame must cover the parent");
    let mut holding: Vec<Option<Msg>> = vec![None; n];
    if messages.is_empty() {
        return holding;
    }
    // Centers start out holding their message.
    for (c, m) in messages.iter() {
        holding[state.centers[c]] = Some(m.clone());
    }
    let schedule = StepSchedule::build(state, messages.keys().iter());

    let max_stage = messages
        .keys()
        .iter()
        .map(|c| state.radius(c))
        .max()
        .unwrap_or(0);
    for stage in 1..=max_stage {
        for &j in &schedule.steps {
            frame.clear();
            for &c in &schedule.clusters_at[j] {
                for &v in state.members_at_layer(c, stage - 1) {
                    if let Some(payload) = &holding[v] {
                        frame.add_sender(v, wrap(c, payload));
                    }
                }
                for &v in state.members_at_layer(c, stage) {
                    frame.add_receiver(v);
                }
            }
            if frame.senders().is_empty() && frame.receivers().is_empty() {
                continue;
            }
            parent.local_broadcast(frame);
            for (v, m) in frame.delivered().iter() {
                let (c, payload) = unwrap(m);
                if c == state.cluster_of[v] && holding[v].is_none() {
                    holding[v] = Some(payload);
                }
            }
        }
    }
    holding
}

/// Up-cast: every cluster in `participating` whose members include at least
/// one holder of a message (given in `messages`, keyed by parent node)
/// delivers one such message to its center. `frame` is the Local-Broadcast
/// scratch, sized for the parent network.
///
/// Returns the message received by each participating cluster's center,
/// keyed by cluster index. Clusters with no holders are absent from the
/// result.
pub fn up_cast(
    parent: &mut dyn RadioStack,
    state: &ClusterState,
    participating: &NodeSet,
    messages: &NodeSlots<Msg>,
    frame: &mut LbFrame,
) -> NodeSlots<Msg> {
    let n = state.num_nodes();
    debug_assert_eq!(frame.num_nodes(), n, "cast frame must cover the parent");
    let mut out: NodeSlots<Msg> = NodeSlots::new(state.num_clusters());
    if participating.is_empty() {
        return out;
    }
    let mut holding: Vec<Option<Msg>> = vec![None; n];
    for (v, m) in messages.iter() {
        if participating.contains(state.cluster_of[v]) {
            holding[v] = Some(m.clone());
        }
    }
    let schedule = StepSchedule::build(state, participating.iter());

    let max_stage = participating
        .iter()
        .map(|c| state.radius(c))
        .max()
        .unwrap_or(0);
    // Stages walk from the deepest layer towards the center.
    for stage in (1..=max_stage).rev() {
        for &j in &schedule.steps {
            frame.clear();
            for &c in &schedule.clusters_at[j] {
                for &v in state.members_at_layer(c, stage) {
                    if let Some(payload) = &holding[v] {
                        frame.add_sender(v, wrap(c, payload));
                    }
                }
                for &v in state.members_at_layer(c, stage - 1) {
                    frame.add_receiver(v);
                }
            }
            if frame.senders().is_empty() && frame.receivers().is_empty() {
                continue;
            }
            parent.local_broadcast(frame);
            for (v, m) in frame.delivered().iter() {
                let (c, payload) = unwrap(m);
                if c == state.cluster_of[v] && holding[v].is_none() {
                    holding[v] = Some(payload);
                }
            }
        }
    }

    for c in participating.iter() {
        if let Some(m) = &holding[state.centers[c]] {
            out.insert(c, m.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster_distributed, ClusteringConfig};
    use crate::stack::{Stack, StackBuilder};
    use radio_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(g: radio_graph::Graph, inv_beta: u64, seed: u64) -> (Stack, ClusterState) {
        let mut net = StackBuilder::new(g).build();
        let cfg = ClusteringConfig::new(inv_beta);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let state = cluster_distributed(&mut net, &cfg, &mut rng);
        (net, state)
    }

    fn per_cluster_messages(state: &ClusterState, offset: u64) -> NodeSlots<Msg> {
        let mut m = NodeSlots::new(state.num_clusters());
        for c in 0..state.num_clusters() {
            m.insert(c, Msg::words(&[offset + c as u64]));
        }
        m
    }

    fn all_clusters(state: &ClusterState) -> NodeSet {
        let mut s = NodeSet::new(state.num_clusters());
        s.extend(0..state.num_clusters());
        s
    }

    #[test]
    fn down_cast_reaches_every_member() {
        let g = generators::grid(10, 10);
        let (mut net, state) = setup(g, 4, 1);
        let messages = per_cluster_messages(&state, 1000);
        let mut frame = net.new_frame();
        let holding = down_cast(&mut net, &state, &messages, &mut frame);
        for (v, held) in holding.iter().enumerate() {
            let c = state.cluster_of[v];
            assert_eq!(
                held.as_ref().map(|m| m.word(0)),
                Some(1000 + c as u64),
                "vertex {v} (cluster {c}, layer {}) missed the down-cast",
                state.layer[v]
            );
        }
    }

    #[test]
    fn down_cast_only_touches_participating_clusters() {
        let g = generators::grid(8, 8);
        let (mut net, state) = setup(g, 3, 2);
        if state.num_clusters() < 2 {
            return; // degenerate sample; other seeds cover the logic
        }
        let mut messages = NodeSlots::new(state.num_clusters());
        messages.insert(0, Msg::words(&[7]));
        let mut frame = net.new_frame();
        let holding = down_cast(&mut net, &state, &messages, &mut frame);
        for (v, held) in holding.iter().enumerate() {
            if state.cluster_of[v] != 0 {
                assert!(held.is_none());
            }
        }
        // Members of cluster 0 all hold the message.
        for &v in &state.members(0) {
            assert_eq!(holding[v].as_ref().map(|m| m.word(0)), Some(7));
        }
    }

    #[test]
    fn up_cast_delivers_some_holder_message_to_center() {
        let g = generators::grid(10, 10);
        let (mut net, state) = setup(g, 4, 3);
        // Every vertex of every cluster holds a message encoding its id.
        let mut messages = NodeSlots::new(state.num_nodes());
        for v in 0..state.num_nodes() {
            messages.insert(v, Msg::words(&[v as u64]));
        }
        let participating = all_clusters(&state);
        let mut frame = net.new_frame();
        let received = up_cast(&mut net, &state, &participating, &messages, &mut frame);
        assert_eq!(received.len(), state.num_clusters());
        for (c, m) in received.iter() {
            let holder = m.word(0) as usize;
            assert_eq!(
                state.cluster_of[holder], c,
                "cluster {c} got a foreign message"
            );
        }
    }

    #[test]
    fn up_cast_with_single_holder_reaches_center() {
        let g = generators::grid(9, 9);
        let (mut net, state) = setup(g, 4, 4);
        // Pick the deepest vertex of the largest cluster as the only holder.
        let (c, _) = state
            .cluster_sizes()
            .into_iter()
            .enumerate()
            .max_by_key(|&(_, s)| s)
            .unwrap();
        let deepest = *state
            .members(c)
            .iter()
            .max_by_key(|&&v| state.layer[v])
            .unwrap();
        let mut messages = NodeSlots::new(state.num_nodes());
        messages.insert(deepest, Msg::words(&[4242]));
        let mut participating = NodeSet::new(state.num_clusters());
        participating.insert(c);
        let mut frame = net.new_frame();
        let received = up_cast(&mut net, &state, &participating, &messages, &mut frame);
        assert_eq!(received.get(c).map(|m| m.word(0)), Some(4242));
    }

    #[test]
    fn up_cast_ignores_holders_outside_participating_clusters() {
        let g = generators::grid(8, 8);
        let (mut net, state) = setup(g, 3, 5);
        if state.num_clusters() < 2 {
            return;
        }
        let outsider = state.centers[1];
        let mut messages = NodeSlots::new(state.num_nodes());
        messages.insert(outsider, Msg::words(&[5]));
        let mut participating = NodeSet::new(state.num_clusters());
        participating.insert(0);
        let mut frame = net.new_frame();
        let received = up_cast(&mut net, &state, &participating, &messages, &mut frame);
        assert!(received.is_empty());
    }

    #[test]
    fn cast_energy_per_vertex_is_logarithmic() {
        // Lemma 3.1: each vertex participates in O(log n) Local-Broadcasts
        // per cast. Compare against a generous constant times |S_Cl| bound.
        let g = generators::grid(14, 14);
        let (mut net, state) = setup(g, 4, 6);
        let before: Vec<u64> = (0..state.num_nodes()).map(|v| net.lb_energy(v)).collect();
        let messages = per_cluster_messages(&state, 0);
        let mut frame = net.new_frame();
        let _ = down_cast(&mut net, &state, &messages, &mut frame);
        for (v, &already_used) in before.iter().enumerate() {
            let used = net.lb_energy(v) - already_used;
            let s_len = state.s_sets[state.cluster_of[v]].len() as u64;
            assert!(
                used <= 2 * s_len + 2,
                "vertex {v} used {used} participations for one down-cast (|S_Cl| = {s_len})"
            );
        }
    }

    #[test]
    fn wrap_unwrap_roundtrip() {
        let payload = Msg::words(&[9, 8, 7]);
        let wrapped = wrap(3, &payload);
        let (c, p) = unwrap(&wrapped);
        assert_eq!(c, 3);
        assert_eq!(p, payload);
    }
}
