//! First-class protocols: one execution API from examples to the sweep.
//!
//! The paper's algorithms form a layered family — trivial wavefront BFS,
//! Decay BFS, distributed clustering, recursive BFS — but historically the
//! repo exposed them as free functions with ad-hoc signatures, and every
//! consumer (examples, benches, the scenario runner, the paper-claims
//! tests) re-dispatched them through its own `match`. This module is the
//! uniform surface that replaces those call sites:
//!
//! * [`Protocol`] — an object-safe trait: a protocol has a stable
//!   [`ProtocolId`], declares the stack [`Capabilities`] it [`requires`],
//!   and [`run`]s against any `&mut dyn RadioStack`, producing a
//!   [`ProtocolReport`].
//! * [`ProtocolReport`] — the unified result: a typed payload
//!   ([`ProtocolOutput`]: distances, a clustering, or a delivery count), the
//!   [`EnergyView`] *diff* over exactly the protocol's own calls, and the
//!   scalar `outcome` the scenario records carry. Reports serialize to the
//!   same null-stable JSON columns the sweep emits.
//! * [`ProtocolRegistry`] — resolves string specs like `trivial_bfs`,
//!   `decay_bfs`, `clustering:b=4`, `recursive:eps=0.5`, or `lb_sweep:r=16`
//!   into boxed protocols, so a new workload is a registry entry instead of
//!   a new match arm in four places.
//!
//! Capability gating happens in [`Protocol::run`] before any Local-Broadcast
//! is issued: a protocol whose requirements the stack does not satisfy (for
//! example `trivial_bfs_cd` on a `physical` stack built without
//! [`crate::StackBuilder::with_cd`]) returns
//! [`ProtocolError::MissingCapability`] — a typed error, never a panic —
//! with the capability matrix coordinates of both sides.
//!
//! This crate registers the protocols that live at the Local-Broadcast
//! layer ([`base_registry`]: `clustering`, `lb_sweep`); the BFS drivers of
//! `energy-bfs` register themselves on top via `energy_bfs::protocol::registry()`,
//! which is the registry every runner should use.
//!
//! [`requires`]: Protocol::requires
//! [`run`]: Protocol::run

use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::clustering::{cluster_distributed, ClusterState, ClusteringConfig};
use crate::lb::LbFrame;
use crate::message::Msg;
use crate::stack::{Capabilities, EnergyView, RadioStack};

/// Stable identifier of a resolved protocol, e.g. `trivial_bfs` or
/// `clustering_b4`. This is the label that appears in scenario records and
/// sweep JSON, so it is part of the byte-stability contract.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ProtocolId(String);

impl ProtocolId {
    /// Wraps a label.
    pub fn new(label: impl Into<String>) -> Self {
        ProtocolId(label.into())
    }

    /// The label as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl PartialEq<&str> for ProtocolId {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

/// The per-run inputs every protocol draws from: a source set, an optional
/// depth bound, and the seed for any protocol-level randomness (clustering
/// tags, recursive-BFS hierarchy growth). Stack-level randomness is seeded
/// separately through [`crate::StackBuilder::with_seed`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolInput {
    /// Source vertices (all labelled 0 by BFS protocols; single-source
    /// protocols use the first entry). Defaults to `[0]`.
    pub sources: Vec<usize>,
    /// Depth bound for bounded protocols. `None` means the protocol's own
    /// full-graph horizon (`n` for the trivial wavefront, `n − 1` for the
    /// recursive BFS — their historical free-function defaults).
    pub depth: Option<u64>,
    /// Seed for protocol-level randomness.
    pub seed: u64,
    /// Optional restricted active set: the vertices allowed to participate.
    /// `None` is the full vertex set — the historical behaviour, and what
    /// every default-sweep cell uses. Protocols that support restriction
    /// (the trivial wavefronts, whose free functions always took an
    /// `active: &[bool]` parameter) run only inside the set — the
    /// recursion's base-case workload expressed as a registry input.
    /// Protocols without a meaningful restriction (clustering, `lb_sweep`,
    /// the recursive driver) ignore it; result caches must still key on it,
    /// since for honouring protocols it changes the record.
    pub active: Option<Vec<usize>>,
}

impl Default for ProtocolInput {
    fn default() -> Self {
        ProtocolInput {
            sources: vec![0],
            depth: None,
            seed: 0,
            active: None,
        }
    }
}

impl ProtocolInput {
    /// Source 0, no depth bound, the given seed — what the scenario runner
    /// feeds every cell.
    pub fn from_seed(seed: u64) -> Self {
        ProtocolInput {
            seed,
            ..Default::default()
        }
    }

    /// Replaces the source set.
    pub fn with_sources(mut self, sources: Vec<usize>) -> Self {
        self.sources = sources;
        self
    }

    /// Sets the depth bound.
    pub fn with_depth(mut self, depth: u64) -> Self {
        self.depth = Some(depth);
        self
    }

    /// Restricts the run to the given active vertex set.
    pub fn with_active(mut self, active: Vec<usize>) -> Self {
        self.active = Some(active);
        self
    }

    /// The active set as the `&[bool]` mask the wavefront free functions
    /// take, over an `n`-vertex universe. `None` is the full set (the exact
    /// historical `vec![true; n]`); indices `≥ n` are ignored, so a mask
    /// for a smaller realized graph never panics — validating callers (the
    /// sweep server) should range-check before building the input.
    pub fn active_mask(&self, n: usize) -> Vec<bool> {
        match &self.active {
            None => vec![true; n],
            Some(set) => {
                let mut mask = vec![false; n];
                for &v in set {
                    if v < n {
                        mask[v] = true;
                    }
                }
                mask
            }
        }
    }
}

/// The typed payload of a [`ProtocolReport`].
#[derive(Clone, Debug)]
pub enum ProtocolOutput {
    /// Per-vertex distance labels (BFS protocols).
    Distances(Vec<Option<u64>>),
    /// A full clustering state (clustering protocols).
    Clustering(ClusterState),
    /// Number of deliveries (stress/sweep protocols).
    Deliveries(u64),
    /// A HyperBall run: neighborhood function, diameter and eccentricity
    /// estimates (sketch protocols).
    Sketch(crate::sketch::SketchSummary),
    /// A diameter estimate from one of the Section 5 approximation
    /// protocols (the `diameter:*` family).
    Diameter {
        /// The diameter estimate.
        estimate: u64,
        /// BFS computations the estimator ran (1 for the 2-approximation,
        /// `Õ(√n)` for the nearly-3/2 one, 0 for the sketch).
        bfs_count: u64,
    },
}

impl ProtocolOutput {
    /// The scalar summary the scenario records carry: vertices labelled,
    /// clusters formed, deliveries, or a diameter estimate.
    pub fn outcome(&self) -> u64 {
        match self {
            ProtocolOutput::Distances(dist) => dist.iter().filter(|d| d.is_some()).count() as u64,
            ProtocolOutput::Clustering(state) => state.num_clusters() as u64,
            ProtocolOutput::Deliveries(d) => *d,
            ProtocolOutput::Sketch(summary) => summary.outcome(),
            ProtocolOutput::Diameter { estimate, .. } => *estimate,
        }
    }

    /// The distance labelling, when this is a BFS output.
    pub fn distances(&self) -> Option<&[Option<u64>]> {
        match self {
            ProtocolOutput::Distances(d) => Some(d),
            _ => None,
        }
    }

    /// The clustering state, when this is a clustering output.
    pub fn clustering(&self) -> Option<&ClusterState> {
        match self {
            ProtocolOutput::Clustering(s) => Some(s),
            _ => None,
        }
    }

    /// The sketch summary, when this is a HyperBall output.
    pub fn sketch(&self) -> Option<&crate::sketch::SketchSummary> {
        match self {
            ProtocolOutput::Sketch(s) => Some(s),
            _ => None,
        }
    }

    /// The diameter estimate, when this is a diameter-family output — the
    /// sketch variant reports its own estimate here too, so agreement
    /// checks read one accessor for the whole family.
    pub fn diameter_estimate(&self) -> Option<u64> {
        match self {
            ProtocolOutput::Diameter { estimate, .. } => Some(*estimate),
            ProtocolOutput::Sketch(s) => Some(s.diameter_estimate),
            _ => None,
        }
    }
}

/// The unified result of one protocol run: payload, energy, telemetry.
#[derive(Clone, Debug)]
pub struct ProtocolReport {
    /// The resolved protocol's id (the record label).
    pub protocol: ProtocolId,
    /// The typed payload.
    pub output: ProtocolOutput,
    /// The [`EnergyView`] **diff** over exactly this run — on a fresh stack
    /// it equals the stack's whole view; mid-run it isolates the protocol's
    /// own phase (setup vs query accounting falls out for free).
    pub energy: EnergyView,
}

impl ProtocolReport {
    /// The scalar outcome column.
    pub fn outcome(&self) -> u64 {
        self.output.outcome()
    }

    /// Local-Broadcast calls issued by the run (time in LB units).
    pub fn lb_calls(&self) -> u64 {
        self.energy.lb_time()
    }

    /// Elapsed physical slots, on physically-capable stacks.
    pub fn physical_slots(&self) -> Option<u64> {
        self.energy.physical_slots()
    }

    /// Serializes the report to one JSON object with the sweep's null-stable
    /// column set (fixed field order, floats at three decimals, `null` for
    /// absent physical counters) — the same shape a `ScenarioRecord` row
    /// carries, minus the scenario coordinates.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "null".into(), |x: u64| x.to_string());
        format!(
            "{{\"protocol\":\"{}\",\"lb_calls\":{},\"max_lb_energy\":{},\
             \"mean_lb_energy\":{:.3},\"max_physical_energy\":{},\"physical_slots\":{},\
             \"outcome\":{}}}",
            self.protocol,
            self.lb_calls(),
            self.energy.max_lb_energy(),
            self.energy.mean_lb_energy(),
            opt(self.energy.max_physical_energy()),
            opt(self.energy.physical_slots()),
            self.outcome(),
        )
    }
}

/// Typed failures of spec resolution and capability gating.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The spec's protocol name is not registered. Carries the registry's
    /// known names so CLI surfaces can print them.
    UnknownProtocol {
        /// The spec as given.
        spec: String,
        /// Names the registry does know.
        known: Vec<&'static str>,
    },
    /// The spec parsed but its parameters are malformed (bad syntax, an
    /// unknown key, or an unparsable value).
    InvalidSpec {
        /// The spec as given.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The stack does not satisfy the protocol's [`Protocol::requires`]
    /// descriptor (e.g. a `*_cd` protocol on a stack without receiver-side
    /// collision detection).
    MissingCapability {
        /// The protocol that refused to run.
        protocol: String,
        /// Human-readable requirement that failed.
        required: String,
        /// The stack's capability label (`abstract`, `physical`, …).
        available: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownProtocol { spec, known } => write!(
                f,
                "unknown protocol spec {spec:?}; known protocols: {}",
                known.join(", ")
            ),
            ProtocolError::InvalidSpec { spec, reason } => {
                write!(f, "invalid protocol spec {spec:?}: {reason}")
            }
            ProtocolError::MissingCapability {
                protocol,
                required,
                available,
            } => write!(
                f,
                "protocol {protocol} requires {required}, but the stack provides only \
                 `{available}`"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// An executable protocol: the one trait surface between workloads and the
/// stacks they run on.
///
/// The trait is object-safe — registries hand out `Box<dyn Protocol>`, the
/// scenario runner shares one boxed protocol across its worker pool
/// (`Send + Sync`), and composition never needs generics. Implementors
/// provide [`Protocol::execute`]; callers invoke [`Protocol::run`] (or
/// [`Protocol::run_with_frame`] to reuse a frame across many runs), which
/// wraps `execute` with the capability gate and the energy-diff telemetry,
/// so every protocol reports uniformly without repeating the plumbing.
pub trait Protocol: Send + Sync {
    /// The stable id (and record label) of this protocol instance,
    /// parameters included — e.g. `clustering_b4`.
    fn name(&self) -> ProtocolId;

    /// Minimum stack capabilities this protocol needs, as a [`Capabilities`]
    /// descriptor interpreted field-wise as lower bounds (see
    /// [`Capabilities::satisfies`]). The default requires nothing —
    /// [`Capabilities::baseline`].
    fn requires(&self) -> Capabilities {
        Capabilities::baseline()
    }

    /// The protocol body. Called by [`Protocol::run`] after the capability
    /// gate passed; `frame` is cleared state owned by the caller and may be
    /// reused across runs. Implementations should not read stack counters —
    /// the wrapper captures the energy diff.
    fn execute(
        &self,
        net: &mut dyn RadioStack,
        input: &ProtocolInput,
        frame: &mut LbFrame,
    ) -> ProtocolOutput;

    /// Runs the protocol through a caller-owned frame (the batched path the
    /// scenario runner uses: one frame per worker, reused across cells).
    ///
    /// Checks [`Protocol::requires`] against the stack's capabilities first
    /// and returns [`ProtocolError::MissingCapability`] without issuing a
    /// single Local-Broadcast if they fall short; otherwise executes and
    /// wraps the output with the [`EnergyView`] diff of exactly this run.
    fn run_with_frame(
        &self,
        net: &mut dyn RadioStack,
        input: &ProtocolInput,
        frame: &mut LbFrame,
    ) -> Result<ProtocolReport, ProtocolError> {
        let caps = net.capabilities();
        let required = self.requires();
        if !caps.satisfies(&required) {
            return Err(ProtocolError::MissingCapability {
                protocol: self.name().to_string(),
                required: required.requirement_label(),
                available: caps.label(),
            });
        }
        let before = net.energy_view();
        let output = self.execute(net, input, frame);
        let energy = net.energy_view().diff(&before);
        Ok(ProtocolReport {
            protocol: self.name(),
            output,
            energy,
        })
    }

    /// Runs the protocol with a freshly allocated frame.
    fn run(
        &self,
        net: &mut dyn RadioStack,
        input: &ProtocolInput,
    ) -> Result<ProtocolReport, ProtocolError> {
        let mut frame = net.new_frame();
        self.run_with_frame(net, input, &mut frame)
    }
}

/// Parsed parameters of a protocol spec: the `k=v` pairs after the `:` in
/// `name:k=v,k=v`. Factories read typed values with defaults and reject
/// unknown keys, so a typo'd parameter is an [`ProtocolError::InvalidSpec`]
/// instead of a silently ignored knob.
#[derive(Clone, Debug)]
pub struct SpecParams {
    spec: String,
    pairs: Vec<(String, String)>,
}

impl SpecParams {
    /// An [`ProtocolError::InvalidSpec`] anchored to this spec — for
    /// factories (in any crate) rejecting out-of-range parameter values.
    pub fn invalid(&self, reason: impl Into<String>) -> ProtocolError {
        ProtocolError::InvalidSpec {
            spec: self.spec.clone(),
            reason: reason.into(),
        }
    }

    /// The full spec string these parameters came from.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Rejects any key outside `allowed`.
    pub fn ensure_known_keys(&self, allowed: &[&str]) -> Result<(), ProtocolError> {
        for (k, _) in &self.pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(self.invalid(format!(
                    "unknown parameter {k:?} (allowed: {})",
                    if allowed.is_empty() {
                        "none".to_string()
                    } else {
                        allowed.join(", ")
                    }
                )));
            }
        }
        Ok(())
    }

    fn raw(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Reads a bare selector key (`name:key`, no value): `true` when
    /// present, an [`ProtocolError::InvalidSpec`] if it was given a value
    /// — the family-spec shape (`diameter:two_approx`).
    pub fn flag(&self, key: &str) -> Result<bool, ProtocolError> {
        match self.raw(key) {
            None => Ok(false),
            Some("") => Ok(true),
            Some(v) => Err(self.invalid(format!("parameter {key} is a selector, got {key}={v:?}"))),
        }
    }

    /// Reads a `u64` parameter, falling back to `default` when absent.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, ProtocolError> {
        Ok(self.get_opt_u64(key)?.unwrap_or(default))
    }

    /// Reads a `u64` parameter, distinguishing "absent" from any given
    /// value — for knobs whose default is computed rather than constant
    /// (e.g. `recursive`'s depth-derived `1/β`), where reserving a sentinel
    /// value would silently reinterpret legitimate input.
    pub fn get_opt_u64(&self, key: &str) -> Result<Option<u64>, ProtocolError> {
        match self.raw(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| self.invalid(format!("parameter {key}={v:?} is not an integer"))),
        }
    }

    /// Reads an `f64` parameter, falling back to `default` when absent.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ProtocolError> {
        match self.raw(key) {
            None => Ok(default),
            Some(v) => v
                .parse::<f64>()
                .map_err(|_| self.invalid(format!("parameter {key}={v:?} is not a number"))),
        }
    }
}

/// Splits `name[:k=v[,k=v]*]` into the protocol name and its parameters.
///
/// A parameter without `=` is kept as a *bare key* with an empty value —
/// the selector shape family specs use (`diameter:two_approx`,
/// `diameter:hyperball:p=6`). Factories that do not document bare keys
/// still reject them: an empty value fails every typed getter, and
/// [`SpecParams::ensure_known_keys`] rejects unknown names as before.
fn parse_spec(spec: &str) -> Result<(&str, SpecParams), ProtocolError> {
    let spec = spec.trim();
    let (name, rest) = match spec.split_once(':') {
        None => (spec, ""),
        Some((name, rest)) => (name, rest),
    };
    let mut pairs: Vec<(String, String)> = Vec::new();
    for part in rest.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = part.split_once('=').unwrap_or((part, ""));
        let k = k.trim().to_string();
        // First-wins would silently drop the later (likely intended)
        // value; make the conflict loud instead.
        if pairs.iter().any(|(existing, _)| *existing == k) {
            return Err(ProtocolError::InvalidSpec {
                spec: spec.to_string(),
                reason: format!("parameter {k:?} given more than once"),
            });
        }
        pairs.push((k, v.trim().to_string()));
    }
    Ok((
        name,
        SpecParams {
            spec: spec.to_string(),
            pairs,
        },
    ))
}

/// A factory resolving parsed spec parameters into a boxed protocol.
pub type ProtocolFactory = fn(&SpecParams) -> Result<Box<dyn Protocol>, ProtocolError>;

struct RegistryEntry {
    name: &'static str,
    summary: &'static str,
    factory: ProtocolFactory,
}

/// Resolves protocol specs (`trivial_bfs`, `clustering:b=4`, …) into boxed
/// [`Protocol`]s.
///
/// The registry is a plain value — cheap to build, no global state — so
/// layered crates compose it by registration: this crate's
/// [`base_registry`] carries the Local-Broadcast-layer protocols, and
/// `energy-bfs` adds its BFS drivers on top. Lookup order is registration
/// order; names must be unique.
pub struct ProtocolRegistry {
    entries: Vec<RegistryEntry>,
}

impl ProtocolRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProtocolRegistry {
            entries: Vec::new(),
        }
    }

    /// Registers `factory` under `name` (the spec's base name, before any
    /// `:`). Panics on a duplicate name: two factories for one spec is a
    /// wiring bug, not a runtime condition.
    pub fn register(
        &mut self,
        name: &'static str,
        summary: &'static str,
        factory: ProtocolFactory,
    ) {
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "protocol {name:?} registered twice"
        );
        self.entries.push(RegistryEntry {
            name,
            summary,
            factory,
        });
    }

    /// The registered base names, in registration order.
    pub fn known(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// One `name — summary` line per registered protocol, for CLI help.
    pub fn help(&self) -> String {
        self.entries
            .iter()
            .map(|e| format!("  {:<16} {}", e.name, e.summary))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Resolves a spec into a boxed protocol.
    pub fn get(&self, spec: &str) -> Result<Box<dyn Protocol>, ProtocolError> {
        let (name, params) = parse_spec(spec)?;
        match self.entries.iter().find(|e| e.name == name) {
            Some(entry) => (entry.factory)(&params),
            None => Err(ProtocolError::UnknownProtocol {
                spec: spec.to_string(),
                known: self.known(),
            }),
        }
    }
}

impl Default for ProtocolRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// The registry of protocols defined at this crate's layer: `clustering`
/// (Lemma 2.5) and `lb_sweep` (the bare Local-Broadcast stress loop).
/// Downstream crates extend it — use `energy_bfs::protocol::registry()` for
/// the full set including the BFS drivers.
pub fn base_registry() -> ProtocolRegistry {
    let mut r = ProtocolRegistry::new();
    r.register(
        "clustering",
        "distributed MPX clustering (Lemma 2.5); b = integral 1/β (default 4)",
        |params| {
            params.ensure_known_keys(&["b"])?;
            let inv_beta = params.get_u64("b", 4)?;
            if inv_beta == 0 {
                return Err(params.invalid("parameter b must be ≥ 1"));
            }
            Ok(Box::new(ClusteringProtocol { inv_beta }))
        },
    );
    r.register(
        "lb_sweep",
        "rotating single-sender Local-Broadcast stress loop; r = rounds (default 16)",
        |params| {
            params.ensure_known_keys(&["r"])?;
            let rounds = params.get_u64("r", 16)?;
            Ok(Box::new(LbSweepProtocol { rounds }))
        },
    );
    r.register(
        "hyperball",
        "HyperBall neighborhood-function sketch; p = register bits (default 6), rounds = bound",
        |params| {
            Ok(Box::new(crate::sketch::HyperballProtocol::from_params(
                params,
            )?))
        },
    );
    r
}

/// The distributed MPX clustering of Lemma 2.5 as a [`Protocol`]: grows
/// `cluster(G, β)` with `1/β = inv_beta`, seeding the shared-randomness tags
/// from the input seed. Output: [`ProtocolOutput::Clustering`].
#[derive(Clone, Debug)]
pub struct ClusteringProtocol {
    /// The integral `1/β` of the MPX growth.
    pub inv_beta: u64,
}

impl Protocol for ClusteringProtocol {
    fn name(&self) -> ProtocolId {
        ProtocolId::new(format!("clustering_b{}", self.inv_beta))
    }

    fn execute(
        &self,
        net: &mut dyn RadioStack,
        input: &ProtocolInput,
        _frame: &mut LbFrame,
    ) -> ProtocolOutput {
        let cfg = ClusteringConfig::new(self.inv_beta);
        let mut rng = ChaCha8Rng::seed_from_u64(input.seed);
        ProtocolOutput::Clustering(cluster_distributed(net, &cfg, &mut rng))
    }
}

/// A bare Local-Broadcast stress loop: in round `r`, node `r mod n` sends
/// and everyone else listens. Most receivers are outside the sender's
/// neighbourhood — exactly the sparse-neighbourhood regime where the
/// CD-aware Decay variant terminates early — so running it under `physical`
/// and `physical_cd` stacks measures the collision-detection saving.
/// Output: [`ProtocolOutput::Deliveries`].
#[derive(Clone, Debug)]
pub struct LbSweepProtocol {
    /// Number of Local-Broadcast rounds.
    pub rounds: u64,
}

impl Protocol for LbSweepProtocol {
    fn name(&self) -> ProtocolId {
        ProtocolId::new(format!("lb_sweep_{}", self.rounds))
    }

    fn execute(
        &self,
        net: &mut dyn RadioStack,
        _input: &ProtocolInput,
        frame: &mut LbFrame,
    ) -> ProtocolOutput {
        let n = net.num_nodes();
        let mut delivered = 0u64;
        for r in 0..self.rounds {
            frame.clear();
            let src = (r as usize) % n;
            frame.add_sender(src, Msg::words(&[r]));
            for v in 0..n {
                if v != src {
                    frame.add_receiver(v);
                }
            }
            net.local_broadcast(frame);
            delivered += frame.delivered().len() as u64;
        }
        ProtocolOutput::Deliveries(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackBuilder;
    use radio_graph::generators;
    use radio_sim::EnergyModel;

    #[test]
    fn registry_resolves_specs_with_and_without_params() {
        let r = base_registry();
        assert_eq!(r.get("clustering").unwrap().name(), "clustering_b4");
        assert_eq!(r.get("clustering:b=7").unwrap().name(), "clustering_b7");
        assert_eq!(r.get("lb_sweep:r=3").unwrap().name(), "lb_sweep_3");
        assert_eq!(r.known(), vec!["clustering", "lb_sweep", "hyperball"]);
        assert!(r.help().contains("clustering"));
    }

    #[test]
    fn registry_rejects_unknown_and_malformed_specs_with_typed_errors() {
        let r = base_registry();
        match r.get("warp_drive") {
            Err(ProtocolError::UnknownProtocol { known, .. }) => {
                assert!(known.contains(&"clustering"))
            }
            other => panic!(
                "expected UnknownProtocol, got {other:?}",
                other = other.err()
            ),
        }
        assert!(matches!(
            r.get("clustering:b=zero"),
            Err(ProtocolError::InvalidSpec { .. })
        ));
        assert!(matches!(
            r.get("clustering:b"),
            Err(ProtocolError::InvalidSpec { .. })
        ));
        assert!(matches!(
            r.get("clustering:q=4"),
            Err(ProtocolError::InvalidSpec { .. })
        ));
        assert!(matches!(
            r.get("clustering:b=0"),
            Err(ProtocolError::InvalidSpec { .. })
        ));
        // Duplicate keys are a conflict, not a silent first-wins.
        assert!(matches!(
            r.get("clustering:b=2,b=9"),
            Err(ProtocolError::InvalidSpec { .. })
        ));
        // Errors render with the registry's known-protocol list.
        let Err(err) = r.get("warp_drive") else {
            panic!("warp_drive resolved");
        };
        let msg = err.to_string();
        assert!(msg.contains("lb_sweep"), "{msg}");
    }

    #[test]
    fn clustering_protocol_matches_the_direct_call() {
        let g = generators::grid(8, 8);
        let seed = 11u64;
        let report = {
            let mut net = StackBuilder::new(g.clone()).with_seed(seed).build();
            base_registry()
                .get("clustering:b=3")
                .unwrap()
                .run(&mut net, &ProtocolInput::from_seed(seed))
                .unwrap()
        };
        let (direct, view) = {
            let mut net = StackBuilder::new(g).with_seed(seed).build();
            let cfg = ClusteringConfig::new(3);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let state = cluster_distributed(&mut net, &cfg, &mut rng);
            (state, net.energy_view())
        };
        let state = report.output.clustering().expect("clustering output");
        assert_eq!(state.cluster_of, direct.cluster_of);
        assert_eq!(state.centers, direct.centers);
        assert_eq!(report.outcome(), direct.num_clusters() as u64);
        assert_eq!(report.energy, view, "energy diff must equal the full view");
    }

    #[test]
    fn lb_sweep_counts_deliveries_and_reports_physical_columns() {
        let g = generators::path(8);
        let mut net = StackBuilder::new(g)
            .physical(EnergyModel::Uniform)
            .with_seed(5)
            .build();
        let report = base_registry()
            .get("lb_sweep:r=4")
            .unwrap()
            .run(&mut net, &ProtocolInput::from_seed(5))
            .unwrap();
        assert_eq!(report.lb_calls(), 4);
        assert!(report.outcome() >= 1);
        assert!(report.physical_slots().unwrap() > 0);
        let json = report.to_json();
        assert!(json.contains("\"protocol\":\"lb_sweep_4\""), "{json}");
        assert!(json.contains("\"outcome\":"), "{json}");
    }

    #[test]
    fn report_json_is_null_stable_on_abstract_stacks() {
        let g = generators::path(4);
        let mut net = StackBuilder::new(g).build();
        let report = base_registry()
            .get("lb_sweep:r=1")
            .unwrap()
            .run(&mut net, &ProtocolInput::default())
            .unwrap();
        let json = report.to_json();
        assert!(json.contains("\"max_physical_energy\":null"), "{json}");
        assert!(json.contains("\"physical_slots\":null"), "{json}");
    }

    #[test]
    fn capability_gate_runs_before_any_call() {
        // A protocol requiring CD on a stack without it: typed error, and
        // the stack's counters stay untouched.
        struct NeedsCd;
        impl Protocol for NeedsCd {
            fn name(&self) -> ProtocolId {
                ProtocolId::new("needs_cd")
            }
            fn requires(&self) -> Capabilities {
                Capabilities {
                    collision_detection: radio_sim::CollisionDetection::Receiver,
                    ..Capabilities::baseline()
                }
            }
            fn execute(
                &self,
                net: &mut dyn RadioStack,
                _input: &ProtocolInput,
                frame: &mut LbFrame,
            ) -> ProtocolOutput {
                frame.clear();
                frame.add_sender(0, Msg::words(&[1]));
                frame.add_receiver(1);
                net.local_broadcast(frame);
                ProtocolOutput::Deliveries(frame.delivered().len() as u64)
            }
        }
        let g = generators::path(3);
        let mut plain = StackBuilder::new(g.clone()).build();
        match NeedsCd.run(&mut plain, &ProtocolInput::default()) {
            Err(ProtocolError::MissingCapability {
                protocol,
                available,
                ..
            }) => {
                assert_eq!(protocol, "needs_cd");
                assert_eq!(available, "abstract");
            }
            other => panic!("expected MissingCapability, got {:?}", other.err()),
        }
        assert_eq!(plain.lb_time(), 0, "gate must fire before any call");
        let mut cd = StackBuilder::new(g).with_cd().build();
        assert!(NeedsCd.run(&mut cd, &ProtocolInput::default()).is_ok());
    }
}
