//! Leader election.
//!
//! The multi-hop diameter algorithms of Section 5.1 cite the `Õ(1)`-energy
//! leader election of the Broadcast paper \[10\] as a black box. Reproducing
//! that machinery is outside this repository's scope (see DESIGN.md §4);
//! instead we provide:
//!
//! * [`single_hop_leader_election`] — a faithful deterministic election for
//!   *single-hop* (clique) networks using `O(log N)` energy per device,
//!   matching the deterministic no-collision-detection bound the paper
//!   surveys (\[22\] in its references). Each of the `⌈log₂ N⌉` rounds asks
//!   one Local-Broadcast "existence query" about the next bit of the
//!   smallest surviving identifier.
//! * [`designated_leader`] — the substitution used by the multi-hop
//!   diameter algorithms: a distinguished vertex (the same assumption the
//!   BFS problem itself makes about its source) is taken as the leader at
//!   zero energy cost, and the experiments report the `Õ(1)` black-box cost
//!   as a separate line item.

use crate::message::Msg;
use crate::stack::RadioStack;

/// Result of a leader election.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaderResult {
    /// The elected leader (a node id of the network the election ran on).
    pub leader: usize,
    /// Number of Local-Broadcast calls used.
    pub calls: u64,
}

/// Deterministic single-hop leader election: elects the device with the
/// smallest identifier, where device `v`'s identifier is `ids[v] ∈ [0, N)`.
///
/// Requires the network to be single-hop (every pair of devices adjacent);
/// panics if it is not, because the bit-by-bit existence queries are only
/// sound when every transmission is heard by every listener.
pub fn single_hop_leader_election(
    net: &mut dyn RadioStack,
    ids: &[u64],
    id_bound: u64,
) -> LeaderResult {
    let n = net.num_nodes();
    assert_eq!(ids.len(), n);
    assert!(n >= 1);
    assert!(
        ids.iter().all(|&id| id < id_bound),
        "identifiers must lie in [0, id_bound)"
    );
    {
        let mut seen = std::collections::HashSet::new();
        assert!(
            ids.iter().all(|&id| seen.insert(id)),
            "identifiers must be distinct"
        );
    }

    let bits = (64 - (id_bound.max(2) - 1).leading_zeros()) as usize;
    let mut prefix: u64 = 0;
    let mut calls = 0u64;
    // Candidates are devices whose identifier still matches the prefix.
    let mut candidate: Vec<bool> = vec![true; n];
    // One frame reused across all ⌈log₂ N⌉ existence queries.
    let mut frame = net.new_frame();

    for bit in (0..bits).rev() {
        // Query: does any candidate have this bit equal to 0?
        frame.clear();
        for v in 0..n {
            if candidate[v] && (ids[v] >> bit) & 1 == 0 {
                frame.add_sender(v, Msg::words(&[1]));
            } else {
                frame.add_receiver(v);
            }
        }
        net.local_broadcast(&mut frame);
        calls += 1;
        // Every device learns the answer: senders know it trivially; a
        // listener knows it iff it heard something (in a clique, one sender
        // suffices for everyone to hear).
        let zero_exists = !frame.senders().is_empty();
        // Soundness check of the single-hop assumption: if a sender exists,
        // every listening device must have heard it.
        if zero_exists {
            for r in frame.receivers().iter() {
                assert!(
                    frame.delivered().contains(r),
                    "device {r} missed an existence query: the network is not single-hop \
                     (or Local-Broadcast failed)"
                );
            }
        }
        let chosen_bit = if zero_exists { 0 } else { 1 };
        prefix |= chosen_bit << bit;
        for v in 0..n {
            if candidate[v] && (ids[v] >> bit) & 1 != chosen_bit {
                candidate[v] = false;
            }
        }
    }

    let leader = (0..n)
        .find(|&v| ids[v] == prefix)
        .expect("exactly one device matches the elected identifier");
    LeaderResult { leader, calls }
}

/// The multi-hop substitution: node 0 (or any externally distinguished
/// vertex) is the leader. Costs nothing; the caller is responsible for
/// reporting the `Õ(1)` energy of the cited black-box election separately.
pub fn designated_leader(net: &dyn RadioStack) -> LeaderResult {
    assert!(net.num_nodes() >= 1);
    LeaderResult {
        leader: 0,
        calls: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackBuilder;
    use radio_graph::generators;

    #[test]
    fn elects_minimum_id_on_a_clique() {
        let n = 16;
        let g = generators::complete(n);
        let ids: Vec<u64> = (0..n as u64).map(|v| (v * 37 + 11) % 256).collect();
        let mut net = StackBuilder::new(g).build();
        let result = single_hop_leader_election(&mut net, &ids, 256);
        let min_pos = ids
            .iter()
            .enumerate()
            .min_by_key(|&(_, &id)| id)
            .map(|(v, _)| v)
            .unwrap();
        assert_eq!(result.leader, min_pos);
        assert_eq!(result.calls, 8);
        // Energy O(log N) per device.
        assert!(net.max_lb_energy() <= 8);
    }

    #[test]
    fn works_with_single_device() {
        let g = generators::complete(1);
        let mut net = StackBuilder::new(g).build();
        let result = single_hop_leader_election(&mut net, &[3], 8);
        assert_eq!(result.leader, 0);
    }

    #[test]
    fn two_devices_elect_the_smaller_id() {
        let g = generators::complete(2);
        let mut net = StackBuilder::new(g).build();
        let result = single_hop_leader_election(&mut net, &[9, 4], 16);
        assert_eq!(result.leader, 1);
    }

    #[test]
    #[should_panic]
    fn rejects_duplicate_ids() {
        let g = generators::complete(3);
        let mut net = StackBuilder::new(g).build();
        let _ = single_hop_leader_election(&mut net, &[1, 1, 2], 4);
    }

    #[test]
    #[should_panic]
    fn detects_multi_hop_topologies() {
        // On a path the existence queries are not globally heard; the
        // protocol detects the violated assumption instead of silently
        // electing the wrong leader.
        let g = generators::path(8);
        let ids: Vec<u64> = (0..8u64).map(|v| 7 - v).collect();
        let mut net = StackBuilder::new(g).build();
        let _ = single_hop_leader_election(&mut net, &ids, 8);
    }

    #[test]
    fn designated_leader_is_free() {
        let g = generators::grid(4, 4);
        let net = StackBuilder::new(g).build();
        let result = designated_leader(&net);
        assert_eq!(result.leader, 0);
        assert_eq!(result.calls, 0);
    }
}
