//! Centralized diameter and eccentricity computation.
//!
//! Section 5 of the paper is about how much energy it costs to approximate
//! `diam(G)` distributedly; the exact values computed here are the reference
//! the distributed approximations (Theorems 5.3 and 5.4) are compared
//! against in the experiments.

use crate::bfs::bfs_distances;
use crate::graph::{Graph, NodeId};
use crate::{Dist, INFINITY};

/// Eccentricity of `v`: the maximum distance from `v` to any vertex.
///
/// Returns `None` if some vertex is unreachable from `v` (the diameter is
/// infinite / undefined on disconnected graphs).
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<Dist> {
    let dist = bfs_distances(g, v);
    let mut max = 0;
    for &d in &dist {
        if d == INFINITY {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

/// Exact diameter by running a BFS from every vertex (`O(nm)`).
///
/// Returns `None` for disconnected graphs and for the empty graph.
pub fn exact_diameter(g: &Graph) -> Option<Dist> {
    if g.num_nodes() == 0 {
        return None;
    }
    let mut best = 0;
    for v in g.nodes() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// Exact radius: the minimum eccentricity. `None` for disconnected graphs.
pub fn exact_radius(g: &Graph) -> Option<Dist> {
    if g.num_nodes() == 0 {
        return None;
    }
    let mut best = Dist::MAX;
    for v in g.nodes() {
        best = best.min(eccentricity(g, v)?);
    }
    Some(best)
}

/// The classical "double sweep" 2-approximation of the diameter in two BFS
/// passes: the eccentricity of the farthest vertex from an arbitrary start.
///
/// Guarantees `result ∈ [diam/2, diam]` (and is exact on trees). This is the
/// centralized counterpart of the paper's Theorem 5.3 observation that a BFS
/// labelling 2-approximates the diameter.
pub fn double_sweep_lower_bound(g: &Graph, start: NodeId) -> Option<Dist> {
    let d1 = bfs_distances(g, start);
    if d1.contains(&INFINITY) {
        return None;
    }
    let far = d1
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| d)
        .map(|(v, _)| v)?;
    eccentricity(g, far)
}

/// Checks the paper's footnote-5 definition of a *nearly 3/2-approximation*:
/// `estimate ∈ [⌊2·diam/3⌋, diam]`.
pub fn is_nearly_three_halves_approx(diam: Dist, estimate: Dist) -> bool {
    estimate >= (2 * diam) / 3 && estimate <= diam
}

/// Checks the finer-grained guarantee of Theorem 5.4 / [19, 38]: writing
/// `diam = 3h + z` with `z ∈ {0, 1, 2}`, the estimate must lie in
/// `[2h + z, diam]` when `z ∈ {0, 1}` and in `[2h + 1, diam]` when `z = 2`.
pub fn satisfies_theorem_5_4_bound(diam: Dist, estimate: Dist) -> bool {
    let h = diam / 3;
    let z = diam % 3;
    let lower = if z == 2 { 2 * h + 1 } else { 2 * h + z };
    estimate >= lower && estimate <= diam
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn diameter_of_standard_families() {
        assert_eq!(exact_diameter(&generators::path(10)), Some(9));
        assert_eq!(exact_diameter(&generators::cycle(10)), Some(5));
        assert_eq!(exact_diameter(&generators::complete(10)), Some(1));
        assert_eq!(exact_diameter(&generators::star(10)), Some(2));
        assert_eq!(exact_diameter(&generators::grid(3, 7)), Some(8));
    }

    #[test]
    fn radius_of_path_is_half_diameter() {
        assert_eq!(exact_radius(&generators::path(11)), Some(5));
        assert_eq!(exact_radius(&generators::path(10)), Some(5));
    }

    #[test]
    fn diameter_none_for_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(exact_diameter(&g), None);
        assert_eq!(exact_radius(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
    }

    #[test]
    fn double_sweep_within_factor_two() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for _ in 0..10 {
            let g = generators::connected_gnp(60, 0.08, 100, &mut rng).unwrap();
            let diam = exact_diameter(&g).unwrap();
            let est = double_sweep_lower_bound(&g, 0).unwrap();
            assert!(est <= diam);
            assert!(2 * est >= diam);
        }
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        for _ in 0..10 {
            let g = generators::random_tree(80, &mut rng);
            let diam = exact_diameter(&g).unwrap();
            let est = double_sweep_lower_bound(&g, 0).unwrap();
            assert_eq!(est, diam);
        }
    }

    #[test]
    fn three_halves_checkers() {
        assert!(is_nearly_three_halves_approx(9, 6));
        assert!(!is_nearly_three_halves_approx(9, 5));
        assert!(is_nearly_three_halves_approx(10, 10));
        // diam = 3h + z cases:
        assert!(satisfies_theorem_5_4_bound(9, 6)); // h=3, z=0, lower 6
        assert!(!satisfies_theorem_5_4_bound(9, 5));
        assert!(satisfies_theorem_5_4_bound(10, 7)); // h=3, z=1, lower 7
        assert!(!satisfies_theorem_5_4_bound(10, 6));
        assert!(satisfies_theorem_5_4_bound(11, 7)); // h=3, z=2, lower 7
        assert!(!satisfies_theorem_5_4_bound(11, 6));
    }
}
