//! Compact undirected graph representation.
//!
//! The simulator and the algorithms only ever need neighbourhood queries and
//! iteration, so the graph is stored in CSR (compressed sparse row) form:
//! immutable, cache-friendly and cheap to clone by reference. Construction
//! goes through [`GraphBuilder`], which deduplicates parallel edges and
//! rejects self-loops (the radio-network model has neither).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a vertex; vertices are always `0..n`.
pub type NodeId = usize;

/// An immutable, undirected, simple graph in CSR form.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated, sorted adjacency lists.
    neighbors: Vec<NodeId>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl Graph {
    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// Self-loops are ignored; parallel edges are collapsed. Panics if an
    /// endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Creates the empty graph (no vertices, no edges).
    pub fn empty() -> Self {
        Graph {
            offsets: vec![0],
            neighbors: Vec::new(),
            num_edges: 0,
        }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Neighbourhood `N(v)` as a sorted slice.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree Δ of the graph (0 for an empty/edgeless graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m/n` (0 if there are no vertices).
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_nodes() as f64
        }
    }

    /// Returns `true` if `{u, v}` is an edge. `O(log deg(u))`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u >= self.num_nodes() || v >= self.num_nodes() {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Returns a copy of this graph with the single edge `{u, v}` removed.
    ///
    /// Used by the Theorem 5.1 hard instances (`K_n` vs `K_n − e`). Panics if
    /// the edge does not exist.
    pub fn without_edge(&self, u: NodeId, v: NodeId) -> Graph {
        assert!(self.has_edge(u, v), "edge ({u}, {v}) not present");
        let edges: Vec<(NodeId, NodeId)> = self
            .edges()
            .filter(|&(a, b)| !(a == u.min(v) && b == u.max(v)))
            .collect();
        Graph::from_edges(self.num_nodes(), &edges)
    }

    /// Returns the subgraph induced by `keep` (`keep[v] == true` means `v`
    /// survives), together with the mapping `old id -> new id`.
    ///
    /// Vertices not kept map to `None`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<Option<NodeId>>) {
        assert_eq!(keep.len(), self.num_nodes());
        let mut remap: Vec<Option<NodeId>> = vec![None; self.num_nodes()];
        let mut next = 0usize;
        for v in self.nodes() {
            if keep[v] {
                remap[v] = Some(next);
                next += 1;
            }
        }
        let mut builder = GraphBuilder::new(next);
        for (u, v) in self.edges() {
            if let (Some(nu), Some(nv)) = (remap[u], remap[v]) {
                builder.add_edge(nu, nv);
            }
        }
        (builder.build(), remap)
    }

    /// The raw CSR arrays `(offsets, neighbors, num_edges)`.
    ///
    /// This is the serialization surface of the dataset layer
    /// (`radio_graph::dataset`): two graphs are byte-identical exactly when
    /// these parts are equal, and [`Graph::from_csr_parts`] round-trips them.
    pub fn csr_parts(&self) -> (&[usize], &[NodeId], usize) {
        (&self.offsets, &self.neighbors, self.num_edges)
    }

    /// Reassembles a graph from raw CSR arrays, validating every structural
    /// invariant the rest of the crate relies on: `offsets` is non-empty,
    /// starts at 0, is monotone, and ends at `neighbors.len()`; every
    /// neighbor id is in range and no adjacency list contains a self-loop,
    /// duplicates, or out-of-order entries; and `num_edges` equals the
    /// handshake count. Returns a description of the first violation, so
    /// corrupt dataset artifacts are rejected instead of panicking later.
    pub fn from_csr_parts(
        offsets: Vec<usize>,
        neighbors: Vec<NodeId>,
        num_edges: usize,
    ) -> Result<Graph, String> {
        if offsets.is_empty() {
            return Err("offsets array is empty".into());
        }
        if offsets[0] != 0 {
            return Err(format!("offsets[0] = {} (must be 0)", offsets[0]));
        }
        if *offsets.last().expect("non-empty") != neighbors.len() {
            return Err(format!(
                "offsets end at {} but there are {} neighbor entries",
                offsets.last().expect("non-empty"),
                neighbors.len()
            ));
        }
        let n = offsets.len() - 1;
        let mut forward = 0usize;
        for v in 0..n {
            if offsets[v] > offsets[v + 1] {
                return Err(format!(
                    "offsets not monotone at vertex {v}: {} > {}",
                    offsets[v],
                    offsets[v + 1]
                ));
            }
            let row = &neighbors[offsets[v]..offsets[v + 1]];
            for (i, &u) in row.iter().enumerate() {
                if u >= n {
                    return Err(format!("neighbor {u} of vertex {v} out of range n={n}"));
                }
                if u == v {
                    return Err(format!("self-loop at vertex {v}"));
                }
                if i > 0 && row[i - 1] >= u {
                    return Err(format!(
                        "adjacency of vertex {v} not strictly sorted: {} then {u}",
                        row[i - 1]
                    ));
                }
                if v < u {
                    forward += 1;
                }
            }
        }
        if forward != num_edges {
            return Err(format!(
                "edge count mismatch: header says {num_edges}, adjacency holds {forward}"
            ));
        }
        // Symmetry: every (v, u) needs its mirror (u, v). Each row is sorted,
        // so the membership probe is a binary search.
        for v in 0..n {
            for &u in &neighbors[offsets[v]..offsets[v + 1]] {
                if neighbors[offsets[u]..offsets[u + 1]]
                    .binary_search(&v)
                    .is_err()
                {
                    return Err(format!("edge ({v}, {u}) has no mirror entry"));
                }
            }
        }
        Ok(Graph {
            offsets,
            neighbors,
            num_edges,
        })
    }

    /// Relabels vertices according to `perm`, where `perm[old] = new`.
    ///
    /// `perm` must be a permutation of `0..n`.
    pub fn relabel(&self, perm: &[NodeId]) -> Graph {
        assert_eq!(perm.len(), self.num_nodes());
        let mut seen = vec![false; self.num_nodes()];
        for &p in perm {
            assert!(
                p < self.num_nodes() && !seen[p],
                "perm is not a permutation"
            );
            seen[p] = true;
        }
        let edges: Vec<(NodeId, NodeId)> = self.edges().map(|(u, v)| (perm[u], perm[v])).collect();
        Graph::from_edges(self.num_nodes(), &edges)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.num_nodes())
            .field("edges", &self.num_edges)
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    adjacency: Vec<BTreeSet<NodeId>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            adjacency: vec![BTreeSet::new(); n],
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Self-loops are silently ignored (the RN model graph is simple).
    /// Returns `true` if the edge was newly inserted.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u < self.n && v < self.n,
            "edge ({u}, {v}) out of range n={}",
            self.n
        );
        if u == v {
            return false;
        }
        let inserted = self.adjacency[u].insert(v);
        self.adjacency[v].insert(u);
        inserted
    }

    /// Returns `true` if the edge is already present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.n && v < self.n && self.adjacency[u].contains(&v)
    }

    /// Finalizes the builder into an immutable CSR [`Graph`].
    pub fn build(self) -> Graph {
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut neighbors = Vec::new();
        let mut num_edges = 0usize;
        offsets.push(0);
        for v in 0..self.n {
            for &u in &self.adjacency[v] {
                neighbors.push(u);
                if v < u {
                    num_edges += 1;
                }
            }
            offsets.push(neighbors.len());
        }
        Graph {
            offsets,
            neighbors,
            num_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_nodes_or_edges() {
        let g = Graph::empty();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn builder_deduplicates_and_ignores_self_loops() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(0, 1));
        assert!(!b.add_edge(1, 0));
        assert!(!b.add_edge(2, 2));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, &[(3, 1), (3, 0), (3, 4), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
        assert_eq!(g.degree(3), 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn without_edge_removes_exactly_one_edge() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let h = g.without_edge(0, 2);
        assert_eq!(h.num_edges(), g.num_edges() - 1);
        assert!(!h.has_edge(0, 2));
        assert!(h.has_edge(0, 1));
    }

    #[test]
    #[should_panic]
    fn without_edge_panics_on_missing_edge() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let _ = g.without_edge(1, 2);
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let keep = vec![false, true, true, true, false];
        let (sub, remap) = g.induced_subgraph(&keep);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(remap[0], None);
        assert_eq!(remap[1], Some(0));
        assert_eq!(remap[4], None);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let perm = vec![3, 2, 1, 0];
        let h = g.relabel(&perm);
        assert_eq!(h.num_edges(), 3);
        assert!(h.has_edge(3, 2));
        assert!(h.has_edge(2, 1));
        assert!(h.has_edge(1, 0));
        assert!(!h.has_edge(0, 3));
    }

    #[test]
    fn average_degree_matches_handshake_lemma() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }
}
