//! Graph substrate for the reproduction of *The Energy Complexity of BFS in
//! Radio Networks* (Chang, Dani, Hayes, Pettie; PODC 2020).
//!
//! This crate contains everything that is "about graphs" and independent of
//! the radio-network communication model:
//!
//! * [`Graph`] — a compact, immutable CSR adjacency structure with a
//!   mutable [`GraphBuilder`].
//! * [`generators`] — the graph families used throughout the paper and its
//!   experiments: paths, cycles, grids, trees, complete graphs, `K_n − e`,
//!   Erdős–Rényi, random unit-disc graphs (the paper's sensor-field
//!   motivation), hypercubes, and more.
//! * [`bfs`] / [`diameter`] / [`components`] — centralized (non-distributed)
//!   reference algorithms used as ground truth by the tests and experiments.
//! * [`exponential`] — sampling from `Exponential(β)` with the paper's
//!   integral-`1/β` convention.
//! * [`mpx`] and [`cluster_graph`] — the Miller–Peng–Xu clustering of
//!   Section 2 in its centralized form, together with checkers for the
//!   distance-preservation lemmas (Lemmas 2.1–2.3).
//! * [`lower_bound`] — the set-disjointness lower-bound construction of
//!   Theorem 5.2.
//! * [`arboricity`] — degeneracy/arboricity estimation used to validate the
//!   sparsity claims of the lower-bound graphs.
//! * [`dataset`] — shared immutable CSR datasets: deterministic generator
//!   outputs compiled once into content-addressed binary artifacts and
//!   bulk-read into `Arc<Graph>`s shared across worker pools, plus the
//!   opt-in Hilbert-curve grid layout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arboricity;
pub mod bfs;
pub mod cluster_graph;
pub mod components;
pub mod dataset;
pub mod diameter;
pub mod exponential;
pub mod generators;
pub mod graph;
pub mod lower_bound;
pub mod mpx;

pub use cluster_graph::ClusterGraph;
pub use graph::{Graph, GraphBuilder, NodeId};
pub use mpx::{Clustering, MpxParams};

/// Distance value used by all shortest-path routines.
///
/// `u32::MAX` (see [`INFINITY`]) encodes "unreachable".
pub type Dist = u32;

/// Sentinel distance meaning "unreachable".
pub const INFINITY: Dist = u32::MAX;
