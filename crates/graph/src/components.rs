//! Connected components and related connectivity queries.

use crate::bfs::multi_source_bfs;
use crate::graph::{Graph, NodeId};
use crate::INFINITY;

/// Labels each vertex with a component id in `0..k` (ids are assigned in
/// order of the smallest vertex in each component) and returns the labels
/// and the number of components `k`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = next;
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// `true` iff the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.num_nodes() == 0 {
        return true;
    }
    let dist = multi_source_bfs(g, &[0]);
    dist.iter().all(|&d| d != INFINITY)
}

/// Vertices of the component containing `v`.
pub fn component_of(g: &Graph, v: NodeId) -> Vec<NodeId> {
    let dist = multi_source_bfs(g, &[v]);
    dist.iter()
        .enumerate()
        .filter(|&(_, &d)| d != INFINITY)
        .map(|(u, _)| u)
        .collect()
}

/// Size of the largest connected component (0 for the empty graph).
pub fn largest_component_size(g: &Graph) -> usize {
    let (comp, k) = connected_components(g);
    let mut sizes = vec![0usize; k];
    for &c in &comp {
        sizes[c] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_component() {
        let g = generators::cycle(10);
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 1);
        assert!(comp.iter().all(|&c| c == 0));
        assert!(is_connected(&g));
        assert_eq!(largest_component_size(&g), 10);
    }

    #[test]
    fn multiple_components() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]);
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[5]);
        assert!(!is_connected(&g));
        assert_eq!(largest_component_size(&g), 3);
        assert_eq!(component_of(&g, 4), vec![3, 4]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(is_connected(&Graph::empty()));
        let singleton = Graph::from_edges(1, &[]);
        assert!(is_connected(&singleton));
        assert_eq!(largest_component_size(&singleton), 1);
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = Graph::from_edges(4, &[(1, 2)]);
        let (_, k) = connected_components(&g);
        assert_eq!(k, 3);
    }
}
