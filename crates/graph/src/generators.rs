//! Graph families used by the paper, its experiments, and the test suite.
//!
//! The paper's motivation is a field of sensors (a random unit-disc graph);
//! its lower bounds use `K_n`, `K_n − e`, and the sparse set-disjointness
//! construction (see [`crate::lower_bound`]); its upper-bound analysis is
//! parameterized by the diameter `D`, which the deterministic families below
//! (paths, cycles, grids, trees, hypercubes, …) let us control exactly.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{Graph, GraphBuilder, NodeId};

/// A path `0 − 1 − ⋯ − (n−1)`; diameter `n − 1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// A cycle on `n ≥ 3` vertices; diameter `⌊n/2⌋`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n);
    }
    b.build()
}

/// A star with one center (vertex 0) and `n − 1` leaves; diameter 2.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v);
    }
    b.build()
}

/// The complete graph `K_n`; diameter 1 (for `n ≥ 2`).
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// `K_n` with the single edge `{u, v}` removed; diameter 2.
///
/// This is the hard pair of Theorem 5.1: distinguishing `K_n` from
/// `K_n − e` requires `Ω(n)` energy.
pub fn complete_minus_edge(n: usize, u: NodeId, v: NodeId) -> Graph {
    assert!(u != v && u < n && v < n);
    let mut b = GraphBuilder::new(n);
    for a in 0..n {
        for c in (a + 1)..n {
            if (a, c) != (u.min(v), u.max(v)) {
                b.add_edge(a, c);
            }
        }
    }
    b.build()
}

/// An `rows × cols` grid; diameter `rows + cols − 2`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(n);
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c));
            }
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1));
            }
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube on `2^d` vertices; diameter `d`.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v, u);
            }
        }
    }
    b.build()
}

/// A complete `k`-ary tree with `levels` levels (a single root for
/// `levels == 1`); diameter `2 (levels − 1)`.
pub fn complete_k_ary_tree(k: usize, levels: usize) -> Graph {
    assert!(k >= 1 && levels >= 1);
    // Total vertices: 1 + k + k^2 + ... + k^(levels-1).
    let mut n = 0usize;
    let mut layer = 1usize;
    for _ in 0..levels {
        n += layer;
        layer *= k;
    }
    let mut b = GraphBuilder::new(n);
    // Children of vertex v (0-indexed, BFS order) are k*v+1 .. k*v+k.
    for v in 0..n {
        for c in 1..=k {
            let child = k * v + c;
            if child < n {
                b.add_edge(v, child);
            }
        }
    }
    b.build()
}

/// A "barbell": two cliques of size `k` joined by a path of `bridge` edges.
///
/// Useful for diameter experiments: diameter is `bridge + 2` for `k ≥ 2`.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 1);
    let n = 2 * k + bridge.saturating_sub(1);
    let mut b = GraphBuilder::new(n.max(2 * k));
    // Left clique: 0..k. Right clique: last k vertices.
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u, v);
        }
    }
    let right_start = b.num_nodes() - k;
    for u in right_start..b.num_nodes() {
        for v in (u + 1)..b.num_nodes() {
            b.add_edge(u, v);
        }
    }
    // Path from vertex k-1 (in the left clique) to right_start.
    let mut prev = k - 1;
    for p in k..right_start {
        b.add_edge(prev, p);
        prev = p;
    }
    b.add_edge(prev, right_start);
    b.build()
}

/// A caterpillar: a spine path of length `spine` where every spine vertex
/// has `legs` pendant leaves. Diameter `spine + 1` for `legs ≥ 1`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1);
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for v in 1..spine {
        b.add_edge(v - 1, v);
    }
    let mut next = spine;
    for v in 0..spine {
        for _ in 0..legs {
            b.add_edge(v, next);
            next += 1;
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi graph conditioned on connectivity: resamples (up to
/// `attempts` times) until the graph is connected, then returns it.
///
/// Returns `None` if no connected sample was found.
pub fn connected_gnp<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    attempts: usize,
    rng: &mut R,
) -> Option<Graph> {
    for _ in 0..attempts {
        let g = gnp(n, p, rng);
        if crate::components::is_connected(&g) {
            return Some(g);
        }
    }
    None
}

/// A random geometric (unit-disc) graph: `n` points uniform in the square
/// `[0, side]²`, an edge between any two points at Euclidean distance at
/// most `radius`.
///
/// This is the paper's motivating topology (sensors scattered throughout a
/// National Park). The returned positions allow examples to reason about
/// geometry (e.g. latency across the field).
pub fn unit_disc<R: Rng + ?Sized>(
    n: usize,
    side: f64,
    radius: f64,
    rng: &mut R,
) -> (Graph, Vec<(f64, f64)>) {
    assert!(side > 0.0 && radius > 0.0);
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    // Grid-bucket the points so construction is ~linear for sparse fields.
    let cell = radius.max(1e-9);
    let cells_per_side = (side / cell).ceil() as i64 + 1;
    let key = |x: f64, y: f64| ((x / cell) as i64, (y / cell) as i64);
    let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, &(x, y)) in positions.iter().enumerate() {
        buckets.entry(key(x, y)).or_default().push(i);
    }
    for (i, &(x, y)) in positions.iter().enumerate() {
        let (cx, cy) = key(x, y);
        for dx in -1..=1 {
            for dy in -1..=1 {
                let nx = cx + dx;
                let ny = cy + dy;
                if nx < 0 || ny < 0 || nx > cells_per_side || ny > cells_per_side {
                    continue;
                }
                if let Some(others) = buckets.get(&(nx, ny)) {
                    for &j in others {
                        if j <= i {
                            continue;
                        }
                        let (ox, oy) = positions[j];
                        let d2 = (x - ox) * (x - ox) + (y - oy) * (y - oy);
                        if d2 <= r2 {
                            b.add_edge(i, j);
                        }
                    }
                }
            }
        }
    }
    (b.build(), positions)
}

/// A connected random unit-disc graph: resamples until connected.
///
/// Returns `None` after `attempts` failures.
pub fn connected_unit_disc<R: Rng + ?Sized>(
    n: usize,
    side: f64,
    radius: f64,
    attempts: usize,
    rng: &mut R,
) -> Option<(Graph, Vec<(f64, f64)>)> {
    for _ in 0..attempts {
        let (g, pos) = unit_disc(n, side, radius, rng);
        if crate::components::is_connected(&g) {
            return Some((g, pos));
        }
    }
    None
}

/// A uniformly random labelled tree on `n` vertices (via a random Prüfer
/// sequence); diameter varies, expected `Θ(√n)`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return GraphBuilder::new(n).build();
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]);
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &x in &prufer {
        degree[x] += 1;
    }
    let mut b = GraphBuilder::new(n);
    // Standard Prüfer decoding with a sorted set of leaves.
    let mut leaves: std::collections::BTreeSet<usize> =
        (0..n).filter(|&v| degree[v] == 1).collect();
    for &x in &prufer {
        let leaf = *leaves.iter().next().expect("a leaf always exists");
        leaves.remove(&leaf);
        b.add_edge(leaf, x);
        degree[x] -= 1;
        if degree[x] == 1 {
            leaves.insert(x);
        }
    }
    let remaining: Vec<usize> = leaves.into_iter().collect();
    b.add_edge(remaining[0], remaining[1]);
    b.build()
}

/// A "lollipop": a clique of size `k` with a path of length `tail` attached.
/// Diameter `tail + 1` for `k ≥ 2`.
pub fn lollipop(k: usize, tail: usize) -> Graph {
    assert!(k >= 1);
    let n = k + tail;
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u, v);
        }
    }
    let mut prev = k - 1;
    for p in k..n {
        b.add_edge(prev, p);
        prev = p;
    }
    b.build()
}

/// A graph made of `count` disjoint cliques of size `size` connected in a
/// ring by single edges: a synthetic "cluster-ish" topology that exercises
/// the MPX clustering with an obvious ground truth.
pub fn clique_ring(count: usize, size: usize) -> Graph {
    assert!(count >= 3 && size >= 1);
    let n = count * size;
    let mut b = GraphBuilder::new(n);
    for c in 0..count {
        let base = c * size;
        for u in 0..size {
            for v in (u + 1)..size {
                b.add_edge(base + u, base + v);
            }
        }
        let next_base = ((c + 1) % count) * size;
        b.add_edge(base, next_base);
    }
    b.build()
}

/// Randomly permutes vertex labels, returning the relabelled graph and the
/// permutation used (`perm[old] = new`).
///
/// Useful in tests to check that nothing depends on label order.
pub fn shuffle_labels<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> (Graph, Vec<NodeId>) {
    let mut perm: Vec<NodeId> = (0..g.num_nodes()).collect();
    perm.shuffle(rng);
    (g.relabel(&perm), perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_distances;
    use crate::components::is_connected;
    use crate::diameter::exact_diameter;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn path_has_expected_shape() {
        let g = path(10);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(exact_diameter(&g), Some(9));
    }

    #[test]
    fn cycle_has_expected_diameter() {
        let g = cycle(8);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(exact_diameter(&g), Some(4));
        let g = cycle(9);
        assert_eq!(exact_diameter(&g), Some(4));
    }

    #[test]
    fn star_diameter_is_two() {
        let g = star(12);
        assert_eq!(g.num_edges(), 11);
        assert_eq!(exact_diameter(&g), Some(2));
        assert_eq!(g.degree(0), 11);
    }

    #[test]
    fn complete_graph_counts() {
        let g = complete(7);
        assert_eq!(g.num_edges(), 21);
        assert_eq!(exact_diameter(&g), Some(1));
    }

    #[test]
    fn complete_minus_edge_has_diameter_two() {
        let g = complete_minus_edge(6, 1, 4);
        assert_eq!(g.num_edges(), 14);
        assert!(!g.has_edge(1, 4));
        assert_eq!(exact_diameter(&g), Some(2));
    }

    #[test]
    fn grid_dimensions_and_diameter() {
        let g = grid(4, 6);
        assert_eq!(g.num_nodes(), 24);
        assert_eq!(g.num_edges(), 4 * 5 + 6 * 3);
        assert_eq!(exact_diameter(&g), Some(8));
    }

    #[test]
    fn hypercube_properties() {
        let g = hypercube(5);
        assert_eq!(g.num_nodes(), 32);
        assert_eq!(g.num_edges(), 5 * 32 / 2);
        assert_eq!(exact_diameter(&g), Some(5));
        assert!(g.nodes().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn k_ary_tree_shape() {
        let g = complete_k_ary_tree(2, 4); // 1 + 2 + 4 + 8 = 15 vertices
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(exact_diameter(&g), Some(6));
    }

    #[test]
    fn barbell_diameter() {
        let g = barbell(5, 4);
        assert!(is_connected(&g));
        assert_eq!(exact_diameter(&g), Some(6));
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 2);
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_edges(), 14);
        assert!(is_connected(&g));
        assert_eq!(exact_diameter(&g), Some(6));
    }

    #[test]
    fn lollipop_diameter() {
        let g = lollipop(6, 5);
        assert_eq!(exact_diameter(&g), Some(6));
    }

    #[test]
    fn clique_ring_is_connected_with_right_size() {
        let g = clique_ring(4, 5);
        assert_eq!(g.num_nodes(), 20);
        assert!(is_connected(&g));
    }

    #[test]
    fn gnp_edge_count_is_plausible() {
        let mut r = rng(1);
        let g = gnp(200, 0.1, &mut r);
        let expected = 0.1 * (200.0 * 199.0 / 2.0);
        let m = g.num_edges() as f64;
        assert!(
            m > expected * 0.7 && m < expected * 1.3,
            "m = {m}, expected ≈ {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng(2);
        assert_eq!(gnp(20, 0.0, &mut r).num_edges(), 0);
        assert_eq!(gnp(20, 1.0, &mut r).num_edges(), 190);
    }

    #[test]
    fn connected_gnp_is_connected() {
        let mut r = rng(3);
        let g = connected_gnp(60, 0.1, 100, &mut r).expect("should find a connected sample");
        assert!(is_connected(&g));
    }

    #[test]
    fn unit_disc_radius_respected() {
        let mut r = rng(4);
        let (g, pos) = unit_disc(150, 10.0, 1.5, &mut r);
        for (u, v) in g.edges() {
            let (x1, y1) = pos[u];
            let (x2, y2) = pos[v];
            let d = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt();
            assert!(d <= 1.5 + 1e-9);
        }
        // Spot-check some non-edges are actually far apart or at least valid.
        assert_eq!(pos.len(), 150);
    }

    #[test]
    fn unit_disc_matches_bruteforce() {
        let mut r = rng(5);
        let (g, pos) = unit_disc(80, 6.0, 1.2, &mut r);
        let mut expected = 0usize;
        for i in 0..80 {
            for j in (i + 1)..80 {
                let (x1, y1) = pos[i];
                let (x2, y2) = pos[j];
                let d2 = (x1 - x2).powi(2) + (y1 - y2).powi(2);
                if d2 <= 1.2f64.powi(2) {
                    expected += 1;
                    assert!(g.has_edge(i, j), "missing edge ({i},{j})");
                }
            }
        }
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn connected_unit_disc_is_connected() {
        let mut r = rng(6);
        let (g, _) =
            connected_unit_disc(100, 5.0, 1.5, 200, &mut r).expect("connected field expected");
        assert!(is_connected(&g));
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut r = rng(7);
        for n in [1usize, 2, 3, 10, 57, 200] {
            let g = random_tree(n, &mut r);
            assert_eq!(g.num_nodes(), n);
            if n > 0 {
                assert_eq!(g.num_edges(), n - 1);
                assert!(is_connected(&g));
            }
        }
    }

    #[test]
    fn shuffle_labels_preserves_distances_multiset() {
        let mut r = rng(8);
        let g = grid(5, 5);
        let (h, perm) = shuffle_labels(&g, &mut r);
        let dg = bfs_distances(&g, 0);
        let dh = bfs_distances(&h, perm[0]);
        let mut a: Vec<_> = dg.clone();
        let mut b: Vec<_> = dh.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // And individual distances map through the permutation.
        for v in 0..g.num_nodes() {
            assert_eq!(dg[v], dh[perm[v]]);
        }
    }
}
