//! Sampling from `Exponential(β)` with the paper's conventions.
//!
//! In Section 2 each vertex samples `δ_v ∼ Exponential(β)` (mean `1/β`), and
//! in the distributed implementation (Section 2.2) the start time is the
//! *rounded* value `start_v = ⌈4 log(n)/β − δ_v⌉`, where `1/β` is always an
//! integer. The functions here isolate that arithmetic so that both the
//! centralized and the distributed clustering use bit-identical sampling.

use rand::Rng;

/// Samples `δ ∼ Exponential(β)` (rate `β`, mean `1/β`) by inversion.
pub fn sample_exponential<R: Rng + ?Sized>(beta: f64, rng: &mut R) -> f64 {
    assert!(beta > 0.0, "rate must be positive");
    // gen::<f64>() ∈ [0, 1); use 1 − u ∈ (0, 1] to avoid ln(0).
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / beta
}

/// The probability that an `Exponential(β)` sample exceeds `x ≥ 0`.
pub fn exponential_tail(beta: f64, x: f64) -> f64 {
    assert!(beta > 0.0 && x >= 0.0);
    (-beta * x).exp()
}

/// The clustering horizon used by the paper: `T = 4·log(n)/β`, with natural
/// logarithm and `1/β` an integer. With probability `1 − n^{-3}` every
/// `δ_v < T`, i.e. every start time is positive.
pub fn clustering_horizon(n: usize, beta: f64) -> f64 {
    assert!(n >= 2);
    4.0 * (n as f64).ln() / beta
}

/// The rounded start time `start_v = ⌈T − δ_v⌉` of Section 2.2, clamped to
/// at least 1 (the paper conditions on all start times being positive, an
/// event of probability `1 − 1/n³`; clamping makes the negligible bad event
/// harmless instead of undefined).
pub fn start_time(n: usize, beta: f64, delta: f64) -> u64 {
    let t = clustering_horizon(n, beta) - delta;
    let rounded = t.ceil();
    if rounded < 1.0 {
        1
    } else {
        rounded as u64
    }
}

/// Draws the start times for all `n` vertices with a single RNG pass.
pub fn sample_start_times<R: Rng + ?Sized>(n: usize, beta: f64, rng: &mut R) -> Vec<u64> {
    (0..n)
        .map(|_| start_time(n, beta, sample_exponential(beta, rng)))
        .collect()
}

/// Number of Local-Broadcast rounds the distributed clustering runs for:
/// `⌈4 log(n)/β⌉` (Lemma 2.5).
pub fn clustering_rounds(n: usize, beta: f64) -> u64 {
    clustering_horizon(n, beta).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exponential_mean_is_one_over_beta() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for &beta in &[0.125f64, 0.25, 1.0, 2.0] {
            let k = 40_000;
            let sum: f64 = (0..k).map(|_| sample_exponential(beta, &mut rng)).sum();
            let mean = sum / k as f64;
            let expected = 1.0 / beta;
            assert!(
                (mean - expected).abs() < 0.05 * expected.max(1.0),
                "beta={beta}: mean {mean} vs expected {expected}"
            );
        }
    }

    #[test]
    fn exponential_samples_are_nonnegative() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(sample_exponential(0.5, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn tail_matches_empirical_frequency() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let beta = 0.5;
        let x = 2.0;
        let k = 50_000;
        let exceed = (0..k)
            .filter(|_| sample_exponential(beta, &mut rng) > x)
            .count() as f64
            / k as f64;
        let expected = exponential_tail(beta, x);
        assert!((exceed - expected).abs() < 0.02, "{exceed} vs {expected}");
    }

    #[test]
    fn start_times_are_positive_and_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 1000;
        let beta = 0.25;
        let times = sample_start_times(n, beta, &mut rng);
        let horizon = clustering_rounds(n, beta);
        assert_eq!(times.len(), n);
        for &t in &times {
            assert!(t >= 1);
            assert!(t <= horizon, "start time {t} beyond horizon {horizon}");
        }
    }

    #[test]
    fn horizon_and_rounds_consistent() {
        let n = 4096;
        let beta = 0.125;
        assert_eq!(
            clustering_rounds(n, beta),
            clustering_horizon(n, beta).ceil() as u64
        );
        assert!(clustering_horizon(n, beta) > 0.0);
    }

    #[test]
    fn most_start_times_land_near_horizon() {
        // δ has mean 1/β, the horizon is 4 ln(n)/β, so the bulk of vertices
        // start within the last ~few/β rounds of the horizon.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 2000;
        let beta = 0.25;
        let horizon = clustering_rounds(n, beta);
        let times = sample_start_times(n, beta, &mut rng);
        let late = times
            .iter()
            .filter(|&&t| t as f64 >= horizon as f64 - 8.0 / beta)
            .count();
        assert!(late > n / 2, "only {late} of {n} start in the final window");
    }
}
