//! The cluster graph `G* = cluster(G, β)` and its use as a distance proxy
//! (paper, Section 2.1).
//!
//! `V(G*)` is the set of clusters; `{Cl(u), Cl(v)} ∈ E(G*)` whenever some
//! edge of `G` crosses the two clusters. Lemmas 2.2 and 2.3 show that
//! distances in `G*`, rescaled by `β`, track distances in `G` up to
//! polylogarithmic factors — that relationship is what makes the recursive
//! BFS of Section 4 possible, and this module provides both the construction
//! and the empirical checkers used by experiments E1/E2.

use serde::{Deserialize, Serialize};

use crate::bfs::bfs_distances;
use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::mpx::Clustering;
use crate::{Dist, INFINITY};

/// The quotient graph of a [`Clustering`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterGraph {
    /// The quotient graph: vertex `c` of this graph is cluster `c`.
    pub graph: Graph,
    /// The clustering that produced it.
    pub clustering: Clustering,
}

impl ClusterGraph {
    /// Builds the cluster graph from a graph and a clustering of it.
    pub fn build(g: &Graph, clustering: Clustering) -> Self {
        assert_eq!(clustering.num_nodes(), g.num_nodes());
        let k = clustering.num_clusters();
        let mut b = GraphBuilder::new(k);
        for (u, v) in g.edges() {
            let cu = clustering.cluster_of[u];
            let cv = clustering.cluster_of[v];
            if cu != cv {
                b.add_edge(cu, cv);
            }
        }
        ClusterGraph {
            graph: b.build(),
            clustering,
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The cluster containing vertex `v` of the original graph.
    pub fn cluster_of(&self, v: NodeId) -> usize {
        self.clustering.cluster_of[v]
    }

    /// Distance in `G*` between the clusters of `u` and `v`.
    pub fn cluster_distance(&self, u: NodeId, v: NodeId) -> Dist {
        let cu = self.cluster_of(u);
        let cv = self.cluster_of(v);
        bfs_distances(&self.graph, cu)[cv]
    }
}

/// The outcome of checking Lemma 2.2 on one vertex pair.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistanceProxySample {
    /// Distance in the original graph.
    pub dist_g: Dist,
    /// Distance between the two clusters in the cluster graph.
    pub dist_star: Dist,
    /// Lemma 2.2 lower bound `⌊dist_G · β / (8 ln n)⌋`.
    pub lower: Dist,
    /// Lemma 2.2 upper bound `⌈dist_G · β⌉ · C ln n`.
    pub upper: Dist,
}

impl DistanceProxySample {
    /// Whether the sampled pair satisfied the lemma's interval.
    pub fn within_bounds(&self) -> bool {
        self.dist_star >= self.lower && self.dist_star <= self.upper
    }
}

/// Evaluates the Lemma 2.2 interval for the pair `(u, v)` using constant
/// `c_upper` for the unspecified constant `C`.
///
/// Returns `None` when `u` and `v` are disconnected.
pub fn check_distance_proxy(
    g: &Graph,
    cg: &ClusterGraph,
    u: NodeId,
    v: NodeId,
    c_upper: f64,
) -> Option<DistanceProxySample> {
    let n = g.num_nodes().max(2) as f64;
    let beta = cg.clustering.beta;
    let dist_g = bfs_distances(g, u)[v];
    if dist_g == INFINITY {
        return None;
    }
    let dist_star = cg.cluster_distance(u, v);
    let lower = ((dist_g as f64 * beta) / (8.0 * n.ln())).floor() as Dist;
    let upper = ((dist_g as f64 * beta).ceil() * c_upper * n.ln()).ceil() as Dist;
    Some(DistanceProxySample {
        dist_g,
        dist_star,
        lower,
        upper,
    })
}

/// Aggregate statistics over many vertex pairs for experiment E2.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct DistanceProxyStats {
    /// Number of pairs sampled (connected pairs only).
    pub pairs: usize,
    /// Pairs violating the Lemma 2.2 interval.
    pub violations: usize,
    /// Maximum of `dist_G* / (β · dist_G)` over pairs with `dist_G > 0`.
    pub max_ratio: f64,
    /// Minimum of the same ratio.
    pub min_ratio: f64,
    /// Mean of the same ratio.
    pub mean_ratio: f64,
}

/// Checks Lemma 2.2 over all (ordered) pairs from `pairs`, with the
/// unspecified constant set to `c_upper`.
pub fn distance_proxy_stats(
    g: &Graph,
    cg: &ClusterGraph,
    pairs: &[(NodeId, NodeId)],
    c_upper: f64,
) -> DistanceProxyStats {
    let mut stats = DistanceProxyStats {
        min_ratio: f64::INFINITY,
        ..Default::default()
    };
    let mut ratio_sum = 0.0;
    let mut ratio_count = 0usize;
    for &(u, v) in pairs {
        let Some(sample) = check_distance_proxy(g, cg, u, v, c_upper) else {
            continue;
        };
        stats.pairs += 1;
        if !sample.within_bounds() {
            stats.violations += 1;
        }
        if sample.dist_g > 0 {
            let ratio = sample.dist_star as f64 / (cg.clustering.beta * sample.dist_g as f64);
            stats.max_ratio = stats.max_ratio.max(ratio);
            stats.min_ratio = stats.min_ratio.min(ratio);
            ratio_sum += ratio;
            ratio_count += 1;
        }
    }
    if ratio_count > 0 {
        stats.mean_ratio = ratio_sum / ratio_count as f64;
    }
    if stats.min_ratio == f64::INFINITY {
        stats.min_ratio = 0.0;
    }
    stats
}

/// The Lemma 2.1 tail bound: `P(Ball(v, ℓ) meets > j clusters) ≤
/// (1 − e^{−2ℓβ})^j`.
pub fn lemma_2_1_bound(beta: f64, ell: f64, j: u32) -> f64 {
    (1.0 - (-2.0 * ell * beta).exp()).powi(j as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::mpx::{cluster_centralized, cluster_with_start_times, MpxParams};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn quotient_of_path_with_three_clusters() {
        let g = generators::path(9);
        let starts = vec![1, 50, 50, 50, 1, 50, 50, 50, 1];
        let c = cluster_with_start_times(&g, 0.25, &starts);
        let cg = ClusterGraph::build(&g, c);
        assert_eq!(cg.num_clusters(), 3);
        // The quotient of a path by contiguous segments is a path.
        assert_eq!(cg.graph.num_edges(), 2);
        assert_eq!(cg.cluster_distance(0, 8), 2);
        assert_eq!(cg.cluster_distance(0, 1), 0);
    }

    #[test]
    fn single_cluster_graph_has_no_edges() {
        let g = generators::complete(6);
        let starts = vec![1, 50, 50, 50, 50, 50];
        let c = cluster_with_start_times(&g, 0.5, &starts);
        let cg = ClusterGraph::build(&g, c);
        assert_eq!(cg.num_clusters(), 1);
        assert_eq!(cg.graph.num_edges(), 0);
    }

    #[test]
    fn cluster_graph_edges_come_from_cut_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::grid(12, 12);
        let c = cluster_centralized(&g, MpxParams::from_inverse_beta(3), &mut rng);
        let cut = c.cut_edges(&g);
        let cg = ClusterGraph::build(&g, c);
        // Every quotient edge needs at least one cut edge behind it.
        assert!(cg.graph.num_edges() <= cut);
        // And adjacency in G* implies a crossing edge in G.
        for (a, b) in cg.graph.edges() {
            let found = g.edges().any(|(u, v)| {
                (cg.cluster_of(u) == a && cg.cluster_of(v) == b)
                    || (cg.cluster_of(u) == b && cg.cluster_of(v) == a)
            });
            assert!(found, "quotient edge ({a},{b}) has no witness in G");
        }
    }

    #[test]
    fn lemma_2_2_holds_empirically_on_grids() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = generators::grid(15, 15);
        let mut violations = 0;
        for _ in 0..10 {
            let c = cluster_centralized(&g, MpxParams::from_inverse_beta(4), &mut rng);
            let cg = ClusterGraph::build(&g, c);
            let pairs: Vec<_> = (0..g.num_nodes())
                .step_by(7)
                .flat_map(|u| (0..g.num_nodes()).step_by(11).map(move |v| (u, v)))
                .collect();
            let stats = distance_proxy_stats(&g, &cg, &pairs, 4.0);
            violations += stats.violations;
        }
        assert_eq!(violations, 0, "Lemma 2.2 interval violated");
    }

    #[test]
    fn lemma_2_1_bound_shape() {
        // Monotone decreasing in j, in (0, 1) for positive arguments.
        let b1 = lemma_2_1_bound(0.25, 2.0, 1);
        let b4 = lemma_2_1_bound(0.25, 2.0, 4);
        assert!(b1 > b4);
        assert!(b1 < 1.0 && b4 > 0.0);
        // With ℓ = 1/β the per-trial probability is 1 − e^{-2}.
        let expected = 1.0 - (-2.0f64).exp();
        assert!((lemma_2_1_bound(0.25, 4.0, 1) - expected).abs() < 1e-12);
    }

    #[test]
    fn proxy_stats_handle_disconnected_pairs() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let c = cluster_with_start_times(&g, 0.5, &[1, 10, 1, 10]);
        let cg = ClusterGraph::build(&g, c);
        let stats = distance_proxy_stats(&g, &cg, &[(0, 2), (0, 1)], 4.0);
        // The disconnected pair is skipped.
        assert_eq!(stats.pairs, 1);
    }

    #[test]
    fn ball_intersections_obey_lemma_2_1_on_average() {
        // Statistical check of Lemma 2.1 at ℓ = 1/β, j = ~log n.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::grid(20, 20);
        let params = MpxParams::from_inverse_beta(4);
        let ell = params.inverse_beta() as Dist;
        let n = g.num_nodes() as f64;
        let j = (2.0 * n.ln()).ceil() as usize;
        let trials = 20;
        let mut exceed = 0usize;
        for t in 0..trials {
            let c = cluster_centralized(&g, params, &mut rng);
            let v = (t * 37) % g.num_nodes();
            if c.ball_cluster_intersections(&g, v, ell) > j {
                exceed += 1;
            }
        }
        // Bound is (1 - e^-2)^j ≈ 3e-4 per trial at j ≈ 12; none should exceed.
        assert_eq!(exceed, 0);
    }
}
