//! The set-disjointness lower-bound construction of Theorem 5.2.
//!
//! Given two subsets `S_A, S_B ⊆ {0, …, k−1}` (with `k` a power of two),
//! the theorem builds a graph on vertex classes
//! `V_A ∪ V_B ∪ V_C ∪ V_D ∪ {u*, v*}` such that
//!
//! * `diam(G) = 2` when `S_A ∩ S_B = ∅`, and
//! * `diam(G) = 3` when the sets intersect,
//!
//! while the graph is sparse: arboricity and treewidth `O(log n)`. Any
//! radio-network algorithm distinguishing the two cases with `o(n / log² n)`
//! energy would yield a set-disjointness protocol with `o(k)` bits of
//! communication, contradicting the classical `Ω(k)` lower bound.
//!
//! This module builds the graph, exposes the vertex-class layout, and
//! provides the communication-cost ledger used by experiment E11 to replay
//! the reduction's accounting on concrete protocol traces.

use serde::{Deserialize, Serialize};

use crate::graph::{Graph, GraphBuilder, NodeId};

/// Which class a vertex of the lower-bound graph belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VertexClass {
    /// `u_i ∈ V_A`, corresponding to element `a_i ∈ S_A`.
    A,
    /// `v_i ∈ V_B`, corresponding to element `b_i ∈ S_B`.
    B,
    /// `w_j ∈ V_C`, corresponding to bit index `j ∈ [ℓ]`.
    C,
    /// `x_j ∈ V_D`, corresponding to bit index `j ∈ [ℓ]`.
    D,
    /// The apex vertex `u*` adjacent to `V_A ∪ V_C ∪ V_D`.
    UStar,
    /// The apex vertex `v*` adjacent to `V_B ∪ V_C ∪ V_D`.
    VStar,
}

/// The Theorem 5.2 graph together with its vertex-class layout.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DisjointnessGraph {
    /// The constructed graph.
    pub graph: Graph,
    /// Class of each vertex.
    pub class: Vec<VertexClass>,
    /// The elements of `S_A`, in the order matching `V_A`.
    pub set_a: Vec<u64>,
    /// The elements of `S_B`, in the order matching `V_B`.
    pub set_b: Vec<u64>,
    /// Number of bits `ℓ = log₂ k`.
    pub ell: u32,
    /// Universe size `k = 2^ℓ`.
    pub k: u64,
    /// Vertex ids of `V_A` (in `set_a` order).
    pub a_vertices: Vec<NodeId>,
    /// Vertex ids of `V_B` (in `set_b` order).
    pub b_vertices: Vec<NodeId>,
    /// Vertex ids of `V_C` (index `j` ↦ `w_{j+1}`).
    pub c_vertices: Vec<NodeId>,
    /// Vertex ids of `V_D` (index `j` ↦ `x_{j+1}`).
    pub d_vertices: Vec<NodeId>,
    /// The apex `u*`.
    pub u_star: NodeId,
    /// The apex `v*`.
    pub v_star: NodeId,
}

/// The bit positions (1-based, as in the paper's `[ℓ]`) where `s` has a 1,
/// reading bit 1 as the most significant of the `ℓ`-bit representation.
pub fn ones(s: u64, ell: u32) -> Vec<u32> {
    (1..=ell).filter(|&j| (s >> (ell - j)) & 1 == 1).collect()
}

/// The complementary positions where `s` has a 0.
pub fn zeros(s: u64, ell: u32) -> Vec<u32> {
    (1..=ell).filter(|&j| (s >> (ell - j)) & 1 == 0).collect()
}

/// Builds the Theorem 5.2 graph for sets `S_A, S_B ⊆ {0, …, k − 1}` where
/// `k = 2^ℓ`.
///
/// Panics if an element is `≥ k` or if either set is empty (the reduction
/// always works with non-empty sets; empty sets are trivially disjoint).
pub fn build_disjointness_graph(set_a: &[u64], set_b: &[u64], ell: u32) -> DisjointnessGraph {
    assert!(ell >= 1, "need at least one bit");
    assert!(
        !set_a.is_empty() && !set_b.is_empty(),
        "sets must be non-empty"
    );
    let k = 1u64 << ell;
    for &x in set_a.iter().chain(set_b.iter()) {
        assert!(x < k, "element {x} out of universe [0, {k})");
    }
    let alpha = set_a.len();
    let beta = set_b.len();
    let l = ell as usize;
    let n = alpha + beta + 2 * l + 2;

    // Vertex layout: V_A, then V_B, then V_C, then V_D, then u*, v*.
    let a_vertices: Vec<NodeId> = (0..alpha).collect();
    let b_vertices: Vec<NodeId> = (alpha..alpha + beta).collect();
    let c_vertices: Vec<NodeId> = (alpha + beta..alpha + beta + l).collect();
    let d_vertices: Vec<NodeId> = (alpha + beta + l..alpha + beta + 2 * l).collect();
    let u_star = n - 2;
    let v_star = n - 1;

    let mut class = Vec::with_capacity(n);
    class.extend(std::iter::repeat_n(VertexClass::A, alpha));
    class.extend(std::iter::repeat_n(VertexClass::B, beta));
    class.extend(std::iter::repeat_n(VertexClass::C, l));
    class.extend(std::iter::repeat_n(VertexClass::D, l));
    class.push(VertexClass::UStar);
    class.push(VertexClass::VStar);

    let mut builder = GraphBuilder::new(n);
    // u_i -- w_j iff j ∈ Ones(a_i); u_i -- x_j iff j ∈ Zeros(a_i).
    for (i, &a) in set_a.iter().enumerate() {
        for j in ones(a, ell) {
            builder.add_edge(a_vertices[i], c_vertices[(j - 1) as usize]);
        }
        for j in zeros(a, ell) {
            builder.add_edge(a_vertices[i], d_vertices[(j - 1) as usize]);
        }
    }
    // v_i -- w_j iff j ∈ Zeros(b_i); v_i -- x_j iff j ∈ Ones(b_i).
    for (i, &b) in set_b.iter().enumerate() {
        for j in zeros(b, ell) {
            builder.add_edge(b_vertices[i], c_vertices[(j - 1) as usize]);
        }
        for j in ones(b, ell) {
            builder.add_edge(b_vertices[i], d_vertices[(j - 1) as usize]);
        }
    }
    // u* adjacent to V_A ∪ V_C ∪ V_D; v* adjacent to V_B ∪ V_C ∪ V_D.
    for &u in a_vertices.iter().chain(&c_vertices).chain(&d_vertices) {
        builder.add_edge(u_star, u);
    }
    for &v in b_vertices.iter().chain(&c_vertices).chain(&d_vertices) {
        builder.add_edge(v_star, v);
    }

    DisjointnessGraph {
        graph: builder.build(),
        class,
        set_a: set_a.to_vec(),
        set_b: set_b.to_vec(),
        ell,
        k,
        a_vertices,
        b_vertices,
        c_vertices,
        d_vertices,
        u_star,
        v_star,
    }
}

impl DisjointnessGraph {
    /// Whether the underlying set-disjointness instance is a *yes* instance
    /// (`S_A ∩ S_B = ∅`).
    pub fn sets_disjoint(&self) -> bool {
        !self.set_a.iter().any(|a| self.set_b.contains(a))
    }

    /// The diameter the construction predicts: 2 if the sets are disjoint,
    /// 3 otherwise.
    pub fn predicted_diameter(&self) -> u32 {
        if self.sets_disjoint() {
            2
        } else {
            3
        }
    }

    /// The vertices whose transcripts the reduction must exchange:
    /// `V_C ∪ V_D ∪ {u*, v*}` — only `O(log k)` of them.
    pub fn shared_vertices(&self) -> Vec<NodeId> {
        let mut out = self.c_vertices.clone();
        out.extend(&self.d_vertices);
        out.push(self.u_star);
        out.push(self.v_star);
        out
    }

    /// The per-round communication cost (in bits) that the reduction charges
    /// when `listeners_in_shared` vertices of `V_C ∪ V_D ∪ {u*, v*}` listen
    /// in a round: each such listener costs `O(log k)` bits from each player
    /// (the neighbour-list encoding of the unique transmitter, or a
    /// 2-bit "0 / ≥2" marker). We charge the paper's
    /// `O(|Z(τ)| · log k)` with the constant set to 1 message of
    /// `2ℓ + 2` bits plus 2 marker bits per player.
    pub fn round_communication_bits(&self, listeners_in_shared: usize) -> u64 {
        let per_listener = 2 * (2 * self.ell as u64 + 2) + 4;
        listeners_in_shared as u64 * per_listener
    }

    /// The set-disjointness communication lower bound `Ω(k)` against which
    /// the reduction's total is compared; we report the raw `k`.
    pub fn communication_lower_bound(&self) -> u64 {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arboricity::degeneracy;
    use crate::diameter::exact_diameter;

    #[test]
    fn ones_and_zeros_partition_bit_positions() {
        // s = 0b10110010, ℓ = 8 → Ones = {1,3,4,7}, Zeros = {2,5,6,8}
        // (the paper's running example).
        let s = 0b1011_0010u64;
        assert_eq!(ones(s, 8), vec![1, 3, 4, 7]);
        assert_eq!(zeros(s, 8), vec![2, 5, 6, 8]);
        for j in 1..=8u32 {
            let in_ones = ones(s, 8).contains(&j);
            let in_zeros = zeros(s, 8).contains(&j);
            assert!(in_ones ^ in_zeros);
        }
    }

    #[test]
    fn disjoint_sets_give_diameter_two() {
        let g = build_disjointness_graph(&[1, 2, 5], &[0, 3, 6], 3);
        assert!(g.sets_disjoint());
        assert_eq!(g.predicted_diameter(), 2);
        assert_eq!(exact_diameter(&g.graph), Some(2));
    }

    #[test]
    fn intersecting_sets_give_diameter_three() {
        let g = build_disjointness_graph(&[1, 2, 5], &[0, 5, 6], 3);
        assert!(!g.sets_disjoint());
        assert_eq!(g.predicted_diameter(), 3);
        assert_eq!(exact_diameter(&g.graph), Some(3));
    }

    #[test]
    fn vertex_count_matches_formula() {
        let g = build_disjointness_graph(&[0, 1, 2, 3], &[4, 5], 4);
        // n = α + β + 2ℓ + 2
        assert_eq!(g.graph.num_nodes(), 4 + 2 + 8 + 2);
        assert_eq!(g.class.len(), g.graph.num_nodes());
    }

    #[test]
    fn apexes_cover_their_classes() {
        let g = build_disjointness_graph(&[1, 6], &[2, 4], 3);
        for &a in &g.a_vertices {
            assert!(g.graph.has_edge(g.u_star, a));
            assert!(!g.graph.has_edge(g.v_star, a));
        }
        for &b in &g.b_vertices {
            assert!(g.graph.has_edge(g.v_star, b));
            assert!(!g.graph.has_edge(g.u_star, b));
        }
        for &c in g.c_vertices.iter().chain(&g.d_vertices) {
            assert!(g.graph.has_edge(g.u_star, c));
            assert!(g.graph.has_edge(g.v_star, c));
        }
    }

    #[test]
    fn pairwise_distance_two_except_a_b_pairs_with_equal_elements() {
        let set_a = vec![3u64, 5];
        let set_b = vec![5u64, 6];
        let g = build_disjointness_graph(&set_a, &set_b, 3);
        let n = g.graph.num_nodes();
        let dist_from: Vec<Vec<u32>> = (0..n)
            .map(|v| crate::bfs::bfs_distances(&g.graph, v))
            .collect();
        for (i, &ui) in g.a_vertices.iter().enumerate() {
            for (j, &vj) in g.b_vertices.iter().enumerate() {
                let expected = if set_a[i] == set_b[j] { 3 } else { 2 };
                assert_eq!(
                    dist_from[ui][vj], expected,
                    "pair a={}, b={}",
                    set_a[i], set_b[j]
                );
            }
        }
    }

    #[test]
    fn construction_is_sparse() {
        // With large-ish k, arboricity (≤ degeneracy) must stay O(log n):
        // every V_A/V_B vertex has degree ℓ + 1, giving degeneracy ≤ ℓ + 1 ... + apexes.
        let ell = 7u32;
        let set_a: Vec<u64> = (0..60).map(|i| (i * 2 + 1) % 128).collect();
        let set_b: Vec<u64> = (0..60).map(|i| (i * 2) % 128).collect();
        let g = build_disjointness_graph(&set_a, &set_b, ell);
        let n = g.graph.num_nodes() as f64;
        let degen = degeneracy(&g.graph);
        assert!(
            (degen as f64) <= 4.0 * n.log2(),
            "degeneracy {degen} not O(log n) for n = {n}"
        );
    }

    #[test]
    fn shared_vertices_are_logarithmically_many() {
        let g = build_disjointness_graph(&[1, 2, 3], &[4, 5, 6], 5);
        assert_eq!(g.shared_vertices().len(), 2 * 5 + 2);
    }

    #[test]
    fn communication_accounting_is_linear_in_listeners() {
        let g = build_disjointness_graph(&[1], &[2], 4);
        assert_eq!(g.round_communication_bits(0), 0);
        let one = g.round_communication_bits(1);
        assert_eq!(g.round_communication_bits(5), 5 * one);
        assert_eq!(g.communication_lower_bound(), 16);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_elements() {
        let _ = build_disjointness_graph(&[9], &[1], 3);
    }
}
