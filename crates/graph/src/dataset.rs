//! Shared immutable CSR datasets with a content-addressed build cache.
//!
//! Sweep runners burn most of their setup time rebuilding deterministic
//! generator outputs — the same grid, path, or tree compiled once per
//! process (or worse, once per cell). This module compiles a generator's
//! output **once** into a compact binary CSR artifact on disk and
//! thereafter bulk-reads it into an immutable [`Arc<Graph>`] that the whole
//! worker pool shares by refcount:
//!
//! * [`DatasetKey`] — the identity of a compiled dataset: `{family, params,
//!   n, layout-version}`. Its FNV-1a [`DatasetKey::content_hash`] is baked
//!   into both the artifact file name and the header, so a stale or
//!   foreign artifact can never be read as the wrong graph.
//! * [`write_artifact`] / [`read_artifact`] — the versioned binary format:
//!   a fixed header (magic, format version, key hash, realized `n`, edge
//!   count), `u32` offsets and neighbor ids, and a trailing payload
//!   checksum. Writes go through a temp file + rename, so readers never
//!   observe a half-written artifact.
//! * [`DatasetCache`] — `load_or_build` over a cache directory (the runner
//!   uses `target/datasets/`): a valid artifact is a **hit** (bulk read, no
//!   generator run); a missing or corrupt one is a **miss** (rebuild, then
//!   best-effort re-store). Hit/miss counters let smoke tests assert the
//!   second run of a sweep compiles nothing.
//! * [`hilbert`] — the opt-in space-filling-curve vertex order for grids
//!   (COST-style cache-aware layout). Relabeling changes neighbor
//!   iteration order, which feeds RNG-ordered delivery draws, so the
//!   layout is only used by scenarios that opted in; see the module docs.
//!
//! The artifact is an *exact* round-trip: `read_artifact` returns a graph
//! whose [`Graph::csr_parts`] equal the generator output's, revalidated
//! through [`Graph::from_csr_parts`] on every load.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::graph::Graph;

/// Version of the on-disk artifact format; bumped whenever the header or
/// payload encoding changes, so readers never misparse old files.
pub const FORMAT_VERSION: u32 = 1;

/// Version of the vertex/edge *layout* conventions (row-major grids,
/// curve-rank Hilbert relabeling). Part of every [`DatasetKey`] hash: a
/// layout change re-keys every artifact instead of silently reusing graphs
/// built under the old conventions.
pub const LAYOUT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"RGDS";
/// magic + format version + key hash + n + num_edges + neighbors len.
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8 + 8;

/// 64-bit FNV-1a over `bytes` — the (non-cryptographic) content hash used
/// for dataset keys and payload checksums. Stable across platforms and
/// independent of `std`'s randomized hashers.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Identity of a compiled dataset: the deterministic generator inputs
/// `{family, params, n}` plus the crate's [`LAYOUT_VERSION`]. `n` is the
/// *target* size handed to the generator; the realized node count lives in
/// the artifact header (families like grids round down).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DatasetKey {
    /// Family label, e.g. `grid`, `path`, `tree3`.
    pub family: String,
    /// Canonical parameter string of the family (empty when the target size
    /// is the only parameter).
    pub params: String,
    /// Target node count fed to the generator.
    pub n: usize,
}

impl DatasetKey {
    /// A key for `family` with `params` at target size `n`.
    pub fn new(family: impl Into<String>, params: impl Into<String>, n: usize) -> Self {
        DatasetKey {
            family: family.into(),
            params: params.into(),
            n,
        }
    }

    /// The content hash over `{family, params, n, layout-version}` — the
    /// artifact's identity on disk. Field boundaries are delimited with NUL
    /// bytes so `("ab", "c")` and `("a", "bc")` cannot collide.
    pub fn content_hash(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, self.family.as_bytes());
        h = fnv1a(h, &[0]);
        h = fnv1a(h, self.params.as_bytes());
        h = fnv1a(h, &[0]);
        h = fnv1a(h, &(self.n as u64).to_le_bytes());
        h = fnv1a(h, &[0]);
        fnv1a(h, &LAYOUT_VERSION.to_le_bytes())
    }

    /// The artifact file name, `<family>-n<target>-<hash>.csr`, with the
    /// family label sanitized to filesystem-safe characters. The hash makes
    /// the name unique even when labels collide after sanitization.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .family
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("{safe}-n{}-{:016x}.csr", self.n, self.content_hash())
    }
}

/// Why a dataset artifact could not be read (or written).
#[derive(Debug)]
pub enum DatasetError {
    /// The underlying filesystem operation failed (missing file, permission
    /// denied, disk full, ...).
    Io(std::io::Error),
    /// The file exists but is not a valid artifact for the requested key:
    /// wrong magic or format version, truncated or oversized payload,
    /// checksum mismatch, a foreign key hash, or CSR arrays violating the
    /// [`Graph`] invariants.
    Format(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "dataset io error: {e}"),
            DatasetError::Format(msg) => write!(f, "malformed dataset artifact: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

fn format_err<T>(msg: impl Into<String>) -> Result<T, DatasetError> {
    Err(DatasetError::Format(msg.into()))
}

/// Serializes `graph` into the artifact byte format for `key`.
fn encode(key: &DatasetKey, graph: &Graph) -> Result<Vec<u8>, DatasetError> {
    let (offsets, neighbors, num_edges) = graph.csr_parts();
    if neighbors.len() > u32::MAX as usize {
        return format_err(format!(
            "graph has {} neighbor entries; the u32 artifact format caps at {}",
            neighbors.len(),
            u32::MAX
        ));
    }
    let n = graph.num_nodes();
    let mut out = Vec::with_capacity(HEADER_LEN + 4 * (offsets.len() + neighbors.len()) + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.content_hash().to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(num_edges as u64).to_le_bytes());
    out.extend_from_slice(&(neighbors.len() as u64).to_le_bytes());
    for &o in offsets {
        out.extend_from_slice(&(o as u32).to_le_bytes());
    }
    for &v in neighbors {
        out.extend_from_slice(&(v as u32).to_le_bytes());
    }
    let checksum = fnv1a(FNV_OFFSET, &out[HEADER_LEN..]);
    out.extend_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// Writes the artifact for `(key, graph)` to `path` atomically: the bytes
/// go to a sibling temp file first and are renamed into place, so a
/// concurrent reader sees either the old artifact or the complete new one,
/// never a prefix.
pub fn write_artifact(path: &Path, key: &DatasetKey, graph: &Graph) -> Result<(), DatasetError> {
    let bytes = encode(key, graph)?;
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, &bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e.into())
        }
    }
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Bulk-reads and validates the artifact at `path` for `key`.
///
/// Every failure mode is a typed [`DatasetError`] rather than a panic:
/// wrong magic/version, a key-hash mismatch (an artifact compiled for a
/// different dataset or layout version), truncation, trailing garbage, a
/// payload checksum mismatch, and CSR invariant violations (the decoded
/// arrays pass through [`Graph::from_csr_parts`]).
pub fn read_artifact(path: &Path, key: &DatasetKey) -> Result<Graph, DatasetError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < HEADER_LEN + 8 {
        return format_err(format!(
            "{} bytes is shorter than the {}-byte header",
            bytes.len(),
            HEADER_LEN + 8
        ));
    }
    if bytes[..4] != MAGIC {
        return format_err("bad magic (not a dataset artifact)");
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return format_err(format!(
            "format version {version} (this build reads {FORMAT_VERSION})"
        ));
    }
    let key_hash = read_u64(&bytes, 8);
    if key_hash != key.content_hash() {
        return format_err(format!(
            "key hash {key_hash:016x} does not match requested key {:016x}",
            key.content_hash()
        ));
    }
    let n = read_u64(&bytes, 16) as usize;
    let num_edges = read_u64(&bytes, 24) as usize;
    let neighbors_len = read_u64(&bytes, 32) as usize;
    let payload = 4usize
        .checked_mul(n + 1)
        .and_then(|o| o.checked_add(4 * neighbors_len))
        .ok_or_else(|| DatasetError::Format("payload size overflows".into()))?;
    let expected = HEADER_LEN + payload + 8;
    if bytes.len() < expected {
        return format_err(format!(
            "truncated: {} bytes, header promises {expected}",
            bytes.len()
        ));
    }
    if bytes.len() > expected {
        return format_err(format!(
            "trailing garbage: {} bytes, header promises {expected}",
            bytes.len()
        ));
    }
    let checksum = read_u64(&bytes, expected - 8);
    let actual = fnv1a(FNV_OFFSET, &bytes[HEADER_LEN..expected - 8]);
    if checksum != actual {
        return format_err(format!(
            "payload checksum {actual:016x} does not match recorded {checksum:016x}"
        ));
    }
    let decode = |range: std::ops::Range<usize>| -> Vec<usize> {
        bytes[range]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")) as usize)
            .collect()
    };
    let offsets_end = HEADER_LEN + 4 * (n + 1);
    let offsets = decode(HEADER_LEN..offsets_end);
    let neighbors = decode(offsets_end..expected - 8);
    Graph::from_csr_parts(offsets, neighbors, num_edges).or_else(format_err)
}

/// A content-addressed build cache over one directory of artifacts.
///
/// `load_or_build` is the only call sites need: a valid artifact for the
/// key is bulk-read (**hit**); anything else — missing file, corrupt
/// header, stale layout version — falls back to the deterministic builder
/// and best-effort re-stores the result (**miss**). The returned
/// [`Arc<Graph>`] is what makes datasets *shared*: the runner hands clones
/// of the refcount to every worker instead of cloning CSR arrays.
///
/// Hit/miss counters are atomic so a sweep can report cache effectiveness
/// after running cells on many threads.
#[derive(Debug)]
pub struct DatasetCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DatasetCache {
    /// A cache over `dir` (created lazily on the first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DatasetCache {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where `key`'s artifact lives (whether or not it exists yet).
    pub fn path_for(&self, key: &DatasetKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Reads `key`'s artifact, if present and valid.
    pub fn load(&self, key: &DatasetKey) -> Result<Graph, DatasetError> {
        read_artifact(&self.path_for(key), key)
    }

    /// Compiles and stores `graph` as `key`'s artifact, returning its path.
    pub fn store(&self, key: &DatasetKey, graph: &Graph) -> Result<PathBuf, DatasetError> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(key);
        write_artifact(&path, key, graph)?;
        Ok(path)
    }

    /// The shared-dataset entry point: a valid artifact is a hit; otherwise
    /// `build` runs (a miss) and the result is re-stored best-effort — an
    /// unwritable cache directory degrades to building per process, never
    /// to an error on the sweep path.
    pub fn load_or_build<F: FnOnce() -> Graph>(&self, key: &DatasetKey, build: F) -> Arc<Graph> {
        if let Ok(g) = self.load(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::new(g);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let g = build();
        let _ = self.store(key, &g);
        Arc::new(g)
    }

    /// Artifacts served from disk so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Generator rebuilds (missing or invalid artifacts) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

pub mod hilbert {
    //! Hilbert space-filling-curve vertex order for grid graphs.
    //!
    //! A row-major grid interleaves vertices that are far apart on the
    //! curve of memory: row `r` and row `r+1` neighbors sit `cols` apart in
    //! the CSR arrays, so a BFS wavefront streams the whole structure once
    //! per row. Relabeling vertices by their rank along a Hilbert curve
    //! keeps 2-D-adjacent vertices close in vertex id, which keeps the
    //! frame kernels' bitset words and the CSR rows they touch hot in
    //! cache (the COST-style layout argument).
    //!
    //! **When is the relabeled graph safe to substitute?** The relabeled
    //! grid is isomorphic to the row-major one with vertex 0 fixed (cell
    //! `(0, 0)` has curve index 0), so any *relabel-invariant* observable —
    //! distance multisets from vertex 0, per-node participation-count
    //! multisets, round counts, outcome totals — is identical. What is
    //! **not** preserved is the identity of the RNG draw each vertex
    //! consumes (draws map to vertices in ascending-id order), so
    //! protocols whose *per-vertex* randomness feeds their observable
    //! (e.g. clustering) produce per-seed-different, same-distribution
    //! results. The default sweep therefore never uses this layout; only
    //! scenarios that opted in (the `xl-grid-hilbert` family) do.

    use crate::graph::Graph;

    fn rotate(n: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
        if ry == 0 {
            if rx == 1 {
                *x = n - 1 - *x;
                *y = n - 1 - *y;
            }
            std::mem::swap(x, y);
        }
    }

    /// Index of cell `(x, y)` along the Hilbert curve over a `side × side`
    /// square; `side` must be a power of two. Cell `(0, 0)` has index 0.
    pub fn xy_to_d(side: u64, mut x: u64, mut y: u64) -> u64 {
        debug_assert!(side.is_power_of_two());
        let mut d = 0u64;
        let mut s = side / 2;
        while s > 0 {
            let rx = u64::from(x & s > 0);
            let ry = u64::from(y & s > 0);
            d += s * s * ((3 * rx) ^ ry);
            rotate(side, &mut x, &mut y, rx, ry);
            s /= 2;
        }
        d
    }

    /// Cell `(x, y)` of curve index `d` over a `side × side` square — the
    /// inverse of [`xy_to_d`].
    pub fn d_to_xy(side: u64, d: u64) -> (u64, u64) {
        debug_assert!(side.is_power_of_two());
        let (mut x, mut y) = (0u64, 0u64);
        let mut t = d;
        let mut s = 1u64;
        while s < side {
            let rx = 1 & (t / 2);
            let ry = 1 & (t ^ rx);
            rotate(s, &mut x, &mut y, rx, ry);
            x += s * rx;
            y += s * ry;
            t /= 4;
            s *= 2;
        }
        (x, y)
    }

    /// The permutation `perm[old] = new` relabeling a `rows × cols`
    /// row-major grid by Hilbert-curve rank. The curve runs over the
    /// smallest power-of-two square covering the grid; out-of-bounds cells
    /// are skipped, so ranks are dense in `0..rows*cols`. Cell `(0, 0)` —
    /// vertex 0, every scenario's BFS source — always maps to rank 0.
    pub fn grid_permutation(rows: usize, cols: usize) -> Vec<usize> {
        let side = rows.max(cols).max(1).next_power_of_two() as u64;
        let mut by_d: Vec<(u64, usize)> = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                by_d.push((xy_to_d(side, c as u64, r as u64), r * cols + c));
            }
        }
        by_d.sort_unstable();
        let mut perm = vec![0usize; rows * cols];
        for (rank, &(_, old)) in by_d.iter().enumerate() {
            perm[old] = rank;
        }
        perm
    }

    /// A `rows × cols` grid relabeled along the Hilbert curve — same graph
    /// as [`crate::generators::grid`] up to the isomorphism of
    /// [`grid_permutation`].
    pub fn relabeled_grid(rows: usize, cols: usize) -> Graph {
        crate::generators::grid(rows, cols).relabel(&grid_permutation(rows, cols))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn curve_indices_round_trip_and_cover_the_square() {
            for side in [1u64, 2, 4, 8, 32] {
                let mut seen = vec![false; (side * side) as usize];
                for x in 0..side {
                    for y in 0..side {
                        let d = xy_to_d(side, x, y);
                        assert!(d < side * side);
                        assert!(!seen[d as usize], "index {d} hit twice");
                        seen[d as usize] = true;
                        assert_eq!(d_to_xy(side, d), (x, y), "side {side} d {d}");
                    }
                }
            }
        }

        #[test]
        fn consecutive_curve_indices_are_grid_neighbors() {
            // The defining locality property of the Hilbert curve — and the
            // reason the relabeled CSR is cache-friendlier: consecutive
            // vertex ids are 2-D-adjacent cells.
            let side = 16u64;
            for d in 0..side * side - 1 {
                let (x0, y0) = d_to_xy(side, d);
                let (x1, y1) = d_to_xy(side, d + 1);
                assert_eq!(
                    x0.abs_diff(x1) + y0.abs_diff(y1),
                    1,
                    "d {d}: ({x0},{y0}) -> ({x1},{y1})"
                );
            }
        }

        #[test]
        fn grid_permutation_is_a_permutation_fixing_the_origin() {
            for (rows, cols) in [(1usize, 1usize), (2, 2), (5, 3), (7, 7), (8, 8), (6, 10)] {
                let perm = grid_permutation(rows, cols);
                assert_eq!(perm.len(), rows * cols);
                assert_eq!(perm[0], 0, "{rows}x{cols}: origin must keep id 0");
                let mut seen = vec![false; perm.len()];
                for &p in &perm {
                    assert!(p < perm.len() && !seen[p]);
                    seen[p] = true;
                }
            }
        }

        #[test]
        fn relabeled_grid_is_isomorphic_to_the_row_major_grid() {
            let (rows, cols) = (6usize, 9usize);
            let plain = crate::generators::grid(rows, cols);
            let curved = relabeled_grid(rows, cols);
            assert_eq!(plain.num_nodes(), curved.num_nodes());
            assert_eq!(plain.num_edges(), curved.num_edges());
            let perm = grid_permutation(rows, cols);
            for (u, v) in plain.edges() {
                assert!(curved.has_edge(perm[u], perm[v]));
            }
            // Degree multisets agree (a cheap isomorphism witness).
            let mut a: Vec<usize> = plain.nodes().map(|v| plain.degree(v)).collect();
            let mut b: Vec<usize> = curved.nodes().map(|v| curved.degree(v)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// A per-test scratch directory under the system temp dir, removed on
    /// drop. No tempfile crate in the offline vendor set, so uniqueness
    /// comes from the pid + a monotone counter.
    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::AtomicU64;
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "radio-graph-dataset-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("create scratch dir");
            ScratchDir(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn artifacts_round_trip_byte_identically() {
        let scratch = ScratchDir::new("roundtrip");
        for (tag, g) in [
            ("path", generators::path(65)),
            ("grid", generators::grid(9, 7)),
            ("star", generators::star(64)),
            ("empty-ish", Graph::from_edges(3, &[])),
        ] {
            let key = DatasetKey::new(tag, "", g.num_nodes());
            let path = scratch.0.join(key.file_name());
            write_artifact(&path, &key, &g).expect("write");
            let back = read_artifact(&path, &key).expect("read");
            assert_eq!(back.csr_parts(), g.csr_parts(), "{tag}");
        }
    }

    #[test]
    fn key_hash_separates_fields_and_keys_the_file_name() {
        let a = DatasetKey::new("grid", "", 64);
        let b = DatasetKey::new("grid", "", 65);
        let c = DatasetKey::new("gri", "d", 64);
        assert_ne!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
        assert!(a
            .file_name()
            .contains(&format!("{:016x}", a.content_hash())));
    }

    #[test]
    fn foreign_key_artifacts_are_rejected() {
        let scratch = ScratchDir::new("foreign");
        let g = generators::path(16);
        let written = DatasetKey::new("path", "", 16);
        let path = scratch.0.join(written.file_name());
        write_artifact(&path, &written, &g).expect("write");
        let other = DatasetKey::new("cycle", "", 16);
        let err = read_artifact(&path, &other).expect_err("foreign key must fail");
        assert!(matches!(err, DatasetError::Format(_)), "{err}");
    }

    #[test]
    fn cache_hits_after_one_build_and_survives_corruption() {
        let scratch = ScratchDir::new("cache");
        let cache = DatasetCache::new(scratch.0.clone());
        let key = DatasetKey::new("grid", "", 49);
        let built = cache.load_or_build(&key, || generators::grid(7, 7));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let loaded = cache.load_or_build(&key, || panic!("must not rebuild"));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(loaded.csr_parts(), built.csr_parts());
        // Corrupt the artifact: the next load is a miss that rebuilds and
        // re-stores a valid artifact.
        std::fs::write(cache.path_for(&key), b"RGDSgarbage").expect("corrupt");
        let rebuilt = cache.load_or_build(&key, || generators::grid(7, 7));
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(rebuilt.csr_parts(), built.csr_parts());
        let healed = cache.load(&key).expect("re-stored artifact");
        assert_eq!(healed.csr_parts(), built.csr_parts());
    }
}
