//! Centralized Miller–Peng–Xu (MPX) clustering (paper, Section 2).
//!
//! Each vertex `v` samples `δ_v ∼ Exponential(β)`; a cluster starts growing
//! at `v` at time `−δ_v` and spreads at one edge per time unit; every vertex
//! is absorbed into the first cluster that reaches it (its own if nothing
//! arrives before it starts). The distributed implementation (Section 2.2)
//! discretizes time via `start_v = ⌈4 log(n)/β − δ_v⌉` and grows clusters
//! with one Local-Broadcast per round.
//!
//! This module implements the *centralized* version of the discretized
//! process: given the integer start times it simulates the growth exactly,
//! which makes it the reference implementation that the distributed protocol
//! in `radio-protocols` is tested against, and the object of the
//! Lemma 2.1–2.3 statistical experiments (E1/E2).

use std::collections::VecDeque;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::exponential::{clustering_rounds, sample_start_times};
use crate::graph::{Graph, NodeId};
use crate::{Dist, INFINITY};

/// Parameters of an MPX clustering.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MpxParams {
    /// The rate β of the exponential start-time shifts. The paper always
    /// chooses β so that `1/β` is an integer; [`MpxParams::new`] enforces it.
    pub beta: f64,
}

impl MpxParams {
    /// Creates parameters from an *integer* `1/β`, matching the paper's
    /// convention ("we only choose β such that 1/β is an integer").
    pub fn from_inverse_beta(inv_beta: u64) -> Self {
        assert!(inv_beta >= 1, "1/β must be a positive integer");
        MpxParams {
            beta: 1.0 / inv_beta as f64,
        }
    }

    /// Creates parameters from β directly, checking that `1/β` is integral.
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "β must be in (0, 1]");
        let inv = 1.0 / beta;
        assert!(
            (inv - inv.round()).abs() < 1e-9,
            "1/β must be an integer (got 1/β = {inv})"
        );
        MpxParams { beta }
    }

    /// `1/β` as an integer.
    pub fn inverse_beta(&self) -> u64 {
        (1.0 / self.beta).round() as u64
    }
}

/// The result of an MPX clustering: a partition of `V(G)` into clusters,
/// each grown from a center, plus the layer labels of the growth process.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Clustering {
    /// β used to produce the clustering.
    pub beta: f64,
    /// `cluster_of[v]` is the cluster index (`0..num_clusters`) of vertex `v`.
    pub cluster_of: Vec<usize>,
    /// `centers[c]` is the center vertex of cluster `c`.
    pub centers: Vec<NodeId>,
    /// `layer[v]` is the round offset at which `v` joined its cluster:
    /// 0 for centers, and `layer[v] = layer[u] + 1` for the neighbour `u`
    /// (in the same cluster) from which `v` was absorbed.
    pub layer: Vec<u32>,
    /// The integer start times that produced this clustering.
    pub start_times: Vec<u64>,
    /// The round at which each vertex became clustered.
    pub joined_round: Vec<u64>,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.cluster_of.len()
    }

    /// The vertices of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<NodeId> {
        self.cluster_of
            .iter()
            .enumerate()
            .filter(|&(_, &cl)| cl == c)
            .map(|(v, _)| v)
            .collect()
    }

    /// Sizes of all clusters.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters()];
        for &c in &self.cluster_of {
            sizes[c] += 1;
        }
        sizes
    }

    /// The radius of cluster `c` in the growth process: the maximum layer of
    /// any member. (This upper-bounds the eccentricity of the center within
    /// the cluster.)
    pub fn cluster_radius(&self, c: usize) -> u32 {
        self.cluster_of
            .iter()
            .zip(&self.layer)
            .filter(|&(&cl, _)| cl == c)
            .map(|(_, &l)| l)
            .max()
            .unwrap_or(0)
    }

    /// Maximum cluster radius (Lemma 2.2 conditions on this being at most
    /// `4 log(n)/β` with probability `1 − n^{-3}`).
    pub fn max_radius(&self) -> u32 {
        (0..self.num_clusters())
            .map(|c| self.cluster_radius(c))
            .max()
            .unwrap_or(0)
    }

    /// Number of edges of `g` whose endpoints lie in different clusters
    /// (MPX: an `O(β)` fraction in expectation).
    pub fn cut_edges(&self, g: &Graph) -> usize {
        g.edges()
            .filter(|&(u, v)| self.cluster_of[u] != self.cluster_of[v])
            .count()
    }

    /// Fraction of edges cut (0 for edgeless graphs).
    pub fn cut_fraction(&self, g: &Graph) -> f64 {
        if g.num_edges() == 0 {
            0.0
        } else {
            self.cut_edges(g) as f64 / g.num_edges() as f64
        }
    }

    /// Number of distinct clusters intersecting the ball `Ball_G(v, ℓ)`
    /// (the quantity bounded by Lemma 2.1).
    pub fn ball_cluster_intersections(&self, g: &Graph, v: NodeId, ell: Dist) -> usize {
        let dist = crate::bfs::bfs_distances(g, v);
        let mut seen = std::collections::HashSet::new();
        for u in g.nodes() {
            if dist[u] != INFINITY && dist[u] <= ell {
                seen.insert(self.cluster_of[u]);
            }
        }
        seen.len()
    }

    /// Validates the structural invariants of an MPX clustering against the
    /// graph that produced it:
    ///
    /// * every vertex belongs to exactly one cluster and every cluster is
    ///   non-empty;
    /// * `layer[v] == 0` iff `v` is a center;
    /// * every non-center `v` has a neighbour `u` in the same cluster with
    ///   `layer[u] == layer[v] − 1` (so clusters are connected);
    /// * no vertex was "captured late": a vertex joins in round
    ///   `start of its center + layer`, and no other center could have
    ///   reached it strictly earlier.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        let n = g.num_nodes();
        if self.cluster_of.len() != n || self.layer.len() != n {
            return Err("length mismatch".into());
        }
        let sizes = self.cluster_sizes();
        if sizes.contains(&0) {
            return Err("empty cluster".into());
        }
        for (c, &center) in self.centers.iter().enumerate() {
            if self.cluster_of[center] != c {
                return Err(format!("center {center} not in its own cluster {c}"));
            }
            if self.layer[center] != 0 {
                return Err(format!("center {center} has non-zero layer"));
            }
        }
        for v in g.nodes() {
            let c = self.cluster_of[v];
            if c >= self.centers.len() {
                return Err(format!("vertex {v} has invalid cluster id {c}"));
            }
            if self.layer[v] == 0 {
                if self.centers[c] != v {
                    return Err(format!("vertex {v} has layer 0 but is not a center"));
                }
            } else {
                let ok = g
                    .neighbors(v)
                    .iter()
                    .any(|&u| self.cluster_of[u] == c && self.layer[u] + 1 == self.layer[v]);
                if !ok {
                    return Err(format!("vertex {v} has no predecessor in its cluster"));
                }
            }
        }
        // No-late-capture: for every vertex v and every center u,
        // the round at which v actually joined is at most the round at which
        // u's cluster could first have reached v.
        let joined: &Vec<u64> = &self.joined_round;
        for (c, &center) in self.centers.iter().enumerate() {
            let dist = crate::bfs::bfs_distances(g, center);
            for v in g.nodes() {
                if dist[v] == INFINITY {
                    continue;
                }
                let earliest = self.start_times[center] + dist[v] as u64;
                if joined[v] > earliest && self.cluster_of[v] != c {
                    return Err(format!(
                        "vertex {v} joined at round {} but center {center} (cluster {c}) \
                         could have reached it at round {earliest}",
                        joined[v]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Runs the discretized MPX growth process with explicitly given integer
/// start times. Deterministic: ties (several clusters reaching a vertex in
/// the same round) are broken towards the smaller cluster index, matching
/// nothing in particular in the paper — any tie-break yields a valid MPX
/// clustering.
pub fn cluster_with_start_times(g: &Graph, beta: f64, start_times: &[u64]) -> Clustering {
    let n = g.num_nodes();
    assert_eq!(start_times.len(), n);
    let max_round = start_times.iter().copied().max().unwrap_or(0) + n as u64 + 1;

    let mut cluster_of = vec![usize::MAX; n];
    let mut layer = vec![0u32; n];
    let mut joined_round = vec![0u64; n];
    let mut centers: Vec<NodeId> = Vec::new();

    // Frontier-based simulation: at each round, first new centers appear,
    // then every unclustered vertex adjacent to a clustered one joins.
    let mut frontier: VecDeque<NodeId> = VecDeque::new();
    let mut round = 1u64;
    let mut clustered = 0usize;
    // Vertices sorted by start time so centers can be activated lazily.
    let mut by_start: Vec<NodeId> = (0..n).collect();
    by_start.sort_by_key(|&v| start_times[v]);
    let mut next_center_idx = 0usize;

    while clustered < n && round <= max_round {
        // 1. Activate new centers whose start time is this round.
        while next_center_idx < n && start_times[by_start[next_center_idx]] <= round {
            let v = by_start[next_center_idx];
            next_center_idx += 1;
            if cluster_of[v] == usize::MAX {
                cluster_of[v] = centers.len();
                centers.push(v);
                layer[v] = 0;
                joined_round[v] = round;
                clustered += 1;
                frontier.push_back(v);
            }
        }
        // 2. One synchronous growth step: unclustered vertices adjacent to
        //    the current clustered set join. We must expand by exactly one
        //    hop per round, so collect the joiners before committing them.
        let mut joiners: Vec<(NodeId, usize, u32)> = Vec::new();
        let mut next_frontier: VecDeque<NodeId> = VecDeque::new();
        for &u in frontier.iter() {
            for &v in g.neighbors(u) {
                if cluster_of[v] == usize::MAX {
                    joiners.push((v, cluster_of[u], layer[u] + 1));
                }
            }
        }
        // Deterministic tie-break: smallest cluster index wins, then
        // smallest layer.
        joiners.sort_by_key(|&(v, c, l)| (v, c, l));
        for (v, c, l) in joiners {
            if cluster_of[v] == usize::MAX {
                cluster_of[v] = c;
                layer[v] = l;
                joined_round[v] = round;
                clustered += 1;
                next_frontier.push_back(v);
            }
        }
        // The old frontier can still absorb vertices next round only through
        // the vertices just added; grown clusters expand from their boundary.
        frontier = if next_frontier.is_empty() && clustered < n {
            // No growth this round (e.g. waiting for a far-away component's
            // center to start); keep the old frontier so adjacency is not
            // lost when new centers appear later.
            frontier
        } else {
            next_frontier
        };
        round += 1;
    }

    // Isolated leftovers (disconnected graphs where nothing reached a vertex
    // before its own start) become their own clusters.
    for v in 0..n {
        if cluster_of[v] == usize::MAX {
            cluster_of[v] = centers.len();
            centers.push(v);
            layer[v] = 0;
            joined_round[v] = start_times[v];
        }
    }

    Clustering {
        beta,
        cluster_of,
        centers,
        layer,
        start_times: start_times.to_vec(),
        joined_round,
    }
}

/// Samples start times from `Exponential(β)` (rounded as in Section 2.2) and
/// runs the centralized clustering.
pub fn cluster_centralized<R: Rng + ?Sized>(
    g: &Graph,
    params: MpxParams,
    rng: &mut R,
) -> Clustering {
    let n = g.num_nodes().max(2);
    let start_times = sample_start_times(g.num_nodes(), params.beta, rng);
    // Sanity: the horizon is what Lemma 2.5 budgets for.
    debug_assert!(clustering_rounds(n, params.beta) >= 1);
    cluster_with_start_times(g, params.beta, &start_times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn clustering_partitions_all_vertices() {
        let mut r = rng(1);
        let g = generators::grid(10, 10);
        let c = cluster_centralized(&g, MpxParams::from_inverse_beta(4), &mut r);
        assert_eq!(c.num_nodes(), 100);
        assert_eq!(c.cluster_sizes().iter().sum::<usize>(), 100);
        c.validate(&g).expect("valid clustering");
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::from_edges(1, &[]);
        let c = cluster_with_start_times(&g, 0.5, &[3]);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.cluster_of, vec![0]);
        c.validate(&g).unwrap();
    }

    #[test]
    fn earliest_start_becomes_center_and_absorbs_path() {
        // Path 0-1-2-3-4. Vertex 2 starts at round 1, everyone else much later:
        // the whole path should be one cluster centered at 2.
        let g = generators::path(5);
        let starts = vec![100, 100, 1, 100, 100];
        let c = cluster_with_start_times(&g, 0.25, &starts);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.centers[0], 2);
        assert_eq!(c.layer, vec![2, 1, 0, 1, 2]);
        c.validate(&g).unwrap();
    }

    #[test]
    fn two_competing_centers_split_a_path() {
        // Path of 7; centers at both ends start simultaneously.
        let g = generators::path(7);
        let starts = vec![1, 50, 50, 50, 50, 50, 1];
        let c = cluster_with_start_times(&g, 0.25, &starts);
        assert_eq!(c.num_clusters(), 2);
        c.validate(&g).unwrap();
        // The two clusters each take about half the path.
        let sizes = c.cluster_sizes();
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn late_starts_dont_override_earlier_growth() {
        // Vertex 0 starts at 1; vertex 4 would start at 3 but the cluster of
        // 0 reaches it at round 1+4=5... actually at distance 4 it arrives at
        // round 5, so 4 becomes its own center at round 3.
        let g = generators::path(5);
        let starts = vec![1, 50, 50, 50, 3];
        let c = cluster_with_start_times(&g, 0.25, &starts);
        assert_eq!(c.num_clusters(), 2);
        assert!(c.centers.contains(&0));
        assert!(c.centers.contains(&4));
        c.validate(&g).unwrap();
    }

    #[test]
    fn disconnected_graph_gets_clusters_everywhere() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3)]);
        let mut r = rng(2);
        let c = cluster_centralized(&g, MpxParams::from_inverse_beta(2), &mut r);
        assert_eq!(c.cluster_of.iter().filter(|&&x| x == usize::MAX).count(), 0);
        c.validate(&g).unwrap();
    }

    #[test]
    fn max_radius_respects_lemma_bound_whp() {
        // Lemma 2.2's conditioning event: all radii < 4 log(n)/β.
        let mut r = rng(3);
        let g = generators::grid(20, 20);
        let params = MpxParams::from_inverse_beta(4);
        let bound = (4.0 * (g.num_nodes() as f64).ln() / params.beta).ceil() as u32;
        for _ in 0..10 {
            let c = cluster_centralized(&g, params, &mut r);
            assert!(c.max_radius() <= bound, "{} > {}", c.max_radius(), bound);
        }
    }

    #[test]
    fn cut_fraction_scales_with_beta() {
        // Larger β (smaller clusters) should cut more edges on average.
        let mut r = rng(4);
        let g = generators::grid(30, 30);
        let avg = |inv_beta: u64, r: &mut ChaCha8Rng| {
            let params = MpxParams::from_inverse_beta(inv_beta);
            let trials = 8;
            (0..trials)
                .map(|_| cluster_centralized(&g, params, r).cut_fraction(&g))
                .sum::<f64>()
                / trials as f64
        };
        let coarse = avg(16, &mut r);
        let fine = avg(2, &mut r);
        assert!(
            fine > coarse,
            "cut fraction should grow with β: fine={fine}, coarse={coarse}"
        );
    }

    #[test]
    fn ball_intersections_counts_clusters() {
        let g = generators::path(9);
        // Three clusters of three vertices each.
        let starts = vec![1, 50, 50, 50, 1, 50, 50, 50, 1];
        let c = cluster_with_start_times(&g, 0.25, &starts);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.ball_cluster_intersections(&g, 4, 1), 1);
        assert_eq!(c.ball_cluster_intersections(&g, 4, 3), 3);
        assert_eq!(c.ball_cluster_intersections(&g, 0, 0), 1);
    }

    #[test]
    fn params_validation() {
        let p = MpxParams::from_inverse_beta(8);
        assert!((p.beta - 0.125).abs() < 1e-12);
        assert_eq!(p.inverse_beta(), 8);
        let p2 = MpxParams::new(0.25);
        assert_eq!(p2.inverse_beta(), 4);
    }

    #[test]
    #[should_panic]
    fn params_reject_non_integer_inverse_beta() {
        let _ = MpxParams::new(0.3);
    }

    #[test]
    fn validate_catches_corruption() {
        let g = generators::grid(5, 5);
        let mut r = rng(5);
        let mut c = cluster_centralized(&g, MpxParams::from_inverse_beta(3), &mut r);
        c.validate(&g).unwrap();
        // Corrupt a layer value.
        if let Some(l) = c.layer.iter_mut().find(|l| **l > 0) {
            *l += 7;
        } else {
            // Single cluster of radius 0 can't be corrupted this way; force
            // an invalid cluster id instead.
            c.cluster_of[0] = 999;
        }
        assert!(c.validate(&g).is_err());
    }
}
