//! Centralized breadth-first search.
//!
//! These routines are the *ground truth* against which the distributed,
//! energy-metered algorithms of the other crates are validated: the paper's
//! BreadthFirstSearch problem asks every device to learn exactly the value
//! computed here by [`bfs_distances`].

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId};
use crate::{Dist, INFINITY};

/// Single-source BFS distances from `source`.
///
/// Unreachable vertices get [`INFINITY`].
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Dist> {
    multi_source_bfs(g, std::slice::from_ref(&source))
}

/// Multi-source BFS: distance from the *set* `sources` (minimum over the
/// set). Unreachable vertices get [`INFINITY`].
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> Vec<Dist> {
    let n = g.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(s < n, "source {s} out of range");
        if dist[s] != 0 {
            dist[s] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in g.neighbors(u) {
            if dist[v] == INFINITY {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS distances restricted to the subgraph induced by `active` — the
/// quantity `dist_A(S, u)` used throughout Section 4 of the paper.
///
/// A vertex participates (as an endpoint or an interior vertex of a path)
/// only if `active[v]` is true. Sources that are inactive are ignored.
pub fn restricted_bfs(g: &Graph, sources: &[NodeId], active: &[bool]) -> Vec<Dist> {
    assert_eq!(active.len(), g.num_nodes());
    let n = g.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(s < n, "source {s} out of range");
        if active[s] && dist[s] != 0 {
            dist[s] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in g.neighbors(u) {
            if active[v] && dist[v] == INFINITY {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// A BFS tree: for every vertex, its parent on some shortest path to the
/// source (`None` for the source itself and for unreachable vertices), plus
/// the distance labelling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsTree {
    /// Source vertex of the tree.
    pub source: NodeId,
    /// `parent[v]` is `v`'s parent, `None` for the source / unreachable.
    pub parent: Vec<Option<NodeId>>,
    /// BFS distance labels.
    pub dist: Vec<Dist>,
}

impl BfsTree {
    /// Maximum finite distance in the tree (the eccentricity of the source
    /// within its component). `None` if the graph has no vertices.
    pub fn eccentricity(&self) -> Option<Dist> {
        self.dist.iter().copied().filter(|&d| d != INFINITY).max()
    }

    /// Vertices at exactly distance `d` (a BFS "layer").
    pub fn layer(&self, d: Dist) -> Vec<NodeId> {
        self.dist
            .iter()
            .enumerate()
            .filter(|&(_, &x)| x == d)
            .map(|(v, _)| v)
            .collect()
    }

    /// Reconstructs a shortest path from the source to `v`, inclusive.
    /// Returns `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[v] == INFINITY {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Computes a BFS tree rooted at `source`.
pub fn bfs_tree(g: &Graph, source: NodeId) -> BfsTree {
    let n = g.num_nodes();
    assert!(source < n);
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![None; n];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == INFINITY {
                dist[v] = dist[u] + 1;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    BfsTree {
        source,
        parent,
        dist,
    }
}

/// Checks that `labels` is a correct BFS labelling from `source`:
/// the source is 0, every other reachable vertex `v` has
/// `labels[v] = 1 + min_{u ∈ N(v)} labels[u]`, and unreachable vertices are
/// [`INFINITY`].
///
/// This is the `polylog(n)`-energy verifiability observation from the
/// paper's introduction, in centralized form; it is used pervasively by the
/// test suite.
pub fn is_valid_bfs_labeling(g: &Graph, source: NodeId, labels: &[Dist]) -> bool {
    if labels.len() != g.num_nodes() {
        return false;
    }
    let truth = bfs_distances(g, source);
    labels == truth.as_slice()
}

/// The set of vertices with finite distance (i.e. reachable from the
/// sources that produced `dist`).
pub fn reachable_set(dist: &[Dist]) -> Vec<NodeId> {
    dist.iter()
        .enumerate()
        .filter(|&(_, &d)| d != INFINITY)
        .map(|(v, _)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        let d = bfs_distances(&g, 3);
        assert_eq!(d, vec![3, 2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable_vertices_are_infinity() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INFINITY);
        assert_eq!(d[4], INFINITY);
        assert_eq!(reachable_set(&d), vec![0, 1]);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let g = generators::path(9);
        let d = multi_source_bfs(&g, &[0, 8]);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn multi_source_with_duplicate_sources() {
        let g = generators::cycle(6);
        let d = multi_source_bfs(&g, &[2, 2, 2]);
        assert_eq!(d[2], 0);
        assert_eq!(d[5], 3);
    }

    #[test]
    fn restricted_bfs_respects_active_set() {
        // Path 0-1-2-3-4; deactivate 2: 3 and 4 become unreachable from 0.
        let g = generators::path(5);
        let active = vec![true, true, false, true, true];
        let d = restricted_bfs(&g, &[0], &active);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INFINITY);
        assert_eq!(d[3], INFINITY);
    }

    #[test]
    fn restricted_bfs_ignores_inactive_sources() {
        let g = generators::path(4);
        let active = vec![false, true, true, true];
        let d = restricted_bfs(&g, &[0, 3], &active);
        assert_eq!(d[0], INFINITY);
        assert_eq!(d[3], 0);
        assert_eq!(d[1], 2);
    }

    #[test]
    fn bfs_tree_paths_are_shortest() {
        let g = generators::grid(4, 4);
        let t = bfs_tree(&g, 0);
        for v in g.nodes() {
            let p = t.path_to(v).unwrap();
            assert_eq!(p.len() as Dist - 1, t.dist[v]);
            assert_eq!(p[0], 0);
            assert_eq!(*p.last().unwrap(), v);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn bfs_tree_eccentricity_and_layers() {
        let g = generators::path(7);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.eccentricity(), Some(6));
        assert_eq!(t.layer(3), vec![3]);
        assert_eq!(t.layer(0), vec![0]);
    }

    #[test]
    fn valid_labeling_checker() {
        let g = generators::cycle(5);
        let good = bfs_distances(&g, 1);
        assert!(is_valid_bfs_labeling(&g, 1, &good));
        let mut bad = good.clone();
        bad[3] += 1;
        assert!(!is_valid_bfs_labeling(&g, 1, &bad));
        assert!(!is_valid_bfs_labeling(&g, 1, &good[..4]));
    }
}
