//! Degeneracy and arboricity estimation.
//!
//! Theorem 5.2 claims its lower-bound graphs have arboricity (and treewidth)
//! `O(log n)`. Computing arboricity exactly is unnecessary for that check:
//! the degeneracy `d` of a graph satisfies `arboricity ≤ d ≤ 2·arboricity − 1`,
//! so a degeneracy bound of `O(log n)` certifies the claim up to a factor
//! of two. We compute degeneracy exactly with the standard linear-time
//! peeling (Matula–Beck) algorithm and derive arboricity bounds from it and
//! from the Nash-Williams density lower bound.

use crate::graph::Graph;

/// Exact degeneracy: the smallest `d` such that every subgraph has a vertex
/// of degree at most `d`. Computed by repeatedly removing a minimum-degree
/// vertex.
pub fn degeneracy(g: &Graph) -> usize {
    let n = g.num_nodes();
    if n == 0 {
        return 0;
    }
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let max_deg = *degree.iter().max().unwrap_or(&0);
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut degen = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the non-empty bucket with the smallest degree. The cursor can
        // go down by at most one per removal, so rewind by one each step.
        cursor = cursor.saturating_sub(1);
        loop {
            while cursor < buckets.len() && buckets[cursor].is_empty() {
                cursor += 1;
            }
            let Some(&cand) = buckets[cursor].last() else {
                break;
            };
            if removed[cand] || degree[cand] != cursor {
                buckets[cursor].pop();
                continue;
            }
            break;
        }
        let v = buckets[cursor].pop().expect("a vertex must remain");
        removed[v] = true;
        degen = degen.max(cursor);
        for &u in g.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
                buckets[degree[u]].push(u);
            }
        }
    }
    degen
}

/// Upper bound on arboricity derived from degeneracy: a `d`-degenerate graph
/// decomposes into at most `d` forests.
pub fn arboricity_upper_bound(g: &Graph) -> usize {
    degeneracy(g)
}

/// Nash-Williams style lower bound on arboricity from global density:
/// `⌈m / (n − 1)⌉` for `n ≥ 2` (0 otherwise). The true arboricity is the
/// maximum of this quantity over all subgraphs.
pub fn arboricity_lower_bound(g: &Graph) -> usize {
    let n = g.num_nodes();
    if n < 2 {
        return 0;
    }
    g.num_edges().div_ceil(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degeneracy_of_standard_graphs() {
        assert_eq!(degeneracy(&generators::path(10)), 1);
        assert_eq!(degeneracy(&generators::cycle(10)), 2);
        assert_eq!(degeneracy(&generators::complete(6)), 5);
        assert_eq!(degeneracy(&generators::star(20)), 1);
        assert_eq!(degeneracy(&generators::grid(5, 5)), 2);
        assert_eq!(degeneracy(&Graph::empty()), 0);
    }

    #[test]
    fn tree_has_degeneracy_one() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let t = generators::random_tree(100, &mut rng);
        assert_eq!(degeneracy(&t), 1);
        assert_eq!(arboricity_lower_bound(&t), 1);
    }

    #[test]
    fn bounds_sandwich_each_other() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        for _ in 0..5 {
            let g = generators::gnp(80, 0.1, &mut rng);
            let lo = arboricity_lower_bound(&g);
            let hi = arboricity_upper_bound(&g);
            // arboricity ≤ degeneracy and density/(n-1) ≤ arboricity, so lo ≤ hi.
            assert!(lo <= hi, "lo={lo} hi={hi}");
        }
    }

    #[test]
    fn complete_graph_arboricity_bounds() {
        let g = generators::complete(10);
        // arboricity(K_10) = ceil(10/2) = 5.
        assert_eq!(arboricity_lower_bound(&g), 5);
        assert_eq!(arboricity_upper_bound(&g), 9);
    }
}
